//! Robustness fuzzing: the machine must never panic, whatever bytes it
//! executes — random byte soup produces exceptions, halts, or progress,
//! never a crash, on both architecture variants and inside a VM.

use proptest::prelude::*;
use vax_arch::{AccessMode, MachineVariant, Psl, VmPsl};
use vax_cpu::{Machine, StepEvent};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_bytes_never_panic_bare(
        code in proptest::collection::vec(any::<u8>(), 1..256),
        variant in prop_oneof![Just(MachineVariant::Standard), Just(MachineVariant::Modified)],
    ) {
        let mut m = Machine::new(variant, 128 * 1024);
        m.mem_mut().write_slice(0x1000, &code).unwrap();
        // A plausible SCB full of valid handler addresses keeps exception
        // delivery going instead of double-faulting instantly.
        m.set_scbb(0x200);
        for off in (0..0x140u32).step_by(4) {
            m.mem_mut().write_u32(0x200 + off, 0x1000).unwrap();
        }
        let mut psl = Psl::new();
        psl.set_ipl(31);
        m.set_psl(psl);
        m.set_reg(14, 0x8000);
        m.set_isp(0x9000);
        m.set_pc(0x1000);
        for _ in 0..2000 {
            match m.step() {
                StepEvent::Ok => {}
                StepEvent::Halted(_) => break,
                StepEvent::VmExit(_) => unreachable!("not in VM mode"),
            }
        }
    }

    #[test]
    fn random_bytes_never_panic_in_vm_mode(
        code in proptest::collection::vec(any::<u8>(), 1..256),
        vcur in 0u32..4,
    ) {
        let mut m = Machine::new(MachineVariant::Modified, 128 * 1024);
        m.mem_mut().write_slice(0x1000, &code).unwrap();
        let mut psl = Psl::new();
        psl.set_cur_mode(AccessMode::Executive);
        m.set_psl(psl);
        m.set_reg(14, 0x8000);
        m.set_pc(0x1000);
        let vmpsl = VmPsl::new(AccessMode::from_bits(vcur), AccessMode::from_bits(vcur));
        m.enter_vm(vmpsl);
        for _ in 0..2000 {
            match m.step() {
                StepEvent::Ok => {}
                StepEvent::Halted(_) => break,
                StepEvent::VmExit(_) => {
                    // Resume like a trivial VMM that skips everything.
                    let pc = m.pc();
                    m.set_pc(pc.wrapping_add(1));
                    m.enter_vm(vmpsl);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With translation enabled and *garbage base registers*, random code
    /// must still only fault, never panic — base registers are
    /// software-controllable state.
    #[test]
    fn random_bytes_with_hostile_mmu_state_never_panic(
        code in proptest::collection::vec(any::<u8>(), 1..128),
        p0br in any::<u32>(),
        p0lr in 0u32..0x40_0000,
        p1br in any::<u32>(),
        p1lr in 0u32..0x40_0000,
        sbr in 0u32..0x4_0000,
        slr in 0u32..0x1000,
    ) {
        let mut m = Machine::new(MachineVariant::Modified, 128 * 1024);
        m.mem_mut().write_slice(0x1000, &code).unwrap();
        m.set_scbb(0x200);
        for off in (0..0x140u32).step_by(4) {
            m.mem_mut().write_u32(0x200 + off, 0x1000).unwrap();
        }
        {
            let mmu = m.mmu_mut();
            mmu.set_p0br(p0br);
            mmu.set_p0lr(p0lr);
            mmu.set_p1br(p1br);
            mmu.set_p1lr(p1lr);
            mmu.set_sbr(sbr);
            mmu.set_slr(slr);
            mmu.set_mapen(true);
        }
        let mut psl = Psl::new();
        psl.set_ipl(31);
        m.set_psl(psl);
        m.set_reg(14, 0x8000);
        m.set_isp(0x9000);
        m.set_pc(0x1000);
        for _ in 0..1500 {
            match m.step() {
                StepEvent::Ok => {}
                StepEvent::Halted(_) => break,
                StepEvent::VmExit(_) => unreachable!("not in VM mode"),
            }
        }
    }
}
