//! The decoded-instruction cache: invisibility (cycles and counters are
//! bit-identical with the cache on or off), self-modifying-code
//! invalidation, and the invalidation hooks.

use vax_arch::{MachineVariant, Opcode, Psl};
use vax_asm::{Asm, Operand, Reg};
use vax_cpu::{HaltReason, Machine, StepEvent};

fn kernel_machine(code: &[u8], decode_cache: bool) -> Machine {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.set_decode_cache_enabled(decode_cache);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m
}

fn run_to_halt(m: &mut Machine) {
    loop {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => break,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
}

fn compute_loop(iterations: u32) -> Vec<u8> {
    let mut a = Asm::new(0x1000);
    a.movl(Operand::Imm(iterations), Operand::Reg(Reg::R2))
        .unwrap();
    a.clrl(Operand::Reg(Reg::R3)).unwrap();
    let top = a.label();
    a.bind(top).unwrap();
    a.inst(
        Opcode::Addl2,
        &[Operand::Reg(Reg::R2), Operand::Reg(Reg::R3)],
    )
    .unwrap();
    a.inst(
        Opcode::Xorl2,
        &[Operand::Imm(0x55AA), Operand::Reg(Reg::R3)],
    )
    .unwrap();
    a.inst(
        Opcode::Sobgtr,
        &[Operand::Reg(Reg::R2), Operand::Branch(top)],
    )
    .unwrap();
    a.halt().unwrap();
    a.assemble().unwrap().bytes
}

#[test]
fn cache_on_and_off_are_bit_identical() {
    let code = compute_loop(500);
    let mut cached = kernel_machine(&code, true);
    let mut bytewise = kernel_machine(&code, false);
    run_to_halt(&mut cached);
    run_to_halt(&mut bytewise);
    assert_eq!(cached.reg(3), bytewise.reg(3));
    assert_eq!(cached.cycles(), bytewise.cycles(), "cycles must not move");
    assert_eq!(
        cached.counters(),
        bytewise.counters(),
        "counters must not move"
    );
    // And the cache must actually have been used.
    let stats = cached.decode_cache_stats();
    assert!(stats.hits > 1000, "loop body should hit: {stats:?}");
    assert_eq!(bytewise.decode_cache_stats().hits, 0);
}

#[test]
fn self_modifying_code_is_observed() {
    // A two-iteration loop: iteration one executes `incl r0` (D6 50) —
    // caching its template — then patches its register byte to make it
    // `incl r1` (D6 51). With a stale decode cache iteration two would
    // increment r0 again; correct invalidation yields r0 == 1, r1 == 1.
    let mut a = Asm::new(0x1000);
    a.movl(Operand::Imm(2), Operand::Reg(Reg::R2)).unwrap();
    let top = a.label();
    a.bind(top).unwrap();
    a.incl(Operand::Reg(Reg::R0)).unwrap();
    // Patch the `incl` destination register for the *next* iteration.
    a.inst(
        Opcode::Movb,
        &[Operand::Imm(0x51), Operand::Abs(0)], // abs address fixed below
    )
    .unwrap();
    a.inst(
        Opcode::Sobgtr,
        &[Operand::Reg(Reg::R2), Operand::Branch(top)],
    )
    .unwrap();
    a.halt().unwrap();
    let mut bytes = a.assemble().unwrap().bytes;

    // Locate the `incl` (D6 50) and point the MOVB's absolute operand at
    // the register-specifier byte following the D6 opcode.
    let incl_off = bytes
        .windows(2)
        .position(|w| w == [0xD6, 0x50])
        .expect("incl r0 in program");
    let movb_abs_off = bytes
        .windows(2)
        .position(|w| w == [0x51, 0x9F]) // imm byte 0x51, then @# specifier
        .expect("movb abs operand")
        + 2;
    let patch_addr = (0x1000 + incl_off as u32 + 1).to_le_bytes();
    bytes[movb_abs_off..movb_abs_off + 4].copy_from_slice(&patch_addr);

    for decode_cache in [true, false] {
        let mut m = kernel_machine(&bytes, decode_cache);
        run_to_halt(&mut m);
        assert_eq!(m.reg(0), 1, "cache={decode_cache}: first iteration");
        assert_eq!(m.reg(1), 1, "cache={decode_cache}: patched iteration");
    }

    // The store must also have cost an invalidation, not a full flush.
    let mut m = kernel_machine(&bytes, true);
    run_to_halt(&mut m);
    assert!(m.decode_cache_stats().invalidations > 0);
}

#[test]
fn tbia_and_mapen_flush_the_cache() {
    let code = compute_loop(50);
    let mut m = kernel_machine(&code, true);
    run_to_halt(&mut m);
    let before = m.decode_cache_stats().invalidations;
    m.write_ipr(vax_arch::Ipr::Tbia, 0).unwrap();
    m.write_ipr(vax_arch::Ipr::Mapen, 0).unwrap();
    assert_eq!(m.decode_cache_stats().invalidations, before + 2);
}

#[test]
fn disabling_the_cache_mid_run_is_safe() {
    let code = compute_loop(100);
    let mut m = kernel_machine(&code, true);
    for _ in 0..20 {
        assert_eq!(m.step(), StepEvent::Ok);
    }
    m.set_decode_cache_enabled(false);
    run_to_halt(&mut m);

    let mut reference = kernel_machine(&code, false);
    run_to_halt(&mut reference);
    assert_eq!(m.reg(3), reference.reg(3));
    assert_eq!(m.cycles(), reference.cycles());
}
