//! Indexed addressing mode (`base[Rx]`): encoding, decoding, and
//! execution semantics, including operand-width scaling.

use vax_arch::{MachineVariant, Psl};
use vax_asm::{assemble_text, disassemble};
use vax_cpu::{HaltReason, Machine, StepEvent};

fn run(src: &str) -> Machine {
    let p = assemble_text(src, 0x1000).expect("assembles");
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..100_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => return m,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    panic!("did not halt");
}

#[test]
fn longword_array_indexing() {
    let m = run("
        movl #100, @#0x3000
        movl #200, @#0x3004
        movl #300, @#0x3008
        movl #2, r1
        movl @#0x3000[r1], r2    ; element 2 (scaled by 4)
        movl #0x3000, r3
        movl #1, r1
        movl (r3)[r1], r4        ; element 1 via register deferred
        halt
        ");
    assert_eq!(m.reg(2), 300);
    assert_eq!(m.reg(4), 200);
}

#[test]
fn byte_indexing_scales_by_one() {
    let m = run("
        movl #0x44332211, @#0x3000
        movl #3, r1
        movb @#0x3000[r1], r2
        halt
        ");
    assert_eq!(m.reg(2) & 0xff, 0x44, "byte 3 of the longword");
}

#[test]
fn indexed_write_and_displacement_base() {
    let m = run("
        movl #0x3000, r5
        movl #3, r1
        movl #777, 8(r5)[r1]     ; 0x3000 + 8 + 3*4 = 0x3014
        movl @#0x3014, r2
        halt
        ");
    assert_eq!(m.reg(2), 777);
}

#[test]
fn negative_index() {
    let m = run("
        movl #555, @#0x2FFC
        movl #-1, r1
        movl @#0x3000[r1], r2
        halt
        ");
    assert_eq!(m.reg(2), 555, "index -1 steps back one element");
}

#[test]
fn word_indexed_array_sum() {
    let m = run("
        movw #10, @#0x3000
        movw #20, @#0x3002
        movw #30, @#0x3004
        clrl r2
        clrl r1
    top:
        movw @#0x3000[r1], r3
        addl2 r3, r2
        aoblss #3, r1, top
        halt
        ");
    assert_eq!(m.reg(2), 60, "word elements scaled by 2");
}

#[test]
fn disassembler_round_trips_indexed_forms() {
    let p = assemble_text(
        "
        movl @#0x3000[r1], r2
        movl 8(r5)[r3], r2
        movl (r4)[r0], r2
        halt
        ",
        0x1000,
    )
    .unwrap();
    let texts: Vec<String> = disassemble(&p.bytes, 0x1000)
        .into_iter()
        .map(|l| l.text)
        .collect();
    assert_eq!(
        texts,
        vec![
            "movl @#0x3000[r1], r2",
            "movl 8(r5)[r3], r2",
            "movl (r4)[r0], r2",
            "halt"
        ]
    );
}

#[test]
fn pc_as_index_register_is_reserved() {
    // Hand-encode MOVL 0x4F 0x64 0x52: index reg = PC -> reserved.
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    m.mem_mut()
        .write_slice(0x1000, &[0xD0, 0x4F, 0x64, 0x52, 0x00])
        .unwrap();
    m.set_scbb(0x200);
    m.mem_mut().write_u32(0x200 + 0x1C, 0x2000).unwrap(); // reserved addr mode
    m.mem_mut().write_u8(0x2000, 0x00).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m.step();
    assert_eq!(m.pc(), 0x2000, "reserved addressing mode fault");
}
