//! Instruction-semantics tests: condition codes, arithmetic edge cases,
//! branches, calls, and string instructions, each against hand-computed
//! expectations.

use vax_arch::{MachineVariant, Psl, ScbVector};
use vax_asm::assemble_text;
use vax_cpu::{HaltReason, Machine, StepEvent};

fn run(src: &str) -> Machine {
    run_with(src, |_| {})
}

fn run_with(src: &str, setup: impl FnOnce(&mut Machine)) -> Machine {
    let p = assemble_text(src, 0x1000).expect("assembles");
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    setup(&mut m);
    for _ in 0..500_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => return m,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    panic!("did not halt");
}

fn cc(m: &Machine) -> (bool, bool, bool, bool) {
    let p = m.psl();
    (
        p.flag(Psl::N),
        p.flag(Psl::Z),
        p.flag(Psl::V),
        p.flag(Psl::C),
    )
}

#[test]
fn addl_carry_and_overflow() {
    // 0x7FFFFFFF + 1: signed overflow, no carry.
    let m = run("movl #0x7FFFFFFF, r0\n addl2 #1, r0\n halt");
    assert_eq!(m.reg(0), 0x8000_0000);
    let (n, z, v, c) = cc(&m);
    assert!(n && !z && v && !c);

    // 0xFFFFFFFF + 1: carry out, result zero, no signed overflow.
    let m = run("movl #0xFFFFFFFF, r0\n addl2 #1, r0\n halt");
    assert_eq!(m.reg(0), 0);
    let (n, z, v, c) = cc(&m);
    assert!(!n && z && !v && c);
}

#[test]
fn subl_borrow_semantics() {
    // SUBL2 sub,dif: dif = dif - sub. 3 - 5 borrows.
    let m = run("movl #3, r0\n subl2 #5, r0\n halt");
    assert_eq!(m.reg(0) as i32, -2);
    let (n, _, v, c) = cc(&m);
    assert!(n && !v && c, "borrow sets C");

    // 5 - 3: no borrow.
    let m = run("movl #5, r0\n subl2 #3, r0\n halt");
    assert_eq!(m.reg(0), 2);
    let (_, _, _, c) = cc(&m);
    assert!(!c);
}

#[test]
fn subl3_operand_order() {
    // SUBL3 sub, min, dif: dif = min - sub.
    let m = run("movl #10, r1\n subl3 #4, r1, r2\n halt");
    assert_eq!(m.reg(2), 6);
}

#[test]
fn divl_by_zero_traps() {
    let p = assemble_text("divl2 #0, r0\n halt", 0x1000).unwrap();
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    // Arithmetic vector -> a halt handler at 0x2000.
    m.set_scbb(0x200);
    m.mem_mut()
        .write_u32(0x200 + ScbVector::Arithmetic.offset(), 0x2000)
        .unwrap();
    m.mem_mut().write_u8(0x2000, 0x00).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(0, 77);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m.step(); // DIVL2 -> arithmetic trap
    assert_eq!(m.pc(), 0x2000, "trapped through the arithmetic vector");
    assert_eq!(m.reg(0), 77, "destination unchanged on divide by zero");
    // Frame parameter is the type code (2 = divide by zero).
    let sp = m.reg(14);
    assert_eq!(m.mem().read_u32(sp).unwrap(), 2);
}

#[test]
fn divl_min_by_minus_one_overflows() {
    let m = run("movl #0x80000000, r0\n divl2 #-1, r0\n halt");
    assert_eq!(m.reg(0), 0x8000_0000, "result is the dividend");
    let (_, _, v, _) = cc(&m);
    assert!(v, "V set on divide overflow");
}

#[test]
fn mull_wide_overflow_detection() {
    let m = run("movl #0x10000, r0\n mull2 #0x10000, r0\n halt");
    assert_eq!(m.reg(0), 0);
    let (_, _, v, _) = cc(&m);
    assert!(v, "product exceeded 32 bits");

    let m = run("movl #1000, r0\n mull2 #1000, r0\n halt");
    assert_eq!(m.reg(0), 1_000_000);
    let (_, _, v, _) = cc(&m);
    assert!(!v);
}

#[test]
fn cmpl_signed_and_unsigned_flags() {
    // CMPL -1, 1: N set (signed less), C set (unsigned greater means
    // first < second unsigned is false... C = src1 <u src2).
    let m = run("cmpl #-1, #1\n halt");
    let (n, z, _, c) = cc(&m);
    assert!(n, "-1 < 1 signed");
    assert!(!z);
    assert!(!c, "0xFFFFFFFF > 1 unsigned");

    let m = run("cmpl #1, #-1\n halt");
    let (n, _, _, c) = cc(&m);
    assert!(!n);
    assert!(c, "1 < 0xFFFFFFFF unsigned");
}

#[test]
fn signed_and_unsigned_branches() {
    let m = run("
        clrl r5
        cmpl #-1, #1
        blss s_ok               ; signed less: taken
        halt
    s_ok:
        bisl2 #1, r5
        cmpl #-1, #1
        blssu u_no              ; unsigned: 0xFFFFFFFF not < 1
        bisl2 #2, r5
        halt
    u_no:
        halt
        ");
    assert_eq!(m.reg(5), 3);
}

#[test]
fn blbs_blbc() {
    let m = run("
        clrl r5
        movl #5, r0
        blbs r0, odd
        halt
    odd:
        incl r5
        movl #4, r0
        blbc r0, even
        halt
    even:
        incl r5
        halt
        ");
    assert_eq!(m.reg(5), 2);
}

#[test]
fn aoblss_and_sobgeq() {
    // AOBLSS: count 0..5.
    let m = run("
        clrl r0
        clrl r1
    top:
        incl r1
        aoblss #5, r0, top
        halt
        ");
    assert_eq!(m.reg(0), 5);
    assert_eq!(m.reg(1), 5);

    // SOBGEQ runs for index values down to 0 inclusive.
    let m = run("
        movl #3, r0
        clrl r1
    top:
        incl r1
        sobgeq r0, top
        halt
        ");
    assert_eq!(m.reg(1), 4, "3,2,1,0");
}

#[test]
fn ashl_directions() {
    let m = run("movl #1, r0\n ashl #4, r0, r1\n halt");
    assert_eq!(m.reg(1), 16);
    let m = run("movl #-32, r0\n ashl #-3, r0, r1\n halt");
    assert_eq!(m.reg(1) as i32, -4, "arithmetic right shift");
}

#[test]
fn byte_and_word_ops_preserve_high_register_bits() {
    let m = run_with("movb #0x7F, r0\n movw #0x1234, r1\n halt", |m| {
        m.set_reg(0, 0xAABB_CC00);
        m.set_reg(1, 0xAABB_0000);
    });
    assert_eq!(m.reg(0), 0xAABB_CC7F, "MOVB merges low byte");
    assert_eq!(m.reg(1), 0xAABB_1234, "MOVW merges low word");
}

#[test]
fn tstb_sign_uses_byte_width() {
    let m = run_with("tstb r0\n halt", |m| m.set_reg(0, 0x80));
    let (n, z, _, _) = cc(&m);
    assert!(n, "0x80 is negative as a byte");
    assert!(!z);
}

#[test]
fn incb_decb_wrap_at_byte_width() {
    let m = run_with("incb r0\n halt", |m| m.set_reg(0, 0x11FF));
    assert_eq!(m.reg(0), 0x1100, "byte wraps, high bits preserved");
    let (_, z, _, c) = cc(&m);
    assert!(z && c);
}

#[test]
fn jsb_rsb_nest() {
    let m = run("
            jsb sub1
            bisl2 #8, r5
            halt
        sub1:
            bisl2 #1, r5
            jsb sub2
            bisl2 #4, r5
            rsb
        sub2:
            bisl2 #2, r5
            rsb
        ");
    assert_eq!(m.reg(5), 15, "all four phases in order");
}

#[test]
fn calls_preserves_masked_registers_and_pops_args() {
    let m = run("
            movl #0x11, r2
            movl #0x22, r3
            pushl #30
            pushl #12
            calls #2, sum
            halt
        sum:
            .word 0x000C        ; save R2, R3
            movl 4(ap), r2      ; 12
            movl 8(ap), r3      ; 30
            addl3 r2, r3, r0
            ret
        ");
    assert_eq!(m.reg(0), 42);
    assert_eq!(m.reg(2), 0x11, "R2 restored");
    assert_eq!(m.reg(3), 0x22, "R3 restored");
    assert_eq!(m.reg(14), 0x8000, "arguments popped");
}

#[test]
fn movc3_handles_forward_overlap() {
    let m = run("
        movl #0x11223344, @#0x3000
        movl #0x55667788, @#0x3004
        movc3 #8, @#0x3000, @#0x3002
        halt
        ");
    // Forward byte-by-byte copy semantics.
    assert_eq!(m.mem().read_u16(0x3002).unwrap(), 0x3344);
    assert_eq!(m.reg(0), 0);
    assert_eq!(m.reg(1), 0x3008);
    assert_eq!(m.reg(3), 0x300A);
    let (_, z, _, _) = cc(&m);
    assert!(z);
}

#[test]
fn mnegl_and_mcoml() {
    let m = run("movl #5, r0\n mnegl r0, r1\n mcoml r0, r2\n halt");
    assert_eq!(m.reg(1) as i32, -5);
    assert_eq!(m.reg(2), !5u32);
}

#[test]
fn bicl_clears_mask_bits() {
    let m = run("movl #0xFF, r0\n bicl2 #0x0F, r0\n halt");
    assert_eq!(m.reg(0), 0xF0);
}

#[test]
fn autoincrement_through_memory_scan() {
    let m = run("
        movl #10, @#0x3000
        movl #20, @#0x3004
        movl #30, @#0x3008
        movl #0x3000, r1
        clrl r2
        movl #3, r3
    top:
        addl2 (r1)+, r2
        sobgtr r3, top
        halt
        ");
    assert_eq!(m.reg(2), 60);
    assert_eq!(m.reg(1), 0x300C);
}

#[test]
fn integer_overflow_trap_when_iv_enabled() {
    // With PSL<IV> set, a signed overflow takes the arithmetic trap
    // *after* committing the result.
    let p = assemble_text("addl2 #1, r0\n halt", 0x1000).unwrap();
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    m.set_scbb(0x200);
    m.mem_mut()
        .write_u32(0x200 + ScbVector::Arithmetic.offset(), 0x2000)
        .unwrap();
    m.mem_mut().write_u8(0x2000, 0x00).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    psl.set_flag(Psl::IV, true);
    m.set_psl(psl);
    m.set_reg(0, 0x7FFF_FFFF);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m.step();
    assert_eq!(m.pc(), 0x2000, "arithmetic trap taken");
    assert_eq!(m.reg(0), 0x8000_0000, "result committed before the trap");
    let sp = m.reg(14);
    assert_eq!(m.mem().read_u32(sp).unwrap(), 1, "integer overflow code");
}
