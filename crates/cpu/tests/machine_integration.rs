//! End-to-end machine tests: real assembled programs exercising the
//! exception, mode-switch, memory-management, and timer machinery.

use vax_arch::{AccessMode, Ipr, MachineVariant, Opcode, Protection, Psl, Pte, ScbVector, VmPsl};
use vax_asm::{assemble_text, Asm, Operand};
use vax_cpu::{HaltReason, Machine, StepEvent, VmExit};

const SCB_PA: u32 = 0x6000;
const SPT_PA: u32 = 0x7000;

/// Machine with S pages 0..48 identity-mapped.
fn mapped_machine(variant: MachineVariant, prot: Protection) -> Machine {
    let mut m = Machine::new(variant, 256 * 1024);
    for page in 0..64u32 {
        let pte = Pte::build(page, prot, true, true);
        m.mem_mut().write_u32(SPT_PA + 4 * page, pte.raw()).unwrap();
    }
    m.mmu_mut().set_sbr(SPT_PA);
    m.mmu_mut().set_slr(64);
    m.mmu_mut().set_mapen(true);
    m.set_scbb(SCB_PA);
    m
}

fn load(m: &mut Machine, src: &str, base: u32) -> vax_asm::Program {
    let p = assemble_text(src, base).expect("assembles");
    m.mem_mut()
        .write_slice(p.base & 0x00ff_ffff, &p.bytes)
        .unwrap();
    p
}

fn set_mode(m: &mut Machine, mode: AccessMode, sp: u32) {
    let mut psl = Psl::new();
    psl.set_cur_mode(mode);
    psl.set_prv_mode(mode);
    m.set_psl(psl);
    m.set_reg(14, sp);
}

fn run_to_halt(m: &mut Machine, max: u64) {
    match m.run(max) {
        StepEvent::Halted(HaltReason::HaltInstruction) => {}
        other => panic!("expected halt, got {other:?} at pc={:#x}", m.pc()),
    }
}

#[test]
fn arithmetic_program_computes() {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    load(
        &mut m,
        "
        movl #0, r2
        movl #100, r1
    top:
        addl2 r1, r2
        sobgtr r1, top
        halt
        ",
        0x200,
    );
    m.set_pc(0x200);
    run_to_halt(&mut m, 10_000);
    assert_eq!(m.reg(2), 5050);
}

#[test]
fn chmk_dispatches_to_kernel_and_rei_returns() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    // Kernel handler: load the CHM code into R3, pop it, REI.
    let handler = load(
        &mut m,
        "
        handler:
            movl (sp)+, r3      ; CHM code parameter
            rei
        ",
        0x8000_2000,
    );
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::Chmk.offset(), handler.base)
        .unwrap();
    // User program: CHMK #42 then HALT (HALT in user mode traps; use a
    // marker instead).
    load(
        &mut m,
        "
        start:
            chmk #42
            movl #1, r5
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);

    // CHMK
    assert_eq!(m.step(), StepEvent::Ok);
    assert_eq!(m.psl().cur_mode(), AccessMode::Kernel);
    assert_eq!(m.psl().prv_mode(), AccessMode::User);
    // handler: movl (sp)+, r3
    assert_eq!(m.step(), StepEvent::Ok);
    assert_eq!(m.reg(3), 42);
    // rei
    assert_eq!(m.step(), StepEvent::Ok);
    assert_eq!(m.psl().cur_mode(), AccessMode::User);
    // movl #1, r5 executes back in user mode
    assert_eq!(m.step(), StepEvent::Ok);
    assert_eq!(m.reg(5), 1);
    assert_eq!(m.counters().chm, 1);
    assert_eq!(m.counters().rei, 1);
}

#[test]
fn chm_to_less_privileged_mode_stays_in_current_mode() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::Chmu.offset(), handler.base)
        .unwrap();
    load(&mut m, "chmu #0", 0x8000_0400);
    set_mode(&mut m, AccessMode::Executive, 0x8000_1000);
    m.set_pc(0x8000_0400);
    assert_eq!(m.step(), StepEvent::Ok);
    // CHMU from executive: mode must remain executive (maximized
    // privilege), though it vectors through the CHMU vector.
    assert_eq!(m.psl().cur_mode(), AccessMode::Executive);
}

#[test]
fn rei_cannot_increase_privilege() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::ReservedOperand.offset(), handler.base)
        .unwrap();
    // User-mode code builds a kernel-mode PSL image and REIs to it.
    load(
        &mut m,
        "
            pushl #0            ; PSL image: kernel mode, ipl 0
            pushl #0x80000400   ; PC
            rei
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    m.step();
    m.step();
    assert_eq!(m.step(), StepEvent::Ok); // REI -> reserved operand fault
    assert_eq!(m.pc(), handler.base, "faulted to reserved-operand handler");
    assert_eq!(m.psl().cur_mode(), AccessMode::Kernel); // handler runs in kernel
}

#[test]
fn movpsl_reveals_current_mode_on_standard_vax() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    load(&mut m, "movpsl r0\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_pc(0x8000_0400);
    assert_eq!(m.step(), StepEvent::Ok);
    let psl = Psl::from_raw(m.reg(0));
    assert_eq!(psl.cur_mode(), AccessMode::User);
}

#[test]
fn movpsl_in_vm_returns_vm_modes() {
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    load(&mut m, "movpsl r0\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Executive, 0x8000_1000);
    m.set_pc(0x8000_0400);
    m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::User));
    assert_eq!(m.step(), StepEvent::Ok, "MOVPSL must not trap in VM mode");
    let psl = Psl::from_raw(m.reg(0));
    assert_eq!(psl.cur_mode(), AccessMode::Kernel, "VM sees virtual kernel");
    assert_eq!(psl.prv_mode(), AccessMode::User);
    assert!(!psl.vm(), "PSL<VM> never visible to software");
    assert!(m.in_vm(), "still in VM mode after MOVPSL");
}

#[test]
fn access_violation_delivered_through_scb() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    // Page 40 is kernel-write only.
    let pte = Pte::build(40, Protection::Kw, true, true);
    m.mem_mut().write_u32(SPT_PA + 4 * 40, pte.raw()).unwrap();
    let handler = load(&mut m, "h: movl #77, r9\n halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::AccessViolation.offset(), handler.base)
        .unwrap();
    load(&mut m, "movl #1, @#0x80005000\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(9), 77, "handler ran");
    // Frame: (SP)=reason, 4(SP)=va, 8(SP)=PC, 12(SP)=PSL.
    let sp = m.sp_for_mode(AccessMode::Kernel) & 0x00ff_ffff;
    let reason = m.mem().read_u32(sp).unwrap();
    let va = m.mem().read_u32(sp + 4).unwrap();
    let pc = m.mem().read_u32(sp + 8).unwrap();
    assert_eq!(reason & 0b100, 0b100, "write bit set");
    assert_eq!(va, 0x8000_5000);
    assert_eq!(pc, 0x8000_0400, "fault PC is instruction start");
}

#[test]
fn modify_fault_on_modified_vax_and_hardware_m_on_standard() {
    // Standard: write just sets PTE<M>.
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let pte = Pte::build(41, Protection::Uw, true, false);
    m.mem_mut().write_u32(SPT_PA + 4 * 41, pte.raw()).unwrap();
    load(&mut m, "movl #9, @#0x80005200\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert!(Pte::from_raw(m.mem().read_u32(SPT_PA + 4 * 41).unwrap()).modified());

    // Modified: modify fault; handler sets M and REIs; retry succeeds.
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    let pte = Pte::build(41, Protection::Uw, true, false);
    m.mem_mut().write_u32(SPT_PA + 4 * 41, pte.raw()).unwrap();
    let handler = load(
        &mut m,
        "
        h:  incl r10                 ; count modify faults
            movl @#0x80000000, r0    ; hack: placeholder, patched below
            rei
        ",
        0x8000_2000,
    );
    // Replace the handler with real code: set M bit in the PTE then REI.
    // PTE is at physical SPT_PA + 4*41, mapped at VA 0x80000000 + that.
    let handler_src = format!(
        "
        h:  incl r10
            movl @#{pte_va:#x}, r0
            bisl2 #0x04000000, r0
            movl r0, @#{pte_va:#x}
            addl2 #4, sp            ; drop fault parameter (VA)
            rei
        ",
        pte_va = 0x8000_0000u32 + SPT_PA + 4 * 41
    );
    let handler = {
        let _ = handler;
        load(&mut m, &handler_src, 0x8000_2000)
    };
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::ModifyFault.offset(), handler.base)
        .unwrap();
    load(&mut m, "movl #9, @#0x80005200\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 200);
    assert_eq!(m.reg(10), 1, "exactly one modify fault");
    assert_eq!(m.mem().read_u32((41 << 9) | 0x200).unwrap(), 9);
    assert!(Pte::from_raw(m.mem().read_u32(SPT_PA + 4 * 41).unwrap()).modified());
}

#[test]
fn interval_timer_interrupts_and_rei_dismisses() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(
        &mut m,
        "
        h:  incl r11
            mtpr #0xC1, #24     ; ICCS: clear INT, keep RUN|IE
            rei
        ",
        0x8000_2000,
    );
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::IntervalTimer.offset(), handler.base)
        .unwrap();
    load(
        &mut m,
        "
            mtpr #-200, #25     ; NICR
            mtpr #0x51, #24     ; ICCS: RUN | IE | XFR
        spin:
            cmpl r11, #3
            blss spin
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 50_000);
    assert!(m.reg(11) >= 3);
    assert!(m.counters().interrupts >= 3);
}

#[test]
fn software_interrupt_via_sirr() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: movl #5, r7\n rei", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::software(3), handler.base)
        .unwrap();
    load(
        &mut m,
        "
            mtpr #3, #20        ; SIRR: request level 3
            movl #1, r6         ; runs before or after handler per IPL
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(7), 5, "software interrupt handler ran");
}

#[test]
fn interrupt_blocked_by_ipl() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: movl #5, r7\n rei", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::software(3), handler.base)
        .unwrap();
    load(
        &mut m,
        "
            mtpr #31, #18       ; IPL = 31: block everything
            mtpr #3, #20        ; request software level 3
            movl #1, r6
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(7), 0, "interrupt must be blocked at IPL 31");
    assert_eq!(m.read_ipr(Ipr::Sisr).unwrap(), 1 << 3, "still pending");
}

#[test]
fn ldpctx_svpctx_round_trip() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let pcb_pa = 0x5000u32;
    // Build a PCB: context with R0=111, PC=entry, kernel PSL.
    let entry = load(&mut m, "e: movl #222, r1\n halt", 0x8000_2800);
    m.mem_mut().write_u32(pcb_pa, 0x8000_1600).unwrap(); // KSP
    m.mem_mut().write_u32(pcb_pa + 16, 111).unwrap(); // R0
    m.mem_mut().write_u32(pcb_pa + 72, entry.base).unwrap(); // PC
    let mut kpsl = Psl::new();
    kpsl.set_cur_mode(AccessMode::Kernel);
    m.mem_mut().write_u32(pcb_pa + 76, kpsl.raw()).unwrap(); // PSL
    m.mem_mut().write_u32(pcb_pa + 80, 0x8000_3000).unwrap(); // P0BR
    m.mem_mut().write_u32(pcb_pa + 84, 0).unwrap(); // P0LR

    load(
        &mut m,
        "
            mtpr #0x5000, #16   ; PCBB
            ldpctx
            rei                 ; completes the switch
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(0), 111, "R0 loaded from PCB");
    assert_eq!(m.reg(1), 222, "execution resumed at PCB PC");
    assert_eq!(m.counters().context_switches, 1);
}

#[test]
fn prober_checks_against_previous_mode() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    // Page 42: kernel-only.
    let pte = Pte::build(42, Protection::Kw, true, true);
    m.mem_mut().write_u32(SPT_PA + 4 * 42, pte.raw()).unwrap();
    // Kernel code probing on behalf of user (prv = user).
    load(
        &mut m,
        "
            prober #0, #4, @#0x80005400   ; probe kernel page as user
            beql fail                     ; Z=1 -> inaccessible
            movl #1, r0
            halt
        fail:
            movl #2, r0
            halt
        ",
        0x8000_0400,
    );
    let mut psl = Psl::new();
    psl.set_cur_mode(AccessMode::Kernel);
    psl.set_prv_mode(AccessMode::User); // came from user
    m.set_psl(psl);
    m.set_reg(14, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(0), 2, "PROBE must honor PSL<PRV>=user");

    // Same probe with prv=kernel succeeds.
    let mut m2 = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let pte = Pte::build(42, Protection::Kw, true, true);
    m2.mem_mut().write_u32(SPT_PA + 4 * 42, pte.raw()).unwrap();
    load(
        &mut m2,
        "
            prober #0, #4, @#0x80005400
            beql fail
            movl #1, r0
            halt
        fail:
            movl #2, r0
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m2, AccessMode::Kernel, 0x8000_1800);
    m2.set_pc(0x8000_0400);
    run_to_halt(&mut m2, 100);
    assert_eq!(m2.reg(0), 1);
}

#[test]
fn vm_emulation_trap_carries_decoded_operands() {
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    // VM-kernel code: MTPR #5, #18 (IPL).
    let mut a = Asm::new(0x8000_0400);
    a.mtpr(Operand::Imm(5), Ipr::Ipl).unwrap();
    let p = a.assemble().unwrap();
    m.mem_mut().write_slice(0x0400, &p.bytes).unwrap();
    set_mode(&mut m, AccessMode::Executive, 0x8000_1000);
    m.set_pc(0x8000_0400);
    m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::Kernel));

    let StepEvent::VmExit(VmExit::Emulation(info)) = m.step() else {
        panic!("expected VM-emulation trap");
    };
    assert_eq!(info.opcode, Opcode::Mtpr);
    assert_eq!(info.pc, 0x8000_0400);
    assert_eq!(info.operands[0].value(), Some(5));
    assert_eq!(info.operands[1].value(), Some(Ipr::Ipl.number()));
    assert_eq!(info.vm_psl.cur_mode(), AccessMode::Kernel);
    assert!(!m.in_vm(), "microcode cleared PSL<VM>");
    assert_eq!(
        m.pc(),
        0x8000_0400,
        "PC not advanced; VMM resumes at next_pc"
    );
    assert_eq!(m.counters().vm_emulation_traps, 1);
}

#[test]
fn privileged_instruction_from_vm_user_mode_is_reflected_not_emulated() {
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    let mut a = Asm::new(0x8000_0400);
    a.mtpr(Operand::Imm(5), Ipr::Ipl).unwrap();
    let p = a.assemble().unwrap();
    m.mem_mut().write_slice(0x0400, &p.bytes).unwrap();
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_pc(0x8000_0400);
    m.enter_vm(VmPsl::new(AccessMode::User, AccessMode::User));

    // Paper §4.4.1: outside VM-kernel mode, privileged instructions take
    // the ordinary privileged-instruction trap (to the VMM for
    // reflection), not the VM-emulation trap.
    let StepEvent::VmExit(VmExit::Exception(e)) = m.step() else {
        panic!("expected exception exit");
    };
    assert_eq!(e, vax_arch::Exception::ReservedInstruction);
    assert_eq!(m.counters().vm_emulation_traps, 0);
    assert_eq!(m.counters().vm_exception_exits, 1);
}

#[test]
fn memory_fault_in_vm_exits_to_vmm() {
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    // S page 43 = null PTE (invalid, full access): the shadow-fill hook.
    m.mem_mut()
        .write_u32(SPT_PA + 4 * 43, Pte::NULL.raw())
        .unwrap();
    load(&mut m, "movl @#0x80005600, r0\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Executive, 0x8000_1000);
    m.set_pc(0x8000_0400);
    m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::Kernel));

    let StepEvent::VmExit(VmExit::Exception(e)) = m.step() else {
        panic!("expected exception exit");
    };
    assert!(matches!(e, vax_arch::Exception::TranslationNotValid { .. }));
    // VMM fills the shadow PTE and resumes: map page 43, write data.
    let pte = Pte::build(43, Protection::Uw, true, true);
    m.mem_mut().write_u32(SPT_PA + 4 * 43, pte.raw()).unwrap();
    m.mem_mut().write_u32(43 << 9, 0x1234).unwrap();
    m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::Kernel));
    assert_eq!(m.step(), StepEvent::Ok, "retry succeeds after fill");
    assert_eq!(m.reg(0), 0x1234);
}

#[test]
fn calls_ret_round_trip() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    load(
        &mut m,
        "
            pushl #7
            pushl #35
            calls #2, func
            halt
        func:
            .word 0x0004         ; entry mask: save R2
            movl 4(ap), r2       ; first argument
            addl2 8(ap), r2      ; plus second
            movl r2, r0
            ret
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    let r2_before = 0xDEAD;
    m.set_reg(2, r2_before);
    run_to_halt(&mut m, 200);
    assert_eq!(m.reg(0), 42, "35 + 7");
    assert_eq!(m.reg(2), r2_before, "R2 restored by entry mask");
    assert_eq!(m.reg(14), 0x8000_1800, "stack fully unwound");
}

#[test]
fn movc3_copies_and_sets_registers() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    m.mem_mut().write_slice(0x5000, b"hello world!").unwrap();
    load(
        &mut m,
        "movc3 #12, @#0x80005000, @#0x80005100\n halt",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(&*m.mem().read_slice(0x5100, 12).unwrap(), b"hello world!");
    assert_eq!(m.reg(0), 0);
    assert_eq!(m.reg(1), 0x8000_500C);
    assert_eq!(m.reg(3), 0x8000_510C);
}

#[test]
fn nonexistent_memory_is_machine_check() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: movl #1, r8\n halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::MachineCheck.offset(), handler.base)
        .unwrap();
    // Map S page 44 to a physical page beyond RAM.
    let pte = Pte::build(0x1F00, Protection::Uw, true, true);
    m.mem_mut().write_u32(SPT_PA + 4 * 44, pte.raw()).unwrap();
    load(&mut m, "movl @#0x80005800, r0\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(8), 1, "machine check handler ran");
}

#[test]
fn halt_outside_kernel_mode_is_privileged_trap() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: movl #1, r8\n halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(
            SCB_PA + ScbVector::ReservedInstruction.offset(),
            handler.base,
        )
        .unwrap();
    load(&mut m, "halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(8), 1);
}

#[test]
fn probevm_three_part_check() {
    let mut m = mapped_machine(MachineVariant::Modified, Protection::Uw);
    // Page 40: valid, modified, UW -> all clear.
    // Page 41: valid, unmodified -> C on write probe.
    // Page 42: null (invalid, UW) -> V.
    // Page 43: KW (kernel only, valid) -> Z (probe clamps to executive).
    let e = |pfn, prot, v, mbit| Pte::build(pfn, prot, v, mbit).raw();
    m.mem_mut()
        .write_u32(SPT_PA + 4 * 40, e(40, Protection::Uw, true, true))
        .unwrap();
    m.mem_mut()
        .write_u32(SPT_PA + 4 * 41, e(41, Protection::Uw, true, false))
        .unwrap();
    m.mem_mut()
        .write_u32(SPT_PA + 4 * 42, Pte::NULL.raw())
        .unwrap();
    m.mem_mut()
        .write_u32(SPT_PA + 4 * 43, e(43, Protection::Kw, true, true))
        .unwrap();

    // probevmw #0, @#page ; movpsl -> capture condition codes per page.
    let src = "
        probevmw #0, @#0x80005000
        movpsl r1
        probevmw #0, @#0x80005200
        movpsl r2
        probevmw #0, @#0x80005400
        movpsl r3
        probevmw #0, @#0x80005600
        movpsl r4
        halt
    ";
    load(&mut m, src, 0x8000_0400);
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    let cc = |r: u32| r & 0xf; // N Z V C = bits 3..0
    assert_eq!(cc(m.reg(1)), 0b0000, "accessible, valid, modified");
    assert_eq!(cc(m.reg(2)), 0b0001, "C: not modified");
    assert_eq!(cc(m.reg(3)), 0b0010, "V: not valid");
    assert_eq!(cc(m.reg(4)), 0b0100, "Z: protection denies executive");
}

#[test]
fn probevm_is_reserved_on_standard_vax() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handler = load(&mut m, "h: movl #1, r8\n halt", 0x8000_2000);
    m.mem_mut()
        .write_u32(
            SCB_PA + ScbVector::ReservedInstruction.offset(),
            handler.base,
        )
        .unwrap();
    load(&mut m, "probevmw #0, @#0x80005000\n halt", 0x8000_0400);
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 100);
    assert_eq!(m.reg(8), 1, "Table 4: privileged instruction trap");
}

#[test]
fn trace_ring_records_recent_pcs() {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    let p = assemble_text("movl #1, r0\n movl #2, r1\n movl #3, r2\n halt", 0x1000).unwrap();
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    m.enable_trace(2);
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(0x1000);
    while m.step() == StepEvent::Ok {}
    let pcs = m.recent_pcs();
    assert_eq!(pcs.len(), 2, "ring bounded at its capacity");
    assert_eq!(*pcs.last().unwrap(), 0x1009, "the HALT was traced last");
}

#[test]
fn rei_requests_ast_delivery_when_astlvl_reached() {
    // VMS-style AST delivery: with ASTLVL = 3 (deliver to user), an REI
    // into user mode requests the level-2 software interrupt.
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let ast_handler = load(&mut m, "h: movl #1, r9\n rei", 0x8000_2000);
    m.mem_mut()
        .write_u32(SCB_PA + ScbVector::software(2), ast_handler.base)
        .unwrap();
    load(
        &mut m,
        "
        start:
            mtpr #3, #19            ; ASTLVL = 3 (user)
            movl #0x6000, r6
            mtpr r6, #3             ; USP
            pushl #0x03C00000       ; user-mode image, IPL 0
            pushal user_code
            rei                     ; into user mode: AST requested
        user_code:
            nop                     ; AST interrupt delivered around here
            nop
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_isp(0x8000_1400);
    m.set_pc(0x8000_0400);
    // HALT in user mode traps; run until the ReservedInstruction vector
    // (0) fails -> just step a bounded number and check the handler ran.
    for _ in 0..40 {
        if m.reg(9) == 1 {
            break;
        }
        m.step();
    }
    assert_eq!(m.reg(9), 1, "AST software interrupt delivered");
}

#[test]
fn no_ast_when_astlvl_is_none() {
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    load(
        &mut m,
        "
        start:
            mtpr #4, #19            ; ASTLVL = 4: no ASTs
            movl #0x6000, r6
            mtpr r6, #3
            pushl #0x03C00000
            pushal user_code
            rei
        user_code:
            nop
            nop
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::Kernel, 0x8000_1800);
    m.set_pc(0x8000_0400);
    for _ in 0..12 {
        m.step();
    }
    assert_eq!(
        m.read_ipr(vax_arch::Ipr::Sisr).unwrap(),
        0,
        "no AST request"
    );
}

#[test]
fn four_mode_chm_chain_uses_four_distinct_stacks() {
    // User -> CHMS -> CHME -> CHMK, each frame landing on its own
    // mode's stack, then three REIs unwind in order.
    let mut m = mapped_machine(MachineVariant::Standard, Protection::Uw);
    let handlers = load(
        &mut m,
        "
        chmk_h:
            movl sp, r2             ; kernel SP while handling
            movl (sp)+, r7
            rei
            .align 4
        chme_h:
            movl sp, r3             ; executive SP
            movl (sp)+, r7
            chmk #0
            rei
            .align 4
        chms_h:
            movl sp, r4             ; supervisor SP
            movl (sp)+, r7
            chme #0
            rei
            .align 4
        halt_h:
            halt                    ; user HALT lands here via vector 0x10
        ",
        0x8000_2000,
    );
    for (vec, sym) in [
        (0x40u32, "chmk_h"),
        (0x44, "chme_h"),
        (0x48, "chms_h"),
        (0x10, "halt_h"),
    ] {
        // Symbols via a second assembly pass with symbols.
        let (_, syms) = vax_asm::assemble_text_with_symbols(
            "
                chmk_h:
                    movl sp, r2
                    movl (sp)+, r7
                    rei
                    .align 4
                chme_h:
                    movl sp, r3
                    movl (sp)+, r7
                    chmk #0
                    rei
                    .align 4
                chms_h:
                    movl sp, r4
                    movl (sp)+, r7
                    chme #0
                    rei
                    .align 4
                halt_h:
                    halt
                ",
            0x8000_2000,
        )
        .unwrap();
        m.mem_mut().write_u32(SCB_PA + vec, syms[sym]).unwrap();
    }
    let _ = handlers;
    load(
        &mut m,
        "
        user:
            movl sp, r5             ; user SP
            chms #0
            movl #1, r9             ; back in user mode
            halt
        ",
        0x8000_0400,
    );
    set_mode(&mut m, AccessMode::User, 0x8000_1000);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1800);
    m.set_sp_for_mode(AccessMode::Executive, 0x8000_1600);
    m.set_sp_for_mode(AccessMode::Supervisor, 0x8000_1400);
    m.set_pc(0x8000_0400);
    run_to_halt(&mut m, 1000);
    assert_eq!(m.reg(9), 1, "full chain unwound back to user");
    // Each mode handled its frame on its own stack region.
    let (k, e, s, u) = (m.reg(2), m.reg(3), m.reg(4), m.reg(5));
    assert!((0x8000_1700..=0x8000_1800).contains(&k), "kernel {k:#x}");
    assert!((0x8000_1500..=0x8000_1600).contains(&e), "exec {e:#x}");
    assert!((0x8000_1300..=0x8000_1400).contains(&s), "super {s:#x}");
    assert!((0x8000_0F00..=0x8000_1000).contains(&u), "user {u:#x}");
    assert_eq!(m.counters().chm, 3);
    assert_eq!(m.counters().rei, 3);
}
