//! Integration tests for the translated-superblock execution tier: the
//! three-way bit-identity contract on a hot compute loop, self-modifying
//! code that overwrites a currently translated superblock, cost-model
//! retuning, and the tier-selection API itself — plus the mapped-mode
//! contract: blocks keyed by (entry PA, entry VA, generation) running
//! through the inline TLB fast path with direct chaining, and every
//! invalidation edge (TBIS on a linked successor's page, MAPEN/TBIA
//! toggles, self-modifying stores landing mid-chain) severing links and
//! re-converging bit-identically with the interpreter.

use vax_arch::{CostModel, MachineVariant, Protection, Psl, Pte};
use vax_cpu::{CpuCounters, ExecTier, Machine, StepEvent};

/// S-space base virtual address.
const S_BASE: u32 = 0x8000_0000;
/// Physical home of the P0 (process) page table.
const P0_TABLE_PA: u32 = 0x2_0000;
/// Physical home of the system page table.
const SPT_PA: u32 = 0x3_0000;

/// Identity-maps P0 space (VA x → PA x, 256 pages) and S space
/// (VA `S_BASE + x` → PA x, 512 pages), then turns translation on. The
/// same code then runs at the same PC mapped or unmapped — which is what
/// lets a guest toggle MAPEN mid-run — while P0 references still walk
/// the real two-level path (P0 PTE fetches resolve through S space,
/// since P0BR holds a system virtual address).
fn enable_identity_maps(m: &mut Machine) {
    for vpn in 0..512u32 {
        let pte = Pte::build(vpn, Protection::Kw, true, true);
        m.mem_mut().write_u32(SPT_PA + 4 * vpn, pte.raw()).unwrap();
    }
    for vpn in 0..256u32 {
        let pte = Pte::build(vpn, Protection::Kw, true, true);
        m.mem_mut()
            .write_u32(P0_TABLE_PA + 4 * vpn, pte.raw())
            .unwrap();
    }
    let mmu = m.mmu_mut();
    mmu.set_sbr(SPT_PA);
    mmu.set_slr(512);
    mmu.set_p0br(S_BASE + P0_TABLE_PA);
    mmu.set_p0lr(256);
    mmu.set_mapen(true);
}

fn mapped_machine_with(code: &[u8], tier: ExecTier) -> Machine {
    let mut m = machine_with(code, tier);
    enable_identity_maps(&mut m);
    m
}

/// Full observable outcome of a bare kernel-mode run.
#[derive(Debug, PartialEq)]
struct Outcome {
    regs: [u32; 16],
    psl_raw: u32,
    cycles: u64,
    counters: CpuCounters,
}

fn machine_with(code: &[u8], tier: ExecTier) -> Machine {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.set_exec_tier(tier);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m
}

fn run_to_halt(m: &mut Machine) -> Outcome {
    for _ in 0..1_000_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(_) => break,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    assert!(m.halted(), "program must halt");
    Outcome {
        regs: std::array::from_fn(|i| m.reg(i)),
        psl_raw: m.psl().raw(),
        cycles: m.cycles(),
        counters: m.counters(),
    }
}

fn compute_loop(iters: u32) -> Vec<u8> {
    vax_asm::assemble_text(
        &format!(
            "
                movl #{iters}, r2
                clrl r3
            top:
                addl3 #0x01010101, r3, r4
                bicl3 #0x0F0F0F0F, r4, r5
                xorl3 #0x55AA55AA, r5, r3
                addl2 #0x12345678, r3
                sobgtr r2, top
                halt
            "
        ),
        0x1000,
    )
    .unwrap()
    .bytes
}

#[test]
fn compute_loop_is_bit_identical_across_tiers_and_superblocks_run() {
    let code = compute_loop(500);
    let mut interp = machine_with(&code, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);
    assert_eq!(interp.trans_stats().blocks_executed, 0);

    let mut cached = machine_with(&code, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);
    assert_eq!(cached.trans_stats().blocks_executed, 0);

    let mut trans = machine_with(&code, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(ts.blocks_translated > 0, "loop must be translated");
    assert!(
        ts.blocks_executed > 400,
        "most iterations must run translated (got {})",
        ts.blocks_executed
    );
    assert!(ts.uops_executed >= 5 * ts.blocks_executed);
    // The superblock ends at its branch: 5 µops per full block.
    assert!(ts.len_hist[5] > 0, "expected 5-µop superblocks");
}

#[test]
fn smc_overwrite_of_translated_block_invalidates_and_stays_identical() {
    // 60-iteration loop; at iteration 30 it patches its own ADDL2 #3
    // (opcode 0xC0) into SUBL2 (0xC2). The block is long since hot and
    // translated when the store lands on its page.
    let src = "
            movl #60, r2
            clrl r3
        top:
            addl2 #3, r3
            cmpl r2, #30
            bneq skip
            movb #0xC2, @#0x0
        skip:
            sobgtr r2, top
            halt
    ";
    let program = vax_asm::assemble_text(src, 0x1000).unwrap();
    let mut bytes = program.bytes.clone();
    let addl_off = bytes
        .windows(3)
        .position(|w| w == [0xC0, 0x03, 0x53])
        .expect("addl2 #3, r3");
    let movb_off = bytes
        .windows(8)
        .position(|w| w == [0x90, 0x8F, 0xC2, 0x9F, 0x00, 0x00, 0x00, 0x00])
        .expect("movb #C2, @#0");
    let target = (0x1000 + addl_off as u32).to_le_bytes();
    bytes[movb_off + 4..movb_off + 8].copy_from_slice(&target);

    let mut interp = machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);
    // The arithmetic genuinely flipped sign mid-run.
    assert_ne!(oracle.regs[3], 3 * 60);

    let mut trans = machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(
        ts.blocks_translated >= 2,
        "block must be retranslated after the overwrite (translated {})",
        ts.blocks_translated
    );
    assert!(ts.blocks_executed > 0);
    assert!(
        ts.invalidations > 0,
        "the SMC store must invalidate the translation cache"
    );
}

#[test]
fn set_costs_drops_translations_and_stays_identical() {
    let code = compute_loop(200);
    let slow = CostModel {
        base_instruction: 7,
        memory_reference: 3,
        ..CostModel::default()
    };

    let mut interp = machine_with(&code, ExecTier::Interp);
    interp.set_costs(slow);
    let oracle = run_to_halt(&mut interp);

    let mut trans = machine_with(&code, ExecTier::Trans);
    trans.set_costs(slow);
    let got = run_to_halt(&mut trans);
    assert_eq!(
        got, oracle,
        "folded cycle charges must track the cost model"
    );
    assert!(trans.trans_stats().blocks_executed > 0);
}

#[test]
fn tier_api_round_trips_and_cache_alias_works() {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    assert_eq!(m.exec_tier(), ExecTier::Cache);
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        m.set_exec_tier(tier);
        assert_eq!(m.exec_tier(), tier);
    }
    // The legacy toggle aliases the tier selection.
    m.set_decode_cache_enabled(false);
    assert_eq!(m.exec_tier(), ExecTier::Interp);
    assert!(!m.decode_cache_enabled());
    m.set_decode_cache_enabled(true);
    assert_eq!(m.exec_tier(), ExecTier::Cache);
    assert!(m.decode_cache_enabled());
    // Name round-trip for the CLI flag.
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        assert_eq!(ExecTier::from_name(tier.name()), Some(tier));
    }
    assert_eq!(ExecTier::from_name("warp"), None);
}

#[test]
fn mapped_loop_is_bit_identical_and_chains_across_pages() {
    // A hot loop split across two code pages (the `.align 512` forces the
    // tail onto the next page) with a mapped data load, so every
    // iteration exercises the inline TLB fast path for both instruction
    // entry probes and operand references, plus cross-page chain follows.
    let src = "
            movl #400, r2
            clrl r3
        top:
            addl3 #0x01010101, r3, r4
            xorl2 r4, r3
            movl @#0x9000, r5
            brw far
            .align 512
        far:
            addl2 #3, r3
            addl2 r5, r3
            sobgtr r2, back
            halt
        back:
            brw top
    ";
    let bytes = vax_asm::assemble_text(src, 0x1000).unwrap().bytes;
    assert!(bytes.len() > 0x200, "loop must span two pages");

    let mut interp = mapped_machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);
    assert!(
        interp.mmu().tlb().hits() > 0,
        "the mapped oracle must actually translate"
    );

    let mut cached = mapped_machine_with(&bytes, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);

    let mut trans = mapped_machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(
        ts.blocks_executed > 300,
        "most iterations must run translated (got {})",
        ts.blocks_executed
    );
    assert!(
        ts.chain_hits > 300,
        "the page-crossing loop must chain directly (got {})",
        ts.chain_hits
    );
    assert_eq!(ts.side_exit_tlb_miss, 0, "identity map stays resident");
    assert_eq!(ts.side_exit_prot, 0);
}

#[test]
fn tbis_on_linked_successor_page_severs_chain_and_reconverges() {
    // The loop head lives on page 8, the tail on page 9, and the two
    // chain together once hot. At iteration 200 the guest issues
    // TBIS 0x1200, killing the TLB entry and translations for the tail
    // page while the head block (and its successor link) survive. The
    // next follow from the head must discover the stale edge, sever it,
    // and fall back to the interpreter until the tail re-heats.
    let src = "
            movl #400, r2
            clrl r3
        top:
            addl3 #7, r3, r4
            xorl2 r4, r3
            brw far
            .align 512
        far:
            addl2 #3, r3
            cmpl r2, #200
            bneq skip
            mtpr #0x1200, #58
        skip:
            sobgtr r2, back
            halt
        back:
            brw top
    ";
    let bytes = vax_asm::assemble_text(src, 0x1000).unwrap().bytes;
    // `far` must sit exactly at VA 0x1200 — the TBIS operand above.
    assert_eq!(bytes[0x200], 0xC0, "far: addl2 must land at 0x1200");

    let mut interp = mapped_machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);

    let mut cached = mapped_machine_with(&bytes, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);

    let mut trans = mapped_machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(ts.chain_hits > 0, "chain must form before the TBIS");
    assert!(
        ts.chain_links_severed >= 1,
        "TBIS on the successor page must sever the stale link (severed {})",
        ts.chain_links_severed
    );
    assert!(ts.invalidations >= 1);
    assert!(
        ts.blocks_translated > ts.invalidations,
        "the tail page must be retranslated after the TBIS"
    );
}

#[test]
fn mapen_toggles_and_tbia_mid_run_stay_bit_identical() {
    // Under an identity map the same PCs are valid mapped and unmapped,
    // so the guest can flip MAPEN off (iteration 220) and back on
    // (iteration 100), with a TBIA thrown in at iteration 150 while
    // running unmapped. Every toggle bumps the translation generation;
    // superblocks must re-form in each regime and the run must stay
    // bit-identical with the interpreter throughout.
    let src = "
            movl #300, r2
            clrl r3
        top:
            addl3 #0x1111, r3, r4
            xorl2 r4, r3
            cmpl r2, #220
            bneq skip1
            mtpr #0, #56
        skip1:
            cmpl r2, #150
            bneq skip2
            mtpr #0, #57
        skip2:
            cmpl r2, #100
            bneq skip3
            mtpr #1, #56
        skip3:
            sobgtr r2, top
            halt
    ";
    let bytes = vax_asm::assemble_text(src, 0x1000).unwrap().bytes;

    let mut interp = mapped_machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);

    let mut cached = mapped_machine_with(&bytes, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);

    let mut trans = mapped_machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(
        ts.invalidations >= 3,
        "each MAPEN write and the TBIA must invalidate (got {})",
        ts.invalidations
    );
    assert!(
        ts.blocks_executed > 100,
        "superblocks must re-form after every toggle (got {})",
        ts.blocks_executed
    );
}

#[test]
fn mapped_smc_store_mid_chain_side_exits_and_reconverges() {
    // The head block contains a store that rewrites a byte of the tail
    // block's ADDL3 with its own value every iteration — dirty-code
    // tracking is content-insensitive, so once the head is translated
    // each retired store forces an SMC side exit mid-chain and drains
    // the tail page's translations. At iteration 100 a second,
    // conditional store semantically patches that ADDL3 (0xC1) into
    // SUBL3 (0xC3); the interpreter oracle defines the merged behaviour
    // and every tier must re-converge on it bit-identically.
    let src = "
            movl #200, r2
            clrl r3
        top:
            addl2 #3, r3
            movb #0x53, @#0x0
            cmpl r2, #100
            bneq skip
            movb #0xC3, @#0x0
        skip:
            brw far
            .align 512
        far:
            addl3 #5, r3, r5
            addl2 r5, r3
            sobgtr r2, back
            halt
        back:
            brw top
    ";
    let program = vax_asm::assemble_text(src, 0x1000).unwrap();
    let mut bytes = program.bytes.clone();
    let addl3_off = bytes
        .windows(4)
        .position(|w| w == [0xC1, 0x05, 0x53, 0x55])
        .expect("addl3 #5, r3, r5");
    let same_off = bytes
        .windows(8)
        .position(|w| w == [0x90, 0x8F, 0x53, 0x9F, 0x00, 0x00, 0x00, 0x00])
        .expect("movb #0x53, @#0");
    let patch_off = bytes
        .windows(8)
        .position(|w| w == [0x90, 0x8F, 0xC3, 0x9F, 0x00, 0x00, 0x00, 0x00])
        .expect("movb #0xC3, @#0");
    // Same-value store targets the register byte of the tail ADDL3;
    // the semantic patch rewrites its opcode.
    let reg_byte = (0x1000 + addl3_off as u32 + 2).to_le_bytes();
    bytes[same_off + 4..same_off + 8].copy_from_slice(&reg_byte);
    let opcode_byte = (0x1000 + addl3_off as u32).to_le_bytes();
    bytes[patch_off + 4..patch_off + 8].copy_from_slice(&opcode_byte);

    let mut interp = mapped_machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);

    let mut cached = mapped_machine_with(&bytes, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);

    let mut trans = mapped_machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(
        ts.side_exit_smc >= 1,
        "the hot same-value store must force SMC side exits (got {})",
        ts.side_exit_smc
    );
    assert!(ts.invalidations >= 1);
    assert!(ts.blocks_executed > 0);
}
