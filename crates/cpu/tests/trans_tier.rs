//! Integration tests for the translated-superblock execution tier: the
//! three-way bit-identity contract on a hot compute loop, self-modifying
//! code that overwrites a currently translated superblock, cost-model
//! retuning, and the tier-selection API itself.

use vax_arch::{CostModel, MachineVariant, Psl};
use vax_cpu::{CpuCounters, ExecTier, Machine, StepEvent};

/// Full observable outcome of a bare kernel-mode run.
#[derive(Debug, PartialEq)]
struct Outcome {
    regs: [u32; 16],
    psl_raw: u32,
    cycles: u64,
    counters: CpuCounters,
}

fn machine_with(code: &[u8], tier: ExecTier) -> Machine {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.set_exec_tier(tier);
    m.mem_mut().write_slice(0x1000, code).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    m
}

fn run_to_halt(m: &mut Machine) -> Outcome {
    for _ in 0..1_000_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(_) => break,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    assert!(m.halted(), "program must halt");
    Outcome {
        regs: std::array::from_fn(|i| m.reg(i)),
        psl_raw: m.psl().raw(),
        cycles: m.cycles(),
        counters: m.counters(),
    }
}

fn compute_loop(iters: u32) -> Vec<u8> {
    vax_asm::assemble_text(
        &format!(
            "
                movl #{iters}, r2
                clrl r3
            top:
                addl3 #0x01010101, r3, r4
                bicl3 #0x0F0F0F0F, r4, r5
                xorl3 #0x55AA55AA, r5, r3
                addl2 #0x12345678, r3
                sobgtr r2, top
                halt
            "
        ),
        0x1000,
    )
    .unwrap()
    .bytes
}

#[test]
fn compute_loop_is_bit_identical_across_tiers_and_superblocks_run() {
    let code = compute_loop(500);
    let mut interp = machine_with(&code, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);
    assert_eq!(interp.trans_stats().blocks_executed, 0);

    let mut cached = machine_with(&code, ExecTier::Cache);
    assert_eq!(run_to_halt(&mut cached), oracle);
    assert_eq!(cached.trans_stats().blocks_executed, 0);

    let mut trans = machine_with(&code, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(ts.blocks_translated > 0, "loop must be translated");
    assert!(
        ts.blocks_executed > 400,
        "most iterations must run translated (got {})",
        ts.blocks_executed
    );
    assert!(ts.uops_executed >= 5 * ts.blocks_executed);
    // The superblock ends at its branch: 5 µops per full block.
    assert!(ts.len_hist[5] > 0, "expected 5-µop superblocks");
}

#[test]
fn smc_overwrite_of_translated_block_invalidates_and_stays_identical() {
    // 60-iteration loop; at iteration 30 it patches its own ADDL2 #3
    // (opcode 0xC0) into SUBL2 (0xC2). The block is long since hot and
    // translated when the store lands on its page.
    let src = "
            movl #60, r2
            clrl r3
        top:
            addl2 #3, r3
            cmpl r2, #30
            bneq skip
            movb #0xC2, @#0x0
        skip:
            sobgtr r2, top
            halt
    ";
    let program = vax_asm::assemble_text(src, 0x1000).unwrap();
    let mut bytes = program.bytes.clone();
    let addl_off = bytes
        .windows(3)
        .position(|w| w == [0xC0, 0x03, 0x53])
        .expect("addl2 #3, r3");
    let movb_off = bytes
        .windows(8)
        .position(|w| w == [0x90, 0x8F, 0xC2, 0x9F, 0x00, 0x00, 0x00, 0x00])
        .expect("movb #C2, @#0");
    let target = (0x1000 + addl_off as u32).to_le_bytes();
    bytes[movb_off + 4..movb_off + 8].copy_from_slice(&target);

    let mut interp = machine_with(&bytes, ExecTier::Interp);
    let oracle = run_to_halt(&mut interp);
    // The arithmetic genuinely flipped sign mid-run.
    assert_ne!(oracle.regs[3], 3 * 60);

    let mut trans = machine_with(&bytes, ExecTier::Trans);
    assert_eq!(run_to_halt(&mut trans), oracle);
    let ts = trans.trans_stats();
    assert!(
        ts.blocks_translated >= 2,
        "block must be retranslated after the overwrite (translated {})",
        ts.blocks_translated
    );
    assert!(ts.blocks_executed > 0);
    assert!(
        ts.invalidations > 0,
        "the SMC store must invalidate the translation cache"
    );
}

#[test]
fn set_costs_drops_translations_and_stays_identical() {
    let code = compute_loop(200);
    let slow = CostModel {
        base_instruction: 7,
        memory_reference: 3,
        ..CostModel::default()
    };

    let mut interp = machine_with(&code, ExecTier::Interp);
    interp.set_costs(slow);
    let oracle = run_to_halt(&mut interp);

    let mut trans = machine_with(&code, ExecTier::Trans);
    trans.set_costs(slow);
    let got = run_to_halt(&mut trans);
    assert_eq!(
        got, oracle,
        "folded cycle charges must track the cost model"
    );
    assert!(trans.trans_stats().blocks_executed > 0);
}

#[test]
fn tier_api_round_trips_and_cache_alias_works() {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    assert_eq!(m.exec_tier(), ExecTier::Cache);
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        m.set_exec_tier(tier);
        assert_eq!(m.exec_tier(), tier);
    }
    // The legacy toggle aliases the tier selection.
    m.set_decode_cache_enabled(false);
    assert_eq!(m.exec_tier(), ExecTier::Interp);
    assert!(!m.decode_cache_enabled());
    m.set_decode_cache_enabled(true);
    assert_eq!(m.exec_tier(), ExecTier::Cache);
    assert!(m.decode_cache_enabled());
    // Name round-trip for the CLI flag.
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        assert_eq!(ExecTier::from_name(tier.name()), Some(tier));
    }
    assert_eq!(ExecTier::from_name("warp"), None);
}
