//! Semantics of the queue (INSQUE/REMQUE), bit-branch (BBx/BBSS/BBCC),
//! and convert (CVTxx) instructions.

use vax_arch::{MachineVariant, Psl};
use vax_asm::assemble_text;
use vax_cpu::{HaltReason, Machine, StepEvent};

fn run(src: &str) -> Machine {
    let p = assemble_text(src, 0x1000).expect("assembles");
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..100_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => return m,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    panic!("did not halt");
}

#[test]
fn insque_builds_a_queue_and_remque_drains_it() {
    // Queue header at 0x3000 (self-linked = empty); entries at 0x3100,
    // 0x3200.
    let m = run("
        start:
            movl #0x3000, @#0x3000      ; header.flink = header
            movl #0x3000, @#0x3004      ; header.blink = header
            insque @#0x3100, @#0x3000   ; first entry: Z set
            beql first_ok
            halt
        first_ok:
            movl #1, r9
            insque @#0x3200, @#0x3100   ; second, after the first
            ; forward walk: header -> 0x3100 -> 0x3200 -> header
            movl @#0x3000, r2
            movl @#0x3100, r3
            movl @#0x3200, r4
            ; remove the first entry
            remque @#0x3100, r5
            ; now header -> 0x3200 -> header
            movl @#0x3000, r6
            movl @#0x3204, r7           ; 0x3200.blink
            halt
        ");
    assert_eq!(m.reg(9), 1, "Z set on first insertion");
    assert_eq!(m.reg(2), 0x3100, "header.flink");
    assert_eq!(m.reg(3), 0x3200, "first.flink");
    assert_eq!(m.reg(4), 0x3000, "second.flink wraps to header");
    assert_eq!(m.reg(5), 0x3100, "REMQUE returns the removed address");
    assert_eq!(m.reg(6), 0x3200, "header now links to the second entry");
    assert_eq!(m.reg(7), 0x3000, "second.blink is the header");
}

#[test]
fn remque_from_singleton_sets_z() {
    let m = run("
        start:
            movl #0x3000, @#0x3000
            movl #0x3000, @#0x3004
            insque @#0x3100, @#0x3000
            remque @#0x3100, r5
            beql empty
            halt
        empty:
            movl #1, r9
            halt
        ");
    assert_eq!(m.reg(9), 1, "Z: queue empty after removal");
}

#[test]
fn bbs_and_bbc_test_memory_bits() {
    let m = run("
        start:
            movl #0x00010400, @#0x3000  ; bits 10 and 16 set
            clrl r5
            bbs #10, @#0x3000, b10
            halt
        b10:
            bisl2 #1, r5
            bbc #11, @#0x3000, b11
            halt
        b11:
            bisl2 #2, r5
            bbs #16, @#0x3000, b16      ; crosses into byte 2
            halt
        b16:
            bisl2 #4, r5
            halt
        ");
    assert_eq!(m.reg(5), 7);
}

#[test]
fn bbss_and_bbcc_modify_the_bit() {
    let m = run("
        start:
            clrl @#0x3000
            clrl r5
            bbss #3, @#0x3000, was_set  ; clear before: fall through, now set
            bisl2 #1, r5
            bbss #3, @#0x3000, was_set2 ; set now: branch
            halt
        was_set:
            halt
        was_set2:
            bisl2 #2, r5
            bbcc #3, @#0x3000, oops     ; set: falls through and clears
            bisl2 #4, r5
            bbcc #3, @#0x3000, was_clear ; clear now: branches
            halt
        was_clear:
            bisl2 #8, r5
            movl @#0x3000, r6
            halt
        oops:
            halt
        ");
    assert_eq!(m.reg(5), 15);
    assert_eq!(m.reg(6), 0, "bit cleared at the end");
}

#[test]
fn converts_sign_extend_and_detect_overflow() {
    let m = run("
        movl #0x80, r0
        cvtbl r0, r2            ; -128 sign-extended
        movl #0x8000, r0
        cvtwl r0, r3            ; -32768
        movl #200, r0
        cvtlb r0, r4            ; overflows a signed byte: V set
        movpsl r5
        movl #-2, r0
        cvtlw r0, r6
        halt
        ");
    assert_eq!(m.reg(2) as i32, -128);
    assert_eq!(m.reg(3) as i32, -32768);
    assert_eq!(m.reg(4) & 0xff, 200 & 0xff);
    assert_ne!(m.reg(5) & 0b10, 0, "V set by the narrowing overflow");
    assert_eq!(m.reg(6) & 0xffff, 0xFFFE, "-2 as a word");
}

#[test]
fn movzbw_zero_extends_into_word() {
    let m = run("movl #0xFFFFFF85, r0\n movzbw r0, r2\n halt");
    assert_eq!(m.reg(2) & 0xffff, 0x85);
}

#[test]
fn casel_dispatches_through_the_word_table() {
    // CASEL r0, #0, #2 followed by a 3-entry displacement table. The
    // assembler has no expression support, so the displacements are
    // hand-computed: table base is the first word; each case target is
    // `case_n - table`.
    //
    // Layout (base 0x1000):
    //   0x1000: CASEL r0, #0, #2        (4 bytes: CF 50 00 02)
    //   0x1004: .word d0, d1, d2        (6 bytes, table base = 0x1004)
    //   0x100A: fallthrough: movl #99, r5 ; halt
    //   case0 / case1 / case2 follow.
    let src = "
            casel r0, #0, #2
            .word 16, 23, 30            ; case0/1/2 - 0x1004
            movl #99, r5
            halt
        case0:
            movl #10, r5
            halt
        case1:
            movl #11, r5
            halt
        case2:
            movl #12, r5
            halt
        ";
    for (sel, expect) in [(0u32, 10u32), (1, 11), (2, 12), (3, 99), (100, 99)] {
        let (mut p, syms) = vax_asm::assemble_text_with_symbols(src, 0x1000).unwrap();
        assert_eq!(p.bytes[0], 0xCF, "CASEL opcode");
        // Patch the displacement table from the symbol addresses (the
        // text assembler has no expression support).
        let table = 0x1004u32;
        for (i, case) in ["case0", "case1", "case2"].iter().enumerate() {
            let disp = (syms[*case] - table) as u16;
            let off = (table - 0x1000) as usize + 2 * i;
            p.bytes[off..off + 2].copy_from_slice(&disp.to_le_bytes());
        }
        let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
        m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
        let mut psl = Psl::new();
        psl.set_ipl(31);
        m.set_psl(psl);
        m.set_reg(0, sel);
        m.set_reg(14, 0x8000);
        m.set_pc(0x1000);
        for _ in 0..100 {
            match m.step() {
                StepEvent::Ok => {}
                StepEvent::Halted(HaltReason::HaltInstruction) => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(m.reg(5), expect, "selector {sel}");
    }
}
