//! The memory-mapped I/O bus.
//!
//! The VAX's conventional ("typical but not architected", paper §4.4.3)
//! I/O mechanism is control/status registers in a reserved region of
//! physical address space, accessed with ordinary memory instructions. On
//! the bare machine this bus serves the operating system directly; under
//! the VMM it exists only for the *memory-mapped I/O emulation* ablation,
//! because the paper replaces it with a start-I/O `KCALL` for VMs.

use vax_mem::MemFault;

/// First physical address of the I/O space.
pub const IO_BASE_PA: u32 = 0x2000_0000;

/// A device-raised interrupt request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqRequest {
    /// Interrupt priority level (device IPLs are 20–23 on the VAX).
    pub ipl: u8,
    /// SCB vector offset.
    pub vector: u16,
}

/// A device on the memory-mapped bus.
///
/// Registers are longword-wide at longword offsets within the device's
/// window. `tick` advances device time and may complete queued operations.
pub trait MmioDevice {
    /// Reads the CSR at `offset` bytes into the window.
    fn read(&mut self, offset: u32) -> u32;
    /// Writes the CSR at `offset`.
    fn write(&mut self, offset: u32, value: u32);
    /// Advances device time to absolute cycle `now`; returns an interrupt
    /// request if an operation completed.
    fn tick(&mut self, now: u64) -> Option<IrqRequest>;
    /// Resets the device (bus init / IORESET).
    fn reset(&mut self);
}

struct Slot {
    base: u32,
    len: u32,
    // `+ Send` so a whole Machine (and the Monitor above it) can move to
    // a worker thread — the fleet executor shards Monitors across cores.
    device: Box<dyn MmioDevice + Send>,
}

/// The bus: a set of device windows in I/O space.
#[derive(Default)]
pub struct Bus {
    slots: Vec<Slot>,
}

impl Bus {
    /// An empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Attaches a device at `[base, base+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is below [`IO_BASE_PA`] or overlaps an
    /// existing window.
    pub fn attach(&mut self, base: u32, len: u32, device: Box<dyn MmioDevice + Send>) {
        assert!(base >= IO_BASE_PA, "device window below I/O space");
        for s in &self.slots {
            assert!(
                base + len <= s.base || s.base + s.len <= base,
                "device windows overlap"
            );
        }
        self.slots.push(Slot { base, len, device });
    }

    fn slot_for(&mut self, pa: u32) -> Option<(&mut Slot, u32)> {
        self.slots
            .iter_mut()
            .find(|s| pa >= s.base && pa < s.base + s.len)
            .map(|s| {
                let off = pa - s.base;
                (s, off)
            })
    }

    /// Reads a CSR.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if no device claims `pa`.
    pub fn read(&mut self, pa: u32) -> Result<u32, MemFault> {
        match self.slot_for(pa) {
            Some((s, off)) => Ok(s.device.read(off)),
            None => Err(MemFault::NonExistent { pa }),
        }
    }

    /// Writes a CSR.
    ///
    /// # Errors
    ///
    /// [`MemFault::NonExistent`] if no device claims `pa`.
    pub fn write(&mut self, pa: u32, value: u32) -> Result<(), MemFault> {
        match self.slot_for(pa) {
            Some((s, off)) => {
                s.device.write(off, value);
                Ok(())
            }
            None => Err(MemFault::NonExistent { pa }),
        }
    }

    /// Ticks every device; returns any raised interrupt requests.
    pub fn tick(&mut self, now: u64) -> Vec<IrqRequest> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Ticks every device, appending raised interrupt requests (deduped
    /// against existing entries) to `out`. Allocation-free when nothing
    /// fires — this runs once per instruction step.
    pub fn tick_into(&mut self, now: u64, out: &mut Vec<IrqRequest>) {
        for s in &mut self.slots {
            if let Some(irq) = s.device.tick(now) {
                if !out.contains(&irq) {
                    out.push(irq);
                }
            }
        }
    }

    /// Resets every device.
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            s.device.reset();
        }
    }

    /// Number of attached devices.
    pub fn device_count(&self) -> usize {
        self.slots.len()
    }
}

impl core::fmt::Debug for Bus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Bus")
            .field("devices", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Scratch {
        regs: [u32; 4],
        ticked: u64,
    }

    impl MmioDevice for Scratch {
        fn read(&mut self, offset: u32) -> u32 {
            self.regs[(offset / 4) as usize]
        }
        fn write(&mut self, offset: u32, value: u32) {
            self.regs[(offset / 4) as usize] = value;
        }
        fn tick(&mut self, now: u64) -> Option<IrqRequest> {
            self.ticked = now;
            None
        }
        fn reset(&mut self) {
            self.regs = [0; 4];
        }
    }

    #[test]
    fn routing_and_unclaimed_addresses() {
        let mut bus = Bus::new();
        bus.attach(IO_BASE_PA, 16, Box::new(Scratch::default()));
        bus.write(IO_BASE_PA + 4, 99).unwrap();
        assert_eq!(bus.read(IO_BASE_PA + 4).unwrap(), 99);
        assert!(matches!(
            bus.read(IO_BASE_PA + 16),
            Err(MemFault::NonExistent { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_windows_rejected() {
        let mut bus = Bus::new();
        bus.attach(IO_BASE_PA, 16, Box::new(Scratch::default()));
        bus.attach(IO_BASE_PA + 8, 16, Box::new(Scratch::default()));
    }

    #[test]
    fn reset_propagates() {
        let mut bus = Bus::new();
        bus.attach(IO_BASE_PA, 16, Box::new(Scratch::default()));
        bus.write(IO_BASE_PA, 1).unwrap();
        bus.reset();
        assert_eq!(bus.read(IO_BASE_PA).unwrap(), 0);
    }
}
