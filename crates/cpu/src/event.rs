//! Step events and the VM-emulation trap packet.

use vax_arch::{Exception, Opcode, Psl, VirtAddr};

/// Where a decoded operand lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandLoc {
    /// A general register.
    Reg(u8),
    /// A virtual-memory location.
    Mem(VirtAddr),
}

/// One decoded operand as supplied to the VMM in a VM-emulation trap.
///
/// Per paper §4.2, the microcode parses all instruction operands before
/// invoking the VMM, so "the VMM need not engage in any probing of the
/// instruction stream or parsing of instruction operands".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandValue {
    /// A read operand: the fetched value.
    Value(u32),
    /// A write or modify operand: where the result goes (and for modify,
    /// the current value).
    Location {
        /// The destination.
        loc: OperandLoc,
        /// Current value for modify-access operands.
        value: Option<u32>,
    },
    /// An address operand: the computed effective address.
    Address(VirtAddr),
}

impl OperandValue {
    /// The operand's value, if it carries one.
    pub fn value(&self) -> Option<u32> {
        match self {
            OperandValue::Value(v) => Some(*v),
            OperandValue::Location { value, .. } => *value,
            OperandValue::Address(a) => Some(a.raw()),
        }
    }
}

/// The decoded-instruction packet delivered with a VM-emulation trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmTrapInfo {
    /// The sensitive instruction.
    pub opcode: Opcode,
    /// Address of the instruction (PC has *not* been advanced).
    pub pc: u32,
    /// Address of the next instruction (for the VMM to resume at after
    /// emulation).
    pub next_pc: u32,
    /// The VM's full PSL at trap time (merged from the real PSL and
    /// VMPSL — "note: not just VMPSL", paper §4.2).
    pub vm_psl: Psl,
    /// Decoded operands in instruction order.
    pub operands: Vec<OperandValue>,
    /// Register side effects of operand decode (autoincrement /
    /// autodecrement), to be applied by the VMM iff it emulates the
    /// instruction: `(register, new value)`.
    pub reg_side_effects: Vec<(u8, u32)>,
}

/// Why execution left VM mode and entered the VMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmExit {
    /// A sensitive instruction trapped for emulation, with its decoded
    /// packet (the paper's VM-emulation trap). Boxed so the common
    /// [`StepEvent::Ok`] stays pointer-sized: `step` returns an event
    /// per instruction, and an inline packet would put ~70 bytes of
    /// dead weight on that hot path.
    Emulation(Box<VmTrapInfo>),
    /// An exception that the VMM must handle (shadow fill, modify fault)
    /// or reflect into the VM.
    Exception(Exception),
    /// A real-machine interrupt (interval timer or device) at the given
    /// IPL, through the given SCB vector offset.
    Interrupt {
        /// Interrupt priority level of the source.
        ipl: u8,
        /// Real SCB vector offset.
        vector: u16,
    },
}

/// The outcome of one [`Machine::step`](crate::Machine::step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction retired (or an exception was delivered to the
    /// on-machine operating system through the SCB).
    Ok,
    /// The processor halted (HALT in kernel mode, or an unrecoverable
    /// double fault).
    Halted(HaltReason),
    /// Control left a virtual machine; the embedding VMM must act.
    /// `PSL<VM>` has been cleared, exactly as the microcode specifies.
    VmExit(VmExit),
}

/// Why the processor halted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// HALT instruction in kernel mode.
    HaltInstruction,
    /// Exception delivery failed (e.g. bad SCB or kernel stack).
    DoubleFault,
}

impl core::fmt::Display for HaltReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HaltReason::HaltInstruction => f.write_str("HALT instruction"),
            HaltReason::DoubleFault => f.write_str("double fault"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_value_accessor() {
        assert_eq!(OperandValue::Value(7).value(), Some(7));
        assert_eq!(
            OperandValue::Location {
                loc: OperandLoc::Reg(3),
                value: None
            }
            .value(),
            None
        );
        assert_eq!(
            OperandValue::Address(VirtAddr::new(0x44)).value(),
            Some(0x44)
        );
    }

    #[test]
    fn halt_reason_display() {
        assert!(!HaltReason::HaltInstruction.to_string().is_empty());
        assert!(!HaltReason::DoubleFault.to_string().is_empty());
    }
}
