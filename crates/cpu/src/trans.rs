//! The superblock translation execution tier.
//!
//! Hot straight-line guest code — discovered by the execution counter the
//! decode cache keeps per entry — is chained into **superblocks**: runs of
//! lowered µops ([`crate::uop`]) starting at a hot PC and ending at the
//! first branch, sensitive/untranslatable instruction, page boundary, or
//! [`MAX_BLOCK_UOPS`]. Executing a block is a tight match-dispatch loop
//! with no per-instruction decode, operand re-materialization, or event
//! plumbing — while retiring each µop with the same register file, PSL,
//! cycle charge, counters, trace-ring pushes, and timer/bus ticks as the
//! interpreter, bit for bit. The interpreter remains the oracle.
//!
//! # Gating and the side-exit protocol
//!
//! Translation only runs with memory mapping off, outside VM mode, and
//! with `PSL<IV>` clear (so no translated arithmetic can trap on integer
//! overflow); everything else — including every EmulatedMmio path, which
//! lives in mapped or IO space — takes the interpreter. Inside a block,
//! each µop either retires completely or bails **before mutating any
//! state** (the only runtime bail is divide-by-zero), so a side exit
//! simply stops the loop and lets the interpreter re-execute the
//! instruction, raising the architecturally correct fault with the
//! correct charges. A deliverable interrupt ends the block after the
//! current µop retires; the next `step()` delivers it exactly as the
//! interpreter would have.
//!
//! # Invalidation edges
//!
//! Blocks are keyed by entry physical address (== virtual, mapping off)
//! and die on every edge that kills decode-cache entries: self-modifying
//! code (dirty code-page drain at block entry — device ticks cannot touch
//! memory, so nothing can rewrite a page mid-block), TBIA/TBIS, MAPEN and
//! page-table base writes, LDPCTX, snapshot import, memory replacement,
//! and cost-model changes (cycle charges are folded into µops at
//! translate time).

use crate::bus::IO_BASE_PA;
use crate::decode::mask_width;
use crate::event::StepEvent;
use crate::exec::{ash, sign_extend};
use crate::icache::parse_template;
use crate::machine::Machine;
use crate::uop::{lower, AluOp, MovXf, Uop, UopKind, MAX_BLOCK_UOPS};
use vax_arch::{Psl, PAGE_BYTES, PAGE_SHIFT};

/// Translation-cache slot count; a power of two with at least one page of
/// slots (so per-page invalidation scans a contiguous range).
const TSLOTS: usize = 4096;

/// Decode-cache hits at one PC before a superblock forms there.
const HOT_THRESHOLD: u32 = 16;

/// Translation-tier statistics (diagnostic only — like
/// [`DecodeCacheStats`](crate::DecodeCacheStats), deliberately not part of
/// the architectural [`CpuCounters`](crate::CpuCounters), which are
/// bit-identical across execution tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransStats {
    /// Superblocks formed (re-translations after invalidation included).
    pub blocks_translated: u64,
    /// Block executions that retired at least one µop.
    pub blocks_executed: u64,
    /// µops (== guest instructions) retired by the translated tier.
    pub uops_executed: u64,
    /// Blocks cut short because an interrupt became deliverable mid-block.
    pub side_exit_interrupt: u64,
    /// µops that bailed to the interpreter pre-mutation (divide-by-zero).
    pub side_exit_bail: u64,
    /// Invalidation events (whole-cache and per-page combined).
    pub invalidations: u64,
    /// Histogram of superblock lengths at translate time, indexed by µop
    /// count (index 0 unused; blocks have at least one µop).
    pub len_hist: [u64; MAX_BLOCK_UOPS + 1],
}

impl Default for TransStats {
    fn default() -> TransStats {
        TransStats {
            blocks_translated: 0,
            blocks_executed: 0,
            uops_executed: 0,
            side_exit_interrupt: 0,
            side_exit_bail: 0,
            invalidations: 0,
            len_hist: [0; MAX_BLOCK_UOPS + 1],
        }
    }
}

#[derive(Debug, Clone)]
struct TransEntry {
    pa: u32,
    gen: u32,
    block: Box<[Uop]>,
}

/// Per-superblock introspection record — one row of the ranked hot-block
/// table. Only maintained while the machine is profiling (the cache's
/// profile map is empty otherwise, so the bookkeeping is free when off);
/// rows are cumulative per entry PA and survive invalidation and
/// retranslation so churn is visible in `translations`/`invalidations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperblockProfile {
    /// Entry physical address of the block.
    pub entry_pa: u32,
    /// µop count at the most recent translation.
    pub len: u16,
    /// Decode-cache heat at the most recent translation.
    pub heat: u32,
    /// Times this PA was (re)translated while profiling.
    pub translations: u64,
    /// Block executions that retired at least one µop.
    pub executions: u64,
    /// µops (== guest instructions) retired by this block.
    pub uops_retired: u64,
    /// Simulated cycles retired by this block.
    pub cycles_retired: u64,
    /// Executions cut short by a deliverable interrupt mid-block.
    pub side_exit_interrupt: u64,
    /// Executions that bailed to the interpreter pre-mutation.
    pub side_exit_bail: u64,
    /// Invalidations that killed this block (whole-cache or its page).
    pub invalidations: u64,
}

/// Cap on tracked per-superblock profiles; a run hot in more distinct
/// entry PAs than this keeps stats for the first [`SB_PROFILE_CAP`] and
/// counts the rest in [`TransStats::blocks_translated`] only.
const SB_PROFILE_CAP: usize = 8192;

/// Direct-mapped cache of translated superblocks keyed by entry physical
/// address. An **empty** block is a negative marker: the PC is hot but its
/// first instruction does not lower, so the tier stops re-walking it.
#[derive(Debug)]
pub(crate) struct TransCache {
    slots: Box<[Option<TransEntry>; TSLOTS]>,
    /// Generation counter: bumping it is an O(1) `invalidate_all`.
    gen: u32,
    stats: TransStats,
    /// Per-superblock profiles keyed by entry PA; empty unless the
    /// machine is profiling.
    profiles: std::collections::HashMap<u32, SuperblockProfile>,
}

impl TransCache {
    pub fn new() -> TransCache {
        TransCache {
            slots: vec![None; TSLOTS]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!()),
            gen: 0,
            stats: TransStats::default(),
            profiles: std::collections::HashMap::new(),
        }
    }

    #[inline]
    fn slot(pa: u32) -> usize {
        pa as usize & (TSLOTS - 1)
    }

    /// Removes and returns the block keyed at `pa`, if current. Taking
    /// (rather than borrowing) lets the machine execute the block while
    /// mutating itself; nothing during block execution can invalidate it
    /// (device ticks have no memory access), so restoring afterwards is
    /// sound.
    #[inline]
    fn take(&mut self, pa: u32) -> Option<Box<[Uop]>> {
        let idx = Self::slot(pa);
        match self.slots[idx] {
            Some(ref e) if e.pa == pa && e.gen == self.gen => {
                self.slots[idx].take().map(|e| e.block)
            }
            _ => None,
        }
    }

    /// Puts a block (back) in the cache under the current generation.
    fn insert(&mut self, pa: u32, block: Box<[Uop]>) {
        self.slots[Self::slot(pa)] = Some(TransEntry {
            pa,
            gen: self.gen,
            block,
        });
    }

    /// Invalidates every block (TBIA, MAPEN/base-register writes, LDPCTX,
    /// tier switches, cost-model changes, snapshot import).
    pub fn invalidate_all(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        self.stats.invalidations += 1;
        if self.gen == 0 {
            self.slots.fill(None);
        }
        // Free when not profiling (empty map).
        for p in self.profiles.values_mut() {
            p.invalidations += 1;
        }
    }

    /// Invalidates all blocks whose entry lies in physical page `pfn`
    /// (self-modifying code, TBIS). Blocks never span a page, so the
    /// entry's page covers every instruction in the block.
    pub fn invalidate_page(&mut self, pfn: u32) {
        let first = Self::slot(pfn << PAGE_SHIFT);
        for idx in first..first + PAGE_BYTES as usize {
            if let Some(e) = &self.slots[idx] {
                if e.pa >> PAGE_SHIFT == pfn {
                    self.slots[idx] = None;
                }
            }
        }
        self.stats.invalidations += 1;
        for p in self.profiles.values_mut() {
            if p.entry_pa >> PAGE_SHIFT == pfn {
                p.invalidations += 1;
            }
        }
    }

    pub fn stats(&self) -> TransStats {
        self.stats
    }

    // ---- per-superblock profiling (populated only while profiling) ----

    /// Records a (re)translation at `pa` into its profile row.
    pub(crate) fn note_translate(&mut self, pa: u32, len: u16, heat: u32) {
        if self.profiles.len() >= SB_PROFILE_CAP && !self.profiles.contains_key(&pa) {
            return;
        }
        let p = self.profiles.entry(pa).or_default();
        p.entry_pa = pa;
        p.len = len;
        p.heat = heat;
        p.translations += 1;
    }

    /// Records one block execution at `pa` into its profile row.
    pub(crate) fn note_block_exec(
        &mut self,
        pa: u32,
        uops: u64,
        cycles: u64,
        bailed: bool,
        interrupted: bool,
    ) {
        // Entry may be absent past the cap, or when profiling was enabled
        // after the block was translated — count it then, heat/len 0.
        if self.profiles.len() >= SB_PROFILE_CAP && !self.profiles.contains_key(&pa) {
            return;
        }
        let p = self.profiles.entry(pa).or_default();
        p.entry_pa = pa;
        p.executions += 1;
        p.uops_retired += uops;
        p.cycles_retired += cycles;
        if bailed {
            p.side_exit_bail += 1;
        }
        if interrupted {
            p.side_exit_interrupt += 1;
        }
    }

    /// The hot-block table: every tracked profile ranked by cycles
    /// retired (descending), ties broken by entry PA for determinism.
    pub fn profiles(&self) -> Vec<SuperblockProfile> {
        let mut out: Vec<SuperblockProfile> = self.profiles.values().copied().collect();
        out.sort_by(|a, b| {
            b.cycles_retired
                .cmp(&a.cycles_retired)
                .then(a.entry_pa.cmp(&b.entry_pa))
        });
        out
    }

    /// Drops all per-superblock profiles (profiling toggled).
    pub(crate) fn clear_profiles(&mut self) {
        self.profiles.clear();
    }
}

impl Machine {
    /// Attempts one translated-tier step at the current PC.
    ///
    /// `None` means "this step is the interpreter's" — the tier is gated
    /// off, the PC has no (non-empty) block yet, or the block's first µop
    /// bailed. In every `None` case **nothing was mutated**, so the caller
    /// falls through to the ordinary interpreter path. `Some(ev)` means at
    /// least one instruction retired exactly as the interpreter would have
    /// retired it.
    pub(crate) fn step_translated(&mut self) -> Option<StepEvent> {
        // Gate: mapping on (VA != PA, faults possible mid-operand), VM
        // mode (sensitive-op dispatch), or PSL<IV> set (translated
        // arithmetic could trap on overflow) all fall back to the
        // interpreter. EmulatedMmio/device paths live behind mapping or
        // IO-space fetches, which the gates below also exclude.
        if self.mmu.mapen() || self.psl.vm() || self.psl.flag(Psl::IV) {
            return None;
        }
        // Honor self-modifying-code notifications before trusting any
        // block, mirroring the decode cache's drain.
        self.drain_dirty_code();
        let entry = self.regs[15];
        if entry >= IO_BASE_PA {
            return None;
        }
        let Some(block) = self.trans.take(entry) else {
            self.maybe_translate(entry);
            return None;
        };
        if block.is_empty() {
            // Negative marker: hot but untranslatable first instruction.
            self.trans.insert(entry, block);
            return None;
        }
        let mut executed = 0u64;
        let cycles_at_entry = self.cycles;
        let mut bailed = false;
        let mut interrupted = false;
        for (i, u) in block.iter().enumerate() {
            let cur_pc = self.regs[15];
            if !self.exec_uop(u) {
                // Pre-mutation bail: the interpreter re-executes this
                // instruction and raises the fault with correct charges.
                self.trans.stats.side_exit_bail += 1;
                bailed = true;
                break;
            }
            // Retire exactly as `Machine::step` + `execute_one` would:
            // trace push of the instruction's PC, instruction counter,
            // the folded cycle charge, then timer/TODR/bus ticks.
            self.trace_push(cur_pc);
            executed += 1;
            self.counters.instructions += 1;
            self.cycles += u.cyc;
            let deliverable = self.post_instruction_tick(u.cyc.max(1));
            self.prof_retire(vax_obs::ProfTier::Trans, cur_pc);
            if deliverable {
                // A deliverable interrupt ends the block; the next step()
                // delivers it, exactly as under the interpreter.
                if i + 1 < block.len() {
                    self.trans.stats.side_exit_interrupt += 1;
                    interrupted = true;
                }
                break;
            }
        }
        if executed > 0 {
            self.trans.stats.blocks_executed += 1;
            self.trans.stats.uops_executed += executed;
            if self.prof.is_on() {
                self.trans.note_block_exec(
                    entry,
                    executed,
                    self.cycles - cycles_at_entry,
                    bailed,
                    interrupted,
                );
            }
        }
        self.trans.insert(entry, block);
        (executed > 0).then_some(StepEvent::Ok)
    }

    /// Forms a superblock at `entry` once the decode cache reports it hot.
    /// Walks forward lowering templates until a block-ending µop (branch),
    /// an untranslatable instruction, the page boundary, or the length
    /// cap. Always inserts the result — an empty block is the negative
    /// marker that stops re-walking a hot-but-untranslatable PC.
    fn maybe_translate(&mut self, entry: u32) {
        if self.icache.heat(entry) < HOT_THRESHOLD {
            return;
        }
        let page = entry >> PAGE_SHIFT;
        let mut uops: Vec<Uop> = Vec::with_capacity(8);
        let mut pa = entry;
        while uops.len() < MAX_BLOCK_UOPS && pa >> PAGE_SHIFT == page {
            let Some(tpl) = self.template_at(pa) else {
                break;
            };
            let Some(u) = lower(&tpl, pa, &self.costs) else {
                break;
            };
            let ends = u.ends_block();
            pa = u.next_pc;
            uops.push(u);
            if ends {
                break;
            }
        }
        if !uops.is_empty() {
            // Register the page for self-modifying-code tracking, exactly
            // as the decode cache does for its own entries.
            self.mem.note_code_page(page);
            self.trans.stats.blocks_translated += 1;
            self.trans.stats.len_hist[uops.len().min(MAX_BLOCK_UOPS)] += 1;
            if self.prof.is_on() {
                let heat = self.icache.heat(entry);
                self.trans.note_translate(entry, uops.len() as u16, heat);
                self.prof_event(vax_obs::ProfEventKind::Translate, entry, uops.len() as u32);
            }
        }
        self.trans.insert(entry, uops.into_boxed_slice());
    }

    /// The baked template at `pa`: served from the decode cache when
    /// present, else parsed fresh (without inserting, so decode-cache
    /// statistics stay a faithful record of the decode path).
    fn template_at(&mut self, pa: u32) -> Option<crate::icache::InstTemplate> {
        if let Some(t) = self.icache.peek(pa) {
            return Some(*t);
        }
        let mut t = self.mem.page_tail(pa).and_then(parse_template)?;
        t.bake(pa);
        Some(t)
    }

    /// Writes register `r` at width `w`, merging into the old value below
    /// a longword — the register half of [`Machine::write_loc`].
    #[inline]
    fn write_reg_w(&mut self, r: u8, value: u32, w: u8) {
        let old = self.regs[r as usize];
        self.regs[r as usize] = match w {
            1 => (old & !0xff) | (value & 0xff),
            2 => (old & !0xffff) | (value & 0xffff),
            _ => value,
        };
    }

    /// Executes one µop. Returns `false` — with **no state mutated** — to
    /// bail to the interpreter (divide by zero, the only runtime bail;
    /// overflow traps are excluded by the PSL<IV> gate). Each arm retires
    /// bit-identically to the interpreter over the same instruction:
    /// destination write, PC update, then condition codes.
    fn exec_uop(&mut self, u: &Uop) -> bool {
        match u.kind {
            UopKind::Nop => {
                self.regs[15] = u.next_pc;
            }
            UopKind::Mov { src, dst, w, xf } => {
                let s = src.val(&self.regs);
                let value = match xf {
                    MovXf::Id => s,
                    MovXf::Com => !s,
                    MovXf::SextB => s as u8 as i8 as i32 as u32,
                    MovXf::SextW => s as u16 as i16 as i32 as u32,
                };
                self.write_reg_w(dst, value, w);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(value, w as u32);
            }
            UopKind::CvtNarrow {
                src,
                dst,
                w,
                from_w,
            } => {
                let s = src.val(&self.regs);
                let overflow = match (from_w, w) {
                    (4, 1) => i8::try_from(s as i32).is_err(),
                    (2, 1) => i8::try_from(s as u16 as i16 as i32).is_err(),
                    _ => i16::try_from(s as i32).is_err(),
                };
                self.write_reg_w(dst, s, w);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(s, w as u32);
                if overflow {
                    self.psl.set_flag(Psl::V, true);
                }
            }
            UopKind::Mneg { src, dst } => {
                let s = src.val(&self.regs);
                let value = 0u32.wrapping_sub(s);
                self.write_reg_w(dst, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc(
                    (value as i32) < 0,
                    value == 0,
                    s == 0x8000_0000,
                    s != 0, // borrow out of 0 - src
                );
            }
            UopKind::Clr { dst, w } => {
                self.write_reg_w(dst, 0, w);
                self.regs[15] = u.next_pc;
                self.psl.set_flag(Psl::N, false);
                self.psl.set_flag(Psl::Z, true);
                self.psl.set_flag(Psl::V, false);
            }
            UopKind::Tst { src, w } => {
                let v = src.val(&self.regs);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(v, w as u32);
                self.psl.set_flag(Psl::C, false);
            }
            UopKind::Cmp { a, b, w } => {
                let (av, bv) = (a.val(&self.regs), b.val(&self.regs));
                let w = w as u32;
                let (sa, sb) = (sign_extend(av, w), sign_extend(bv, w));
                let (ua, ub) = (mask_width(av, w), mask_width(bv, w));
                self.regs[15] = u.next_pc;
                self.set_nzvc(sa < sb, sa == sb, false, ua < ub);
            }
            UopKind::Bit { a, b } => {
                let r = a.val(&self.regs) & b.val(&self.regs);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(r, 4);
            }
            UopKind::Alu { op, a, b, dst } => {
                let av = a.val(&self.regs);
                let bv = b.val(&self.regs);
                let (value, vflag, cflag) = match op {
                    AluOp::Add => {
                        let r = bv.wrapping_add(av);
                        (r, ((av ^ r) & (bv ^ r)) >> 31 != 0, r < av)
                    }
                    AluOp::Sub => {
                        let r = bv.wrapping_sub(av);
                        (r, ((bv ^ av) & (bv ^ r)) >> 31 != 0, bv < av)
                    }
                    AluOp::Mul => {
                        let wide = (av as i32 as i64) * (bv as i32 as i64);
                        let r = wide as u32;
                        (r, wide != r as i32 as i64, false)
                    }
                    AluOp::Div => {
                        if av == 0 {
                            return false; // bail: interpreter raises the fault
                        }
                        if bv == 0x8000_0000 && av == 0xffff_ffff {
                            (bv, true, false) // overflow: dividend, V set
                        } else {
                            (((bv as i32) / (av as i32)) as u32, false, false)
                        }
                    }
                    AluOp::Bis => (av | bv, false, self.psl.flag(Psl::C)),
                    AluOp::Bic => (!av & bv, false, self.psl.flag(Psl::C)),
                    AluOp::Xor => (av ^ bv, false, self.psl.flag(Psl::C)),
                };
                self.write_reg_w(dst, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc(value & 0x8000_0000 != 0, value == 0, vflag, cflag);
            }
            UopKind::IncDec { r, byte, dec } => {
                let w: u32 = if byte { 1 } else { 4 };
                let b = mask_width(self.regs[r as usize], w);
                let (value, vflag, cflag) = if dec {
                    let res = b.wrapping_sub(1);
                    (res, ((b ^ 1) & (b ^ res)) >> 31 != 0, b < 1)
                } else {
                    let res = b.wrapping_add(1);
                    (res, ((1 ^ res) & (b ^ res)) >> 31 != 0, res < 1)
                };
                // Byte-width condition codes use the byte result.
                let (value, vflag, cflag) = if byte {
                    let m = mask_width(value, 1);
                    let v = if dec { b == 0x80 } else { b == 0x7f };
                    let c = if dec { b == 0 } else { m == 0 };
                    (m, v, c)
                } else {
                    (value, vflag, cflag)
                };
                self.write_reg_w(r, value, w as u8);
                self.regs[15] = u.next_pc;
                let m = mask_width(value, w);
                let sign = if byte {
                    m & 0x80 != 0
                } else {
                    m & 0x8000_0000 != 0
                };
                self.set_nzvc(sign, m == 0, vflag, cflag);
            }
            UopKind::Ashl { cnt, src, dst } => {
                let c = cnt.val(&self.regs) as u8 as i8;
                let (value, overflow) = ash(src.val(&self.regs), c);
                self.write_reg_w(dst, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc((value as i32) < 0, value == 0, overflow, false);
            }
            UopKind::Movpsl { dst } => {
                // The movpsl cycle charge is folded into `u.cyc`; the
                // counter retires here. VM mode never reaches this tier,
                // so the visible PSL is the right source.
                self.counters.movpsl += 1;
                let value = self.psl.raw_visible();
                self.write_reg_w(dst, value, 4);
                self.regs[15] = u.next_pc;
            }
            UopKind::Br { target } => {
                self.regs[15] = target;
            }
            UopKind::BCond { cond, target } => {
                let take = self.condition(cond);
                self.regs[15] = if take { target } else { u.next_pc };
            }
            UopKind::Blb { src, set, target } => {
                let v = src.val(&self.regs);
                let take = (v & 1 == 1) == set;
                self.regs[15] = if take { target } else { u.next_pc };
            }
            UopKind::Sob { r, gtr, target } => {
                let old = self.regs[r as usize];
                let new = old.wrapping_sub(1);
                self.regs[r as usize] = new;
                let take = if gtr {
                    (new as i32) > 0
                } else {
                    (new as i32) >= 0
                };
                self.regs[15] = if take { target } else { u.next_pc };
                let v = old == 0x8000_0000;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
            }
            UopKind::Aob {
                limit,
                r,
                lss,
                target,
            } => {
                let lim = limit.val(&self.regs) as i32;
                let old = self.regs[r as usize];
                let new = old.wrapping_add(1);
                self.regs[r as usize] = new;
                let take = if lss {
                    (new as i32) < lim
                } else {
                    (new as i32) <= lim
                };
                self.regs[15] = if take { target } else { u.next_pc };
                let v = old == 0x7fff_ffff;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::CostModel;

    fn block_of(n: usize) -> Box<[Uop]> {
        let c = CostModel::default();
        vec![
            Uop {
                kind: UopKind::Nop,
                cyc: c.base_instruction,
                next_pc: 0,
            };
            n
        ]
        .into_boxed_slice()
    }

    #[test]
    fn take_restore_round_trip() {
        let mut t = TransCache::new();
        assert!(t.take(0x1000).is_none());
        t.insert(0x1000, block_of(3));
        let b = t.take(0x1000).expect("present");
        assert_eq!(b.len(), 3);
        assert!(t.take(0x1000).is_none(), "take removes");
        t.insert(0x1000, b);
        assert!(t.take(0x1000).is_some());
    }

    #[test]
    fn invalidate_all_is_generational() {
        let mut t = TransCache::new();
        t.insert(0x1000, block_of(1));
        t.invalidate_all();
        assert!(t.take(0x1000).is_none());
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn page_invalidation_is_targeted() {
        let mut t = TransCache::new();
        t.insert(0x1000, block_of(1)); // pfn 8
        t.insert(0x1200, block_of(2)); // pfn 9
        t.invalidate_page(8);
        assert!(t.take(0x1000).is_none());
        assert_eq!(t.take(0x1200).map(|b| b.len()), Some(2));
    }

    #[test]
    fn slot_aliasing_misses() {
        let mut t = TransCache::new();
        t.insert(0x1000, block_of(1));
        assert!(t.take(0x1000 + TSLOTS as u32).is_none());
        // The aliasing take above evicted nothing.
        assert!(t.take(0x1000).is_some());
    }
}
