//! The superblock translation execution tier.
//!
//! Hot straight-line guest code — discovered by the execution counter the
//! decode cache keeps per entry — is chained into **superblocks**: runs of
//! lowered µops ([`crate::uop`]) starting at a hot PC and ending at the
//! first branch, sensitive/untranslatable instruction, page boundary, or
//! [`MAX_BLOCK_UOPS`]. Executing a block is a tight match-dispatch loop
//! with no per-instruction decode, operand re-materialization, or event
//! plumbing — while retiring each µop with the same register file, PSL,
//! cycle charge, counters, trace-ring pushes, and timer/bus ticks as the
//! interpreter, bit for bit. The interpreter remains the oracle.
//!
//! # Mapped guests and the inline TLB fast path
//!
//! With memory mapping on, blocks are keyed by **(entry PA, entry VA,
//! generation)**: the PA identifies the code bytes (and the page whose
//! rewrite invalidates them), the VA fixes the branch targets and
//! PC-relative bases folded in at translate time, and the generation dies
//! on every mapping-visible event. A block only starts (or is chained
//! into) when the software TLB already holds an executable translation of
//! its code page — probed counter-free — and every memory-touching µop
//! consults the TLB inline: a hit with sufficient protection (and the
//! modify bit already set, for writes) yields the data PA directly; a
//! miss, protection mismatch, clear modify bit, page-crossing access, or
//! IO-space target bails to the interpreter **before any mutation**, so
//! faults, PTE machinery, and access checks stay bit-identical to the
//! interpreter oracle. The fast path never inserts or evicts TLB entries,
//! so TLB state is frozen across a block; each retiring µop replays
//! exactly the hit counts the interpreter would have recorded (its
//! i-stream fetch events plus one per data read/write).
//!
//! # Direct superblock chaining
//!
//! When a block's terminal branch lands on another translated block's
//! entry, the dispatch loop follows the edge directly — revalidating only
//! the entry protocol (code-page TLB probe + generation-checked cache
//! hit) instead of returning to `step()`'s full gate — and records a
//! successor link on the predecessor. Links are bookkeeping, not trusted
//! pointers: every follow revalidates, and a recorded link found dead
//! (page invalidated by TBIS or self-modifying code) is severed and
//! counted. At most [`MAX_CHAIN_FOLLOWS`] edges are followed per `step()`
//! so callers keep their step-granularity guarantees; interrupt delivery
//! is checked after every µop regardless.
//!
//! # Gating and the side-exit protocol
//!
//! Translation runs outside VM mode and with `PSL<IV>` clear (so no
//! translated arithmetic can trap on integer overflow); EmulatedMmio
//! paths live in IO space, which both the entry probe and the data fast
//! path exclude. Inside a block, each µop either retires completely or
//! bails **before mutating any state**, so a side exit simply stops the
//! loop and lets the interpreter re-execute the instruction, raising the
//! architecturally correct fault with the correct charges. A deliverable
//! interrupt ends the block after the current µop retires; a retired
//! store that dirtied a tracked code page ends the block (and chain)
//! before the next µop can run from stale bytes.
//!
//! # Invalidation edges
//!
//! Blocks die on every edge that kills decode-cache entries:
//! self-modifying code (dirty code-page drain at step entry plus the
//! mid-block store check above), TBIA/TBIS, MAPEN and page-table base
//! writes, LDPCTX, snapshot import, memory replacement, and cost-model
//! changes (cycle charges are folded into µops at translate time).
//! Whole-cache invalidation is a generation bump that implicitly kills
//! every successor link; per-page invalidation leaves stale links to be
//! discovered, severed, and counted at the next follow.

use crate::bus::IO_BASE_PA;
use crate::decode::mask_width;
use crate::event::StepEvent;
use crate::exec::{ash, sign_extend};
use crate::icache::parse_template;
use crate::machine::Machine;
use crate::uop::{lower, AluOp, Dst, Ea, MovXf, Src, Uop, UopKind, MAX_BLOCK_UOPS};
use std::sync::Arc;
use vax_arch::{Psl, VirtAddr, PAGE_BYTES, PAGE_SHIFT};

/// Translation-cache slot count; a power of two with at least one page of
/// slots (so per-page invalidation scans a contiguous range).
const TSLOTS: usize = 4096;

/// Decode-cache hits at one PC before a superblock forms there.
const HOT_THRESHOLD: u32 = 16;

/// Most chain edges followed inside one `step()`. Bounds how many
/// instructions a single step can retire through a hot cycle of blocks,
/// preserving the step-count granularity callers budget by.
const MAX_CHAIN_FOLLOWS: u32 = 32;

/// Why a µop bailed to the interpreter. Every cause leaves the machine
/// **unmutated**; the interpreter re-executes the instruction and raises
/// whatever fault or slow-path machinery is architecturally due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UopBail {
    /// Divide by zero: the interpreter raises the arithmetic fault.
    Runtime,
    /// Data page absent from the TLB (the interpreter walks and fills).
    TlbMiss,
    /// TLB hit but the current mode lacks the required access.
    Prot,
    /// Write to a page whose cached `PTE<M>` is clear (modify-bit
    /// machinery stays on the interpreter).
    Modify,
    /// Access crosses a page boundary (two translations).
    PageCross,
    /// Physical target in IO space or outside RAM.
    Io,
}

/// Translation-tier statistics (diagnostic only — like
/// [`DecodeCacheStats`](crate::DecodeCacheStats), deliberately not part of
/// the architectural [`CpuCounters`](crate::CpuCounters), which are
/// bit-identical across execution tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransStats {
    /// Superblocks formed (re-translations after invalidation included).
    pub blocks_translated: u64,
    /// Block executions that retired at least one µop.
    pub blocks_executed: u64,
    /// µops (== guest instructions) retired by the translated tier.
    pub uops_executed: u64,
    /// Blocks cut short because an interrupt became deliverable mid-block.
    pub side_exit_interrupt: u64,
    /// µops that bailed to the interpreter pre-mutation (all causes).
    pub side_exit_bail: u64,
    /// Blocks cut short because a retired store dirtied a tracked code
    /// page (self-modifying code detected mid-block).
    pub side_exit_smc: u64,
    /// Bails: data page absent from the TLB.
    pub side_exit_tlb_miss: u64,
    /// Bails: TLB hit with insufficient protection.
    pub side_exit_prot: u64,
    /// Bails: write to a page with `PTE<M>` clear.
    pub side_exit_modify: u64,
    /// Bails: access crossing a page boundary.
    pub side_exit_page_cross: u64,
    /// Bails: physical target in IO space or outside RAM.
    pub side_exit_io: u64,
    /// Chain edges followed directly block-to-block in the dispatch loop.
    pub chain_hits: u64,
    /// Recorded successor links found dead at follow time and severed.
    pub chain_links_severed: u64,
    /// Invalidation events (whole-cache and per-page combined).
    pub invalidations: u64,
    /// Histogram of superblock lengths at translate time, indexed by µop
    /// count (index 0 unused; blocks have at least one µop).
    pub len_hist: [u64; MAX_BLOCK_UOPS + 1],
}

impl Default for TransStats {
    fn default() -> TransStats {
        TransStats {
            blocks_translated: 0,
            blocks_executed: 0,
            uops_executed: 0,
            side_exit_interrupt: 0,
            side_exit_bail: 0,
            side_exit_smc: 0,
            side_exit_tlb_miss: 0,
            side_exit_prot: 0,
            side_exit_modify: 0,
            side_exit_page_cross: 0,
            side_exit_io: 0,
            chain_hits: 0,
            chain_links_severed: 0,
            invalidations: 0,
            len_hist: [0; MAX_BLOCK_UOPS + 1],
        }
    }
}

#[derive(Debug, Clone)]
struct TransEntry {
    pa: u32,
    /// Entry VA the block's folded targets are valid for (== `pa` with
    /// mapping off).
    va: u32,
    gen: u32,
    block: Arc<[Uop]>,
    /// Recorded chain successor (an entry VA), if the block's terminal
    /// branch was observed landing on another translated block.
    succ: Option<u32>,
}

/// Per-superblock introspection record — one row of the ranked hot-block
/// table. Only maintained while the machine is profiling (the cache's
/// profile map is empty otherwise, so the bookkeeping is free when off);
/// rows are cumulative per entry PA and survive invalidation and
/// retranslation so churn is visible in `translations`/`invalidations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuperblockProfile {
    /// Entry physical address of the block.
    pub entry_pa: u32,
    /// µop count at the most recent translation.
    pub len: u16,
    /// Decode-cache heat at the most recent translation.
    pub heat: u32,
    /// Times this PA was (re)translated while profiling.
    pub translations: u64,
    /// Block executions that retired at least one µop.
    pub executions: u64,
    /// µops (== guest instructions) retired by this block.
    pub uops_retired: u64,
    /// Simulated cycles retired by this block.
    pub cycles_retired: u64,
    /// Executions cut short by a deliverable interrupt mid-block.
    pub side_exit_interrupt: u64,
    /// Executions that bailed to the interpreter pre-mutation.
    pub side_exit_bail: u64,
    /// Invalidations that killed this block (whole-cache or its page).
    pub invalidations: u64,
}

/// Cap on tracked per-superblock profiles; a run hot in more distinct
/// entry PAs than this keeps stats for the first [`SB_PROFILE_CAP`] and
/// counts the rest in [`TransStats::blocks_translated`] only.
const SB_PROFILE_CAP: usize = 8192;

/// Direct-mapped cache of translated superblocks keyed by (entry physical
/// address, entry virtual address, generation). An **empty** block is a
/// negative marker: the PC is hot but its first instruction does not
/// lower, so the tier stops re-walking it. Blocks are shared
/// (`Arc<[Uop]>`) so the dispatch loop executes them in place — no
/// remove/reinsert churn, and an eviction by a colliding insert cannot
/// free a block mid-execution.
#[derive(Debug)]
pub(crate) struct TransCache {
    slots: Box<[Option<TransEntry>; TSLOTS]>,
    /// Generation counter: bumping it is an O(1) `invalidate_all`.
    gen: u32,
    stats: TransStats,
    /// Per-superblock profiles keyed by entry PA; empty unless the
    /// machine is profiling.
    profiles: std::collections::HashMap<u32, SuperblockProfile>,
}

impl TransCache {
    pub fn new() -> TransCache {
        TransCache {
            slots: vec![None; TSLOTS]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!()),
            gen: 0,
            stats: TransStats::default(),
            profiles: std::collections::HashMap::new(),
        }
    }

    #[inline]
    fn slot(pa: u32) -> usize {
        pa as usize & (TSLOTS - 1)
    }

    /// The current-generation block keyed by `(pa, va)`, shared in place.
    #[inline]
    fn get(&self, pa: u32, va: u32) -> Option<Arc<[Uop]>> {
        match self.slots[Self::slot(pa)] {
            Some(ref e) if e.pa == pa && e.va == va && e.gen == self.gen => {
                Some(Arc::clone(&e.block))
            }
            _ => None,
        }
    }

    /// Inserts a block under the current generation (no successor yet).
    fn insert(&mut self, pa: u32, va: u32, block: Arc<[Uop]>) {
        self.slots[Self::slot(pa)] = Some(TransEntry {
            pa,
            va,
            gen: self.gen,
            block,
            succ: None,
        });
    }

    /// The recorded chain successor of the current-generation block at
    /// `(pa, va)`, if any.
    #[inline]
    fn succ_of(&self, pa: u32, va: u32) -> Option<u32> {
        match self.slots[Self::slot(pa)] {
            Some(ref e) if e.pa == pa && e.va == va && e.gen == self.gen => e.succ,
            _ => None,
        }
    }

    /// Records `succ` (an entry VA) as the chain successor of `(pa, va)`.
    fn set_succ(&mut self, pa: u32, va: u32, succ: u32) {
        if let Some(e) = self.slots[Self::slot(pa)].as_mut() {
            if e.pa == pa && e.va == va && e.gen == self.gen {
                e.succ = Some(succ);
            }
        }
    }

    /// Severs the recorded successor link of `(pa, va)`.
    fn sever(&mut self, pa: u32, va: u32) {
        if let Some(e) = self.slots[Self::slot(pa)].as_mut() {
            if e.pa == pa && e.va == va && e.gen == self.gen {
                e.succ = None;
            }
        }
    }

    /// Invalidates every block (TBIA, MAPEN/base-register writes, LDPCTX,
    /// tier switches, cost-model changes, snapshot import). Successor
    /// links die with their entries — a generation bump orphans them all.
    pub fn invalidate_all(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        self.stats.invalidations += 1;
        if self.gen == 0 {
            self.slots.fill(None);
        }
        // Free when not profiling (empty map).
        for p in self.profiles.values_mut() {
            p.invalidations += 1;
        }
    }

    /// Invalidates all blocks whose entry lies in physical page `pfn`
    /// (self-modifying code, TBIS). Blocks never span a page, so the
    /// entry's page covers every instruction in the block. Links *into*
    /// the page from surviving predecessors go stale here; they are
    /// severed (and counted) when next followed.
    pub fn invalidate_page(&mut self, pfn: u32) {
        let first = Self::slot(pfn << PAGE_SHIFT);
        for idx in first..first + PAGE_BYTES as usize {
            if let Some(e) = &self.slots[idx] {
                if e.pa >> PAGE_SHIFT == pfn {
                    self.slots[idx] = None;
                }
            }
        }
        self.stats.invalidations += 1;
        for p in self.profiles.values_mut() {
            if p.entry_pa >> PAGE_SHIFT == pfn {
                p.invalidations += 1;
            }
        }
    }

    pub fn stats(&self) -> TransStats {
        self.stats
    }

    /// Folds one bail cause into the per-cause side-exit split
    /// (`side_exit_bail` is the total and counted by the caller).
    fn note_bail(&mut self, cause: UopBail) {
        match cause {
            UopBail::Runtime => {}
            UopBail::TlbMiss => self.stats.side_exit_tlb_miss += 1,
            UopBail::Prot => self.stats.side_exit_prot += 1,
            UopBail::Modify => self.stats.side_exit_modify += 1,
            UopBail::PageCross => self.stats.side_exit_page_cross += 1,
            UopBail::Io => self.stats.side_exit_io += 1,
        }
    }

    // ---- per-superblock profiling (populated only while profiling) ----

    /// Records a (re)translation at `pa` into its profile row.
    pub(crate) fn note_translate(&mut self, pa: u32, len: u16, heat: u32) {
        if self.profiles.len() >= SB_PROFILE_CAP && !self.profiles.contains_key(&pa) {
            return;
        }
        let p = self.profiles.entry(pa).or_default();
        p.entry_pa = pa;
        p.len = len;
        p.heat = heat;
        p.translations += 1;
    }

    /// Records one block execution at `pa` into its profile row.
    pub(crate) fn note_block_exec(
        &mut self,
        pa: u32,
        uops: u64,
        cycles: u64,
        bailed: bool,
        interrupted: bool,
    ) {
        // Entry may be absent past the cap, or when profiling was enabled
        // after the block was translated — count it then, heat/len 0.
        if self.profiles.len() >= SB_PROFILE_CAP && !self.profiles.contains_key(&pa) {
            return;
        }
        let p = self.profiles.entry(pa).or_default();
        p.entry_pa = pa;
        p.executions += 1;
        p.uops_retired += uops;
        p.cycles_retired += cycles;
        if bailed {
            p.side_exit_bail += 1;
        }
        if interrupted {
            p.side_exit_interrupt += 1;
        }
    }

    /// The hot-block table: every tracked profile ranked by cycles
    /// retired (descending), ties broken by entry PA for determinism.
    pub fn profiles(&self) -> Vec<SuperblockProfile> {
        let mut out: Vec<SuperblockProfile> = self.profiles.values().copied().collect();
        out.sort_by(|a, b| {
            b.cycles_retired
                .cmp(&a.cycles_retired)
                .then(a.entry_pa.cmp(&b.entry_pa))
        });
        out
    }

    /// Drops all per-superblock profiles (profiling toggled).
    pub(crate) fn clear_profiles(&mut self) {
        self.profiles.clear();
    }
}

/// A validated µop destination: a register, or a physical address the
/// fast path has already translated and access-checked.
#[derive(Debug, Clone, Copy)]
enum DstR {
    Reg(u8),
    Mem { pa: u32 },
}

impl Machine {
    /// Attempts one translated-tier step at the current PC.
    ///
    /// `None` means "this step is the interpreter's" — the tier is gated
    /// off, the PC has no (non-empty) block yet, or the block's first µop
    /// bailed. In every `None` case **nothing was mutated**, so the caller
    /// falls through to the ordinary interpreter path. `Some(ev)` means at
    /// least one instruction retired exactly as the interpreter would have
    /// retired it.
    pub(crate) fn step_translated(&mut self) -> Option<StepEvent> {
        // Gate: VM mode (sensitive-op dispatch) or PSL<IV> set (translated
        // arithmetic could trap on overflow) fall back to the interpreter.
        // Mapped guests run here: the entry protocol below demands an
        // executable TLB translation of the code page, and data accesses
        // go through the inline fast path in `exec_uop`.
        if self.psl.vm() || self.psl.flag(Psl::IV) {
            return None;
        }
        // Honor self-modifying-code notifications before trusting any
        // block, mirroring the decode cache's drain.
        self.drain_dirty_code();
        let mapped = self.mmu.mapen();
        let mut va = self.regs[15];
        let mut pa = self.block_entry_pa(va, mapped)?;
        let mut block = match self.trans.get(pa, va) {
            Some(b) => b,
            None => {
                self.maybe_translate(pa, va);
                return None;
            }
        };
        if block.is_empty() {
            // Negative marker: hot but untranslatable first instruction.
            return None;
        }
        let mut executed_any = false;
        let mut follows = 0u32;
        loop {
            let cycles_at_entry = self.cycles;
            let (executed, bailed, interrupted, stop) = if mapped {
                self.run_block::<true>(&block)
            } else {
                self.run_block::<false>(&block)
            };
            if executed > 0 {
                executed_any = true;
                self.trans.stats.blocks_executed += 1;
                self.trans.stats.uops_executed += executed;
                if self.prof.is_on() {
                    self.trans.note_block_exec(
                        pa,
                        executed,
                        self.cycles - cycles_at_entry,
                        bailed,
                        interrupted,
                    );
                }
            }
            if stop || follows >= MAX_CHAIN_FOLLOWS {
                break;
            }
            // Direct chaining: the block ran clean to its terminal branch.
            // If the landing PC satisfies the entry protocol and has a
            // live block, continue straight into it.
            let next_va = self.regs[15];
            let Some(next_pa) = self.block_entry_pa(next_va, mapped) else {
                self.sever_stale_link(pa, va, next_va);
                break;
            };
            let next = match self.trans.get(next_pa, next_va) {
                Some(b) if !b.is_empty() => b,
                Some(_) => {
                    // Negative marker at the landing PC.
                    self.sever_stale_link(pa, va, next_va);
                    break;
                }
                None => {
                    self.sever_stale_link(pa, va, next_va);
                    self.maybe_translate(next_pa, next_va);
                    match self.trans.get(next_pa, next_va) {
                        Some(b) if !b.is_empty() => b,
                        _ => break,
                    }
                }
            };
            self.trans.set_succ(pa, va, next_va);
            self.trans.stats.chain_hits += 1;
            follows += 1;
            pa = next_pa;
            va = next_va;
            block = next;
        }
        executed_any.then_some(StepEvent::Ok)
    }

    /// Executes the µops of one superblock, monomorphized over the
    /// mapped/unmapped regime so the hot dispatch loop carries exactly one
    /// inlined copy of [`Machine::exec_uop`]. Returns
    /// `(uops retired, bailed, interrupted, stop)` — `stop` means the
    /// block did not run clean to its terminal branch, so the caller must
    /// not chain into a successor.
    fn run_block<const MAPPED: bool>(&mut self, block: &[Uop]) -> (u64, bool, bool, bool) {
        let mut executed = 0u64;
        let mut bailed = false;
        let mut interrupted = false;
        let mut stop = false;
        for (i, u) in block.iter().enumerate() {
            let cur_pc = self.regs[15];
            if let Err(cause) = self.exec_uop::<MAPPED>(u) {
                // Pre-mutation bail: the interpreter re-executes this
                // instruction, raising the fault or walking the slow
                // path with the architecturally correct charges.
                self.trans.stats.side_exit_bail += 1;
                self.trans.note_bail(cause);
                bailed = true;
                stop = true;
                break;
            }
            // Retire exactly as `Machine::step` + `execute_one` would:
            // trace push of the instruction's PC, instruction counter,
            // the folded cycle charge, then timer/TODR/bus ticks.
            self.trace_push(cur_pc);
            executed += 1;
            self.counters.instructions += 1;
            self.cycles += u64::from(u.cyc);
            let deliverable = self.post_instruction_tick(u64::from(u.cyc).max(1));
            self.prof_retire(vax_obs::ProfTier::Trans, cur_pc);
            if u.store && self.mem.has_dirty_code() {
                // The retired store rewrote a tracked code page; the
                // rest of this block (and any chained successor) may
                // now be stale bytes. The store itself was
                // architectural — stop before the next µop, drain at
                // the next step entry.
                self.trans.stats.side_exit_smc += 1;
                stop = true;
                break;
            }
            if deliverable {
                // A deliverable interrupt ends the block; the next
                // step() delivers it, exactly as under the
                // interpreter.
                if i + 1 < block.len() {
                    self.trans.stats.side_exit_interrupt += 1;
                    interrupted = true;
                }
                stop = true;
                break;
            }
        }
        (executed, bailed, interrupted, stop)
    }

    /// The entry protocol: the physical address of the block entry at
    /// `va`, provided the fetch is sound for the fast path. Mapped, that
    /// means the code page is in the TLB with execute (read) permission
    /// for the current mode — guaranteeing every mid-block fetch replay
    /// is the TLB hit the interpreter would have counted. Either way the
    /// entry must be below IO space.
    #[inline]
    fn block_entry_pa(&self, va: u32, mapped: bool) -> Option<u32> {
        if mapped {
            self.fetch_pa_probe(VirtAddr::new(va), self.psl.cur_mode())
        } else {
            (va < IO_BASE_PA).then_some(va)
        }
    }

    /// If `(pa, va)` recorded `next_va` as its chain successor and that
    /// edge can no longer be followed, sever and count the dead link.
    fn sever_stale_link(&mut self, pa: u32, va: u32, next_va: u32) {
        if self.trans.succ_of(pa, va) == Some(next_va) {
            self.trans.sever(pa, va);
            self.trans.stats.chain_links_severed += 1;
        }
    }

    /// Forms a superblock entered at `(entry_pa, entry_va)` once the
    /// decode cache reports the PA hot. Walks forward lowering templates
    /// (PA and VA advance in lockstep — blocks never leave the entry
    /// page, and the page offset is mapping-invariant) until a
    /// block-ending µop (branch), an untranslatable instruction, the page
    /// boundary, or the length cap. Always inserts the result — an empty
    /// block is the negative marker that stops re-walking a
    /// hot-but-untranslatable PC.
    fn maybe_translate(&mut self, entry_pa: u32, entry_va: u32) {
        if self.icache.heat(entry_pa) < HOT_THRESHOLD {
            return;
        }
        let page = entry_pa >> PAGE_SHIFT;
        let mut uops: Vec<Uop> = Vec::with_capacity(8);
        let (mut pa, mut va) = (entry_pa, entry_va);
        while uops.len() < MAX_BLOCK_UOPS && pa >> PAGE_SHIFT == page {
            let Some(tpl) = self.template_at(pa) else {
                break;
            };
            let Some(u) = lower(&tpl, va, &self.costs) else {
                break;
            };
            let ends = u.ends_block();
            pa = pa.wrapping_add(tpl.len as u32);
            va = u.next_pc;
            uops.push(u);
            if ends {
                break;
            }
        }
        if !uops.is_empty() {
            // Register the page for self-modifying-code tracking, exactly
            // as the decode cache does for its own entries.
            self.mem.note_code_page(page);
            self.trans.stats.blocks_translated += 1;
            self.trans.stats.len_hist[uops.len().min(MAX_BLOCK_UOPS)] += 1;
            if self.prof.is_on() {
                let heat = self.icache.heat(entry_pa);
                self.trans.note_translate(entry_pa, uops.len() as u16, heat);
                self.prof_event(
                    vax_obs::ProfEventKind::Translate,
                    entry_pa,
                    uops.len() as u32,
                );
            }
        }
        self.trans.insert(entry_pa, entry_va, uops.into());
    }

    /// The baked template at `pa`: served from the decode cache when
    /// present, else parsed fresh (without inserting, so decode-cache
    /// statistics stay a faithful record of the decode path).
    fn template_at(&mut self, pa: u32) -> Option<crate::icache::InstTemplate> {
        if let Some(t) = self.icache.peek(pa) {
            return Some(*t);
        }
        let mut t = self.mem.page_tail(pa).and_then(parse_template)?;
        t.bake(pa);
        Some(t)
    }

    /// Writes register `r` at width `w`, merging into the old value below
    /// a longword — the register half of [`Machine::write_loc`].
    #[inline(always)]
    fn write_reg_w(&mut self, r: u8, value: u32, w: u8) {
        let old = self.regs[r as usize];
        self.regs[r as usize] = match w {
            1 => (old & !0xff) | (value & 0xff),
            2 => (old & !0xffff) | (value & 0xffff),
            _ => value,
        };
    }

    /// The effective address of a lowered memory operand, from the live
    /// register file (side-effect-free by construction).
    #[inline(always)]
    fn ea_val(&self, ea: Ea) -> u32 {
        match ea {
            Ea::Abs(a) => a,
            Ea::RegDisp { r, disp } => self.regs[r as usize].wrapping_add(disp as u32),
        }
    }

    /// The inline TLB fast path: validates a `len`-byte data access at
    /// `va` and returns its physical address, without mutating anything
    /// (the TLB is probed counter-free; hits are replayed at retire).
    /// Every rejected shape is exactly a case where the interpreter would
    /// charge differently, fault, or run slow-path machinery — so it
    /// bails.
    #[inline(always)]
    fn uop_mem_check(&self, va: u32, len: u32, write: bool, mapped: bool) -> Result<u32, UopBail> {
        let pa = if mapped {
            if (va & (PAGE_BYTES - 1)) + len > PAGE_BYTES {
                return Err(UopBail::PageCross);
            }
            let v = VirtAddr::new(va);
            let Some(e) = self.mmu.tlb().peek(v) else {
                return Err(UopBail::TlbMiss);
            };
            if !e.prot.allows(self.psl.cur_mode(), write) {
                return Err(UopBail::Prot);
            }
            if write && !e.modified {
                return Err(UopBail::Modify);
            }
            (e.pfn << PAGE_SHIFT) | (va & (PAGE_BYTES - 1))
        } else {
            va
        };
        if pa >= IO_BASE_PA || IO_BASE_PA - pa < len || !self.mem.contains(pa, len) {
            return Err(UopBail::Io);
        }
        Ok(pa)
    }

    /// Reads `w` bytes at a fast-path-validated physical address.
    // `uop_mem_check` proved `pa..pa+w` is in RAM; a failure here is a
    // programming error in the fast path, not a runtime condition.
    #[allow(clippy::expect_used)]
    #[inline(always)]
    fn uop_mem_read(&self, pa: u32, w: u8) -> u32 {
        match w {
            1 => self.mem.read_u8(pa).map(u32::from),
            2 => self.mem.read_u16(pa).map(u32::from),
            _ => self.mem.read_u32(pa),
        }
        .expect("fast path validated bounds")
    }

    /// Writes `w` bytes at a fast-path-validated physical address
    /// (dirty/SMC tracking included, exactly as interpreter writes).
    // Same contract as `uop_mem_read`: bounds were proven by the check.
    #[allow(clippy::expect_used)]
    #[inline(always)]
    fn uop_mem_write(&mut self, pa: u32, v: u32, w: u8) {
        match w {
            1 => self.mem.write_u8(pa, v as u8),
            2 => self.mem.write_u16(pa, v as u16),
            _ => self.mem.write_u32(pa, v),
        }
        .expect("fast path validated bounds")
    }

    /// Resolves a µop source to its value. Memory sources go through the
    /// fast path; each counts one TLB hit to replay at retire.
    #[inline(always)]
    fn uop_src(&self, s: Src, mapped: bool, hits: &mut u32) -> Result<u32, UopBail> {
        Ok(match s {
            Src::Imm(v) => v,
            Src::Reg { r, w } => mask_width(self.regs[r as usize], w as u32),
            Src::Mem { ea, w } => {
                let pa = self.uop_mem_check(self.ea_val(ea), w as u32, false, mapped)?;
                *hits += 1;
                self.uop_mem_read(pa, w)
            }
            Src::EaVal(ea) => self.ea_val(ea),
        })
    }

    /// Validates a µop destination for a `w`-byte write, resolving memory
    /// destinations to a physical address (one TLB hit for the commit
    /// write). No mutation happens until [`Machine::uop_commit`].
    #[inline(always)]
    fn uop_dst(&self, d: Dst, w: u8, mapped: bool, hits: &mut u32) -> Result<DstR, UopBail> {
        Ok(match d {
            Dst::Reg(r) => DstR::Reg(r),
            Dst::Mem(ea) => {
                let pa = self.uop_mem_check(self.ea_val(ea), w as u32, true, mapped)?;
                *hits += 1;
                DstR::Mem { pa }
            }
        })
    }

    /// The old value of a validated modify destination at width `w` (the
    /// read half of a modify operand — one more TLB hit when in memory).
    #[inline(always)]
    fn uop_dst_old(&self, d: DstR, w: u8, hits: &mut u32) -> u32 {
        match d {
            DstR::Reg(r) => mask_width(self.regs[r as usize], w as u32),
            DstR::Mem { pa } => {
                *hits += 1;
                self.uop_mem_read(pa, w)
            }
        }
    }

    /// Commits `value` at width `w` to a validated destination.
    #[inline(always)]
    fn uop_commit(&mut self, d: DstR, value: u32, w: u8) {
        match d {
            DstR::Reg(r) => self.write_reg_w(r, value, w),
            DstR::Mem { pa } => self.uop_mem_write(pa, value, w),
        }
    }

    /// Executes one µop. An `Err` bail leaves **no state mutated** — the
    /// interpreter re-executes the instruction (divide by zero raises the
    /// fault; TLB misses walk and charge; protection and modify-bit cases
    /// run the fault/PTE machinery; overflow traps are excluded by the
    /// PSL<IV> gate). Each arm retires bit-identically to the interpreter
    /// over the same instruction: destination write, PC update, then
    /// condition codes. On success the counter-free TLB hits taken along
    /// the way — i-stream fetch replays plus data references — are
    /// credited, matching the interpreter's counting exactly.
    #[inline(always)]
    fn exec_uop<const MAPPED: bool>(&mut self, u: &Uop) -> Result<(), UopBail> {
        let mut hits = 0u32;
        match u.kind {
            UopKind::Nop => {
                self.regs[15] = u.next_pc;
            }
            UopKind::Mov { src, dst, w, xf } => {
                let s = self.uop_src(src, MAPPED, &mut hits)?;
                let value = match xf {
                    MovXf::Id => s,
                    MovXf::Com => !s,
                    MovXf::SextB => s as u8 as i8 as i32 as u32,
                    MovXf::SextW => s as u16 as i16 as i32 as u32,
                };
                let d = self.uop_dst(dst, w, MAPPED, &mut hits)?;
                self.uop_commit(d, value, w);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(value, w as u32);
            }
            UopKind::CvtNarrow {
                src,
                dst,
                w,
                from_w,
            } => {
                let s = self.uop_src(src, MAPPED, &mut hits)?;
                let overflow = match (from_w, w) {
                    (4, 1) => i8::try_from(s as i32).is_err(),
                    (2, 1) => i8::try_from(s as u16 as i16 as i32).is_err(),
                    _ => i16::try_from(s as i32).is_err(),
                };
                let d = self.uop_dst(dst, w, MAPPED, &mut hits)?;
                self.uop_commit(d, s, w);
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(s, w as u32);
                if overflow {
                    self.psl.set_flag(Psl::V, true);
                }
            }
            UopKind::Mneg { src, dst } => {
                let s = self.uop_src(src, MAPPED, &mut hits)?;
                let value = 0u32.wrapping_sub(s);
                let d = self.uop_dst(dst, 4, MAPPED, &mut hits)?;
                self.uop_commit(d, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc(
                    (value as i32) < 0,
                    value == 0,
                    s == 0x8000_0000,
                    s != 0, // borrow out of 0 - src
                );
            }
            UopKind::Clr { dst, w } => {
                let d = self.uop_dst(dst, w, MAPPED, &mut hits)?;
                self.uop_commit(d, 0, w);
                self.regs[15] = u.next_pc;
                self.psl.set_flag(Psl::N, false);
                self.psl.set_flag(Psl::Z, true);
                self.psl.set_flag(Psl::V, false);
            }
            UopKind::Tst { src, w } => {
                let v = self.uop_src(src, MAPPED, &mut hits)?;
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(v, w as u32);
                self.psl.set_flag(Psl::C, false);
            }
            UopKind::Cmp { a, b, w } => {
                let av = self.uop_src(a, MAPPED, &mut hits)?;
                let bv = self.uop_src(b, MAPPED, &mut hits)?;
                let w = w as u32;
                let (sa, sb) = (sign_extend(av, w), sign_extend(bv, w));
                let (ua, ub) = (mask_width(av, w), mask_width(bv, w));
                self.regs[15] = u.next_pc;
                self.set_nzvc(sa < sb, sa == sb, false, ua < ub);
            }
            UopKind::Bit { a, b } => {
                let av = self.uop_src(a, MAPPED, &mut hits)?;
                let bv = self.uop_src(b, MAPPED, &mut hits)?;
                let r = av & bv;
                self.regs[15] = u.next_pc;
                self.set_nzv_keep_c(r, 4);
            }
            UopKind::Alu { op, a, b, dst } => {
                let av = self.uop_src(a, MAPPED, &mut hits)?;
                let bv = self.uop_src(b, MAPPED, &mut hits)?;
                let d = self.uop_dst(dst, 4, MAPPED, &mut hits)?;
                let (value, vflag, cflag) = match op {
                    AluOp::Add => {
                        let r = bv.wrapping_add(av);
                        (r, ((av ^ r) & (bv ^ r)) >> 31 != 0, r < av)
                    }
                    AluOp::Sub => {
                        let r = bv.wrapping_sub(av);
                        (r, ((bv ^ av) & (bv ^ r)) >> 31 != 0, bv < av)
                    }
                    AluOp::Mul => {
                        let wide = (av as i32 as i64) * (bv as i32 as i64);
                        let r = wide as u32;
                        (r, wide != r as i32 as i64, false)
                    }
                    AluOp::Div => {
                        if av == 0 {
                            return Err(UopBail::Runtime); // interpreter faults
                        }
                        if bv == 0x8000_0000 && av == 0xffff_ffff {
                            (bv, true, false) // overflow: dividend, V set
                        } else {
                            (((bv as i32) / (av as i32)) as u32, false, false)
                        }
                    }
                    AluOp::Bis => (av | bv, false, self.psl.flag(Psl::C)),
                    AluOp::Bic => (!av & bv, false, self.psl.flag(Psl::C)),
                    AluOp::Xor => (av ^ bv, false, self.psl.flag(Psl::C)),
                };
                self.uop_commit(d, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc(value & 0x8000_0000 != 0, value == 0, vflag, cflag);
            }
            UopKind::IncDec { dst, byte, dec } => {
                let w: u32 = if byte { 1 } else { 4 };
                let d = self.uop_dst(dst, w as u8, MAPPED, &mut hits)?;
                let b = self.uop_dst_old(d, w as u8, &mut hits);
                let (value, vflag, cflag) = if dec {
                    let res = b.wrapping_sub(1);
                    (res, ((b ^ 1) & (b ^ res)) >> 31 != 0, b < 1)
                } else {
                    let res = b.wrapping_add(1);
                    (res, ((1 ^ res) & (b ^ res)) >> 31 != 0, res < 1)
                };
                // Byte-width condition codes use the byte result.
                let (value, vflag, cflag) = if byte {
                    let m = mask_width(value, 1);
                    let v = if dec { b == 0x80 } else { b == 0x7f };
                    let c = if dec { b == 0 } else { m == 0 };
                    (m, v, c)
                } else {
                    (value, vflag, cflag)
                };
                self.uop_commit(d, value, w as u8);
                self.regs[15] = u.next_pc;
                let m = mask_width(value, w);
                let sign = if byte {
                    m & 0x80 != 0
                } else {
                    m & 0x8000_0000 != 0
                };
                self.set_nzvc(sign, m == 0, vflag, cflag);
            }
            UopKind::Ashl { cnt, src, dst } => {
                let c = self.uop_src(cnt, MAPPED, &mut hits)? as u8 as i8;
                let s = self.uop_src(src, MAPPED, &mut hits)?;
                let d = self.uop_dst(dst, 4, MAPPED, &mut hits)?;
                let (value, overflow) = ash(s, c);
                self.uop_commit(d, value, 4);
                self.regs[15] = u.next_pc;
                self.set_nzvc((value as i32) < 0, value == 0, overflow, false);
            }
            UopKind::Movpsl { dst } => {
                // The movpsl cycle charge is folded into `u.cyc`; the
                // counter retires here, after the destination validates
                // (a bail must leave it untouched). VM mode never reaches
                // this tier, so the visible PSL is the right source.
                let d = self.uop_dst(dst, 4, MAPPED, &mut hits)?;
                self.counters.movpsl += 1;
                let value = self.psl.raw_visible();
                self.uop_commit(d, value, 4);
                self.regs[15] = u.next_pc;
            }
            UopKind::Br { target } => {
                self.regs[15] = target;
            }
            UopKind::BCond { cond, target } => {
                let take = self.condition(cond);
                self.regs[15] = if take { target } else { u.next_pc };
            }
            UopKind::Blb { src, set, target } => {
                let v = self.uop_src(src, MAPPED, &mut hits)?;
                let take = (v & 1 == 1) == set;
                self.regs[15] = if take { target } else { u.next_pc };
            }
            UopKind::Sob { r, gtr, target } => {
                let old = self.regs[r as usize];
                let new = old.wrapping_sub(1);
                self.regs[r as usize] = new;
                let take = if gtr {
                    (new as i32) > 0
                } else {
                    (new as i32) >= 0
                };
                self.regs[15] = if take { target } else { u.next_pc };
                let v = old == 0x8000_0000;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
            }
            UopKind::Aob {
                limit,
                r,
                lss,
                target,
            } => {
                let lim = self.uop_src(limit, MAPPED, &mut hits)? as i32;
                let old = self.regs[r as usize];
                let new = old.wrapping_add(1);
                self.regs[r as usize] = new;
                let take = if lss {
                    (new as i32) < lim
                } else {
                    (new as i32) <= lim
                };
                self.regs[15] = if take { target } else { u.next_pc };
                let v = old == 0x7fff_ffff;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
            }
        }
        if MAPPED {
            // Replay exactly the TLB hit traffic the interpreter would
            // have counted: one hit per i-stream fetch event (the code
            // page is in the TLB by the entry protocol, and the fast path
            // never inserts or evicts) plus the data hits taken above.
            self.mmu
                .tlb_mut()
                .record_hits(u64::from(u.fetch) + u64::from(hits));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::CostModel;

    fn block_of(n: usize) -> Arc<[Uop]> {
        let c = CostModel::default();
        vec![
            Uop {
                kind: UopKind::Nop,
                cyc: c.base_instruction as u32,
                next_pc: 0,
                fetch: 1,
                store: false,
            };
            n
        ]
        .into()
    }

    #[test]
    fn get_shares_block_in_place() {
        let mut t = TransCache::new();
        assert!(t.get(0x1000, 0x1000).is_none());
        t.insert(0x1000, 0x1000, block_of(3));
        let b = t.get(0x1000, 0x1000).expect("present");
        assert_eq!(b.len(), 3);
        // Get does not remove — the block stays resident and shared.
        let b2 = t.get(0x1000, 0x1000).expect("still present");
        assert!(Arc::ptr_eq(&b, &b2));
    }

    #[test]
    fn keying_includes_entry_va() {
        let mut t = TransCache::new();
        t.insert(0x1000, 0x8000_1000, block_of(2));
        assert!(t.get(0x1000, 0x8000_1000).is_some());
        // Same PA under a different mapping VA is a miss: the folded
        // branch targets would be wrong for that mapping.
        assert!(t.get(0x1000, 0x1000).is_none());
    }

    #[test]
    fn invalidate_all_is_generational() {
        let mut t = TransCache::new();
        t.insert(0x1000, 0x1000, block_of(1));
        t.invalidate_all();
        assert!(t.get(0x1000, 0x1000).is_none());
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn page_invalidation_is_targeted() {
        let mut t = TransCache::new();
        t.insert(0x1000, 0x1000, block_of(1)); // pfn 8
        t.insert(0x1200, 0x1200, block_of(2)); // pfn 9
        t.invalidate_page(8);
        assert!(t.get(0x1000, 0x1000).is_none());
        assert_eq!(t.get(0x1200, 0x1200).map(|b| b.len()), Some(2));
    }

    #[test]
    fn slot_aliasing_misses() {
        let mut t = TransCache::new();
        t.insert(0x1000, 0x1000, block_of(1));
        assert!(t
            .get(0x1000 + TSLOTS as u32, 0x1000 + TSLOTS as u32)
            .is_none());
        // The aliasing probe above evicted nothing.
        assert!(t.get(0x1000, 0x1000).is_some());
    }

    #[test]
    fn successor_links_follow_the_entry_generation() {
        let mut t = TransCache::new();
        t.insert(0x1000, 0x1000, block_of(1));
        assert_eq!(t.succ_of(0x1000, 0x1000), None);
        t.set_succ(0x1000, 0x1000, 0x2000);
        assert_eq!(t.succ_of(0x1000, 0x1000), Some(0x2000));
        t.sever(0x1000, 0x1000);
        assert_eq!(t.succ_of(0x1000, 0x1000), None);
        t.set_succ(0x1000, 0x1000, 0x2000);
        // A generation bump orphans links with their entries.
        t.invalidate_all();
        assert_eq!(t.succ_of(0x1000, 0x1000), None);
        // Re-inserting under the new generation starts unlinked.
        t.insert(0x1000, 0x1000, block_of(1));
        assert_eq!(t.succ_of(0x1000, 0x1000), None);
    }
}
