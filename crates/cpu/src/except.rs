//! Exception and interrupt delivery microcode, and the step-level abort
//! handling that routes faults either through the on-machine SCB or out to
//! the VMM (paper §4.2: exceptions clear `PSL<VM>` and, on a machine
//! running a VM, always land in the VMM first).

use crate::decode::Abort;
use crate::event::{StepEvent, VmExit};
use crate::machine::Machine;
use vax_arch::{AccessMode, Exception, Psl, VirtAddr};

impl Machine {
    /// Fetch–decode–execute one instruction, handling aborts.
    pub(crate) fn execute_one(&mut self) -> StepEvent {
        let pc_start = self.pc();
        let mut decoded = self
            .decode_scratch
            .take()
            .unwrap_or_else(|| Box::new(crate::decode::Decoded::empty()));
        let event = match self.decode_instruction(&mut decoded) {
            Err(abort) => self.handle_abort(abort, pc_start, pc_start),
            Ok(()) => {
                let next_pc = decoded.next_pc;
                match self.execute(&decoded) {
                    Ok(crate::exec::ExecOutcome::Retired) => {
                        self.counters.instructions += 1;
                        self.cycles += self.costs.base_instruction;
                        StepEvent::Ok
                    }
                    Ok(crate::exec::ExecOutcome::Halt) => {
                        self.halted = true;
                        StepEvent::Halted(crate::event::HaltReason::HaltInstruction)
                    }
                    Ok(crate::exec::ExecOutcome::VmTrap(info)) => {
                        self.counters.vm_emulation_traps += 1;
                        self.exit_stamp = self.cycles;
                        self.cycles += self.costs.vm_emulation_trap;
                        self.psl.set_vm(false);
                        StepEvent::VmExit(VmExit::Emulation(info))
                    }
                    Err(abort) => self.handle_abort(abort, pc_start, next_pc),
                }
            }
        };
        self.decode_scratch = Some(decoded);
        event
    }

    /// Routes an abort: out to the VMM when in VM mode, otherwise through
    /// the SCB.
    pub(crate) fn handle_abort(&mut self, abort: Abort, pc_start: u32, next_pc: u32) -> StepEvent {
        let e = match abort {
            Abort::Fault(f) => f.to_exception(),
            Abort::Exc(e) => e,
        };
        if self.psl.vm() {
            // Microcode clears PSL<VM>; the VMM sees the exception with
            // the VM's PC still at the faulting instruction.
            self.psl.set_vm(false);
            self.counters.vm_exception_exits += 1;
            self.exit_stamp = self.cycles;
            self.cycles += self.costs.exception_entry;
            debug_assert_eq!(self.pc(), pc_start, "faults must not advance PC");
            return StepEvent::VmExit(VmExit::Exception(e));
        }
        self.counters.exceptions += 1;
        match self.deliver_exception(e, pc_start, next_pc) {
            Ok(()) => StepEvent::Ok,
            Err(()) => self.halt_double_fault(),
        }
    }

    /// Delivers an exception through the SCB on the bare machine.
    pub(crate) fn deliver_exception(
        &mut self,
        e: Exception,
        pc_start: u32,
        next_pc: u32,
    ) -> Result<(), ()> {
        let push_pc = if e.is_fault() || matches!(e, Exception::MachineCheck { .. }) {
            pc_start
        } else {
            next_pc
        };
        let old_psl = self.psl;
        let (new_mode, new_is) = match e {
            Exception::ChangeMode { target, .. } => {
                (old_psl.cur_mode().most_privileged(target), false)
            }
            Exception::KernelStackNotValid => (AccessMode::Kernel, true),
            _ => (AccessMode::Kernel, old_psl.flag(Psl::IS)),
        };

        // Select the target stack.
        let mut sp = if new_is {
            self.isp()
        } else {
            self.sp_for_mode(new_mode)
        };

        // Build the frame so the handler sees (SP)=param1, …, PC, PSL —
        // the architectural layout (the handler removes the parameters,
        // then REI pops PC and PSL). Push order: PSL, PC, params reversed.
        let params = e.parameters();
        let mut to_push: Vec<u32> = vec![old_psl.raw_visible(), push_pc];
        for p in params.as_slice().iter().rev() {
            to_push.push(*p);
        }
        for v in to_push.iter() {
            sp = sp.wrapping_sub(4);
            if self.write_virt(VirtAddr::new(sp), *v, 4, new_mode).is_err() {
                // Kernel (or target) stack not valid.
                if matches!(e, Exception::KernelStackNotValid) {
                    return Err(());
                }
                return self.deliver_exception(Exception::KernelStackNotValid, pc_start, next_pc);
            }
        }

        // Fetch the vector.
        let Ok(vector) = self.mem.read_u32(self.scbb + e.vector().offset()) else {
            return Err(());
        };

        // Commit: stack pointer, PSL, PC.
        let mut new_psl = Psl::new();
        new_psl.set_ipl(old_psl.ipl());
        new_psl.set_cur_mode(new_mode);
        new_psl.set_prv_mode(old_psl.cur_mode());
        new_psl.set_flag(Psl::IS, new_is);
        // Park the new SP where set_psl's re-banking will pick it up.
        if new_is {
            self.set_isp(sp);
        } else {
            self.set_sp_for_mode(new_mode, sp);
        }
        self.set_psl(new_psl);
        self.set_pc(vector & !3);
        self.cycles += self.costs.exception_entry;
        Ok(())
    }

    /// Delivers an interrupt on the interrupt stack.
    pub(crate) fn deliver_interrupt(&mut self, ipl: u8, vector: u16) -> Result<(), ()> {
        let old_psl = self.psl;
        let mut sp = self.isp();
        for v in [old_psl.raw_visible(), self.pc()] {
            sp = sp.wrapping_sub(4);
            if self
                .write_virt(VirtAddr::new(sp), v, 4, AccessMode::Kernel)
                .is_err()
            {
                return Err(());
            }
        }
        let Ok(handler) = self.mem.read_u32(self.scbb + vector as u32) else {
            return Err(());
        };
        let mut new_psl = Psl::new();
        new_psl.set_ipl(ipl);
        new_psl.set_cur_mode(AccessMode::Kernel);
        new_psl.set_prv_mode(AccessMode::Kernel);
        new_psl.set_flag(Psl::IS, true);
        self.set_isp(sp);
        self.set_psl(new_psl);
        self.set_pc(handler & !3);
        self.cycles += self.costs.exception_entry;
        Ok(())
    }

    /// The REI microcode (bare-machine path; in VM mode REI traps to the
    /// VMM before reaching here).
    pub(crate) fn do_rei(&mut self) -> Result<(), Abort> {
        let cur_mode = self.psl.cur_mode();
        let sp = self.regs[14];
        let new_pc = self.read_virt(VirtAddr::new(sp), 4, cur_mode)?;
        let img_raw = self.read_virt(VirtAddr::new(sp.wrapping_add(4)), 4, cur_mode)?;
        let img = Psl::from_raw(img_raw);

        // Validity checks (reserved operand fault on failure).
        if img_raw & Psl::MBZ != 0 {
            return Err(Exception::ReservedOperand.into());
        }
        let new_cur = img.cur_mode();
        if new_cur.is_more_privileged_than(cur_mode) {
            return Err(Exception::ReservedOperand.into());
        }
        if img.prv_mode().is_more_privileged_than(new_cur) {
            return Err(Exception::ReservedOperand.into());
        }
        if img.ipl() > 0 && new_cur != AccessMode::Kernel {
            return Err(Exception::ReservedOperand.into());
        }
        if img.flag(Psl::IS) && !self.psl.flag(Psl::IS) {
            return Err(Exception::ReservedOperand.into());
        }
        if self.psl.flag(Psl::IS) && img.flag(Psl::IS) && new_cur != AccessMode::Kernel {
            return Err(Exception::ReservedOperand.into());
        }

        // Commit: drop the frame, swap stacks, load PSL and PC.
        self.regs[14] = sp.wrapping_add(8);
        self.set_psl(img);
        self.set_pc(new_pc);
        // AST delivery check: REI into a mode no more privileged than
        // ASTLVL requests the AST-delivery software interrupt (level 2).
        if new_cur.bits() >= self.astlvl && self.astlvl <= 3 {
            self.sisr |= 1 << 2;
        }
        self.counters.rei += 1;
        self.cycles += self.costs.rei;
        Ok(())
    }
}
