//! A tiny inline vector for per-instruction state.
//!
//! Decode used to build a heap `Vec` of operands for every instruction
//! executed; with at most 6 specifiers per VAX instruction the storage
//! fits in a fixed array, so the hot loop never touches the allocator.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A `Vec`-like container with inline storage for up to `N` elements.
#[derive(Clone, Copy)]
pub struct FixedVec<T: Copy + Default, const N: usize> {
    len: u8,
    items: [T; N],
}

impl<T: Copy + Default, const N: usize> FixedVec<T, N> {
    /// An empty vector.
    pub fn new() -> FixedVec<T, N> {
        FixedVec {
            len: 0,
            items: [T::default(); N],
        }
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements; callers size `N`
    /// to an architectural maximum, so overflow is a decoder bug.
    pub fn push(&mut self, item: T) {
        assert!((self.len as usize) < N, "FixedVec overflow (capacity {N})");
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Copies the contents into a heap `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for FixedVec<T, N> {
    fn default() -> FixedVec<T, N> {
        FixedVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for FixedVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for FixedVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for FixedVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for FixedVec<T, N> {
    fn eq(&self, other: &FixedVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for FixedVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for FixedVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a FixedVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut v: FixedVec<u32, 4> = FixedVec::new();
        assert!(v.is_empty());
        v.push(3);
        v.push(9);
        assert_eq!(v.len(), 2);
        assert_eq!(v[1], 9);
        assert_eq!(v, vec![3, 9]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut v: FixedVec<u8, 2> = FixedVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn equality_and_to_vec() {
        let mut a: FixedVec<(u8, u32), 3> = FixedVec::new();
        let mut b: FixedVec<(u8, u32), 3> = FixedVec::new();
        a.push((1, 2));
        b.push((1, 2));
        assert_eq!(a, b);
        b.push((3, 4));
        assert_ne!(a, b);
        assert_eq!(b.to_vec(), vec![(1, 2), (3, 4)]);
    }
}
