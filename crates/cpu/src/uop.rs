//! The threaded-µop intermediate representation.
//!
//! [`lower`] turns one decoded-and-baked [`InstTemplate`] into one
//! [`Uop`]: a self-contained micro-operation whose operand sources are
//! resolved to either an immediate constant or a register number, whose
//! branch targets are absolute addresses, and whose entire cycle charge
//! (i-stream fetch events × memory-reference, plus the base-instruction
//! and any opcode-specific charge) is folded into a single constant. The
//! translated execution tier in `trans.rs` dispatches over [`UopKind`]
//! with none of the per-step decode, operand materialization, or event
//! plumbing of the interpreter — while producing bit-identical
//! architectural state, cycle counts, and counters.
//!
//! Only instructions that touch **no memory** lower: register/literal
//! moves, converts, ALU ops, and branches. Everything else — memory
//! operands, privileged or sensitive instructions, faulting encodings —
//! returns `None` and ends superblock formation, leaving those
//! instructions to the interpreter (the oracle).

use crate::decode::DecOp;
use crate::event::OperandLoc;
use crate::icache::InstTemplate;
use vax_arch::{CostModel, Opcode};

/// Maximum µops per superblock (and the length-histogram bound).
pub const MAX_BLOCK_UOPS: usize = 32;

/// A µop operand source, resolved at translate time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// A literal or immediate folded from the instruction bytes.
    Imm(u32),
    /// A general register, masked to the operand width at read time.
    Reg { r: u8, w: u8 },
}

impl Src {
    /// The operand's input value against the live register file —
    /// exactly what materialization would have produced.
    #[inline]
    pub fn val(&self, regs: &[u32; 16]) -> u32 {
        match *self {
            Src::Imm(v) => v,
            Src::Reg { r, w } => crate::decode::mask_width(regs[r as usize], w as u32),
        }
    }
}

/// Longword ALU operation selector (the 2- and 3-operand integer forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Bis,
    Bic,
    Xor,
}

/// Value transform applied by a widening/copying move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MovXf {
    /// Plain copy (MOVx, MOVZxx).
    Id,
    /// One's complement (MCOML).
    Com,
    /// Sign-extend the low byte (CVTBL, CVTBW).
    SextB,
    /// Sign-extend the low word (CVTWL).
    SextW,
}

/// The operation a µop performs. Branch targets are absolute (valid only
/// with mapping off, where VA == PA and the template bake resolved them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UopKind {
    /// NOP.
    Nop,
    /// Move family: write `xf(src)` at width `w`, N/Z from the result,
    /// V clear, C kept.
    Mov { src: Src, dst: u8, w: u8, xf: MovXf },
    /// Narrowing convert (CVTLB/CVTWB/CVTLW): sets V on signed overflow.
    CvtNarrow {
        src: Src,
        dst: u8,
        w: u8,
        from_w: u8,
    },
    /// MNEGL, with its borrow/overflow flag shape.
    Mneg { src: Src, dst: u8 },
    /// CLRx.
    Clr { dst: u8, w: u8 },
    /// TSTx.
    Tst { src: Src, w: u8 },
    /// CMPx.
    Cmp { a: Src, b: Src, w: u8 },
    /// BITL.
    Bit { a: Src, b: Src },
    /// Longword ALU op, 2- or 3-operand form normalized to `dst = b op a`.
    Alu { op: AluOp, a: Src, b: Src, dst: u8 },
    /// INCx/DECx on a register.
    IncDec { r: u8, byte: bool, dec: bool },
    /// ASHL.
    Ashl { cnt: Src, src: Src, dst: u8 },
    /// MOVPSL (never taken in VM mode: translation is gated off there).
    Movpsl { dst: u8 },
    /// Unconditional branch.
    Br { target: u32 },
    /// Conditional branch; `cond` is the original opcode for the shared
    /// condition evaluator.
    BCond { cond: Opcode, target: u32 },
    /// BLBS/BLBC.
    Blb { src: Src, set: bool, target: u32 },
    /// SOBGEQ/SOBGTR.
    Sob { r: u8, gtr: bool, target: u32 },
    /// AOBLSS/AOBLEQ.
    Aob {
        limit: Src,
        r: u8,
        lss: bool,
        target: u32,
    },
}

/// One translated micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Uop {
    pub kind: UopKind,
    /// Folded cycle charge: `fetch_events × memory_reference +
    /// base_instruction` plus any opcode-specific charge (MOVPSL).
    pub cyc: u64,
    /// Address of the following instruction (== the fall-through PC;
    /// VA == PA with mapping off).
    pub next_pc: u32,
}

impl Uop {
    /// Whether this µop may redirect control flow, ending a superblock.
    pub fn ends_block(&self) -> bool {
        matches!(
            self.kind,
            UopKind::Br { .. }
                | UopKind::BCond { .. }
                | UopKind::Blb { .. }
                | UopKind::Sob { .. }
                | UopKind::Aob { .. }
        )
    }
}

/// A baked operand slot, reinterpreted for lowering.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Imm(u32),
    RegRead { r: u8, w: u8 },
    RegModify(u8),
    RegWrite(u8),
    Target(u32),
}

/// Lowers one baked template at `pa` into a µop, or `None` for anything
/// the translated tier does not handle (which ends the superblock).
pub(crate) fn lower(tpl: &InstTemplate, pa: u32, costs: &CostModel) -> Option<Uop> {
    use Opcode::*;
    if !tpl.simple {
        return None;
    }
    // Reinterpret the baked operand array + register-patch list: a patch
    // marks a register-sourced slot (read or modify), an unpatched slot
    // is a folded constant, branch target, or register write destination.
    let mut slots = [Slot::Imm(0); 6];
    for (i, b) in tpl.baked.iter().enumerate() {
        slots[i] = match *b {
            DecOp::Value(v) => Slot::Imm(v),
            DecOp::Branch(t) => Slot::Target(t),
            DecOp::Loc {
                loc: OperandLoc::Reg(r),
                ..
            } => Slot::RegWrite(r),
            // Simple templates never carry memory locations or addresses.
            DecOp::Loc { .. } | DecOp::Addr(_) => return None,
        };
    }
    for p in &tpl.patches {
        slots[p.idx as usize] = if p.modify {
            Slot::RegModify(p.reg)
        } else {
            Slot::RegRead {
                r: p.reg,
                w: p.width,
            }
        };
    }
    let src = |i: usize| match slots[i] {
        Slot::Imm(v) => Some(Src::Imm(v)),
        Slot::RegRead { r, w } => Some(Src::Reg { r, w }),
        _ => None,
    };
    let wdst = |i: usize| match slots[i] {
        Slot::RegWrite(r) => Some(r),
        _ => None,
    };
    let mdst = |i: usize| match slots[i] {
        Slot::RegModify(r) => Some(r),
        _ => None,
    };
    let tgt = |i: usize| match slots[i] {
        Slot::Target(t) => Some(t),
        _ => None,
    };

    let op = tpl.op;
    let kind = match op {
        Nop => UopKind::Nop,
        Movl | Movzbl | Movzwl | Movzbw | Movb | Movw | Mcoml | Cvtbl | Cvtbw | Cvtwl => {
            let w = match op {
                Movb => 1,
                Movw | Movzbw | Cvtbw => 2,
                _ => 4,
            };
            let xf = match op {
                Mcoml => MovXf::Com,
                Cvtbl | Cvtbw => MovXf::SextB,
                Cvtwl => MovXf::SextW,
                _ => MovXf::Id,
            };
            UopKind::Mov {
                src: src(0)?,
                dst: wdst(1)?,
                w,
                xf,
            }
        }
        Mnegl => UopKind::Mneg {
            src: src(0)?,
            dst: wdst(1)?,
        },
        Cvtlb | Cvtwb | Cvtlw => {
            let (from_w, w) = match op {
                Cvtlb => (4, 1),
                Cvtwb => (2, 1),
                _ => (4, 2),
            };
            UopKind::CvtNarrow {
                src: src(0)?,
                dst: wdst(1)?,
                w,
                from_w,
            }
        }
        Clrl | Clrb | Clrw => UopKind::Clr {
            dst: wdst(0)?,
            w: match op {
                Clrb => 1,
                Clrw => 2,
                _ => 4,
            },
        },
        Tstl | Tstb | Tstw => UopKind::Tst {
            src: src(0)?,
            w: match op {
                Tstb => 1,
                Tstw => 2,
                _ => 4,
            },
        },
        Cmpl | Cmpb | Cmpw => UopKind::Cmp {
            a: src(0)?,
            b: src(1)?,
            w: match op {
                Cmpb => 1,
                Cmpw => 2,
                _ => 4,
            },
        },
        Bitl => UopKind::Bit {
            a: src(0)?,
            b: src(1)?,
        },
        Addl2 | Subl2 | Mull2 | Divl2 | Bisl2 | Bicl2 | Xorl2 => {
            let r = mdst(1)?;
            UopKind::Alu {
                op: alu_of(op),
                a: src(0)?,
                b: Src::Reg { r, w: 4 },
                dst: r,
            }
        }
        Addl3 | Subl3 | Mull3 | Divl3 | Bisl3 | Bicl3 | Xorl3 => UopKind::Alu {
            op: alu_of(op),
            a: src(0)?,
            b: src(1)?,
            dst: wdst(2)?,
        },
        Incl | Decl | Incb | Decb => UopKind::IncDec {
            r: mdst(0)?,
            byte: matches!(op, Incb | Decb),
            dec: matches!(op, Decl | Decb),
        },
        Ashl => UopKind::Ashl {
            cnt: src(0)?,
            src: src(1)?,
            dst: wdst(2)?,
        },
        Movpsl => UopKind::Movpsl { dst: wdst(0)? },
        Brb | Brw => UopKind::Br { target: tgt(0)? },
        Bneq | Beql | Bgtr | Bleq | Bgeq | Blss | Bgtru | Blequ | Bvc | Bvs | Bgequ | Blssu => {
            UopKind::BCond {
                cond: op,
                target: tgt(0)?,
            }
        }
        Blbs | Blbc => UopKind::Blb {
            src: src(0)?,
            set: op == Blbs,
            target: tgt(1)?,
        },
        Sobgeq | Sobgtr => UopKind::Sob {
            r: mdst(0)?,
            gtr: op == Sobgtr,
            target: tgt(1)?,
        },
        Aoblss | Aobleq => UopKind::Aob {
            limit: src(0)?,
            r: mdst(1)?,
            lss: op == Aoblss,
            target: tgt(2)?,
        },
        // Everything else — memory operands, privileged/sensitive ops,
        // stack and string instructions — stays with the interpreter.
        _ => return None,
    };
    let mut cyc = tpl.fetch_events as u64 * costs.memory_reference + costs.base_instruction;
    if op == Movpsl {
        cyc += costs.movpsl;
    }
    Some(Uop {
        kind,
        cyc,
        next_pc: pa.wrapping_add(tpl.len as u32),
    })
}

fn alu_of(op: Opcode) -> AluOp {
    use Opcode::*;
    match op {
        Addl2 | Addl3 => AluOp::Add,
        Subl2 | Subl3 => AluOp::Sub,
        Mull2 | Mull3 => AluOp::Mul,
        Divl2 | Divl3 => AluOp::Div,
        Bisl2 | Bisl3 => AluOp::Bis,
        Bicl2 | Bicl3 => AluOp::Bic,
        Xorl2 | Xorl3 => AluOp::Xor,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icache::parse_template;

    fn lowered(bytes: &[u8], pa: u32) -> Option<Uop> {
        let mut t = parse_template(bytes).expect("parseable");
        t.bake(pa);
        lower(&t, pa, &CostModel::default())
    }

    #[test]
    fn lowers_movl_literal_to_register() {
        // MOVL #5, R0
        let u = lowered(&[0xD0, 0x05, 0x50], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Mov {
                src: Src::Imm(5),
                dst: 0,
                w: 4,
                xf: MovXf::Id
            }
        );
        assert_eq!(u.next_pc, 0x1003);
        let c = CostModel::default();
        assert_eq!(u.cyc, 3 * c.memory_reference + c.base_instruction);
        assert!(!u.ends_block());
    }

    #[test]
    fn lowers_two_op_alu_as_modify() {
        // ADDL2 R1, R2
        let u = lowered(&[0xC0, 0x51, 0x52], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Alu {
                op: AluOp::Add,
                a: Src::Reg { r: 1, w: 4 },
                b: Src::Reg { r: 2, w: 4 },
                dst: 2
            }
        );
    }

    #[test]
    fn lowers_sobgtr_with_absolute_target() {
        // SOBGTR R2, .-3 (displacement -5 from after the byte)
        let u = lowered(&[0xF5, 0x52, 0xFB], 0x1000).unwrap();
        let UopKind::Sob { r, gtr, target } = u.kind else {
            panic!("not a sob: {u:?}");
        };
        assert_eq!((r, gtr, target), (2, true, 0x0FFE));
        assert!(u.ends_block());
    }

    #[test]
    fn rejects_memory_operands_and_sensitive_ops() {
        // MOVL (R1), R0 — memory operand (non-simple template).
        assert!(lowered(&[0xD0, 0x61, 0x50], 0x1000).is_none());
        // MTPR #0, #18 — privileged.
        assert!(lowered(&[0xDA, 0x00, 0x12], 0x1000).is_none());
        // PUSHL R0 — stack write.
        assert!(lowered(&[0xDD, 0x50], 0x1000).is_none());
        // HALT.
        assert!(lowered(&[0x00], 0x1000).is_none());
    }

    #[test]
    fn folds_movpsl_charge() {
        // MOVPSL R3
        let u = lowered(&[0xDC, 0x53], 0x1000).unwrap();
        assert_eq!(u.kind, UopKind::Movpsl { dst: 3 });
        let c = CostModel::default();
        assert_eq!(
            u.cyc,
            2 * c.memory_reference + c.base_instruction + c.movpsl
        );
    }
}
