//! The threaded-µop intermediate representation.
//!
//! [`lower`] turns one parsed [`InstTemplate`] into one [`Uop`]: a
//! self-contained micro-operation whose operand sources are resolved to
//! an immediate constant, a register number, or a side-effect-free
//! effective-address recipe ([`Ea`]); whose branch targets are absolute
//! virtual addresses; and whose entire cycle charge (i-stream fetch
//! events plus data references, times the memory-reference cost, plus
//! the base-instruction and any opcode-specific charge) is folded into a
//! single constant. The translated execution tier in `trans.rs`
//! dispatches over [`UopKind`] with none of the per-step decode, operand
//! materialization, or event plumbing of the interpreter — while
//! producing bit-identical architectural state, cycle counts, and
//! counters.
//!
//! Memory operands lower when their effective address is computable from
//! the live register file alone: register-deferred `(Rn)`, displacement
//! `disp(Rn)`, absolute `@#addr`, and PC-relative forms (folded to a
//! constant at translate time). The access itself goes through the
//! inline software-TLB fast path in `trans.rs`, which bails to the
//! interpreter pre-mutation on a TLB miss, protection mismatch, missing
//! modify bit, page-crossing access, or IO space. Specifier modes with
//! side effects or their own memory reads — autoincrement, autodecrement,
//! deferred, indexed — plus privileged/sensitive instructions and
//! faulting encodings return `None` and end superblock formation,
//! leaving those instructions to the interpreter (the oracle).

use crate::icache::{BaseTpl, InstTemplate, OpTpl};
use vax_arch::{AccessType, CostModel, Opcode};

/// Maximum µops per superblock (and the length-histogram bound).
pub const MAX_BLOCK_UOPS: usize = 32;

/// An effective address computable from the live register file with no
/// side effects and no memory reads of its own — the only base forms the
/// translated tier lowers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ea {
    /// Absolute `@#addr`, or a PC-relative displacement folded at
    /// translate time (the base — the VA after the displacement bytes —
    /// is a per-block constant).
    Abs(u32),
    /// `(Rn)` (`disp == 0`) or `disp(Rn)`.
    RegDisp { r: u8, disp: i32 },
}

/// A µop operand source, resolved at translate time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// A literal or immediate folded from the instruction bytes.
    Imm(u32),
    /// A general register, masked to the operand width at read time.
    Reg { r: u8, w: u8 },
    /// A memory operand read at width `w` through the inline TLB fast
    /// path (bails pre-mutation on miss/protection/page-cross/IO).
    Mem { ea: Ea, w: u8 },
    /// The effective address itself (MOVAL's Address access) — no memory
    /// reference is made.
    EaVal(Ea),
}

/// A µop destination, resolved at translate time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dst {
    /// A general register (sub-longword writes merge).
    Reg(u8),
    /// A memory location written through the inline TLB fast path.
    Mem(Ea),
}

/// Longword ALU operation selector (the 2- and 3-operand integer forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Bis,
    Bic,
    Xor,
}

/// Value transform applied by a widening/copying move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MovXf {
    /// Plain copy (MOVx, MOVZxx, MOVAL).
    Id,
    /// One's complement (MCOML).
    Com,
    /// Sign-extend the low byte (CVTBL, CVTBW).
    SextB,
    /// Sign-extend the low word (CVTWL).
    SextW,
}

/// The operation a µop performs. Branch targets are absolute virtual
/// addresses (== physical with mapping off; under mapping they are valid
/// for the (entry PA, entry VA, generation) key the block is cached by).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UopKind {
    /// NOP.
    Nop,
    /// Move family: write `xf(src)` at width `w`, N/Z from the result,
    /// V clear, C kept.
    Mov {
        src: Src,
        dst: Dst,
        w: u8,
        xf: MovXf,
    },
    /// Narrowing convert (CVTLB/CVTWB/CVTLW): sets V on signed overflow.
    CvtNarrow {
        src: Src,
        dst: Dst,
        w: u8,
        from_w: u8,
    },
    /// MNEGL, with its borrow/overflow flag shape.
    Mneg { src: Src, dst: Dst },
    /// CLRx.
    Clr { dst: Dst, w: u8 },
    /// TSTx.
    Tst { src: Src, w: u8 },
    /// CMPx.
    Cmp { a: Src, b: Src, w: u8 },
    /// BITL.
    Bit { a: Src, b: Src },
    /// Longword ALU op, 2- or 3-operand form normalized to `dst = b op a`.
    Alu { op: AluOp, a: Src, b: Src, dst: Dst },
    /// INCx/DECx.
    IncDec { dst: Dst, byte: bool, dec: bool },
    /// ASHL.
    Ashl { cnt: Src, src: Src, dst: Dst },
    /// MOVPSL (never taken in VM mode: translation is gated off there).
    Movpsl { dst: Dst },
    /// Unconditional branch.
    Br { target: u32 },
    /// Conditional branch; `cond` is the original opcode for the shared
    /// condition evaluator.
    BCond { cond: Opcode, target: u32 },
    /// BLBS/BLBC.
    Blb { src: Src, set: bool, target: u32 },
    /// SOBGEQ/SOBGTR (register index only — loop control).
    Sob { r: u8, gtr: bool, target: u32 },
    /// AOBLSS/AOBLEQ (register index only).
    Aob {
        limit: Src,
        r: u8,
        lss: bool,
        target: u32,
    },
}

/// One translated micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Uop {
    pub kind: UopKind,
    /// Folded cycle charge: `(fetch_events + data references) ×
    /// memory_reference + base_instruction` plus any opcode-specific
    /// charge (MOVPSL). Valid only while every reference is a TLB hit —
    /// anything that would charge differently bails pre-mutation.
    pub cyc: u32,
    /// Virtual address of the following instruction (the fall-through PC).
    pub next_pc: u32,
    /// I-stream fetch events of the original instruction. Under mapping,
    /// each is one TLB hit on the code page the interpreter would have
    /// counted; the fast path replays them at retire time.
    pub fetch: u8,
    /// Whether this µop writes memory (a retired store can dirty a
    /// translated code page — the dispatch loop checks and side-exits).
    pub store: bool,
}

impl Uop {
    /// Whether this µop may redirect control flow, ending a superblock.
    pub fn ends_block(&self) -> bool {
        matches!(
            self.kind,
            UopKind::Br { .. }
                | UopKind::BCond { .. }
                | UopKind::Blb { .. }
                | UopKind::Sob { .. }
                | UopKind::Aob { .. }
        )
    }
}

/// An operand specifier resolved against the instruction's VA, ready to
/// be picked up by the opcode arm as a source, destination, or target.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Imm(u32),
    RegRead { r: u8, w: u8 },
    RegModify(u8),
    RegWrite(u8),
    Target(u32),
    MemRead { ea: Ea, w: u8 },
    MemModify { ea: Ea },
    MemWrite(Ea),
    AddrOf(Ea),
}

/// Lowers one parsed template at virtual address `va` into a µop, or
/// `None` for anything the translated tier does not handle (which ends
/// the superblock). With mapping off `va` is the entry PA; under mapping
/// the caller passes the guest VA so branch targets, fall-through PCs,
/// and PC-relative bases are correct for the mapping the block is keyed
/// by.
pub(crate) fn lower(tpl: &InstTemplate, va: u32, costs: &CostModel) -> Option<Uop> {
    use Opcode::*;
    // Resolve each parsed specifier straight from `tpl.ops`, tracking the
    // byte offset exactly as the bytewise decoder advances its cursor (so
    // PC-relative bases and branch targets fold to the same constants the
    // interpreter computes at run time).
    let mut slots = [Slot::Imm(0); 6];
    let mut off = tpl.opcode_bytes as u32;
    // Data-stream references (reads + writes; a modify is both) — each
    // charges one memory-reference, and under mapping counts one TLB hit.
    let mut data_refs = 0u8;
    let mut store = false;
    for (i, (top, spec)) in tpl.ops.iter().zip(tpl.op.operands()).enumerate() {
        let w = spec.dtype.bytes() as u8;
        slots[i] = match *top {
            OpTpl::Branch { w, disp } => {
                off += w as u32;
                Slot::Target(va.wrapping_add(off).wrapping_add(disp as u32))
            }
            OpTpl::Literal(v) => {
                off += 1;
                Slot::Imm(v as u32)
            }
            OpTpl::Immediate { w, value } => {
                off += 1 + w as u32;
                Slot::Imm(value)
            }
            OpTpl::Register(r) => {
                off += 1;
                match spec.access {
                    AccessType::Read => Slot::RegRead { r, w },
                    AccessType::Modify => Slot::RegModify(r),
                    AccessType::Write => Slot::RegWrite(r),
                    // Mode 5 with Address access is a reserved specifier
                    // (rejected at parse); Branch never carries a byte.
                    AccessType::Address | AccessType::Branch => return None,
                }
            }
            // Indexed modes read the index register during specifier
            // evaluation and scale by the operand width — interpreter's.
            OpTpl::Ea {
                index_reg: Some(_), ..
            } => return None,
            OpTpl::Ea {
                base,
                index_reg: None,
            } => {
                let ea = match base {
                    BaseTpl::RegDeferred(r) => {
                        // `(PC)` would read the mid-instruction cursor PC,
                        // which a folded recipe cannot reproduce.
                        if r == 15 {
                            return None;
                        }
                        off += 1;
                        Ea::RegDisp { r, disp: 0 }
                    }
                    BaseTpl::Absolute(a) => {
                        off += 5;
                        Ea::Abs(a)
                    }
                    BaseTpl::Disp {
                        reg,
                        dw,
                        disp,
                        deferred,
                    } => {
                        if deferred {
                            return None;
                        }
                        off += 1 + dw as u32;
                        if reg == 15 {
                            // PC-relative: the base is the VA after the
                            // displacement bytes — a translate-time
                            // constant.
                            Ea::Abs(va.wrapping_add(off).wrapping_add(disp as u32))
                        } else {
                            Ea::RegDisp { r: reg, disp }
                        }
                    }
                    // Register side effects during specifier evaluation.
                    BaseTpl::AutoDec(_) | BaseTpl::AutoInc(_) | BaseTpl::AutoIncDeferred(_) => {
                        return None
                    }
                };
                match spec.access {
                    AccessType::Read => {
                        data_refs += 1;
                        Slot::MemRead { ea, w }
                    }
                    AccessType::Modify => {
                        data_refs += 2; // decode-time read + commit write
                        store = true;
                        Slot::MemModify { ea }
                    }
                    AccessType::Write => {
                        data_refs += 1;
                        store = true;
                        Slot::MemWrite(ea)
                    }
                    AccessType::Address => Slot::AddrOf(ea),
                    AccessType::Branch => return None,
                }
            }
        };
    }

    let src = |i: usize| match slots[i] {
        Slot::Imm(v) => Some(Src::Imm(v)),
        Slot::RegRead { r, w } => Some(Src::Reg { r, w }),
        Slot::MemRead { ea, w } => Some(Src::Mem { ea, w }),
        Slot::AddrOf(ea) => Some(Src::EaVal(ea)),
        _ => None,
    };
    let wdst = |i: usize| match slots[i] {
        Slot::RegWrite(r) => Some(Dst::Reg(r)),
        Slot::MemWrite(ea) => Some(Dst::Mem(ea)),
        _ => None,
    };
    // A modify operand as (read half, write half) of the same location.
    let mdst = |i: usize, w: u8| match slots[i] {
        Slot::RegModify(r) => Some((Src::Reg { r, w }, Dst::Reg(r))),
        Slot::MemModify { ea } => Some((Src::Mem { ea, w }, Dst::Mem(ea))),
        _ => None,
    };
    let mreg = |i: usize| match slots[i] {
        Slot::RegModify(r) => Some(r),
        _ => None,
    };
    let tgt = |i: usize| match slots[i] {
        Slot::Target(t) => Some(t),
        _ => None,
    };

    let op = tpl.op;
    let kind = match op {
        Nop => UopKind::Nop,
        Movl | Movzbl | Movzwl | Movzbw | Movb | Movw | Mcoml | Moval | Cvtbl | Cvtbw | Cvtwl => {
            let w = match op {
                Movb => 1,
                Movw | Movzbw | Cvtbw => 2,
                _ => 4,
            };
            let xf = match op {
                Mcoml => MovXf::Com,
                Cvtbl | Cvtbw => MovXf::SextB,
                Cvtwl => MovXf::SextW,
                _ => MovXf::Id,
            };
            UopKind::Mov {
                src: src(0)?,
                dst: wdst(1)?,
                w,
                xf,
            }
        }
        Mnegl => UopKind::Mneg {
            src: src(0)?,
            dst: wdst(1)?,
        },
        Cvtlb | Cvtwb | Cvtlw => {
            let (from_w, w) = match op {
                Cvtlb => (4, 1),
                Cvtwb => (2, 1),
                _ => (4, 2),
            };
            UopKind::CvtNarrow {
                src: src(0)?,
                dst: wdst(1)?,
                w,
                from_w,
            }
        }
        Clrl | Clrb | Clrw => UopKind::Clr {
            dst: wdst(0)?,
            w: match op {
                Clrb => 1,
                Clrw => 2,
                _ => 4,
            },
        },
        Tstl | Tstb | Tstw => UopKind::Tst {
            src: src(0)?,
            w: match op {
                Tstb => 1,
                Tstw => 2,
                _ => 4,
            },
        },
        Cmpl | Cmpb | Cmpw => UopKind::Cmp {
            a: src(0)?,
            b: src(1)?,
            w: match op {
                Cmpb => 1,
                Cmpw => 2,
                _ => 4,
            },
        },
        Bitl => UopKind::Bit {
            a: src(0)?,
            b: src(1)?,
        },
        Addl2 | Subl2 | Mull2 | Divl2 | Bisl2 | Bicl2 | Xorl2 => {
            let (b, dst) = mdst(1, 4)?;
            UopKind::Alu {
                op: alu_of(op),
                a: src(0)?,
                b,
                dst,
            }
        }
        Addl3 | Subl3 | Mull3 | Divl3 | Bisl3 | Bicl3 | Xorl3 => UopKind::Alu {
            op: alu_of(op),
            a: src(0)?,
            b: src(1)?,
            dst: wdst(2)?,
        },
        Incl | Decl | Incb | Decb => {
            let byte = matches!(op, Incb | Decb);
            let (_, dst) = mdst(0, if byte { 1 } else { 4 })?;
            UopKind::IncDec {
                dst,
                byte,
                dec: matches!(op, Decl | Decb),
            }
        }
        Ashl => UopKind::Ashl {
            cnt: src(0)?,
            src: src(1)?,
            dst: wdst(2)?,
        },
        Movpsl => UopKind::Movpsl { dst: wdst(0)? },
        Brb | Brw => UopKind::Br { target: tgt(0)? },
        Bneq | Beql | Bgtr | Bleq | Bgeq | Blss | Bgtru | Blequ | Bvc | Bvs | Bgequ | Blssu => {
            UopKind::BCond {
                cond: op,
                target: tgt(0)?,
            }
        }
        Blbs | Blbc => UopKind::Blb {
            src: src(0)?,
            set: op == Blbs,
            target: tgt(1)?,
        },
        Sobgeq | Sobgtr => UopKind::Sob {
            r: mreg(0)?,
            gtr: op == Sobgtr,
            target: tgt(1)?,
        },
        Aoblss | Aobleq => UopKind::Aob {
            limit: src(0)?,
            r: mreg(1)?,
            lss: op == Aoblss,
            target: tgt(2)?,
        },
        // Everything else — privileged/sensitive ops, stack and string
        // instructions, field and queue ops — stays with the interpreter.
        _ => return None,
    };
    debug_assert_eq!(off, tpl.len as u32);
    let mut cyc = (tpl.fetch_events as u64 + data_refs as u64) * costs.memory_reference
        + costs.base_instruction;
    if op == Movpsl {
        cyc += costs.movpsl;
    }
    Some(Uop {
        kind,
        // Saturate: folded charges are tiny under any sane cost model, and
        // a saturated charge still retires monotonically.
        cyc: u32::try_from(cyc).unwrap_or(u32::MAX),
        next_pc: va.wrapping_add(tpl.len as u32),
        fetch: tpl.fetch_events,
        store,
    })
}

fn alu_of(op: Opcode) -> AluOp {
    use Opcode::*;
    match op {
        Addl2 | Addl3 => AluOp::Add,
        Subl2 | Subl3 => AluOp::Sub,
        Mull2 | Mull3 => AluOp::Mul,
        Divl2 | Divl3 => AluOp::Div,
        Bisl2 | Bisl3 => AluOp::Bis,
        Bicl2 | Bicl3 => AluOp::Bic,
        Xorl2 | Xorl3 => AluOp::Xor,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icache::parse_template;

    fn lowered(bytes: &[u8], va: u32) -> Option<Uop> {
        let t = parse_template(bytes).expect("parseable");
        lower(&t, va, &CostModel::default())
    }

    #[test]
    fn lowers_movl_literal_to_register() {
        // MOVL #5, R0
        let u = lowered(&[0xD0, 0x05, 0x50], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Mov {
                src: Src::Imm(5),
                dst: Dst::Reg(0),
                w: 4,
                xf: MovXf::Id
            }
        );
        assert_eq!(u.next_pc, 0x1003);
        assert_eq!((u.fetch, u.store), (3, false));
        let c = CostModel::default();
        assert_eq!(
            u64::from(u.cyc),
            3 * c.memory_reference + c.base_instruction
        );
        assert!(!u.ends_block());
    }

    #[test]
    fn lowers_two_op_alu_as_modify() {
        // ADDL2 R1, R2
        let u = lowered(&[0xC0, 0x51, 0x52], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Alu {
                op: AluOp::Add,
                a: Src::Reg { r: 1, w: 4 },
                b: Src::Reg { r: 2, w: 4 },
                dst: Dst::Reg(2)
            }
        );
    }

    #[test]
    fn lowers_sobgtr_with_absolute_target() {
        // SOBGTR R2, .-3 (displacement -5 from after the byte)
        let u = lowered(&[0xF5, 0x52, 0xFB], 0x1000).unwrap();
        let UopKind::Sob { r, gtr, target } = u.kind else {
            panic!("not a sob: {u:?}");
        };
        assert_eq!((r, gtr, target), (2, true, 0x0FFE));
        assert!(u.ends_block());
    }

    #[test]
    fn lowers_register_deferred_load() {
        // MOVL (R1), R0 — one data read folded into the cycle charge.
        let u = lowered(&[0xD0, 0x61, 0x50], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Mov {
                src: Src::Mem {
                    ea: Ea::RegDisp { r: 1, disp: 0 },
                    w: 4
                },
                dst: Dst::Reg(0),
                w: 4,
                xf: MovXf::Id
            }
        );
        assert_eq!((u.fetch, u.store), (3, false));
        let c = CostModel::default();
        assert_eq!(
            u64::from(u.cyc),
            (3 + 1) * c.memory_reference + c.base_instruction
        );
    }

    #[test]
    fn lowers_displacement_store_and_modify() {
        // MOVL R0, 4(R2) — byte displacement store.
        let u = lowered(&[0xD0, 0x50, 0xA2, 0x04], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::Mov {
                src: Src::Reg { r: 0, w: 4 },
                dst: Dst::Mem(Ea::RegDisp { r: 2, disp: 4 }),
                w: 4,
                xf: MovXf::Id
            }
        );
        assert!(u.store);
        let c = CostModel::default();
        // 4 fetch events (opcode, reg spec, disp spec, disp byte) + 1
        // data write.
        assert_eq!(
            u64::from(u.cyc),
            5 * c.memory_reference + c.base_instruction
        );

        // INCL (R3) — a modify is one read plus one write.
        let u = lowered(&[0xD6, 0x63], 0x1000).unwrap();
        assert_eq!(
            u.kind,
            UopKind::IncDec {
                dst: Dst::Mem(Ea::RegDisp { r: 3, disp: 0 }),
                byte: false,
                dec: false
            }
        );
        assert!(u.store);
        assert_eq!(
            u64::from(u.cyc),
            (2 + 2) * c.memory_reference + c.base_instruction
        );
    }

    #[test]
    fn folds_pc_relative_and_absolute_addresses() {
        // MOVL @#0x2000, R0
        let u = lowered(&[0xD0, 0x9F, 0x00, 0x20, 0x00, 0x00, 0x50], 0x1000).unwrap();
        let UopKind::Mov { src, .. } = u.kind else {
            panic!("not a mov: {u:?}");
        };
        assert_eq!(
            src,
            Src::Mem {
                ea: Ea::Abs(0x2000),
                w: 4
            }
        );
        // MOVL 0x10(PC), R0 — byte-displacement PC-relative: the base is
        // the VA after the displacement byte (0x1003), as the
        // interpreter's cursor PC would be.
        let u = lowered(&[0xD0, 0xAF, 0x10, 0x50], 0x1000).unwrap();
        let UopKind::Mov { src, .. } = u.kind else {
            panic!("not a mov: {u:?}");
        };
        assert_eq!(
            src,
            Src::Mem {
                ea: Ea::Abs(0x1013),
                w: 4
            }
        );
    }

    #[test]
    fn branch_targets_follow_the_lowering_va() {
        // Same bytes lowered at a different VA (mapped guests key blocks
        // by VA as well as PA) resolve targets against that VA.
        let u = lowered(&[0xF5, 0x52, 0xFB], 0x8000_1000).unwrap();
        let UopKind::Sob { target, .. } = u.kind else {
            panic!("not a sob: {u:?}");
        };
        assert_eq!(target, 0x8000_0FFE);
        assert_eq!(u.next_pc, 0x8000_1003);
    }

    #[test]
    fn rejects_side_effect_specifiers_and_sensitive_ops() {
        // MOVL (R1)+, R0 — autoincrement updates R1 mid-decode.
        assert!(lowered(&[0xD0, 0x81, 0x50], 0x1000).is_none());
        // MOVL -(R1), R0 — autodecrement.
        assert!(lowered(&[0xD0, 0x71, 0x50], 0x1000).is_none());
        // MOVL @4(R1), R0 — displacement deferred reads the pointer.
        assert!(lowered(&[0xD0, 0xB1, 0x04, 0x50], 0x1000).is_none());
        // MOVL (R1)[R2], R0 — indexed.
        assert!(lowered(&[0xD0, 0x42, 0x61, 0x50], 0x1000).is_none());
        // MTPR #0, #18 — privileged.
        assert!(lowered(&[0xDA, 0x00, 0x12], 0x1000).is_none());
        // PUSHL R0 — stack write.
        assert!(lowered(&[0xDD, 0x50], 0x1000).is_none());
        // HALT.
        assert!(lowered(&[0x00], 0x1000).is_none());
    }

    #[test]
    fn folds_movpsl_charge() {
        // MOVPSL R3
        let u = lowered(&[0xDC, 0x53], 0x1000).unwrap();
        assert_eq!(u.kind, UopKind::Movpsl { dst: Dst::Reg(3) });
        let c = CostModel::default();
        assert_eq!(
            u64::from(u.cyc),
            2 * c.memory_reference + c.base_instruction + c.movpsl
        );
    }
}

#[cfg(test)]
mod size_tests {
    #[test]
    fn uop_size_budget() {
        // The dispatch loop streams µops from L1; keep the footprint flat
        // so a 32-µop superblock stays within two dozen cache lines.
        assert!(
            std::mem::size_of::<super::Uop>() <= 48,
            "Uop grew to {}",
            std::mem::size_of::<super::Uop>()
        );
    }
}
