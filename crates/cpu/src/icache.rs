//! The decoded-instruction cache.
//!
//! Decoding a VAX instruction byte-by-byte through `read_virt` dominates
//! simulation time. This cache stores the *template* of an instruction —
//! everything derivable from its raw bytes alone: opcode, specifier
//! modes, embedded displacements/immediates — keyed by the **physical
//! address** of the opcode byte. Execution re-evaluates operands against
//! live register and memory state ("materialization", in `decode.rs`),
//! which also replays the exact per-fetch cycle charges and TLB traffic
//! of a bytewise decode, so cycle counts and event counters are
//! bit-identical with the cache on or off.
//!
//! Physical keying makes entries immune to remapping: if a page is mapped
//! at a new virtual address, the bytes — and hence the template — are
//! unchanged, and all VA-dependent values (branch targets, PC-relative
//! effective addresses) are recomputed from the live PC at
//! materialization. What physical keying does *not* survive is the bytes
//! themselves changing, so [`PhysMemory`](vax_mem::PhysMemory) tracks
//! writes to pages holding cached code and the machine invalidates the
//! affected pages before the next decode.
//!
//! Templates never span a page: an instruction whose bytes cross a page
//! boundary falls back to bytewise decode every time.

use crate::decode::DecOp;
use crate::event::OperandLoc;
use crate::fixedvec::FixedVec;
use vax_arch::{AccessType, DataType, Opcode, PAGE_BYTES, PAGE_SHIFT};

/// A slot in a baked operand array that depends on live register state:
/// `baked[idx]` must be rewritten from register `reg` before use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RegPatch {
    /// Index into [`InstTemplate::baked`].
    pub idx: u8,
    /// General register whose live value feeds the operand.
    pub reg: u8,
    /// Operand width in bytes (for value masking).
    pub width: u8,
    /// Modify access (`Loc` with an old value) rather than a plain read.
    pub modify: bool,
}

/// The base (address-yielding) part of a memory operand specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BaseTpl {
    /// Mode 6: register deferred `(Rn)`.
    RegDeferred(u8),
    /// Mode 7: autodecrement `-(Rn)`.
    AutoDec(u8),
    /// Mode 8: autoincrement `(Rn)+`.
    AutoInc(u8),
    /// Mode 9: autoincrement deferred `@(Rn)+`.
    AutoIncDeferred(u8),
    /// Mode 9 with PC: absolute `@#addr`.
    Absolute(u32),
    /// Modes A–F: displacement `disp(Rn)`, optionally deferred. `reg` may
    /// be 15 (PC-relative: the base is the live PC after the
    /// displacement bytes, so the template stays position-independent).
    Disp {
        reg: u8,
        /// Displacement width in bytes (1, 2, or 4), for fetch replay.
        dw: u8,
        disp: i32,
        deferred: bool,
    },
}

/// One operand specifier template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpTpl {
    /// Branch displacement (resolved against the live PC).
    Branch { w: u8, disp: i32 },
    /// Modes 0–3: short literal.
    Literal(u8),
    /// Mode 5: register.
    Register(u8),
    /// Mode 8 with PC: immediate `#value` (value zero-extended).
    Immediate { w: u8, value: u32 },
    /// A memory operand: base specifier plus optional index register
    /// (mode 4 `base[Rx]`).
    Ea {
        base: BaseTpl,
        index_reg: Option<u8>,
    },
}

impl Default for OpTpl {
    /// Placeholder for [`FixedVec`] backing storage only.
    fn default() -> OpTpl {
        OpTpl::Literal(0)
    }
}

/// A parsed instruction: everything derivable from its bytes alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InstTemplate {
    pub op: Opcode,
    /// Total encoded length in bytes (opcode + all specifiers).
    pub len: u8,
    /// 1, or 2 for the FD-prefixed page.
    pub opcode_bytes: u8,
    /// Number of i-stream fetch events a bytewise decode issues (opcode
    /// bytes, specifier bytes, immediate/displacement/absolute fields).
    /// Each event charges one memory-reference; with mapping off that is
    /// the *whole* charge, so materialization can apply it in one add.
    pub fetch_events: u8,
    /// True when no operand touches memory or updates a register during
    /// specifier evaluation (only literals, immediates, registers, and
    /// branch displacements). With mapping off such an instruction cannot
    /// fault or leave side effects mid-decode, enabling the fast
    /// materialization path.
    pub simple: bool,
    pub ops: FixedVec<OpTpl, 6>,
    /// Pre-materialized operands for the simple fast path, valid only at
    /// the physical address passed to [`InstTemplate::bake`] with mapping
    /// off (where VA == PA, so branch targets are per-entry constants).
    /// Register-sourced slots hold placeholders listed in `patches`.
    pub baked: FixedVec<DecOp, 6>,
    /// Register-dependent slots of `baked` to rewrite at each hit.
    pub patches: FixedVec<RegPatch, 6>,
}

impl InstTemplate {
    /// Precomputes the operand array for the simple/mapping-off fast
    /// path, resolving PC-relative values against `pa` (== the VA the
    /// entry is keyed and hit by when mapping is off). No-op for
    /// non-simple templates, which never take that path.
    pub fn bake(&mut self, pa: u32) {
        if !self.simple {
            return;
        }
        let mut off = self.opcode_bytes as u32;
        for (i, (top, spec)) in self.ops.iter().zip(self.op.operands()).enumerate() {
            self.baked.push(match *top {
                OpTpl::Branch { w, disp } => {
                    off += w as u32;
                    DecOp::Branch(pa.wrapping_add(off).wrapping_add(disp as u32))
                }
                OpTpl::Literal(v) => {
                    off += 1;
                    DecOp::Value(v as u32)
                }
                OpTpl::Immediate { w, value } => {
                    off += 1 + w as u32;
                    DecOp::Value(value)
                }
                OpTpl::Register(r) => {
                    off += 1;
                    let width = spec.dtype.bytes();
                    match spec.access {
                        AccessType::Write => DecOp::Loc {
                            loc: OperandLoc::Reg(r),
                            old: None,
                        },
                        AccessType::Read | AccessType::Modify => {
                            self.patches.push(RegPatch {
                                idx: i as u8,
                                reg: r,
                                width: width as u8,
                                modify: spec.access == AccessType::Modify,
                            });
                            DecOp::Value(0) // placeholder, patched per hit
                        }
                        AccessType::Address | AccessType::Branch => unreachable!(),
                    }
                }
                // Simple templates contain no effective-address operands.
                OpTpl::Ea { .. } => unreachable!(),
            });
        }
        debug_assert_eq!(off, self.len as u32);
    }
}

impl OpTpl {
    /// Fetch events a bytewise decode issues for this specifier.
    fn fetch_events(&self) -> u8 {
        match *self {
            // One displacement fetch; no specifier byte.
            OpTpl::Branch { .. } => 1,
            // The specifier byte alone.
            OpTpl::Literal(_) | OpTpl::Register(_) => 1,
            // Specifier byte + the value fetch.
            OpTpl::Immediate { .. } => 2,
            OpTpl::Ea { base, index_reg } => {
                let base_events = match base {
                    BaseTpl::Absolute(_) | BaseTpl::Disp { .. } => 1,
                    _ => 0,
                };
                1 + u8::from(index_reg.is_some()) + base_events
            }
        }
    }
}

fn read_uint(bytes: &[u8], i: &mut usize, len: u32) -> Option<u32> {
    let end = i.checked_add(len as usize)?;
    let chunk = bytes.get(*i..end)?;
    *i = end;
    let mut v = 0u32;
    for (k, b) in chunk.iter().enumerate() {
        v |= (*b as u32) << (8 * k);
    }
    Some(v)
}

fn read_int(bytes: &[u8], i: &mut usize, len: u32) -> Option<i32> {
    let raw = read_uint(bytes, i, len)?;
    Some(match len {
        1 => raw as u8 as i8 as i32,
        2 => raw as u16 as i16 as i32,
        _ => raw as i32,
    })
}

/// Parses the instruction starting at `bytes[0]`, which must be the tail
/// of one physical page. Returns `None` for anything that cannot be
/// templated — unknown opcodes, reserved specifier/access combinations,
/// or an encoding running off the page — leaving those to the bytewise
/// decoder (which raises the architecturally correct fault with the
/// correct cycle charges).
pub(crate) fn parse_template(bytes: &[u8]) -> Option<InstTemplate> {
    debug_assert!(bytes.len() <= PAGE_BYTES as usize);
    let mut i = 0usize;
    let b0 = *bytes.get(i)?;
    i += 1;
    let (op, opcode_bytes) = if b0 == 0xFD {
        let b1 = *bytes.get(i)?;
        i += 1;
        (Opcode::decode(b0, b1)?.0, 2u8)
    } else {
        (Opcode::decode(b0, 0)?.0, 1)
    };
    let mut ops = FixedVec::new();
    let mut fetch_events = opcode_bytes;
    let mut simple = true;
    for spec in op.operands() {
        let top = parse_operand(bytes, &mut i, spec.access, spec.dtype)?;
        fetch_events += top.fetch_events();
        simple &= !matches!(top, OpTpl::Ea { .. });
        ops.push(top);
    }
    Some(InstTemplate {
        op,
        len: i as u8, // fits: an instruction within one 512-byte page
        opcode_bytes,
        fetch_events,
        simple,
        ops,
        baked: FixedVec::new(),
        patches: FixedVec::new(),
    })
}

fn parse_operand(
    bytes: &[u8],
    i: &mut usize,
    access: AccessType,
    dtype: DataType,
) -> Option<OpTpl> {
    if access == AccessType::Branch {
        let w = if dtype == DataType::Byte { 1u32 } else { 2 };
        let disp = read_int(bytes, i, w)?;
        return Some(OpTpl::Branch { w: w as u8, disp });
    }
    let spec = *bytes.get(*i)?;
    *i += 1;
    let mode_bits = spec >> 4;
    let reg = spec & 0xf;
    let width = dtype.bytes();
    match mode_bits {
        0..=3 => (access == AccessType::Read).then_some(OpTpl::Literal(spec & 0x3f)),
        4 => {
            if reg == 15 {
                return None;
            }
            let base = parse_base(bytes, i)?;
            Some(OpTpl::Ea {
                base,
                index_reg: Some(reg),
            })
        }
        5 => {
            if reg == 15 || access == AccessType::Address {
                return None;
            }
            Some(OpTpl::Register(reg))
        }
        8 if reg == 15 => {
            if access != AccessType::Read {
                return None;
            }
            let value = read_uint(bytes, i, width)?;
            Some(OpTpl::Immediate {
                w: width as u8,
                value,
            })
        }
        _ => {
            let base = parse_base_at(bytes, i, mode_bits, reg)?;
            Some(OpTpl::Ea {
                base,
                index_reg: None,
            })
        }
    }
}

fn parse_base(bytes: &[u8], i: &mut usize) -> Option<BaseTpl> {
    let spec = *bytes.get(*i)?;
    *i += 1;
    let mode_bits = spec >> 4;
    let reg = spec & 0xf;
    // Within index mode, literal/register/immediate/index bases are
    // reserved; mode 8 with PC (immediate) is rejected here because
    // `parse_base_at` only sees it as a plain autoincrement.
    if mode_bits < 6 || (mode_bits == 8 && reg == 15) {
        return None;
    }
    parse_base_at(bytes, i, mode_bits, reg)
}

fn parse_base_at(bytes: &[u8], i: &mut usize, mode_bits: u8, reg: u8) -> Option<BaseTpl> {
    Some(match mode_bits {
        6 => BaseTpl::RegDeferred(reg),
        7 => {
            if reg == 15 {
                return None;
            }
            BaseTpl::AutoDec(reg)
        }
        8 => {
            // Mode 8 with PC is immediate, handled (primary specifier)
            // or rejected (index base) by the callers.
            debug_assert_ne!(reg, 15);
            BaseTpl::AutoInc(reg)
        }
        9 => {
            if reg == 15 {
                BaseTpl::Absolute(read_uint(bytes, i, 4)?)
            } else {
                BaseTpl::AutoIncDeferred(reg)
            }
        }
        0xA..=0xF => {
            let (dw, deferred) = match mode_bits {
                0xA => (1u32, false),
                0xB => (1, true),
                0xC => (2, false),
                0xD => (2, true),
                0xE => (4, false),
                _ => (4, true),
            };
            let disp = read_int(bytes, i, dw)?;
            BaseTpl::Disp {
                reg,
                dw: dw as u8,
                disp,
                deferred,
            }
        }
        _ => return None,
    })
}

/// Hit/miss statistics (diagnostic only — deliberately *not* part of
/// [`CpuCounters`](crate::CpuCounters), since they differ with the cache
/// on vs. off while the architectural counters must not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no matching template.
    pub misses: u64,
    /// Misses that could not be filled because the instruction was not
    /// templatable — most commonly a page-crossing encoding — and so
    /// fell back to bytewise decode (a subset of `misses`).
    pub bytewise_fallbacks: u64,
    /// Invalidation events (whole-cache and per-page combined).
    pub invalidations: u64,
}

impl DecodeCacheStats {
    /// Hit fraction over all lookups, or `None` when there have been no
    /// lookups at all (so reports can render `null`/0 instead of NaN).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total != 0).then(|| self.hits as f64 / total as f64)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pa: u32,
    gen: u32,
    /// Saturating execution counter, bumped on every cache hit. The
    /// translation tier reads this to find hot block heads; dropping the
    /// entry (any invalidation) drops the heat with it, so remapped or
    /// rewritten pages cannot retranslate from stale hotness.
    heat: u32,
    tpl: InstTemplate,
}

/// Direct-mapped cache of [`InstTemplate`]s keyed by the physical address
/// of the opcode byte.
#[derive(Debug)]
pub(crate) struct DecodeCache {
    /// Fixed-size boxed array: the power-of-two mask in [`Self::slot`]
    /// then proves every index in bounds, so lookups compile without
    /// bounds checks.
    slots: Box<[Option<Entry>; SLOTS]>,
    /// Generation counter: bumping it is an O(1) `invalidate_all`.
    gen: u32,
    stats: DecodeCacheStats,
}

/// Slot count; must be a power of two and at least one page of slots.
const SLOTS: usize = 8192;

impl DecodeCache {
    pub fn new() -> DecodeCache {
        DecodeCache {
            slots: vec![None; SLOTS]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!()),
            gen: 0,
            stats: DecodeCacheStats::default(),
        }
    }

    #[inline]
    fn slot(pa: u32) -> usize {
        pa as usize & (SLOTS - 1)
    }

    #[inline]
    #[cfg(test)]
    pub fn lookup(&mut self, pa: u32) -> Option<InstTemplate> {
        match self.slots[Self::slot(pa)] {
            Some(e) if e.pa == pa && e.gen == self.gen => {
                self.stats.hits += 1;
                Some(e.tpl)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns the cached template for `pa`, or parses and inserts one
    /// via `fill` on a miss. Returning a reference (rather than a copy)
    /// keeps the hit path free of a template-sized memcpy.
    #[inline]
    pub fn get_or_insert(
        &mut self,
        pa: u32,
        fill: impl FnOnce() -> Option<InstTemplate>,
    ) -> Option<&InstTemplate> {
        let idx = Self::slot(pa);
        match self.slots[idx] {
            Some(ref mut e) if e.pa == pa && e.gen == self.gen => {
                self.stats.hits += 1;
                e.heat = e.heat.saturating_add(1);
            }
            _ => {
                self.stats.misses += 1;
                let Some(tpl) = fill() else {
                    self.stats.bytewise_fallbacks += 1;
                    return None;
                };
                self.slots[idx] = Some(Entry {
                    pa,
                    gen: self.gen,
                    heat: 0,
                    tpl,
                });
            }
        }
        self.slots[idx].as_ref().map(|e| &e.tpl)
    }

    /// Returns the cached template for `pa` without touching statistics
    /// or heat — used by the translator when walking a candidate block.
    #[inline]
    pub fn peek(&self, pa: u32) -> Option<&InstTemplate> {
        match self.slots[Self::slot(pa)] {
            Some(ref e) if e.pa == pa && e.gen == self.gen => Some(&e.tpl),
            _ => None,
        }
    }

    /// The hotness counter for `pa` (0 when not cached). Stats-free.
    #[inline]
    pub fn heat(&self, pa: u32) -> u32 {
        match self.slots[Self::slot(pa)] {
            Some(ref e) if e.pa == pa && e.gen == self.gen => e.heat,
            _ => 0,
        }
    }

    #[cfg(test)]
    pub fn insert(&mut self, pa: u32, tpl: InstTemplate) {
        self.slots[Self::slot(pa)] = Some(Entry {
            pa,
            gen: self.gen,
            heat: 0,
            tpl,
        });
    }

    /// Invalidates everything (TBIA, MAPEN/base-register writes, LDPCTX,
    /// explicit VMM requests).
    pub fn invalidate_all(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        self.stats.invalidations += 1;
        // On the (astronomically unlikely) generation wrap, stale entries
        // could alias the new generation; purge for safety.
        if self.gen == 0 {
            self.slots.fill(None);
        }
    }

    /// Invalidates all entries whose opcode byte lies in physical page
    /// `pfn`. Slot indices are the low PA bits, so one page's entries
    /// occupy `PAGE_BYTES` consecutive slots.
    pub fn invalidate_page(&mut self, pfn: u32) {
        let first = Self::slot(pfn << PAGE_SHIFT);
        for idx in first..first + PAGE_BYTES as usize {
            if let Some(e) = self.slots[idx] {
                if e.pa >> PAGE_SHIFT == pfn {
                    self.slots[idx] = None;
                }
            }
        }
        self.stats.invalidations += 1;
    }

    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpl_of(bytes: &[u8]) -> InstTemplate {
        parse_template(bytes).expect("parseable")
    }

    #[test]
    fn parses_movl_literal_register() {
        // MOVL #5, R0
        let t = tpl_of(&[0xD0, 0x05, 0x50]);
        assert_eq!(t.op, Opcode::Movl);
        assert_eq!(t.len, 3);
        assert_eq!(t.opcode_bytes, 1);
        assert_eq!(t.ops[0], OpTpl::Literal(5));
        assert_eq!(t.ops[1], OpTpl::Register(0));
    }

    #[test]
    fn parses_immediate_and_absolute() {
        // MOVL #0x11223344, @#0x500
        let t = tpl_of(&[
            0xD0, 0x8F, 0x44, 0x33, 0x22, 0x11, 0x9F, 0x00, 0x05, 0x00, 0x00,
        ]);
        assert_eq!(
            t.ops[0],
            OpTpl::Immediate {
                w: 4,
                value: 0x1122_3344
            }
        );
        assert_eq!(
            t.ops[1],
            OpTpl::Ea {
                base: BaseTpl::Absolute(0x500),
                index_reg: None
            }
        );
        assert_eq!(t.len, 11);
    }

    #[test]
    fn parses_displacement_and_index() {
        // MOVL 8(R2), R0
        let t = tpl_of(&[0xD0, 0xA2, 0x08, 0x50]);
        assert_eq!(
            t.ops[0],
            OpTpl::Ea {
                base: BaseTpl::Disp {
                    reg: 2,
                    dw: 1,
                    disp: 8,
                    deferred: false
                },
                index_reg: None
            }
        );
        // MOVL (R2)[R3], R0
        let t = tpl_of(&[0xD0, 0x43, 0x62, 0x50]);
        assert_eq!(
            t.ops[0],
            OpTpl::Ea {
                base: BaseTpl::RegDeferred(2),
                index_reg: Some(3)
            }
        );
    }

    #[test]
    fn parses_branch_displacement() {
        // BRB .-2
        let t = tpl_of(&[0x11, 0xFE]);
        assert_eq!(t.ops[0], OpTpl::Branch { w: 1, disp: -2 });
    }

    #[test]
    fn rejects_reserved_encodings() {
        // CLRL #1: literal as write destination.
        assert!(parse_template(&[0xD4, 0x01]).is_none());
        // MOVAL R1, R0: address of a register.
        assert!(parse_template(&[0xDE, 0x51, 0x50]).is_none());
        // Register base in index mode.
        assert!(parse_template(&[0xD0, 0x41, 0x50]).is_none());
        // Immediate base in index mode.
        assert!(parse_template(&[0xD0, 0x41, 0x8F, 1, 0, 0, 0, 0x50]).is_none());
        // Unknown opcode.
        assert!(parse_template(&[0x40]).is_none());
        assert!(parse_template(&[0xFD, 0x77]).is_none());
    }

    #[test]
    fn rejects_truncated_encodings() {
        assert!(parse_template(&[]).is_none());
        assert!(parse_template(&[0xD0]).is_none());
        assert!(parse_template(&[0xD0, 0x8F, 0x44, 0x33]).is_none());
        assert!(parse_template(&[0xFD]).is_none());
    }

    #[test]
    fn cache_lookup_insert_invalidate() {
        let mut c = DecodeCache::new();
        let t = tpl_of(&[0xD0, 0x05, 0x50]);
        assert!(c.lookup(0x1000).is_none());
        c.insert(0x1000, t);
        assert_eq!(c.lookup(0x1000), Some(t));
        // Different PA aliasing the same slot misses.
        assert!(c.lookup(0x1000 + SLOTS as u32).is_none());
        c.invalidate_all();
        assert!(c.lookup(0x1000).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn page_invalidation_is_targeted() {
        let mut c = DecodeCache::new();
        let t = tpl_of(&[0xD0, 0x05, 0x50]);
        c.insert(0x1000, t); // pfn 8
        c.insert(0x1200, t); // pfn 9
        c.invalidate_page(8);
        assert!(c.lookup(0x1000).is_none());
        assert_eq!(c.lookup(0x1200), Some(t));
    }

    #[test]
    fn heat_accumulates_and_invalidation_drops_it() {
        let mut c = DecodeCache::new();
        let t = tpl_of(&[0xD0, 0x05, 0x50]);
        assert_eq!(c.heat(0x1000), 0);
        for _ in 0..3 {
            c.get_or_insert(0x1000, || Some(t));
        }
        // Insert miss, then two hits.
        assert_eq!(c.heat(0x1000), 2);
        assert_eq!(c.peek(0x1000), Some(&t));
        // Per-page invalidation drops the counter with the entry.
        c.invalidate_page(8);
        assert_eq!(c.heat(0x1000), 0);
        assert!(c.peek(0x1000).is_none());
        // Rebuild, then whole-cache invalidation drops it too.
        for _ in 0..3 {
            c.get_or_insert(0x1000, || Some(t));
        }
        assert_eq!(c.heat(0x1000), 2);
        c.invalidate_all();
        assert_eq!(c.heat(0x1000), 0);
    }

    #[test]
    fn bytewise_fallbacks_are_counted() {
        let mut c = DecodeCache::new();
        assert!(c.get_or_insert(0x1000, || None).is_none());
        assert!(c.get_or_insert(0x1000, || None).is_none());
        let s = c.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.bytewise_fallbacks, 2);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let mut c = DecodeCache::new();
        assert_eq!(c.stats().hit_rate(), None);
        let t = tpl_of(&[0xD0, 0x05, 0x50]);
        c.get_or_insert(0x1000, || Some(t));
        c.get_or_insert(0x1000, || Some(t));
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }
}
