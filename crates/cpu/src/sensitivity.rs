//! A dynamic Popek–Goldberg sensitivity scan (regenerates paper Table 1).
//!
//! For every implemented opcode, this harness executes the instruction
//! from **user mode** with benign operands and records what actually
//! happened: retired directly, took the privileged-instruction trap, took
//! some other architectural trap, or (on a modified machine running a VM)
//! took the VM-emulation trap. Combined with the static classification in
//! [`vax_arch::opcode`], this demonstrates the paper's central problem —
//! on the standard VAX the sensitive instructions CHMx, REI, MOVPSL, and
//! PROBEx execute (or trap somewhere other than privileged software)
//! without giving a monitor control — and verifies that the modified
//! architecture repairs it.

// Diagnostic scan harness: every unwrap targets a machine this module
// constructs itself with statically in-bounds addresses, so failures are
// programming errors, not runtime conditions worth plumbing.
#![allow(clippy::unwrap_used)]

use crate::event::{StepEvent, VmExit};
use crate::machine::{ExecTier, Machine};
use vax_arch::opcode::SensitiveData;
use vax_arch::{AccessMode, MachineVariant, Opcode, Protection, Psl, Pte, ScbVector, VmPsl};

/// What happened when the instruction was executed from user mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Retired without any trap: for a sensitive instruction, a
    /// Popek–Goldberg violation.
    Retired,
    /// Trapped through the reserved/privileged-instruction vector.
    PrivilegedTrap,
    /// Trapped through some other SCB vector (e.g. CHMx's own vector),
    /// still without giving privileged software on the *real* machine
    /// control in a VM setting.
    OtherTrap(u32),
    /// Took the paper's VM-emulation trap to the VMM.
    VmEmulationTrap,
    /// Halted or produced an unexpected machine state.
    Other,
}

impl core::fmt::Display for ScanOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScanOutcome::Retired => f.write_str("executes directly"),
            ScanOutcome::PrivilegedTrap => f.write_str("privileged-instruction trap"),
            ScanOutcome::OtherTrap(v) => write!(f, "traps via SCB {v:#x}"),
            ScanOutcome::VmEmulationTrap => f.write_str("VM-emulation trap"),
            ScanOutcome::Other => f.write_str("other"),
        }
    }
}

/// One scanned opcode.
#[derive(Debug, Clone)]
pub struct SensitivityFinding {
    /// The instruction.
    pub opcode: Opcode,
    /// Statically, is it privileged?
    pub privileged: bool,
    /// The sensitive data it touches (empty if innocuous).
    pub sensitive_data: &'static [SensitiveData],
    /// What dynamically happened in user mode.
    pub outcome: ScanOutcome,
}

impl SensitivityFinding {
    /// True if this is a Popek–Goldberg violation: a sensitive instruction
    /// that did not trap to privileged software.
    pub fn is_violation(&self) -> bool {
        !self.sensitive_data.is_empty()
            && matches!(
                self.outcome,
                ScanOutcome::Retired | ScanOutcome::OtherTrap(_)
            )
    }
}

const CODE_BASE: u32 = 0x8000_0400; // S page 2
const SCRATCH: u32 = 0x8000_0A00; // S page 5
const HANDLER: u32 = 0x8000_0C00; // S page 6
const USER_SP: u32 = 0x8000_1000; // top of S page 7
const SCB_PA: u32 = 0x6000;
const SPT_PA: u32 = 0x7000;

/// Builds a machine with user-writable identity-mapped S space, an SCB
/// whose every vector points at a HALT handler, and user mode selected.
fn harness(variant: MachineVariant) -> Machine {
    let mut m = Machine::new(variant, 128 * 1024);
    // SPT: map S pages 0..32 to physical pages 0..32, all UW so user-mode
    // test code can run and write anywhere in the window.
    for page in 0..32u32 {
        let pte = Pte::build(page, Protection::Uw, true, true);
        m.mem_mut().write_u32(SPT_PA + 4 * page, pte.raw()).unwrap();
    }
    m.mmu_mut().set_sbr(SPT_PA);
    m.mmu_mut().set_slr(32);
    m.mmu_mut().set_mapen(true);
    // Standard machines set PTE<M> in hardware; the harness pages above
    // are pre-modified so writes don't fault on modified machines either.
    // SCB: every vector -> HALT handler (physical address of HANDLER page).
    for off in (0..0x140u32).step_by(4) {
        m.mem_mut().write_u32(SCB_PA + off, HANDLER).unwrap();
    }
    m.set_scbb(SCB_PA);
    // Handler: HALT (kernel mode reaches it through the SCB).
    m.mem_mut().write_u8(HANDLER & 0x00ff_ffff, 0x00).unwrap();
    // User mode, user previous mode, IPL 0.
    let mut psl = Psl::new();
    psl.set_cur_mode(AccessMode::User);
    psl.set_prv_mode(AccessMode::User);
    m.set_psl(psl);
    m.set_reg(14, USER_SP);
    m.set_sp_for_mode(AccessMode::Kernel, 0x8000_1200);
    m.set_isp(0x8000_1400);
    m
}

/// Encodes a benign instance of `op` at `CODE_BASE`.
fn encode_test_instruction(m: &mut Machine, op: Opcode) -> u32 {
    let mut bytes: Vec<u8> = Vec::new();
    let (enc, n) = op.encoding();
    bytes.extend_from_slice(&enc[..n]);
    for spec in op.operands() {
        use vax_arch::{AccessType, DataType};
        match spec.access {
            AccessType::Read => {
                bytes.push(0x01); // short literal 1
            }
            AccessType::Write | AccessType::Modify => {
                bytes.push(0x9F); // absolute
                bytes.extend_from_slice(&SCRATCH.to_le_bytes());
            }
            AccessType::Address => {
                bytes.push(0x9F);
                bytes.extend_from_slice(&SCRATCH.to_le_bytes());
            }
            AccessType::Branch => {
                let w = if spec.dtype == DataType::Byte { 1 } else { 2 };
                bytes.extend(std::iter::repeat_n(0, w));
            }
        }
    }
    // Terminate with a HALT so a retired instruction stops the harness on
    // the next step (in user mode, HALT itself traps — detect via PC).
    bytes.push(0x00);
    let pa = CODE_BASE & 0x00ff_ffff;
    m.mem_mut().write_slice(pa, &bytes).unwrap();
    m.set_pc(CODE_BASE);
    CODE_BASE + (bytes.len() as u32 - 1)
}

/// Pre-state needed by specific instructions (e.g. a plausible REI frame).
fn prime(m: &mut Machine, op: Opcode) {
    if op == Opcode::Rei {
        // User stack holds a PC/PSL pair returning to user mode.
        let mut img = Psl::new();
        img.set_cur_mode(AccessMode::User);
        img.set_prv_mode(AccessMode::User);
        let sp = USER_SP - 8;
        let pa = sp & 0x00ff_ffff;
        m.mem_mut().write_u32(pa, CODE_BASE + 1).unwrap(); // PC
        m.mem_mut().write_u32(pa + 4, img.raw()).unwrap(); // PSL
        m.set_reg(14, sp);
    }
    if op == Opcode::Ret {
        // Fabricate a minimal CALLS frame at FP.
        let fp = USER_SP - 64;
        let pa = fp & 0x00ff_ffff;
        m.mem_mut().write_u32(pa, 0).unwrap(); // handler
        m.mem_mut().write_u32(pa + 4, 1 << 29).unwrap(); // mask|S
        m.mem_mut().write_u32(pa + 8, 0).unwrap(); // AP
        m.mem_mut().write_u32(pa + 12, fp).unwrap(); // FP
        m.mem_mut().write_u32(pa + 16, CODE_BASE).unwrap(); // PC
        m.mem_mut().write_u32(pa + 20, 0).unwrap(); // numarg for CALLS pop
        m.set_reg(13, fp);
    }
    if op == Opcode::Rsb {
        let sp = USER_SP - 4;
        m.mem_mut().write_u32(sp & 0x00ff_ffff, CODE_BASE).unwrap();
        m.set_reg(14, sp);
    }
    if op == Opcode::Calls {
        // Entry mask of 0 at the destination.
        m.mem_mut().write_u16(SCRATCH & 0x00ff_ffff, 0).unwrap();
    }
}

/// Runs the scan for one opcode under the given execution tier.
fn scan_one(
    variant: MachineVariant,
    in_vm: bool,
    op: Opcode,
    tier: ExecTier,
) -> SensitivityFinding {
    let mut m = harness(variant);
    m.set_exec_tier(tier);
    encode_test_instruction(&mut m, op);
    prime(&mut m, op);
    if in_vm {
        m.enter_vm(VmPsl::new(AccessMode::Kernel, AccessMode::Kernel));
        // Ring compression would run VM-kernel in real executive mode.
        let mut psl = m.psl();
        psl.set_cur_mode(AccessMode::Executive);
        psl.set_prv_mode(AccessMode::Executive);
        psl.set_vm(true);
        m.set_psl(psl);
    }
    let before = m.counters();
    let outcome = match m.step() {
        StepEvent::VmExit(VmExit::Emulation(_)) => ScanOutcome::VmEmulationTrap,
        StepEvent::VmExit(VmExit::Exception(e)) => {
            if e.vector() == ScbVector::ReservedInstruction {
                ScanOutcome::PrivilegedTrap
            } else {
                ScanOutcome::OtherTrap(e.vector().offset())
            }
        }
        StepEvent::VmExit(VmExit::Interrupt { .. }) => ScanOutcome::Other,
        StepEvent::Halted(_) => ScanOutcome::Other,
        StepEvent::Ok => {
            let after = m.counters();
            if after.exceptions > before.exceptions {
                // Delivered through the SCB: which vector? Recover it
                // from the handler PC (all vectors point at HANDLER) and
                // the frame: we instead re-derive from PSL mode + PC.
                if m.pc() == HANDLER {
                    // Distinguish privileged-instruction trap from other
                    // vectors by the opcode's architectural dispatch.
                    if op.is_privileged() {
                        ScanOutcome::PrivilegedTrap
                    } else if let Some(target) = op.chm_target() {
                        ScanOutcome::OtherTrap(ScbVector::for_chm_mode(target).offset())
                    } else {
                        ScanOutcome::OtherTrap(0)
                    }
                } else {
                    ScanOutcome::Other
                }
            } else {
                ScanOutcome::Retired
            }
        }
    };
    SensitivityFinding {
        opcode: op,
        privileged: op.is_privileged(),
        sensitive_data: op.sensitive_data(),
        outcome,
    }
}

/// Scans every implemented opcode from user mode.
///
/// With `in_vm == false` the instruction runs on the bare machine in user
/// mode. With `in_vm == true` (modified machines only) it runs inside a
/// VM whose virtual mode is kernel, compressed to real executive mode.
///
/// # Panics
///
/// Panics if `in_vm` is requested on a standard machine.
pub fn scan_sensitivity(variant: MachineVariant, in_vm: bool) -> Vec<SensitivityFinding> {
    scan_sensitivity_on(variant, in_vm, ExecTier::Cache)
}

/// [`scan_sensitivity`] under an explicit execution tier. The dynamic
/// Table-1 classification is an architectural property, so it must not
/// depend on how guest code executes — the mapped user-mode harness runs
/// through the translated tier's dispatch gate like any other guest, and
/// every tier must report identical outcomes.
pub fn scan_sensitivity_on(
    variant: MachineVariant,
    in_vm: bool,
    tier: ExecTier,
) -> Vec<SensitivityFinding> {
    Opcode::ALL
        .iter()
        .map(|&op| scan_one(variant, in_vm, op, tier))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(findings: &[SensitivityFinding], op: Opcode) -> &SensitivityFinding {
        findings.iter().find(|f| f.opcode == op).unwrap()
    }

    #[test]
    fn standard_vax_violates_popek_goldberg() {
        let findings = scan_sensitivity(MachineVariant::Standard, false);
        // MOVPSL executes directly in user mode, revealing PSL<CUR>.
        assert_eq!(
            finding(&findings, Opcode::Movpsl).outcome,
            ScanOutcome::Retired
        );
        assert!(finding(&findings, Opcode::Movpsl).is_violation());
        // REI executes directly from user mode.
        assert_eq!(
            finding(&findings, Opcode::Rei).outcome,
            ScanOutcome::Retired
        );
        // PROBER executes directly.
        assert_eq!(
            finding(&findings, Opcode::Prober).outcome,
            ScanOutcome::Retired
        );
        // CHMK traps, but through its own vector — not to a monitor.
        assert!(matches!(
            finding(&findings, Opcode::Chmk).outcome,
            ScanOutcome::OtherTrap(_)
        ));
        assert!(finding(&findings, Opcode::Chmk).is_violation());
        // Ordinary memory writes retire and implicitly set PTE<M>.
        assert_eq!(
            finding(&findings, Opcode::Movl).outcome,
            ScanOutcome::Retired
        );
        // Privileged instructions do trap.
        assert_eq!(
            finding(&findings, Opcode::Mtpr).outcome,
            ScanOutcome::PrivilegedTrap
        );
        assert_eq!(
            finding(&findings, Opcode::Ldpctx).outcome,
            ScanOutcome::PrivilegedTrap
        );
    }

    #[test]
    fn modified_vax_in_vm_traps_all_sensitive_instructions() {
        let findings = scan_sensitivity(MachineVariant::Modified, true);
        for op in [
            Opcode::Rei,
            Opcode::Chmk,
            Opcode::Chme,
            Opcode::Chms,
            Opcode::Chmu,
            Opcode::Mtpr,
            Opcode::Mfpr,
            Opcode::Halt,
            Opcode::Ldpctx,
            Opcode::Svpctx,
            Opcode::Wait,
            Opcode::Probevmr,
            Opcode::Probevmw,
        ] {
            assert_eq!(
                finding(&findings, op).outcome,
                ScanOutcome::VmEmulationTrap,
                "{op} must take the VM-emulation trap from VM-kernel mode"
            );
        }
        // MOVPSL is handled in microcode: no trap, and no violation
        // because it returns the VM's PSL.
        assert_eq!(
            finding(&findings, Opcode::Movpsl).outcome,
            ScanOutcome::Retired
        );
        // Innocuous instructions still execute directly (efficiency).
        assert_eq!(
            finding(&findings, Opcode::Addl2).outcome,
            ScanOutcome::Retired
        );
        assert_eq!(
            finding(&findings, Opcode::Brb).outcome,
            ScanOutcome::Retired
        );
    }

    #[test]
    fn sensitivity_scan_is_tier_invariant() {
        for (variant, in_vm) in [
            (MachineVariant::Standard, false),
            (MachineVariant::Modified, false),
            (MachineVariant::Modified, true),
        ] {
            let oracle = scan_sensitivity_on(variant, in_vm, ExecTier::Interp);
            for tier in [ExecTier::Cache, ExecTier::Trans] {
                let got = scan_sensitivity_on(variant, in_vm, tier);
                for (a, b) in oracle.iter().zip(got.iter()) {
                    assert_eq!(a.opcode, b.opcode);
                    assert_eq!(
                        a.outcome, b.outcome,
                        "{} classification changed under {tier:?} ({variant:?}, in_vm={in_vm})",
                        a.opcode
                    );
                }
            }
        }
    }

    #[test]
    fn violations_exist_only_on_standard() {
        let std_violations: Vec<_> = scan_sensitivity(MachineVariant::Standard, false)
            .into_iter()
            .filter(|f| f.is_violation() && f.opcode.is_table1_instruction())
            .map(|f| f.opcode)
            .collect();
        assert!(std_violations.contains(&Opcode::Rei));
        assert!(std_violations.contains(&Opcode::Movpsl));
        assert!(std_violations.contains(&Opcode::Prober));

        // In a VM on the modified VAX, the named Table-1 offenders either
        // trap for emulation or (MOVPSL) are compressed in microcode.
        let vm = scan_sensitivity(MachineVariant::Modified, true);
        for f in vm.iter().filter(|f| f.opcode.is_table1_instruction()) {
            let fixed = f.outcome == ScanOutcome::VmEmulationTrap
                || f.opcode == Opcode::Movpsl
                || matches!(f.opcode, Opcode::Prober | Opcode::Probew);
            assert!(fixed, "{} not handled: {:?}", f.opcode, f.outcome);
        }
    }
}
