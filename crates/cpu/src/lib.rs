#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! A behavioral VAX-subset CPU simulator with the ISCA '91 virtualization
//! microcode extensions.
//!
//! The [`Machine`] executes real VAX machine code (assembled with
//! `vax-asm`) against the `vax-mem` memory subsystem. Built as
//! [`MachineVariant::Standard`](vax_arch::MachineVariant::Standard) it
//! reproduces the base architecture — including its Popek–Goldberg
//! violations (sensitive unprivileged CHMx/REI/MOVPSL/PROBEx). Built as
//! `Modified` it adds the paper's microcode:
//!
//! * `PSL<VM>` and the `VMPSL` register;
//! * the **VM-emulation trap**, surfacing as
//!   [`StepEvent::VmExit`]`(`[`VmExit::Emulation`]`)` with a fully decoded
//!   operand packet;
//! * the `MOVPSL` microcode merge and the `PROBE` valid-shadow fast path;
//! * the **modify fault** instead of hardware `PTE<M>` setting;
//! * `PROBEVMR`/`PROBEVMW`, and `WAIT` (meaningful only inside a VM).
//!
//! The VMM in `vax-vmm` embeds a modified machine and services its
//! `VmExit`s; guest operating systems from `vax-os` run on either variant
//! unchanged — the paper's equivalence property.
//!
//! # Example
//!
//! ```
//! use vax_arch::MachineVariant;
//! use vax_cpu::{Machine, StepEvent};
//!
//! let program = vax_asm::assemble_text("
//!         movl #10, r0
//!         clrl r1
//!     top: addl2 r0, r1
//!         sobgtr r0, top
//!         halt
//! ", 0x200)?;
//!
//! let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
//! m.mem_mut().write_slice(program.base, &program.bytes)?;
//! m.set_pc(program.base);
//! while m.step() == StepEvent::Ok {}
//! assert_eq!(m.reg(1), 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bus;
pub mod counters;
pub mod decode;
pub mod event;
pub mod except;
pub mod exec;
pub mod fixedvec;
pub mod icache;
pub mod machine;
pub mod sensitivity;
pub mod trans;
pub mod uop;

pub use bus::{Bus, IrqRequest, MmioDevice, IO_BASE_PA};
pub use counters::CpuCounters;
pub use event::{HaltReason, OperandLoc, OperandValue, StepEvent, VmExit, VmTrapInfo};
pub use fixedvec::FixedVec;
pub use icache::DecodeCacheStats;
pub use machine::{ExecTier, Machine, MachineState, TimerState, TIMER_IPL};
pub use sensitivity::{scan_sensitivity, ScanOutcome, SensitivityFinding};
pub use trans::{SuperblockProfile, TransStats};
