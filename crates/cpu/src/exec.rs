//! Instruction semantics, including the modified-architecture dispatch:
//! which instructions execute directly, which trap for VM emulation, and
//! which get the microcode fast paths (MOVPSL merge, PROBE against a valid
//! shadow PTE).

use crate::decode::{mask_width, Abort, DecOp, Decoded};
use crate::event::VmTrapInfo;
use crate::machine::Machine;
use vax_arch::{
    AccessMode, ArithmeticCode, DataType, Exception, Ipr, MachineVariant, Opcode, Psl, VirtAddr,
};

/// What execution produced.
#[derive(Debug)]
pub(crate) enum ExecOutcome {
    /// The instruction retired normally.
    Retired,
    /// HALT in kernel mode.
    Halt,
    /// A VM-emulation trap for the VMM (PSL<VM> still set; the step loop
    /// clears it).
    VmTrap(Box<VmTrapInfo>),
}

/// Saved register values for rollback if a commit-phase write faults.
struct Saved(crate::decode::RegUpdates);

impl Machine {
    #[inline]
    fn begin_commit(&mut self, d: &Decoded) -> Saved {
        let mut saved = crate::decode::RegUpdates::new();
        // Most instructions have no register side effects; skip the
        // commit walk entirely for them.
        if !d.reg_updates.is_empty() {
            for (r, _) in &d.reg_updates {
                saved.push((*r, self.reg(*r as usize)));
            }
            self.commit_reg_updates(d);
        }
        Saved(saved)
    }

    fn rollback(&mut self, saved: Saved) {
        for (r, v) in saved.0.iter().rev() {
            self.set_reg(*r as usize, *v);
        }
    }

    fn make_vm_trap(&self, d: &Decoded) -> Box<VmTrapInfo> {
        Box::new(VmTrapInfo {
            opcode: d.op,
            pc: d.pc_start,
            next_pc: d.next_pc,
            vm_psl: self.vmpsl.merge_into(self.psl),
            operands: d.operands.iter().map(|o| o.to_operand_value()).collect(),
            reg_side_effects: d.reg_updates.to_vec(),
        })
    }

    pub(crate) fn set_nzvc(&mut self, n: bool, z: bool, v: bool, c: bool) {
        self.psl.set_nzvc(n, z, v, c);
    }

    pub(crate) fn set_nzv_keep_c(&mut self, value: u32, width: u32) {
        let m = mask_width(value, width);
        let sign = match width {
            1 => m & 0x80 != 0,
            2 => m & 0x8000 != 0,
            _ => m & 0x8000_0000 != 0,
        };
        self.psl.set_flag(Psl::N, sign);
        self.psl.set_flag(Psl::Z, m == 0);
        self.psl.set_flag(Psl::V, false);
    }

    /// Executes a decoded instruction. Commits on success; leaves the
    /// machine at the instruction boundary on `Err`.
    pub(crate) fn execute(&mut self, d: &Decoded) -> Result<ExecOutcome, Abort> {
        use Opcode::*;
        let op = d.op;
        let cur_mode = self.psl.cur_mode();
        let in_vm = self.psl.vm();

        // ---- Modified-architecture dispatch (paper §4.2, §4.4.1) ----
        if in_vm {
            match op {
                // Unprivileged sensitive: always trap for emulation.
                Chmk | Chme | Chms | Chmu => {
                    self.counters.chm += 1;
                    return Ok(ExecOutcome::VmTrap(self.make_vm_trap(d)));
                }
                Rei => {
                    self.counters.rei += 1;
                    return Ok(ExecOutcome::VmTrap(self.make_vm_trap(d)));
                }
                // Privileged sensitive: trap for emulation only from
                // VM-kernel mode; otherwise an ordinary privileged-
                // instruction trap (which, in VM mode, the VMM reflects).
                Halt | Ldpctx | Svpctx | Mtpr | Mfpr | Wait | Probevmr | Probevmw => {
                    if self.vmpsl.cur_mode() == AccessMode::Kernel {
                        return Ok(ExecOutcome::VmTrap(self.make_vm_trap(d)));
                    }
                    return Err(Exception::ReservedInstruction.into());
                }
                // MOVPSL and PROBE have microcode fast paths below.
                _ => {}
            }
        } else if op.is_privileged() && cur_mode != AccessMode::Kernel {
            return Err(Exception::ReservedInstruction.into());
        }

        match op {
            Nop => {
                let _ = self.begin_commit(d);
                self.set_pc(d.next_pc);
                Ok(ExecOutcome::Retired)
            }
            Halt => {
                self.set_pc(d.next_pc);
                Ok(ExecOutcome::Halt)
            }
            Bpt => Err(Exception::Breakpoint.into()),
            Wait => {
                // Not implemented on real machines (standard or modified):
                // privileged-instruction trap (paper Table 4). Only a VM
                // gives up the processor with it.
                Err(Exception::ReservedInstruction.into())
            }

            // ---- moves, converts, and logic ----
            Movl | Movzbl | Movzwl | Movzbw | Movb | Movw | Mcoml | Mnegl | Moval | Cvtbl
            | Cvtbw | Cvtwl | Cvtwb | Cvtlb | Cvtlw => {
                let width = match op {
                    Movb | Cvtwb | Cvtlb => 1,
                    Movw | Movzbw | Cvtbw | Cvtlw => 2,
                    _ => 4,
                };
                let src = d.operands[0].value();
                let value = match op {
                    Mcoml => !src,
                    Mnegl => 0u32.wrapping_sub(src),
                    // Sign-extending converts.
                    Cvtbl | Cvtbw => src as u8 as i8 as i32 as u32,
                    Cvtwl => src as u16 as i16 as i32 as u32,
                    _ => src,
                };
                // Narrowing converts detect signed overflow.
                let narrow_overflow = match op {
                    Cvtlb | Cvtwb => {
                        let v = sign_extend(src, if op == Cvtlb { 4 } else { 2 });
                        i8::try_from(v).is_err()
                    }
                    Cvtlw => i16::try_from(src as i32).is_err(),
                    Cvtbw => false,
                    _ => false,
                };
                let DecOp::Loc { loc, .. } = d.operands[1] else {
                    unreachable!()
                };
                let saved = self.begin_commit(d);
                let dtype = match width {
                    1 => DataType::Byte,
                    2 => DataType::Word,
                    _ => DataType::Long,
                };
                if let Err(e) = self.write_loc(loc, value, dtype, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                if op == Mnegl {
                    let n = (value as i32) < 0;
                    let z = value == 0;
                    let v = src == 0x8000_0000;
                    let c = src != 0; // borrow out of 0 - src
                    self.set_nzvc(n, z, v, c);
                } else {
                    self.set_nzv_keep_c(value, width);
                    if narrow_overflow {
                        self.psl.set_flag(Psl::V, true);
                        if self.psl.flag(Psl::IV) {
                            return Err(
                                Exception::Arithmetic(ArithmeticCode::IntegerOverflow).into()
                            );
                        }
                    }
                }
                Ok(ExecOutcome::Retired)
            }
            Clrl | Clrb | Clrw => {
                let width = match op {
                    Clrb => DataType::Byte,
                    Clrw => DataType::Word,
                    _ => DataType::Long,
                };
                let DecOp::Loc { loc, .. } = d.operands[0] else {
                    unreachable!()
                };
                let saved = self.begin_commit(d);
                if let Err(e) = self.write_loc(loc, 0, width, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                self.psl.set_flag(Psl::N, false);
                self.psl.set_flag(Psl::Z, true);
                self.psl.set_flag(Psl::V, false);
                Ok(ExecOutcome::Retired)
            }
            Tstl | Tstb | Tstw => {
                let width = match op {
                    Tstb => 1,
                    Tstw => 2,
                    _ => 4,
                };
                let v = d.operands[0].value();
                let _ = self.begin_commit(d);
                self.set_pc(d.next_pc);
                self.set_nzv_keep_c(v, width);
                self.psl.set_flag(Psl::C, false);
                Ok(ExecOutcome::Retired)
            }
            Cmpl | Cmpb | Cmpw => {
                let width = match op {
                    Cmpb => 1u32,
                    Cmpw => 2,
                    _ => 4,
                };
                let a = sign_extend(d.operands[0].value(), width);
                let b = sign_extend(d.operands[1].value(), width);
                let ua = mask_width(d.operands[0].value(), width);
                let ub = mask_width(d.operands[1].value(), width);
                let _ = self.begin_commit(d);
                self.set_pc(d.next_pc);
                self.set_nzvc(a < b, a == b, false, ua < ub);
                Ok(ExecOutcome::Retired)
            }
            Bitl => {
                let r = d.operands[0].value() & d.operands[1].value();
                let _ = self.begin_commit(d);
                self.set_pc(d.next_pc);
                self.set_nzv_keep_c(r, 4);
                Ok(ExecOutcome::Retired)
            }

            // ---- integer arithmetic ----
            Addl2 | Addl3 | Subl2 | Subl3 | Mull2 | Mull3 | Divl2 | Divl3 | Bisl2 | Bisl3
            | Bicl2 | Bicl3 | Xorl2 | Xorl3 | Incl | Decl | Incb | Decb => {
                self.exec_arith(d, op, cur_mode)
            }
            Ashl => {
                let cnt = d.operands[0].value() as u8 as i8;
                let src = d.operands[1].value();
                let (value, overflow) = ash(src, cnt);
                let DecOp::Loc { loc, .. } = d.operands[2] else {
                    unreachable!()
                };
                let saved = self.begin_commit(d);
                if let Err(e) = self.write_loc(loc, value, DataType::Long, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                self.set_nzvc((value as i32) < 0, value == 0, overflow, false);
                Ok(ExecOutcome::Retired)
            }

            // ---- branches and flow control ----
            Brb | Brw => {
                let target = d.operands[0].value();
                let _ = self.begin_commit(d);
                self.set_pc(target);
                Ok(ExecOutcome::Retired)
            }
            Bneq | Beql | Bgtr | Bleq | Bgeq | Blss | Bgtru | Blequ | Bvc | Bvs | Bgequ | Blssu => {
                let take = self.condition(op);
                let target = d.operands[0].value();
                let _ = self.begin_commit(d);
                self.set_pc(if take { target } else { d.next_pc });
                Ok(ExecOutcome::Retired)
            }
            Bbs | Bbc | Bbss | Bbcc => {
                let pos = d.operands[0].value();
                let DecOp::Addr(base) = d.operands[1] else {
                    unreachable!()
                };
                let target = d.operands[2].value();
                // Bit fields in memory: byte at base + (pos >> 3), bit
                // pos & 7 (pos is signed on the real VAX; our subset uses
                // non-negative positions).
                let byte_va = base.wrapping_add(pos >> 3);
                let bit = 1u32 << (pos & 7);
                let old = self.read_virt(byte_va, 1, cur_mode)?;
                let set = old & bit != 0;
                let saved = self.begin_commit(d);
                if matches!(op, Bbss | Bbcc) {
                    let new = if op == Bbss { old | bit } else { old & !bit };
                    if let Err(e) = self.write_virt(byte_va, new, 1, cur_mode) {
                        self.rollback(saved);
                        return Err(e.into());
                    }
                }
                let take = set == matches!(op, Bbs | Bbss);
                self.set_pc(if take { target } else { d.next_pc });
                Ok(ExecOutcome::Retired)
            }
            Insque => {
                // Insert `entry` after `pred` in a doubly-linked queue of
                // absolute addresses (flink at +0, blink at +4).
                let DecOp::Addr(entry) = d.operands[0] else {
                    unreachable!()
                };
                let DecOp::Addr(pred) = d.operands[1] else {
                    unreachable!()
                };
                let successor = self.read_virt(pred, 4, cur_mode)?;
                let saved = self.begin_commit(d);
                let result: Result<(), Abort> = (|| {
                    self.write_virt(entry, successor, 4, cur_mode)?;
                    self.write_virt(entry.wrapping_add(4), pred.raw(), 4, cur_mode)?;
                    self.write_virt(
                        VirtAddr::new(successor).wrapping_add(4),
                        entry.raw(),
                        4,
                        cur_mode,
                    )?;
                    self.write_virt(pred, entry.raw(), 4, cur_mode)?;
                    Ok(())
                })();
                if let Err(e) = result {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                // Z: the entry is the queue's first (pred was empty).
                self.set_nzvc(false, successor == pred.raw(), false, false);
                Ok(ExecOutcome::Retired)
            }
            Remque => {
                let DecOp::Addr(entry) = d.operands[0] else {
                    unreachable!()
                };
                let DecOp::Loc { loc, .. } = d.operands[1] else {
                    unreachable!()
                };
                let flink = self.read_virt(entry, 4, cur_mode)?;
                let blink = self.read_virt(entry.wrapping_add(4), 4, cur_mode)?;
                // V: removing from an empty queue (entry linked to itself).
                let was_empty = flink == entry.raw();
                let saved = self.begin_commit(d);
                let result: Result<(), Abort> = (|| {
                    if !was_empty {
                        self.write_virt(VirtAddr::new(blink), flink, 4, cur_mode)?;
                        self.write_virt(VirtAddr::new(flink).wrapping_add(4), blink, 4, cur_mode)?;
                    }
                    self.write_loc(loc, entry.raw(), DataType::Long, cur_mode)?;
                    Ok(())
                })();
                if let Err(e) = result {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                // Z: queue now empty.
                self.set_nzvc(false, flink == blink, was_empty, false);
                Ok(ExecOutcome::Retired)
            }
            Blbs | Blbc => {
                let v = d.operands[0].value();
                let take = (v & 1 == 1) == (op == Blbs);
                let target = d.operands[1].value();
                let _ = self.begin_commit(d);
                self.set_pc(if take { target } else { d.next_pc });
                Ok(ExecOutcome::Retired)
            }
            Casel => {
                // Dispatch: a table of word displacements follows the
                // operands; the selected entry is relative to the table's
                // base. Out-of-range selectors fall through past the
                // table.
                let sel = d.operands[0].value();
                let base = d.operands[1].value();
                let limit = d.operands[2].value();
                let i = sel.wrapping_sub(base);
                let _ = self.begin_commit(d);
                let table = d.next_pc;
                if i <= limit {
                    let raw =
                        self.read_virt(VirtAddr::new(table.wrapping_add(2 * i)), 2, cur_mode)?;
                    let disp = raw as u16 as i16 as i32;
                    self.set_pc(table.wrapping_add(disp as u32));
                } else {
                    self.set_pc(table.wrapping_add(2 * (limit.wrapping_add(1))));
                }
                // Condition codes from the comparison of i and limit.
                self.set_nzvc(false, i == limit, false, i > limit);
                Ok(ExecOutcome::Retired)
            }
            Jmp => {
                let DecOp::Addr(a) = d.operands[0] else {
                    unreachable!()
                };
                let _ = self.begin_commit(d);
                self.set_pc(a.raw());
                Ok(ExecOutcome::Retired)
            }
            Jsb | Bsbb | Bsbw => {
                let target = match d.operands[0] {
                    DecOp::Addr(a) => a.raw(),
                    DecOp::Branch(t) => t,
                    _ => unreachable!(),
                };
                let saved = self.begin_commit(d);
                if let Err(e) = self.push(d.next_pc) {
                    self.rollback(saved);
                    return Err(e.into());
                }
                self.set_pc(target);
                Ok(ExecOutcome::Retired)
            }
            Rsb => {
                let ret = self.pop()?;
                self.set_pc(ret);
                Ok(ExecOutcome::Retired)
            }
            Sobgeq | Sobgtr => {
                let DecOp::Loc {
                    loc,
                    old: Some(old),
                } = d.operands[0]
                else {
                    unreachable!()
                };
                let new = old.wrapping_sub(1);
                let target = d.operands[1].value();
                let saved = self.begin_commit(d);
                if let Err(e) = self.write_loc(loc, new, DataType::Long, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                let take = if op == Sobgtr {
                    (new as i32) > 0
                } else {
                    (new as i32) >= 0
                };
                self.set_pc(if take { target } else { d.next_pc });
                let v = old == 0x8000_0000;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
                Ok(ExecOutcome::Retired)
            }
            Aoblss | Aobleq => {
                let limit = d.operands[0].value() as i32;
                let DecOp::Loc {
                    loc,
                    old: Some(old),
                } = d.operands[1]
                else {
                    unreachable!()
                };
                let new = old.wrapping_add(1);
                let target = d.operands[2].value();
                let saved = self.begin_commit(d);
                if let Err(e) = self.write_loc(loc, new, DataType::Long, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                let take = if op == Aoblss {
                    (new as i32) < limit
                } else {
                    (new as i32) <= limit
                };
                self.set_pc(if take { target } else { d.next_pc });
                let v = old == 0x7fff_ffff;
                self.set_nzvc((new as i32) < 0, new == 0, v, self.psl.flag(Psl::C));
                Ok(ExecOutcome::Retired)
            }

            // ---- stack and calls ----
            Pushl | Pushal => {
                let value = d.operands[0].value();
                let saved = self.begin_commit(d);
                if let Err(e) = self.push(value) {
                    self.rollback(saved);
                    return Err(e.into());
                }
                self.set_pc(d.next_pc);
                self.set_nzv_keep_c(value, 4);
                Ok(ExecOutcome::Retired)
            }
            Calls => self.exec_calls(d, cur_mode),
            Ret => self.exec_ret(d),

            // ---- strings ----
            Movc3 => {
                let len = d.operands[0].value() & 0xffff;
                let DecOp::Addr(src) = d.operands[1] else {
                    unreachable!()
                };
                let DecOp::Addr(dst) = d.operands[2] else {
                    unreachable!()
                };
                let _ = self.begin_commit(d);
                for i in 0..len {
                    let b = self.read_virt(src.wrapping_add(i), 1, cur_mode)?;
                    self.write_virt(dst.wrapping_add(i), b, 1, cur_mode)?;
                }
                self.cycles += self.costs.string_per_byte * len as u64;
                self.set_reg(0, 0);
                self.set_reg(1, src.raw().wrapping_add(len));
                self.set_reg(2, 0);
                self.set_reg(3, dst.raw().wrapping_add(len));
                self.set_reg(4, 0);
                self.set_reg(5, 0);
                self.set_pc(d.next_pc);
                self.set_nzvc(false, true, false, false);
                Ok(ExecOutcome::Retired)
            }

            // ---- mode, PSL, probes ----
            Movpsl => {
                self.counters.movpsl += 1;
                self.cycles += self.costs.movpsl;
                // Microcode merge (paper §4.2.1): in VM mode return the
                // VM's PSL; software never observes PSL<VM>.
                let value = if in_vm {
                    self.vmpsl.merge_into(self.psl).raw()
                } else {
                    self.psl.raw_visible()
                };
                let DecOp::Loc { loc, .. } = d.operands[0] else {
                    unreachable!()
                };
                let saved = self.begin_commit(d);
                if let Err(e) = self.write_loc(loc, value, DataType::Long, cur_mode) {
                    self.rollback(saved);
                    return Err(e);
                }
                self.set_pc(d.next_pc);
                Ok(ExecOutcome::Retired)
            }
            Prober | Probew => self.exec_probe(d, op, in_vm),
            Probevmr | Probevmw => {
                if self.variant() == MachineVariant::Standard {
                    return Err(Exception::ReservedInstruction.into());
                }
                self.exec_probevm(d, op)
            }
            Chmk | Chme | Chms | Chmu => {
                self.counters.chm += 1;
                self.cycles += self.costs.chm;
                let code = d.operands[0].value() as u16 as i16 as i32 as u32;
                let Some(target) = op.chm_target() else {
                    unreachable!()
                };
                let _ = self.begin_commit(d);
                Err(Exception::ChangeMode { target, code }.into())
            }
            Rei => {
                self.do_rei()?;
                Ok(ExecOutcome::Retired)
            }

            // ---- privileged ----
            Mtpr => self.exec_mtpr(d),
            Mfpr => self.exec_mfpr(d, cur_mode),
            Ldpctx => self.exec_ldpctx(d),
            Svpctx => self.exec_svpctx(d),
        }
    }

    pub(crate) fn condition(&self, op: Opcode) -> bool {
        use Opcode::*;
        let n = self.psl.flag(Psl::N);
        let z = self.psl.flag(Psl::Z);
        let v = self.psl.flag(Psl::V);
        let c = self.psl.flag(Psl::C);
        match op {
            Bneq => !z,
            Beql => z,
            Bgtr => !(n | z),
            Bleq => n | z,
            Bgeq => !n,
            Blss => n,
            Bgtru => !(c | z),
            Blequ => c | z,
            Bvc => !v,
            Bvs => v,
            Bgequ => !c,
            Blssu => c,
            _ => unreachable!(),
        }
    }

    fn exec_arith(
        &mut self,
        d: &Decoded,
        op: Opcode,
        cur_mode: AccessMode,
    ) -> Result<ExecOutcome, Abort> {
        use Opcode::*;
        let width = match op {
            Incb | Decb => DataType::Byte,
            _ => DataType::Long,
        };
        // Identify inputs and destination.
        let (a, b, loc) = match op {
            Addl2 | Subl2 | Mull2 | Divl2 | Bisl2 | Bicl2 | Xorl2 => {
                let src = d.operands[0].value();
                let DecOp::Loc {
                    loc,
                    old: Some(old),
                } = d.operands[1]
                else {
                    unreachable!()
                };
                (src, old, loc)
            }
            Addl3 | Subl3 | Mull3 | Divl3 | Bisl3 | Bicl3 | Xorl3 => {
                let DecOp::Loc { loc, .. } = d.operands[2] else {
                    unreachable!()
                };
                (d.operands[0].value(), d.operands[1].value(), loc)
            }
            Incl | Decl | Incb | Decb => {
                let DecOp::Loc {
                    loc,
                    old: Some(old),
                } = d.operands[0]
                else {
                    unreachable!()
                };
                (1, old, loc)
            }
            _ => unreachable!(),
        };

        let (value, vflag, cflag) = match op {
            Addl2 | Addl3 | Incl | Incb => {
                let r = b.wrapping_add(a);
                let v = ((a ^ r) & (b ^ r)) >> 31 != 0;
                let c = r < a;
                (r, v, c)
            }
            Subl2 | Subl3 | Decl | Decb => {
                // dif = b - a (SUBL2 sub,dif ; SUBL3 sub,min,dif).
                let r = b.wrapping_sub(a);
                let v = ((b ^ a) & (b ^ r)) >> 31 != 0;
                let c = b < a; // borrow
                (r, v, c)
            }
            Mull2 | Mull3 => {
                let wide = (a as i32 as i64) * (b as i32 as i64);
                let r = wide as u32;
                (r, wide != r as i32 as i64, false)
            }
            Divl2 | Divl3 => {
                // quo = b / a (DIVL2 divr,quo ; DIVL3 divr,divd,quo).
                if a == 0 {
                    let _ = self.begin_commit(d);
                    return Err(Exception::Arithmetic(ArithmeticCode::IntegerDivideByZero).into());
                }
                if b == 0x8000_0000 && a == 0xffff_ffff {
                    (b, true, false) // overflow: result is dividend, V set
                } else {
                    (((b as i32) / (a as i32)) as u32, false, false)
                }
            }
            Bisl2 | Bisl3 => (a | b, false, self.psl.flag(Psl::C)),
            Bicl2 | Bicl3 => (!a & b, false, self.psl.flag(Psl::C)),
            Xorl2 | Xorl3 => (a ^ b, false, self.psl.flag(Psl::C)),
            _ => unreachable!(),
        };

        // Byte-width INCB/DECB condition codes use the byte result.
        let (value, vflag, cflag) = if width == DataType::Byte {
            let r = mask_width(value, 1);
            let v = match op {
                Incb => mask_width(b, 1) == 0x7f,
                _ => mask_width(b, 1) == 0x80,
            };
            let c = match op {
                Incb => r == 0,
                _ => mask_width(b, 1) == 0,
            };
            (r, v, c)
        } else {
            (value, vflag, cflag)
        };

        let saved = self.begin_commit(d);
        if let Err(e) = self.write_loc(loc, value, width, cur_mode) {
            self.rollback(saved);
            return Err(e);
        }
        self.set_pc(d.next_pc);
        let wbits = if width == DataType::Byte { 1 } else { 4 };
        let m = mask_width(value, wbits);
        let sign = if wbits == 1 {
            m & 0x80 != 0
        } else {
            m & 0x8000_0000 != 0
        };
        self.set_nzvc(sign, m == 0, vflag, cflag);
        if vflag && self.psl.flag(Psl::IV) {
            return Err(Exception::Arithmetic(ArithmeticCode::IntegerOverflow).into());
        }
        Ok(ExecOutcome::Retired)
    }

    fn exec_probe(&mut self, d: &Decoded, op: Opcode, in_vm: bool) -> Result<ExecOutcome, Abort> {
        self.counters.probe += 1;
        self.cycles += self.costs.probe_fast;
        let write = op == Opcode::Probew;
        let mode_op = AccessMode::from_bits(d.operands[0].value());
        let len = (d.operands[1].value() & 0xffff).max(1);
        let DecOp::Addr(base) = d.operands[2] else {
            unreachable!()
        };
        // "the less privileged of 1) the mode specified as an operand and
        // 2) the previous mode as contained in the PSL" — in a VM, the
        // VM's PSL (paper §3.4).
        let prv = if in_vm {
            self.vmpsl.prv_mode()
        } else {
            self.psl.prv_mode()
        };
        let probe_mode = mode_op.least_privileged(prv);

        let mut accessible = true;
        for va in [base, base.wrapping_add(len - 1)] {
            let outcome = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                mmu.probe(mem, va, probe_mode, write, costs)
            }
            .map_err(Abort::Fault)?;
            self.cycles += outcome.cycles;
            if in_vm && !outcome.pte_valid {
                // Shadow PTE not valid: its protection field is not
                // meaningful — trap to the VMM for a fill (paper §4.3.2).
                return Ok(ExecOutcome::VmTrap(self.make_vm_trap(d)));
            }
            if in_vm && write && !outcome.accessible {
                // A denied write probe may be an artifact of a
                // write-protected shadow (the §4.4.2 read-only-shadow
                // alternative makes "PROBEW trap more frequently"); let
                // the VMM check the VM's own PTE.
                return Ok(ExecOutcome::VmTrap(self.make_vm_trap(d)));
            }
            accessible &= outcome.accessible;
        }
        let _ = self.begin_commit(d);
        self.set_pc(d.next_pc);
        // Z=1 means NOT accessible (VMS convention: PROBEx ; BEQL fail).
        self.set_nzvc(false, !accessible, false, false);
        Ok(ExecOutcome::Retired)
    }

    fn exec_probevm(&mut self, d: &Decoded, op: Opcode) -> Result<ExecOutcome, Abort> {
        self.counters.probevm += 1;
        self.cycles += self.costs.probevm;
        let write = op == Opcode::Probevmw;
        // "probe mode no more privileged than executive mode" (Table 2).
        let mode_op = AccessMode::from_bits(d.operands[0].value());
        let probe_mode = mode_op.least_privileged(AccessMode::Executive);
        let DecOp::Addr(base) = d.operands[1] else {
            unreachable!()
        };
        let outcome = {
            let Machine {
                mmu, mem, costs, ..
            } = self;
            mmu.probe(mem, base, probe_mode, write, costs)
        }
        .map_err(Abort::Fault)?;
        self.cycles += outcome.cycles;
        let _ = self.begin_commit(d);
        self.set_pc(d.next_pc);
        // Tests protection, validity, modify — in that order (Table 2).
        // Z=1: protection denies. V=1: PTE invalid. C=1: write probed and
        // the page is not yet modified.
        let (z, v, c) = if !outcome.accessible {
            (true, false, false)
        } else if !outcome.pte_valid {
            (false, true, false)
        } else if write && !outcome.pte_modified {
            (false, false, true)
        } else {
            (false, false, false)
        };
        self.set_nzvc(false, z, v, c);
        Ok(ExecOutcome::Retired)
    }

    fn exec_mtpr(&mut self, d: &Decoded) -> Result<ExecOutcome, Abort> {
        let value = d.operands[0].value();
        let regno = d.operands[1].value();
        let Some(ipr) = Ipr::from_number(regno) else {
            return Err(Exception::ReservedOperand.into());
        };
        if ipr == Ipr::Ipl {
            self.counters.mtpr_ipl += 1;
            self.cycles += self.costs.mtpr_ipl_fast;
        } else {
            self.counters.mtpr_other += 1;
            self.cycles += self.costs.mtpr_other;
        }
        let _ = self.begin_commit(d);
        self.write_ipr(ipr, value).map_err(Abort::Exc)?;
        self.set_pc(d.next_pc);
        Ok(ExecOutcome::Retired)
    }

    fn exec_mfpr(&mut self, d: &Decoded, cur_mode: AccessMode) -> Result<ExecOutcome, Abort> {
        let regno = d.operands[0].value();
        let Some(ipr) = Ipr::from_number(regno) else {
            return Err(Exception::ReservedOperand.into());
        };
        self.counters.mtpr_other += 1;
        self.cycles += self.costs.mtpr_other;
        let value = self.read_ipr(ipr).map_err(Abort::Exc)?;
        let DecOp::Loc { loc, .. } = d.operands[1] else {
            unreachable!()
        };
        let saved = self.begin_commit(d);
        if let Err(e) = self.write_loc(loc, value, DataType::Long, cur_mode) {
            self.rollback(saved);
            return Err(e);
        }
        self.set_pc(d.next_pc);
        Ok(ExecOutcome::Retired)
    }

    fn exec_calls(&mut self, d: &Decoded, cur_mode: AccessMode) -> Result<ExecOutcome, Abort> {
        let numarg = d.operands[0].value() & 0xff;
        let DecOp::Addr(dst) = d.operands[1] else {
            unreachable!()
        };
        let mask = self.read_virt(dst, 2, cur_mode)?;
        if mask & 0xC000 != 0 {
            return Err(Exception::ReservedOperand.into());
        }
        let saved = self.begin_commit(d);
        let result: Result<(), Abort> = (|| {
            self.push(numarg)?;
            let arglist = self.reg(14);
            // Save registers R11..R0 per the entry mask.
            for r in (0..12).rev() {
                if mask & (1 << r) != 0 {
                    self.push(self.reg(r))?;
                }
            }
            self.push(d.next_pc)?;
            self.push(self.reg(13))?; // FP
            self.push(self.reg(12))?; // AP
                                      // Saved mask + "S flag" (bit 29) marking a CALLS frame.
            self.push((mask << 16) | (1 << 29))?;
            self.push(0)?; // condition handler
            self.set_reg(13, self.reg(14)); // FP = SP
            self.set_reg(12, arglist); // AP
            Ok(())
        })();
        if let Err(e) = result {
            self.rollback(saved);
            return Err(e);
        }
        self.set_pc(dst.raw().wrapping_add(2));
        self.set_nzvc(false, false, false, false);
        Ok(ExecOutcome::Retired)
    }

    fn exec_ret(&mut self, d: &Decoded) -> Result<ExecOutcome, Abort> {
        let _ = d;
        // Unwind from FP.
        self.set_reg(14, self.reg(13));
        let _handler = self.pop()?;
        let maskpsw = self.pop()?;
        let ap = self.pop()?;
        let fp = self.pop()?;
        let pc = self.pop()?;
        let mask = (maskpsw >> 16) & 0x0fff;
        for r in 0..12 {
            if mask & (1 << r) != 0 {
                let v = self.pop()?;
                self.set_reg(r, v);
            }
        }
        self.set_reg(12, ap);
        self.set_reg(13, fp);
        if maskpsw & (1 << 29) != 0 {
            // CALLS frame: remove the argument list.
            let n = self.pop()?;
            self.set_reg(14, self.reg(14).wrapping_add(4 * (n & 0xff)));
        }
        self.set_pc(pc);
        Ok(ExecOutcome::Retired)
    }

    fn exec_ldpctx(&mut self, d: &Decoded) -> Result<ExecOutcome, Abort> {
        self.counters.context_switches += 1;
        self.cycles += self.costs.context_switch;
        let pcb = self.pcbb;
        let rd = |m: &Machine, off: u32| m.mem.read_u32(pcb + off).map_err(Abort::Fault);
        let ksp = rd(self, 0)?;
        let esp = rd(self, 4)?;
        let ssp = rd(self, 8)?;
        let usp = rd(self, 12)?;
        let mut regs = [0u32; 12];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = rd(self, 16 + 4 * i as u32)?;
        }
        let ap = rd(self, 64)?;
        let fp = rd(self, 68)?;
        let pc = rd(self, 72)?;
        let psl = rd(self, 76)?;
        let p0br = rd(self, 80)?;
        let p0lr = rd(self, 84)?;
        let p1br = rd(self, 88)?;
        let p1lr = rd(self, 92)?;

        let _ = self.begin_commit(d);
        self.set_sp_for_mode(AccessMode::Kernel, ksp);
        self.set_sp_for_mode(AccessMode::Executive, esp);
        self.set_sp_for_mode(AccessMode::Supervisor, ssp);
        self.set_sp_for_mode(AccessMode::User, usp);
        for (i, r) in regs.iter().enumerate() {
            self.set_reg(i, *r);
        }
        self.set_reg(12, ap);
        self.set_reg(13, fp);
        self.mmu.set_p0br(p0br);
        self.mmu.set_p0lr(p0lr & 0x3f_ffff);
        self.mmu.set_p1br(p1br);
        self.mmu.set_p1lr(p1lr & 0x3f_ffff);
        self.mmu.tlb_mut().invalidate_process();
        self.invalidate_code_caches();
        // Push the saved PSL and PC for the REI that completes the switch.
        self.push(psl).map_err(Abort::Fault)?;
        self.push(pc).map_err(Abort::Fault)?;
        self.set_pc(d.next_pc);
        Ok(ExecOutcome::Retired)
    }

    fn exec_svpctx(&mut self, d: &Decoded) -> Result<ExecOutcome, Abort> {
        self.counters.context_switches += 1;
        self.cycles += self.costs.context_switch;
        let _ = self.begin_commit(d);
        let pc = self.pop().map_err(Abort::Fault)?;
        let psl = self.pop().map_err(Abort::Fault)?;
        let pcb = self.pcbb;
        let wr =
            |m: &mut Machine, off: u32, v: u32| m.mem.write_u32(pcb + off, v).map_err(Abort::Fault);
        wr(self, 72, pc)?;
        wr(self, 76, psl)?;
        let ksp = self.sp_for_mode(AccessMode::Kernel);
        let esp = self.sp_for_mode(AccessMode::Executive);
        let ssp = self.sp_for_mode(AccessMode::Supervisor);
        let usp = self.sp_for_mode(AccessMode::User);
        wr(self, 0, ksp)?;
        wr(self, 4, esp)?;
        wr(self, 8, ssp)?;
        wr(self, 12, usp)?;
        for i in 0..12 {
            let v = self.reg(i);
            wr(self, 16 + 4 * i as u32, v)?;
        }
        let ap = self.reg(12);
        let fp = self.reg(13);
        wr(self, 64, ap)?;
        wr(self, 68, fp)?;
        self.set_pc(d.next_pc);
        Ok(ExecOutcome::Retired)
    }
}

pub(crate) fn sign_extend(v: u32, width: u32) -> i32 {
    match width {
        1 => v as u8 as i8 as i32,
        2 => v as u16 as i16 as i32,
        _ => v as i32,
    }
}

/// Arithmetic shift; returns (result, overflow).
pub(crate) fn ash(src: u32, cnt: i8) -> (u32, bool) {
    let s = src as i32;
    if cnt >= 0 {
        let c = cnt.min(32) as u32;
        if c >= 32 {
            (0, s != 0)
        } else {
            let r = (s as i64) << c;
            (r as u32, r != (r as i32) as i64)
        }
    } else {
        let c = (-(cnt as i32)).min(31);
        ((s >> c) as u32, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ash_behaviour() {
        assert_eq!(ash(1, 4), (16, false));
        assert_eq!(ash(0x4000_0000, 1), (0x8000_0000, true));
        assert_eq!(ash(-8i32 as u32, -2), (-2i32 as u32, false));
        assert_eq!(ash(1, 32), (0, true));
        assert_eq!(ash(0, 32), (0, false));
        assert_eq!(ash(i32::MIN as u32, -31), (-1i32 as u32, false));
    }

    #[test]
    fn sign_extend_widths() {
        assert_eq!(sign_extend(0x80, 1), -128);
        assert_eq!(sign_extend(0x7f, 1), 127);
        assert_eq!(sign_extend(0x8000, 2), -32768);
        assert_eq!(sign_extend(0xffff_ffff, 4), -1);
    }
}
