//! The simulated processor: registers, PSL, IPRs, interval timer, console,
//! stack banking, and the step loop.

use crate::bus::{Bus, IrqRequest, IO_BASE_PA};
use crate::counters::CpuCounters;
use crate::event::{HaltReason, StepEvent, VmExit};
use crate::icache::{DecodeCache, DecodeCacheStats};
use crate::trans::{TransCache, TransStats};
use std::collections::VecDeque;
use vax_arch::{
    AccessMode, CostModel, Exception, Ipr, MachineVariant, Psl, ScbVector, VirtAddr, VmPsl,
    PAGE_BYTES,
};
use vax_mem::{MemFault, Mmu, MmuState, PhysMemory};
use vax_obs::prof::{Prof, ProfEventKind, ProfSink, ProfTier};

/// The interval timer (ICCS/NICR/ICR).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IntervalTimer {
    pub iccs: u32,
    pub nicr: i64,
    pub icr: i64,
}

impl IntervalTimer {
    pub const RUN: u32 = 1 << 0;
    pub const XFR: u32 = 1 << 4;
    pub const IE: u32 = 1 << 6;
    pub const INT: u32 = 1 << 7;

    fn write_iccs(&mut self, v: u32) {
        if v & Self::XFR != 0 {
            self.icr = self.nicr;
        }
        if v & Self::INT != 0 {
            self.iccs &= !Self::INT; // write-1-to-clear
        }
        self.iccs = (self.iccs & Self::INT) | (v & (Self::RUN | Self::IE));
    }

    fn tick(&mut self, delta: u64) {
        if self.iccs & Self::RUN != 0 && self.nicr < 0 {
            self.icr += delta as i64;
            if self.icr >= 0 {
                self.iccs |= Self::INT;
                self.icr = self.nicr;
            }
        }
    }

    fn interrupt_pending(&self) -> bool {
        self.iccs & Self::INT != 0 && self.iccs & Self::IE != 0
    }
}

/// The console terminal, modeled at the IPR level (RXCS/RXDB/TXCS/TXDB).
///
/// Transmit is always ready; output accumulates in a log the embedder can
/// drain. Receive is fed by [`Machine::console_push_input`] and polled by
/// the guest.
#[derive(Debug, Clone, Default)]
pub(crate) struct Console {
    pub tx_log: Vec<u8>,
    pub rx_queue: VecDeque<u8>,
}

/// Interrupt priority level of the interval timer.
pub const TIMER_IPL: u8 = 24;

/// Which execution tier the step loop uses. Every tier produces
/// bit-identical architectural state, cycle counts, and
/// [`CpuCounters`] — only wall-clock speed (and the diagnostic
/// [`DecodeCacheStats`]/[`TransStats`]) differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecTier {
    /// Bytewise decode and interpretation of every instruction.
    Interp,
    /// Decode-cache-served interpretation (the default).
    #[default]
    Cache,
    /// Decode cache plus superblock µop translation of hot code, with the
    /// interpreter as the fallback for everything the translator gates
    /// off (mapped or VM-mode execution, sensitive instructions, faults).
    Trans,
}

impl ExecTier {
    /// Parses a tier name as used by `vaxrun --exec-tier`.
    pub fn from_name(name: &str) -> Option<ExecTier> {
        match name {
            "interp" => Some(ExecTier::Interp),
            "cache" => Some(ExecTier::Cache),
            "trans" => Some(ExecTier::Trans),
            _ => None,
        }
    }

    /// The canonical lowercase name (`interp`, `cache`, `trans`).
    pub fn name(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Cache => "cache",
            ExecTier::Trans => "trans",
        }
    }
}

/// Plain-data image of the interval timer for snapshot/restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerState {
    /// ICCS (RUN/IE/INT bits as on hardware).
    pub iccs: u32,
    /// NICR (negative reload value).
    pub nicr: i64,
    /// Current ICR count.
    pub icr: i64,
}

/// Complete architectural + simulation state of a [`Machine`], minus
/// physical memory and bus devices — the extraction/injection seam the
/// snapshot subsystem builds on.
///
/// Everything that influences future execution or observable output is
/// here, including the sub-tick TOD accumulator and the exit stamp, so a
/// machine restored from this image and the original produce bit-identical
/// cycles, counters, and console bytes. Two pieces are deliberately
/// excluded:
///
/// - **Physical memory**: captured separately (it may be large and wants
///   page-level compression / copy-on-write handling).
/// - **Decoded-instruction and translated-superblock caches**:
///   [`Machine::import_state`] starts both cold; each tier is proven
///   cycle- and counter-neutral on/off, so this does not perturb
///   determinism.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineState {
    /// General registers R0–R15.
    pub regs: [u32; 16],
    /// The full PSL (raw, including `PSL<VM>`).
    pub psl_raw: u32,
    /// The VMPSL register.
    pub vmpsl: VmPsl,
    /// Banked stack pointers (kernel…user, interrupt).
    pub sp_bank: [u32; 5],
    /// SCB base.
    pub scbb: u32,
    /// PCB base.
    pub pcbb: u32,
    /// ASTLVL.
    pub astlvl: u32,
    /// Software-interrupt summary.
    pub sisr: u16,
    /// Time-of-day register.
    pub todr: u32,
    /// Sub-tick TOD accumulator (cycles toward the next TODR tick).
    pub todr_acc: u64,
    /// Cycle-cost model in effect.
    pub costs: CostModel,
    /// Complete MMU image (registers, counters, exact TLB).
    pub mmu: MmuState,
    /// Undrained console output.
    pub console_tx: Vec<u8>,
    /// Queued console input.
    pub console_rx: Vec<u8>,
    /// Interval timer.
    pub timer: TimerState,
    /// Latched, undelivered device interrupt requests.
    pub pending_irqs: Vec<IrqRequest>,
    /// Cumulative simulated cycles.
    pub cycles: u64,
    /// Cycle stamp of the most recent VM exit.
    pub exit_stamp: u64,
    /// Event counters (raw; TLB totals live in the MMU image).
    pub counters: CpuCounters,
    /// Whether the processor has halted.
    pub halted: bool,
    /// Whether working-set write tracking was enabled on memory. The
    /// tracker's bitmaps are not state — only the enablement crosses, so
    /// a restored machine keeps producing dirty-page deltas. Importing
    /// re-arms a fresh (clean) tracker when set.
    pub write_tracking: bool,
}

/// The simulated VAX processor plus its memory and bus.
///
/// A [`Machine`] built with [`MachineVariant::Standard`] behaves like the
/// base architecture; [`MachineVariant::Modified`] adds the paper's
/// virtualization microcode. The VMM in `vax-vmm` drives a modified
/// machine; guest operating systems from `vax-os` run on either.
///
/// # Example
///
/// ```
/// use vax_cpu::{Machine, StepEvent};
/// use vax_arch::MachineVariant;
///
/// // MOVL #5, R0; HALT — assembled by hand.
/// let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
/// m.mem_mut().write_slice(0x200, &[0xD0, 0x05, 0x50, 0x00])?;
/// m.set_pc(0x200);
/// assert_eq!(m.step(), StepEvent::Ok);
/// assert_eq!(m.reg(0), 5);
/// # Ok::<(), vax_mem::MemFault>(())
/// ```
pub struct Machine {
    variant: MachineVariant,
    pub(crate) costs: CostModel,
    pub(crate) regs: [u32; 16],
    pub(crate) psl: Psl,
    pub(crate) vmpsl: VmPsl,
    /// Stack pointers: indexes 0–3 are kernel…user, 4 is the interrupt
    /// stack. The *active* pointer lives in `regs[14]`.
    pub(crate) sp_bank: [u32; 5],
    pub(crate) scbb: u32,
    pub(crate) pcbb: u32,
    pub(crate) sid: u32,
    pub(crate) astlvl: u32,
    pub(crate) sisr: u16,
    todr: u32,
    todr_acc: u64,
    pub(crate) mmu: Mmu,
    pub(crate) mem: PhysMemory,
    /// Decoded-instruction cache, keyed by opcode physical address.
    pub(crate) icache: DecodeCache,
    pub(crate) icache_enabled: bool,
    /// Translated-superblock cache, keyed by entry physical address.
    pub(crate) trans: TransCache,
    exec_tier: ExecTier,
    pub(crate) bus: Bus,
    pub(crate) console: Console,
    pub(crate) timer: IntervalTimer,
    pending_irqs: Vec<IrqRequest>,
    /// Reusable decode output buffer: [`crate::decode::Decoded`] is a
    /// couple hundred bytes, so it lives in one heap slot for the life of
    /// the machine instead of being re-zeroed and moved every step.
    pub(crate) decode_scratch: Option<Box<crate::decode::Decoded>>,
    /// Optional PC trace ring (debugging aid).
    trace: Option<(VecDeque<u32>, usize)>,
    /// Cycle-attributed guest profiler ([`ProfSink::Off`] by default —
    /// one discriminant test per retire). Like the decode caches, not
    /// part of [`MachineState`]: purely diagnostic, never fed back.
    pub(crate) prof: ProfSink,
    pub(crate) cycles: u64,
    /// Cycle count at the instant the most recent VM exit began, before
    /// any microcode trap-entry charge — the observability layer's
    /// exit-to-resume latency origin. Never fed back into execution.
    pub(crate) exit_stamp: u64,
    pub(crate) counters: CpuCounters,
    pub(crate) halted: bool,
}

impl Machine {
    /// Creates a machine of the given variant with `mem_bytes` of RAM.
    ///
    /// The modified variant boots with modify faults enabled, as the
    /// paper's VMM requires; the standard variant sets `PTE<M>` in
    /// hardware.
    pub fn new(variant: MachineVariant, mem_bytes: u32) -> Machine {
        let mut mmu = Mmu::new();
        mmu.set_modify_fault_enabled(variant.has_vm_extensions());
        Machine {
            variant,
            costs: CostModel::default(),
            regs: [0; 16],
            psl: Psl::power_up(),
            vmpsl: VmPsl::default(),
            sp_bank: [0; 5],
            scbb: 0,
            pcbb: 0,
            sid: match variant {
                MachineVariant::Standard => 0x0100_0000,
                MachineVariant::Modified => 0x0200_0000,
            },
            astlvl: 4,
            sisr: 0,
            todr: 0,
            todr_acc: 0,
            mmu,
            mem: PhysMemory::new(mem_bytes),
            icache: DecodeCache::new(),
            icache_enabled: true,
            trans: TransCache::new(),
            exec_tier: ExecTier::default(),
            bus: Bus::new(),
            console: Console::default(),
            timer: IntervalTimer::default(),
            pending_irqs: Vec::new(),
            decode_scratch: Some(Box::new(crate::decode::Decoded::empty())),
            trace: None,
            prof: ProfSink::Off,
            cycles: 0,
            exit_stamp: 0,
            counters: CpuCounters::default(),
            halted: false,
        }
    }

    /// The architecture variant.
    pub fn variant(&self) -> MachineVariant {
        self.variant
    }

    /// Replaces the cycle-cost model. Translated superblocks fold cycle
    /// charges in at translate time, so they are all dropped here.
    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
        self.trans.invalidate_all();
    }

    /// The cycle-cost model in effect.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Cumulative simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycle count at the instant the most recent VM exit began (before
    /// the microcode trap-entry charge), so exit-to-resume latency
    /// includes the hardware half of the exit.
    pub fn last_exit_cycles(&self) -> u64 {
        self.exit_stamp
    }

    /// Charges extra cycles (used by the VMM to account its software
    /// path lengths on this machine's clock).
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Event counters. TLB hit/miss totals are folded in from the MMU at
    /// read time; they are identical with the decode cache on or off,
    /// because the cached path replays every i-stream translation.
    pub fn counters(&self) -> CpuCounters {
        let mut c = self.counters;
        c.tlb_hits = self.mmu.tlb().hits();
        c.tlb_misses = self.mmu.tlb().misses();
        c
    }

    /// Selects the execution tier. Switching drops all translated
    /// superblocks; switching to [`ExecTier::Interp`] also drops the
    /// decode cache and its write-tracking state. Cycle counts and
    /// [`Machine::counters`] are unaffected by the choice.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.exec_tier = tier;
        self.icache_enabled = tier != ExecTier::Interp;
        self.trans.invalidate_all();
        if tier == ExecTier::Interp {
            self.icache.invalidate_all();
            self.mem.clear_all_code_pages();
        }
    }

    /// The execution tier in effect.
    pub fn exec_tier(&self) -> ExecTier {
        self.exec_tier
    }

    /// Enables or disables the decoded-instruction cache — the historical
    /// two-tier switch, now an alias for [`Machine::set_exec_tier`] with
    /// [`ExecTier::Cache`]/[`ExecTier::Interp`].
    pub fn set_decode_cache_enabled(&mut self, on: bool) {
        self.set_exec_tier(if on {
            ExecTier::Cache
        } else {
            ExecTier::Interp
        });
    }

    /// Whether the decoded-instruction cache is enabled.
    pub fn decode_cache_enabled(&self) -> bool {
        self.icache_enabled
    }

    /// Drops every decoded-instruction cache entry and translated
    /// superblock. Embedders (the VMM) call this after rewriting guest
    /// page tables or memory images outside the machine's own store paths.
    pub fn invalidate_decode_cache(&mut self) {
        self.invalidate_code_caches();
    }

    /// Drops all derived-code state: decode-cache templates and
    /// translated superblocks. Every invalidation edge that kills one
    /// must kill both.
    pub(crate) fn invalidate_code_caches(&mut self) {
        self.icache.invalidate_all();
        self.trans.invalidate_all();
        self.prof_event(ProfEventKind::Invalidate, 0, 0);
    }

    /// Drains self-modifying-code notifications: every physical page
    /// written since the last drain loses its decode-cache templates and
    /// translated superblocks before either cache is trusted again.
    pub(crate) fn drain_dirty_code(&mut self) {
        if self.mem.has_dirty_code() {
            for pfn in self.mem.take_dirty_code_pages() {
                self.icache.invalidate_page(pfn);
                self.trans.invalidate_page(pfn);
                self.mem.clear_code_page(pfn);
                self.prof_event(ProfEventKind::SmcDrain, pfn << vax_arch::PAGE_SHIFT, pfn);
            }
        }
    }

    /// Decode-cache hit/miss statistics (diagnostic; not part of the
    /// architectural counters).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.icache.stats()
    }

    /// Translation-tier statistics (diagnostic; not part of the
    /// architectural counters).
    pub fn trans_stats(&self) -> TransStats {
        self.trans.stats()
    }

    /// Per-superblock profiles ranked by cycles retired (the hot-block
    /// table). Populated only while profiling is enabled.
    pub fn superblock_profiles(&self) -> Vec<crate::trans::SuperblockProfile> {
        self.trans.profiles()
    }

    /// General register `i` (0–15; 15 is the PC).
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }

    /// Sets general register `i`.
    pub fn set_reg(&mut self, i: usize, v: u32) {
        self.regs[i] = v;
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.regs[15]
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.regs[15] = pc;
    }

    /// The processor status longword.
    pub fn psl(&self) -> Psl {
        self.psl
    }

    /// Replaces the PSL, re-banking the stack pointer if the active stack
    /// changed.
    pub fn set_psl(&mut self, new: Psl) {
        let old_idx = self.active_sp_index();
        self.psl = new;
        let new_idx = self.active_sp_index();
        if old_idx != new_idx {
            self.sp_bank[old_idx] = self.regs[14];
            self.regs[14] = self.sp_bank[new_idx];
        }
    }

    /// The `VMPSL` register (meaningful only on the modified variant).
    pub fn vmpsl(&self) -> VmPsl {
        self.vmpsl
    }

    /// Sets the `VMPSL` register.
    pub fn set_vmpsl(&mut self, v: VmPsl) {
        self.vmpsl = v;
    }

    /// Puts the processor in VM mode (`PSL<VM>` set) with the given VM
    /// mode state. Only the VMM's dispatch path does this.
    ///
    /// # Panics
    ///
    /// Panics on a standard machine, which has no `PSL<VM>`.
    pub fn enter_vm(&mut self, vmpsl: VmPsl) {
        assert!(
            self.variant.has_vm_extensions(),
            "standard VAX has no VM mode"
        );
        self.vmpsl = vmpsl;
        self.psl.set_vm(true);
    }

    /// True if the processor is running a VM (`PSL<VM>` set).
    pub fn in_vm(&self) -> bool {
        self.psl.vm()
    }

    fn active_sp_index(&self) -> usize {
        if self.psl.flag(Psl::IS) {
            4
        } else {
            self.psl.cur_mode() as usize
        }
    }

    /// Reads the stack pointer for a mode (redirecting to `regs[14]` when
    /// that mode's stack is active).
    pub fn sp_for_mode(&self, mode: AccessMode) -> u32 {
        if self.active_sp_index() == mode as usize {
            self.regs[14]
        } else {
            self.sp_bank[mode as usize]
        }
    }

    /// Sets the stack pointer for a mode.
    pub fn set_sp_for_mode(&mut self, mode: AccessMode, v: u32) {
        if self.active_sp_index() == mode as usize {
            self.regs[14] = v;
        } else {
            self.sp_bank[mode as usize] = v;
        }
    }

    /// The interrupt stack pointer.
    pub fn isp(&self) -> u32 {
        if self.active_sp_index() == 4 {
            self.regs[14]
        } else {
            self.sp_bank[4]
        }
    }

    /// Sets the interrupt stack pointer.
    pub fn set_isp(&mut self, v: u32) {
        if self.active_sp_index() == 4 {
            self.regs[14] = v;
        } else {
            self.sp_bank[4] = v;
        }
    }

    /// The system control block base (physical).
    pub fn scbb(&self) -> u32 {
        self.scbb
    }

    /// Sets the SCB base.
    pub fn set_scbb(&mut self, pa: u32) {
        self.scbb = pa;
    }

    /// The process control block base (physical).
    pub fn pcbb(&self) -> u32 {
        self.pcbb
    }

    /// Physical memory.
    pub fn mem(&self) -> &PhysMemory {
        &self.mem
    }

    /// Physical memory, mutable (for loaders and the VMM).
    pub fn mem_mut(&mut self) -> &mut PhysMemory {
        &mut self.mem
    }

    /// The MMU.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// The MMU, mutable (for the VMM's shadow-table management).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The I/O bus, mutable (to attach devices).
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Queues a byte of console input.
    pub fn console_push_input(&mut self, b: u8) {
        self.console.rx_queue.push_back(b);
    }

    /// Drains and returns everything the guest wrote to the console.
    pub fn console_take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.console.tx_log)
    }

    /// Peeks at console output without draining.
    pub fn console_output(&self) -> &[u8] {
        &self.console.tx_log
    }

    /// True once the processor has halted.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Enables the PC trace ring, keeping the most recent `capacity`
    /// instruction addresses — a debugging aid for guest crashes.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((VecDeque::with_capacity(capacity), capacity));
    }

    /// The most recent instruction addresses (oldest first), if tracing
    /// is enabled.
    pub fn recent_pcs(&self) -> Vec<u32> {
        self.trace
            .as_ref()
            .map(|(ring, _)| ring.iter().copied().collect())
            .unwrap_or_default()
    }

    // ---- profiling (vax-prof) ----

    /// Enables cycle-attributed profiling, sampling every
    /// `sample_interval` simulated cycles, and working-set write tracking
    /// on memory. Re-enabling resets both. Observational only: the
    /// profiler reads the clock and PC, never feeds anything back, so
    /// architectural state, cycles, and counters stay bit-identical —
    /// the equivalence fuzzers enforce this for all three tiers.
    pub fn enable_profiling(&mut self, sample_interval: u64) {
        self.prof = ProfSink::on(sample_interval, self.cycles);
        self.mem.enable_write_tracking();
        self.trans.clear_profiles();
    }

    /// Disables profiling and working-set tracking, dropping their state
    /// (including per-superblock profiles).
    pub fn disable_profiling(&mut self) {
        self.prof = ProfSink::Off;
        self.mem.disable_write_tracking();
        self.trans.clear_profiles();
    }

    /// Whether profiling is enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.prof.is_on()
    }

    /// Enables working-set write tracking on memory without the
    /// profiler — the seam incremental snapshots consume (each
    /// `snapshot_delta` drains [`vax_mem::PhysMemory::take_dirty_pages`]).
    /// Re-enabling resets the tracker. Observational only, like
    /// profiling: architectural state, cycles, and counters are
    /// unaffected.
    pub fn enable_write_tracking(&mut self) {
        self.mem.enable_write_tracking();
    }

    /// Disables working-set write tracking, dropping the tracker. A
    /// no-op while profiling is on would leave the profiler's dirty-rate
    /// sampling blind, so this also applies under profiling; prefer
    /// [`Machine::disable_profiling`] to tear both down together.
    pub fn disable_write_tracking(&mut self) {
        self.mem.disable_write_tracking();
    }

    /// Whether working-set write tracking is enabled.
    pub fn write_tracking_enabled(&self) -> bool {
        self.mem.write_tracking_enabled()
    }

    /// The profiler state, when enabled.
    pub fn prof(&self) -> Option<&Prof> {
        self.prof.state()
    }

    /// Records one retiring instruction with the profiler: a discriminant
    /// test when off; when on, an array add plus a deadline compare, with
    /// the interval-sample slow path also polling working-set progress.
    #[inline]
    pub(crate) fn prof_retire(&mut self, tier: ProfTier, pc: u32) {
        if let ProfSink::On(p) = &mut self.prof {
            if p.observe(tier, pc, self.cycles) {
                p.note_dirty(self.mem.dirty_page_events());
            }
        }
    }

    /// Records a superblock lifecycle event with the profiler, if on.
    #[inline]
    pub(crate) fn prof_event(&mut self, kind: ProfEventKind, pa: u32, arg: u32) {
        if let ProfSink::On(p) = &mut self.prof {
            p.note_event(kind, pa, arg, self.cycles);
        }
    }

    // ---- virtual memory access (routing RAM vs. I/O space) ----

    fn read_pa(&mut self, pa: u32, len: u32) -> Result<u32, MemFault> {
        if pa >= IO_BASE_PA {
            self.counters.device_csr_accesses += 1;
            self.cycles += self.costs.device_csr;
            self.bus.read(pa)
        } else {
            match len {
                1 => self.mem.read_u8(pa).map(u32::from),
                2 => self.mem.read_u16(pa).map(u32::from),
                _ => self.mem.read_u32(pa),
            }
        }
    }

    fn write_pa(&mut self, pa: u32, value: u32, len: u32) -> Result<(), MemFault> {
        if pa >= IO_BASE_PA {
            self.counters.device_csr_accesses += 1;
            self.cycles += self.costs.device_csr;
            self.bus.write(pa, value)
        } else {
            match len {
                1 => self.mem.write_u8(pa, value as u8),
                2 => self.mem.write_u16(pa, value as u16),
                _ => self.mem.write_u32(pa, value),
            }
        }
    }

    /// Reads `len ∈ {1,2,4}` bytes of virtual memory as `mode`.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] from translation or the physical access.
    pub fn read_virt(&mut self, va: VirtAddr, len: u32, mode: AccessMode) -> Result<u32, MemFault> {
        self.cycles += self.costs.memory_reference;
        if va.byte_offset() + len <= PAGE_BYTES {
            let t = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                mmu.translate(mem, va, mode, false, costs)?
            };
            self.cycles += t.cycles;
            self.read_pa(t.pa, len)
        } else {
            // At most two pages are involved; translate each once and
            // split the access at the boundary. Per-byte `read_pa` calls
            // are kept so device CSR accounting still sees every byte.
            let split = PAGE_BYTES - va.byte_offset();
            let (pa0, pa1) = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                let t0 = mmu.translate(mem, va, mode, false, costs)?;
                let t1 = mmu.translate(mem, va.wrapping_add(split), mode, false, costs)?;
                self.cycles += t0.cycles + t1.cycles;
                (t0.pa, t1.pa)
            };
            let mut v = 0u32;
            for i in 0..len {
                let pa = if i < split {
                    pa0 + i
                } else {
                    pa1 + (i - split)
                };
                v |= self.read_pa(pa, 1)? << (8 * i);
            }
            Ok(v)
        }
    }

    /// Writes `len ∈ {1,2,4}` bytes of virtual memory as `mode`.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`]; page-crossing writes pre-translate all pages so a
    /// fault leaves no partial write.
    pub fn write_virt(
        &mut self,
        va: VirtAddr,
        value: u32,
        len: u32,
        mode: AccessMode,
    ) -> Result<(), MemFault> {
        self.cycles += self.costs.memory_reference;
        if va.byte_offset() + len <= PAGE_BYTES {
            let t = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                mmu.translate(mem, va, mode, true, costs)?
            };
            self.cycles += t.cycles;
            self.write_pa(t.pa, value, len)
        } else {
            // Translate both pages before writing any byte so a fault on
            // the second page leaves no partial write.
            let split = PAGE_BYTES - va.byte_offset();
            let (pa0, pa1) = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                let t0 = mmu.translate(mem, va, mode, true, costs)?;
                let t1 = mmu.translate(mem, va.wrapping_add(split), mode, true, costs)?;
                self.cycles += t0.cycles + t1.cycles;
                (t0.pa, t1.pa)
            };
            for i in 0..len {
                let pa = if i < split {
                    pa0 + i
                } else {
                    pa1 + (i - split)
                };
                self.write_pa(pa, (value >> (8 * i)) & 0xff, 1)?;
            }
            Ok(())
        }
    }

    /// Pushes a longword on the *current* stack.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] from the stack write; SP is left decremented only
    /// on success.
    pub fn push(&mut self, value: u32) -> Result<(), MemFault> {
        let sp = self.regs[14].wrapping_sub(4);
        self.write_virt(VirtAddr::new(sp), value, 4, self.psl.cur_mode())?;
        self.regs[14] = sp;
        Ok(())
    }

    /// Pops a longword from the *current* stack.
    ///
    /// # Errors
    ///
    /// Any [`MemFault`] from the stack read.
    pub fn pop(&mut self) -> Result<u32, MemFault> {
        let v = self.read_virt(VirtAddr::new(self.regs[14]), 4, self.psl.cur_mode())?;
        self.regs[14] = self.regs[14].wrapping_add(4);
        Ok(v)
    }

    // ---- IPR access (used by MTPR/MFPR and by the VMM) ----

    /// Reads an internal processor register as kernel-mode microcode does.
    ///
    /// # Errors
    ///
    /// `Err(Exception::ReservedOperand)` for write-only registers or
    /// registers that do not exist on this machine (e.g. the VM-only
    /// MEMSIZE/KCALL on any real machine — paper Table 4).
    pub fn read_ipr(&mut self, ipr: Ipr) -> Result<u32, Exception> {
        use Ipr::*;
        Ok(match ipr {
            Ksp => self.sp_for_mode(AccessMode::Kernel),
            Esp => self.sp_for_mode(AccessMode::Executive),
            Ssp => self.sp_for_mode(AccessMode::Supervisor),
            Usp => self.sp_for_mode(AccessMode::User),
            Isp => self.isp(),
            P0br => self.mmu.bases().2,
            P0lr => self.mmu.bases().3,
            P1br => self.mmu.bases().4,
            P1lr => self.mmu.bases().5,
            Sbr => self.mmu.bases().0,
            Slr => self.mmu.bases().1,
            Pcbb => self.pcbb,
            Scbb => self.scbb,
            Ipl => self.psl.ipl() as u32,
            Astlvl => self.astlvl,
            Sisr => self.sisr as u32,
            Iccs => self.timer.iccs,
            Nicr => self.timer.nicr as u32,
            Icr => self.timer.icr as u32,
            Todr => self.todr,
            Rxcs => {
                if self.console.rx_queue.is_empty() {
                    0
                } else {
                    0x80
                }
            }
            Rxdb => self.console.rx_queue.pop_front().map_or(0, u32::from),
            Txcs => 0x80, // always ready
            Txdb => 0,
            Mapen => self.mmu.mapen() as u32,
            Sid => self.sid,
            Sirr | Tbia | Tbis => return Err(Exception::ReservedOperand),
            Memsize | Kcall | Ioreset => return Err(Exception::ReservedOperand),
        })
    }

    /// Writes an internal processor register as kernel-mode microcode
    /// does, with all side effects (TLB invalidation, timer control, …).
    ///
    /// # Errors
    ///
    /// `Err(Exception::ReservedOperand)` for read-only registers or
    /// registers absent on a real machine.
    pub fn write_ipr(&mut self, ipr: Ipr, value: u32) -> Result<(), Exception> {
        use Ipr::*;
        match ipr {
            Ksp => self.set_sp_for_mode(AccessMode::Kernel, value),
            Esp => self.set_sp_for_mode(AccessMode::Executive, value),
            Ssp => self.set_sp_for_mode(AccessMode::Supervisor, value),
            Usp => self.set_sp_for_mode(AccessMode::User, value),
            Isp => self.set_isp(value),
            P0br => {
                self.mmu.set_p0br(value);
                self.invalidate_code_caches();
            }
            P0lr => {
                self.mmu.set_p0lr(value & 0x3f_ffff);
                self.invalidate_code_caches();
            }
            P1br => {
                self.mmu.set_p1br(value);
                self.invalidate_code_caches();
            }
            P1lr => {
                self.mmu.set_p1lr(value & 0x3f_ffff);
                self.invalidate_code_caches();
            }
            Sbr => {
                self.mmu.set_sbr(value);
                self.invalidate_code_caches();
            }
            Slr => {
                self.mmu.set_slr(value & 0x3f_ffff);
                self.invalidate_code_caches();
            }
            Pcbb => self.pcbb = value,
            Scbb => self.scbb = value,
            Ipl => self.psl.set_ipl((value & 0x1f) as u8),
            Astlvl => self.astlvl = value & 7,
            Sirr => {
                let level = value & 0xf;
                if level != 0 {
                    self.sisr |= 1 << level;
                }
            }
            Sisr => self.sisr = (value & 0xfffe) as u16,
            Iccs => self.timer.write_iccs(value),
            Nicr => self.timer.nicr = value as i32 as i64,
            Icr => return Err(Exception::ReservedOperand),
            Todr => self.todr = value,
            Rxcs | Txcs => {} // interrupt enables unimplemented (polled I/O)
            Rxdb => return Err(Exception::ReservedOperand),
            Txdb => self.console.tx_log.push(value as u8),
            Mapen => {
                self.mmu.set_mapen(value & 1 != 0);
                self.invalidate_code_caches();
            }
            Tbia => {
                self.mmu.tlb_mut().invalidate_all();
                self.invalidate_code_caches();
            }
            Tbis => {
                // Targeted decode-cache invalidation needs the physical
                // page; the TLB entry (peeked before it is dropped)
                // provides it. With no entry the mapping is unknown —
                // invalidate everything to stay conservative.
                let va = VirtAddr::new(value);
                match self.mmu.tlb().peek(va) {
                    Some(e) => {
                        self.icache.invalidate_page(e.pfn);
                        self.trans.invalidate_page(e.pfn);
                        self.prof_event(
                            ProfEventKind::Invalidate,
                            e.pfn << vax_arch::PAGE_SHIFT,
                            1,
                        );
                    }
                    None => self.invalidate_code_caches(),
                }
                self.mmu.tlb_mut().invalidate_single(va);
            }
            Sid => return Err(Exception::ReservedOperand),
            Memsize | Kcall | Ioreset => return Err(Exception::ReservedOperand),
        }
        Ok(())
    }

    // ---- interrupts ----

    /// Latches a device interrupt request (also used by the VMM to model
    /// virtual device completion on bare-metal runs).
    pub fn raise_irq(&mut self, irq: IrqRequest) {
        if !self.pending_irqs.contains(&irq) {
            self.pending_irqs.push(irq);
        }
    }

    /// The highest-priority deliverable interrupt, if any exceeds the
    /// current IPL.
    fn pending_interrupt(&self) -> Option<(u8, u16)> {
        // Fast path for the instruction loop: nothing latched anywhere.
        if self.pending_irqs.is_empty() && self.sisr == 0 && !self.timer.interrupt_pending() {
            return None;
        }
        let mut best: Option<(u8, u16)> = None;
        if self.timer.interrupt_pending() {
            best = Some((TIMER_IPL, ScbVector::IntervalTimer.offset() as u16));
        }
        for irq in &self.pending_irqs {
            if best.is_none_or(|(ipl, _)| irq.ipl > ipl) {
                best = Some((irq.ipl, irq.vector));
            }
        }
        // Software interrupts: highest set level in SISR.
        if self.sisr != 0 {
            let level = 15 - self.sisr.leading_zeros() as u8;
            if best.is_none_or(|(ipl, _)| level > ipl) {
                best = Some((level, ScbVector::software(level) as u16));
            }
        }
        best.filter(|(ipl, _)| *ipl > self.psl.ipl())
    }

    /// Acknowledges (clears) the interrupt source just delivered.
    fn acknowledge(&mut self, ipl: u8, vector: u16) {
        if ipl == TIMER_IPL && vector == ScbVector::IntervalTimer.offset() as u16 {
            self.timer.iccs &= !IntervalTimer::INT;
        } else if ipl <= 15 {
            self.sisr &= !(1 << ipl);
        } else {
            self.pending_irqs
                .retain(|i| !(i.ipl == ipl && i.vector == vector));
        }
    }

    // ---- the step loop ----

    /// Executes one instruction (or delivers one interrupt/exception).
    ///
    /// On a bare machine this never returns [`StepEvent::VmExit`]; inside
    /// a VM every trap/fault/interrupt surfaces as a `VmExit` for the
    /// embedding VMM, with `PSL<VM>` cleared exactly as the paper's
    /// microcode does.
    pub fn step(&mut self) -> StepEvent {
        if self.halted {
            return StepEvent::Halted(HaltReason::HaltInstruction);
        }

        // Deliverable interrupt?
        if let Some((ipl, vector)) = self.pending_interrupt() {
            self.acknowledge(ipl, vector);
            if self.psl.vm() {
                self.psl.set_vm(false);
                self.counters.vm_interrupt_exits += 1;
                self.exit_stamp = self.cycles;
                self.cycles += self.costs.exception_entry;
                return StepEvent::VmExit(VmExit::Interrupt { ipl, vector });
            }
            self.counters.interrupts += 1;
            return match self.deliver_interrupt(ipl, vector) {
                Ok(()) => StepEvent::Ok,
                Err(()) => self.halt_double_fault(),
            };
        }

        // Translated fast path: executes a whole superblock (charging
        // cycles and ticking devices per retired µop exactly as the
        // interpreter path below does per instruction) or declines.
        if self.exec_tier == ExecTier::Trans {
            if let Some(event) = self.step_translated() {
                return event;
            }
        }

        let pc = self.regs[15];
        self.trace_push(pc);
        let cycles_before = self.cycles;
        let instrs_before = self.counters.instructions;
        let event = self.execute_one();

        // Advance time-based devices by the cycles actually consumed.
        let delta = (self.cycles - cycles_before).max(1);
        self.post_instruction_tick(delta);
        // Attribution is by retire path: a Trans-tier machine retiring
        // here went through the (decode-cached) interpreter. Faulting
        // or exiting instructions don't retire; their cycles fold into
        // the next sample's delta.
        if self.counters.instructions != instrs_before {
            let tier = if self.icache_enabled {
                ProfTier::Cache
            } else {
                ProfTier::Interp
            };
            self.prof_retire(tier, pc);
        }
        event
    }

    /// Records a retiring instruction's PC in the trace ring, if tracing
    /// is enabled. Shared by the interpreter and translated tiers.
    pub(crate) fn trace_push(&mut self, pc: u32) {
        if let Some((ring, cap)) = &mut self.trace {
            if ring.len() == *cap {
                ring.pop_front();
            }
            ring.push_back(pc);
        }
    }

    /// Advances time-based devices by `delta` cycles after an instruction
    /// (or µop) retires, and reports whether an interrupt became
    /// deliverable — the translated tier uses that to side-exit.
    pub(crate) fn post_instruction_tick(&mut self, delta: u64) -> bool {
        self.timer.tick(delta);
        self.todr_acc += delta;
        if self.todr_acc >= 100 {
            self.todr = self.todr.wrapping_add(1);
            self.todr_acc = 0;
        }
        let now = self.cycles;
        let Machine {
            bus, pending_irqs, ..
        } = self;
        bus.tick_into(now, pending_irqs);
        self.pending_interrupt().is_some()
    }

    /// Runs until halt, a VM exit, or `max_steps` instructions.
    ///
    /// Returns the final event ([`StepEvent::Ok`] when the budget ran out).
    pub fn run(&mut self, max_steps: u64) -> StepEvent {
        for _ in 0..max_steps {
            match self.step() {
                StepEvent::Ok => continue,
                other => return other,
            }
        }
        StepEvent::Ok
    }

    pub(crate) fn halt_double_fault(&mut self) -> StepEvent {
        self.halted = true;
        StepEvent::Halted(HaltReason::DoubleFault)
    }

    // ---- snapshot/restore seam ----

    /// Captures the complete machine state except physical memory and bus
    /// devices; see [`MachineState`].
    pub fn export_state(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            psl_raw: self.psl.raw(),
            vmpsl: self.vmpsl,
            sp_bank: self.sp_bank,
            scbb: self.scbb,
            pcbb: self.pcbb,
            astlvl: self.astlvl,
            sisr: self.sisr,
            todr: self.todr,
            todr_acc: self.todr_acc,
            costs: self.costs,
            mmu: self.mmu.export_state(),
            console_tx: self.console.tx_log.clone(),
            console_rx: self.console.rx_queue.iter().copied().collect(),
            timer: TimerState {
                iccs: self.timer.iccs,
                nicr: self.timer.nicr,
                icr: self.timer.icr,
            },
            pending_irqs: self.pending_irqs.clone(),
            cycles: self.cycles,
            exit_stamp: self.exit_stamp,
            counters: self.counters,
            halted: self.halted,
            write_tracking: self.mem.write_tracking_enabled(),
        }
    }

    /// Injects a previously exported state, bypassing the architectural
    /// setters (no TLB invalidations, no stack re-banking — the image is
    /// reinstated verbatim). Physical memory must be restored separately
    /// by the caller. The decoded-instruction cache starts cold, which is
    /// cycle- and counter-neutral.
    pub fn import_state(&mut self, state: MachineState) {
        self.regs = state.regs;
        self.psl = Psl::from_raw(state.psl_raw);
        self.vmpsl = state.vmpsl;
        self.sp_bank = state.sp_bank;
        self.scbb = state.scbb;
        self.pcbb = state.pcbb;
        self.astlvl = state.astlvl;
        self.sisr = state.sisr;
        self.todr = state.todr;
        self.todr_acc = state.todr_acc;
        self.costs = state.costs;
        self.mmu.import_state(state.mmu);
        self.console.tx_log = state.console_tx;
        self.console.rx_queue = state.console_rx.into();
        self.timer = IntervalTimer {
            iccs: state.timer.iccs,
            nicr: state.timer.nicr,
            icr: state.timer.icr,
        };
        self.pending_irqs = state.pending_irqs;
        self.cycles = state.cycles;
        self.exit_stamp = state.exit_stamp;
        self.counters = state.counters;
        self.halted = state.halted;
        self.invalidate_code_caches();
        self.mem.clear_all_code_pages();
        // Write-tracking enablement is machine state (an incremental
        // snapshot chain must keep producing deltas after a restore);
        // the bitmaps themselves are not, so the imported tracker
        // starts clean.
        if state.write_tracking {
            if !self.mem.write_tracking_enabled() {
                self.mem.enable_write_tracking();
            }
        } else {
            self.mem.disable_write_tracking();
        }
    }

    /// Replaces this machine's physical memory wholesale (snapshot restore
    /// and copy-on-write forking). The decoded-instruction cache is
    /// dropped: its entries are keyed by physical address into the old
    /// contents. Write-tracking enablement carries over: if the outgoing
    /// memory was tracked and the incoming one is not, a fresh tracker is
    /// armed, sized to the *new* memory — the old bitmaps never survive a
    /// swap, so a differently-sized replacement cannot leave a stale,
    /// mis-sized bitmap behind.
    pub fn replace_mem(&mut self, mem: PhysMemory) {
        let was_tracking = self.mem.write_tracking_enabled();
        self.mem = mem;
        self.invalidate_code_caches();
        self.mem.clear_all_code_pages();
        if was_tracking && !self.mem.write_tracking_enabled() {
            self.mem.enable_write_tracking();
        }
    }

    /// Forks this machine's memory copy-on-write (see
    /// [`PhysMemory::fork`]), returning the child overlay. The parent's
    /// decode cache stays valid — contents are unchanged — but write
    /// tracking keeps working because all stores funnel through
    /// [`PhysMemory`].
    pub fn fork_mem(&mut self) -> PhysMemory {
        self.mem.fork()
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("variant", &self.variant)
            .field("pc", &format_args!("{:#010x}", self.regs[15]))
            .field("psl", &format_args!("{}", self.psl))
            .field("cycles", &self.cycles)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_counts_and_interrupts() {
        let mut t = IntervalTimer {
            nicr: -10,
            ..IntervalTimer::default()
        };
        t.write_iccs(IntervalTimer::RUN | IntervalTimer::IE | IntervalTimer::XFR);
        assert_eq!(t.icr, -10);
        for _ in 0..9 {
            t.tick(1);
        }
        assert!(!t.interrupt_pending());
        t.tick(1);
        assert!(t.interrupt_pending());
        assert_eq!(t.icr, -10, "reloaded");
        // Write-1-to-clear.
        t.write_iccs(IntervalTimer::INT | IntervalTimer::RUN | IntervalTimer::IE);
        assert!(!t.interrupt_pending());
    }

    #[test]
    fn stack_banking_follows_psl() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        let mut psl = Psl::new();
        psl.set_cur_mode(AccessMode::Kernel);
        m.set_psl(psl);
        m.set_reg(14, 0x1000); // KSP
        let mut upsl = Psl::new();
        upsl.set_cur_mode(AccessMode::User);
        m.set_psl(upsl);
        m.set_reg(14, 0x2000); // USP
        assert_eq!(m.sp_for_mode(AccessMode::Kernel), 0x1000);
        assert_eq!(m.sp_for_mode(AccessMode::User), 0x2000);
        m.set_sp_for_mode(AccessMode::Kernel, 0x1500);
        let mut kpsl = Psl::new();
        kpsl.set_cur_mode(AccessMode::Kernel);
        m.set_psl(kpsl);
        assert_eq!(m.reg(14), 0x1500);
    }

    #[test]
    fn ipr_round_trips() {
        let mut m = Machine::new(MachineVariant::Modified, 4096);
        m.write_ipr(Ipr::Sbr, 0x3000).unwrap();
        assert_eq!(m.read_ipr(Ipr::Sbr).unwrap(), 0x3000);
        m.write_ipr(Ipr::Ipl, 22).unwrap();
        assert_eq!(m.read_ipr(Ipr::Ipl).unwrap(), 22);
        assert_eq!(m.psl().ipl(), 22);
        assert!(m.write_ipr(Ipr::Icr, 0).is_err());
        assert!(m.read_ipr(Ipr::Tbia).is_err());
        // VM-only registers do not exist on a real machine.
        assert!(m.read_ipr(Ipr::Memsize).is_err());
        assert!(m.write_ipr(Ipr::Kcall, 0).is_err());
    }

    #[test]
    fn sirr_sets_software_interrupt_summary() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        m.write_ipr(Ipr::Sirr, 3).unwrap();
        m.write_ipr(Ipr::Sirr, 7).unwrap();
        assert_eq!(m.read_ipr(Ipr::Sisr).unwrap(), (1 << 3) | (1 << 7));
    }

    #[test]
    fn console_round_trip() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        assert_eq!(m.read_ipr(Ipr::Rxcs).unwrap(), 0);
        m.console_push_input(b'A');
        assert_eq!(m.read_ipr(Ipr::Rxcs).unwrap(), 0x80);
        assert_eq!(m.read_ipr(Ipr::Rxdb).unwrap(), b'A' as u32);
        m.write_ipr(Ipr::Txdb, b'Z' as u32).unwrap();
        assert_eq!(m.console_take_output(), b"Z");
        assert!(m.console_output().is_empty());
    }

    #[test]
    #[should_panic(expected = "standard VAX has no VM mode")]
    fn enter_vm_rejected_on_standard() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        m.enter_vm(VmPsl::default());
    }

    #[test]
    fn push_pop_round_trip() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        let mut psl = Psl::new();
        psl.set_cur_mode(AccessMode::Kernel);
        m.set_psl(psl);
        m.set_reg(14, 0x800);
        m.push(0x1234_5678).unwrap();
        assert_eq!(m.reg(14), 0x7FC);
        assert_eq!(m.pop().unwrap(), 0x1234_5678);
        assert_eq!(m.reg(14), 0x800);
    }

    #[test]
    fn replace_mem_rearms_tracking_sized_to_the_new_memory() {
        // Regression: enable_write_tracking sizes its bitmaps from
        // pages() at enable time. Swapping in a *larger* memory must not
        // leave the old 8-page bitmap behind — a write past the old size
        // would index out of bounds (a host panic) or go untracked.
        let mut m = Machine::new(MachineVariant::Standard, 8 * 512);
        m.enable_write_tracking();
        m.mem_mut().write_u8(0, 1).unwrap();
        assert_eq!(m.mem().dirty_page_count(), 1);

        m.replace_mem(PhysMemory::new(64 * 512));
        assert!(
            m.write_tracking_enabled(),
            "tracking enablement survives a memory swap"
        );
        assert_eq!(m.mem().dirty_page_count(), 0, "fresh tracker starts clean");
        // The write far past the old memory's size is tracked, not a panic.
        m.mem_mut().write_u8(63 * 512, 1).unwrap();
        assert_eq!(m.mem().dirty_pages(), vec![63]);

        // Shrinking works the same way.
        m.replace_mem(PhysMemory::new(2 * 512));
        m.mem_mut().write_u8(512, 1).unwrap();
        assert_eq!(m.mem().dirty_pages(), vec![1]);

        // An untracked machine stays untracked across a swap.
        let mut plain = Machine::new(MachineVariant::Standard, 4096);
        plain.replace_mem(PhysMemory::new(4096));
        assert!(!plain.write_tracking_enabled());
    }

    #[test]
    fn state_round_trip_carries_write_tracking_enablement() {
        let mut m = Machine::new(MachineVariant::Standard, 4096);
        m.enable_write_tracking();
        let state = m.export_state();
        assert!(state.write_tracking);

        let mut restored = Machine::new(MachineVariant::Standard, 4096);
        restored.import_state(state);
        assert!(restored.write_tracking_enabled(), "import re-arms tracking");
        restored.mem_mut().write_u8(0, 1).unwrap();
        assert_eq!(restored.mem().dirty_page_count(), 1);

        // And the off state imports as off.
        m.disable_write_tracking();
        restored.import_state(m.export_state());
        assert!(!restored.write_tracking_enabled());
    }
}
