//! Instruction and operand-specifier decoding.
//!
//! Decoding performs all operand *reads* and effective-address
//! computations but commits **no** architectural state: register side
//! effects (autoincrement/autodecrement) are collected into the decode
//! result and applied at commit time. A fault anywhere during decode
//! therefore leaves the machine exactly at the instruction boundary, which
//! is what makes instruction restart (page faults, modify faults, shadow
//! fills) correct.

use crate::bus::IO_BASE_PA;
use crate::event::{OperandLoc, OperandValue};
use crate::fixedvec::FixedVec;
use crate::icache::{parse_template, BaseTpl, InstTemplate, OpTpl};
use crate::machine::Machine;
use vax_arch::{
    AccessMode, AccessType, CostModel, DataType, Exception, Opcode, VirtAddr, PAGE_SHIFT,
};
use vax_mem::MemFault;

/// Why instruction execution aborted before committing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Abort {
    /// A memory-management or machine-check fault.
    Fault(MemFault),
    /// An architectural exception.
    Exc(Exception),
}

impl From<MemFault> for Abort {
    fn from(f: MemFault) -> Abort {
        Abort::Fault(f)
    }
}

impl From<Exception> for Abort {
    fn from(e: Exception) -> Abort {
        Abort::Exc(e)
    }
}

/// One decoded operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DecOp {
    /// Read access: the fetched value (zero-extended to 32 bits).
    Value(u32),
    /// Write or modify access: destination, plus the old value for modify.
    Loc { loc: OperandLoc, old: Option<u32> },
    /// Address access: the effective address.
    Addr(VirtAddr),
    /// Branch displacement: the resolved target PC.
    Branch(u32),
}

impl Default for DecOp {
    /// Placeholder for [`FixedVec`] backing storage only.
    fn default() -> DecOp {
        DecOp::Value(0)
    }
}

impl DecOp {
    /// The operand's input value.
    ///
    /// # Panics
    ///
    /// Panics if the operand carries no value (plain write destination).
    pub fn value(&self) -> u32 {
        match self {
            DecOp::Value(v) => *v,
            DecOp::Loc { old: Some(v), .. } => *v,
            DecOp::Addr(a) => a.raw(),
            DecOp::Branch(t) => *t,
            DecOp::Loc { old: None, .. } => panic!("write operand has no value"),
        }
    }

    /// Converts to the VMM-facing packet representation.
    pub fn to_operand_value(self) -> OperandValue {
        match self {
            DecOp::Value(v) => OperandValue::Value(v),
            DecOp::Loc { loc, old } => OperandValue::Location { loc, value: old },
            DecOp::Addr(a) => OperandValue::Address(a),
            DecOp::Branch(t) => OperandValue::Value(t),
        }
    }
}

/// Register-update list: at most one autoincrement/autodecrement per
/// specifier, six specifiers per instruction; 8 leaves headroom.
pub(crate) type RegUpdates = FixedVec<(u8, u32), 8>;

/// A fully decoded instruction, ready to execute or to package into a
/// VM-emulation trap. Inline storage: decoding allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Decoded {
    pub op: Opcode,
    /// PC of the opcode byte.
    pub pc_start: u32,
    /// PC of the following instruction.
    pub next_pc: u32,
    pub operands: FixedVec<DecOp, 6>,
    /// Register updates from autoincrement/autodecrement, to apply at
    /// commit: `(reg, new_value)` in decode order.
    pub reg_updates: RegUpdates,
}

impl Decoded {
    /// A blank decode result for the out-parameter decode API. Decoding
    /// fills it in place — instruction structures are never moved, which
    /// keeps a couple of hundred bytes of memcpy out of every step.
    pub fn empty() -> Decoded {
        Decoded {
            op: Opcode::Nop,
            pc_start: 0,
            next_pc: 0,
            operands: FixedVec::new(),
            reg_updates: FixedVec::new(),
        }
    }
}

struct Cursor<'a> {
    pc: u32,
    reg_updates: &'a mut RegUpdates,
}

impl Cursor<'_> {
    fn reg(&self, m: &Machine, r: u8) -> u32 {
        // Later updates shadow earlier ones and the register file.
        self.reg_updates
            .iter()
            .rev()
            .find(|(ur, _)| *ur == r)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| m.reg(r as usize))
    }

    fn update(&mut self, r: u8, v: u32) {
        self.reg_updates.push((r, v));
    }
}

impl Machine {
    fn fetch_u8(&mut self, cur: &mut Cursor<'_>) -> Result<u8, Abort> {
        let mode = self.psl().cur_mode();
        let v = self.read_virt(VirtAddr::new(cur.pc), 1, mode)?;
        cur.pc = cur.pc.wrapping_add(1);
        Ok(v as u8)
    }

    fn fetch(&mut self, cur: &mut Cursor<'_>, len: u32) -> Result<u32, Abort> {
        let mode = self.psl().cur_mode();
        let v = self.read_virt(VirtAddr::new(cur.pc), len, mode)?;
        cur.pc = cur.pc.wrapping_add(len);
        Ok(v)
    }

    fn read_operand_mem(&mut self, va: VirtAddr, dtype: DataType) -> Result<u32, Abort> {
        let mode = self.psl().cur_mode();
        Ok(self.read_virt(va, dtype.bytes(), mode)?)
    }

    fn decode_operand(
        &mut self,
        cur: &mut Cursor<'_>,
        access: AccessType,
        dtype: DataType,
    ) -> Result<DecOp, Abort> {
        if access == AccessType::Branch {
            let w = if dtype == DataType::Byte { 1 } else { 2 };
            let raw = self.fetch(cur, w)?;
            let disp = if w == 1 {
                raw as u8 as i8 as i32
            } else {
                raw as u16 as i16 as i32
            };
            return Ok(DecOp::Branch(cur.pc.wrapping_add(disp as u32)));
        }

        let spec = self.fetch_u8(cur)?;
        let mode_bits = spec >> 4;
        let reg = spec & 0xf;
        let width = dtype.bytes();

        // Effective address for the memory modes; register/literal modes
        // return early.
        let ea: VirtAddr = match mode_bits {
            0..=3 => {
                // Short literal: read-only.
                return match access {
                    AccessType::Read => Ok(DecOp::Value((spec & 0x3f) as u32)),
                    _ => Err(Exception::ReservedAddressingMode.into()),
                };
            }
            4 => {
                // Indexed mode: `base[Rx]` — the effective address is the
                // base operand's address plus Rx scaled by the operand
                // width. The base specifier follows and may be any
                // addressable mode except literal, register, immediate,
                // or another index.
                if reg == 15 {
                    return Err(Exception::ReservedAddressingMode.into());
                }
                let index = cur.reg(self, reg);
                let base = self.decode_base_ea(cur, width)?;
                base.wrapping_add(index.wrapping_mul(width))
            }
            5 => {
                if reg == 15 {
                    return Err(Exception::ReservedAddressingMode.into());
                }
                return Ok(match access {
                    AccessType::Read => DecOp::Value(mask_width(cur.reg(self, reg), width)),
                    AccessType::Write => DecOp::Loc {
                        loc: OperandLoc::Reg(reg),
                        old: None,
                    },
                    AccessType::Modify => DecOp::Loc {
                        loc: OperandLoc::Reg(reg),
                        old: Some(mask_width(cur.reg(self, reg), width)),
                    },
                    AccessType::Address => return Err(Exception::ReservedAddressingMode.into()),
                    AccessType::Branch => unreachable!(),
                });
            }
            6 => VirtAddr::new(cur.reg(self, reg)),
            7 => {
                if reg == 15 {
                    return Err(Exception::ReservedAddressingMode.into());
                }
                let v = cur.reg(self, reg).wrapping_sub(width);
                cur.update(reg, v);
                VirtAddr::new(v)
            }
            8 => {
                if reg == 15 {
                    // (PC)+ = immediate.
                    let v = self.fetch(cur, width)?;
                    return match access {
                        AccessType::Read => Ok(DecOp::Value(v)),
                        _ => Err(Exception::ReservedAddressingMode.into()),
                    };
                }
                let v = cur.reg(self, reg);
                cur.update(reg, v.wrapping_add(width));
                VirtAddr::new(v)
            }
            9 => {
                if reg == 15 {
                    // @(PC)+ = absolute.
                    VirtAddr::new(self.fetch(cur, 4)?)
                } else {
                    let ptr = cur.reg(self, reg);
                    cur.update(reg, ptr.wrapping_add(4));
                    let ea = self.read_operand_mem(VirtAddr::new(ptr), DataType::Long)?;
                    VirtAddr::new(ea)
                }
            }
            0xA..=0xF => {
                let (dw, deferred) = match mode_bits {
                    0xA => (1u32, false),
                    0xB => (1, true),
                    0xC => (2, false),
                    0xD => (2, true),
                    0xE => (4, false),
                    _ => (4, true),
                };
                let raw = self.fetch(cur, dw)?;
                let disp = match dw {
                    1 => raw as u8 as i8 as i32,
                    2 => raw as u16 as i16 as i32,
                    _ => raw as i32,
                };
                // For PC the base is the updated PC (after the
                // displacement bytes).
                let base = if reg == 15 {
                    cur.pc
                } else {
                    cur.reg(self, reg)
                };
                let direct = VirtAddr::new(base.wrapping_add(disp as u32));
                if deferred {
                    let ea = self.read_operand_mem(direct, DataType::Long)?;
                    VirtAddr::new(ea)
                } else {
                    direct
                }
            }
            _ => unreachable!(),
        };

        Ok(match access {
            AccessType::Read => DecOp::Value(self.read_operand_mem(ea, dtype)?),
            AccessType::Write => DecOp::Loc {
                loc: OperandLoc::Mem(ea),
                old: None,
            },
            AccessType::Modify => DecOp::Loc {
                loc: OperandLoc::Mem(ea),
                old: Some(self.read_operand_mem(ea, dtype)?),
            },
            AccessType::Address => DecOp::Addr(ea),
            AccessType::Branch => unreachable!(),
        })
    }

    /// Decodes the *base* specifier of an indexed operand: any mode that
    /// yields a memory address. Literal, register, immediate, and nested
    /// index modes are reserved here (as on the real VAX).
    fn decode_base_ea(&mut self, cur: &mut Cursor<'_>, width: u32) -> Result<VirtAddr, Abort> {
        let spec = self.fetch_u8(cur)?;
        let mode_bits = spec >> 4;
        let reg = spec & 0xf;
        let ea = match mode_bits {
            6 => VirtAddr::new(cur.reg(self, reg)),
            7 => {
                if reg == 15 {
                    return Err(Exception::ReservedAddressingMode.into());
                }
                // Within index mode, autodecrement moves by the operand
                // width.
                let v = cur.reg(self, reg).wrapping_sub(width);
                cur.update(reg, v);
                VirtAddr::new(v)
            }
            8 => {
                if reg == 15 {
                    return Err(Exception::ReservedAddressingMode.into());
                }
                let v = cur.reg(self, reg);
                cur.update(reg, v.wrapping_add(width));
                VirtAddr::new(v)
            }
            9 => {
                if reg == 15 {
                    VirtAddr::new(self.fetch(cur, 4)?)
                } else {
                    let ptr = cur.reg(self, reg);
                    cur.update(reg, ptr.wrapping_add(4));
                    let ea = self.read_operand_mem(VirtAddr::new(ptr), DataType::Long)?;
                    VirtAddr::new(ea)
                }
            }
            0xA..=0xF => {
                let (dw, deferred) = match mode_bits {
                    0xA => (1u32, false),
                    0xB => (1, true),
                    0xC => (2, false),
                    0xD => (2, true),
                    0xE => (4, false),
                    _ => (4, true),
                };
                let raw = self.fetch(cur, dw)?;
                let disp = match dw {
                    1 => raw as u8 as i8 as i32,
                    2 => raw as u16 as i16 as i32,
                    _ => raw as i32,
                };
                let base = if reg == 15 {
                    cur.pc
                } else {
                    cur.reg(self, reg)
                };
                let direct = VirtAddr::new(base.wrapping_add(disp as u32));
                if deferred {
                    let ea = self.read_operand_mem(direct, DataType::Long)?;
                    VirtAddr::new(ea)
                } else {
                    direct
                }
            }
            _ => return Err(Exception::ReservedAddressingMode.into()),
        };
        Ok(ea)
    }

    /// Fetches and decodes the instruction at the PC, committing nothing.
    ///
    /// Tries the decoded-instruction cache first (when enabled); any
    /// instruction the cache cannot serve — unmapped or IO-space fetch
    /// page, page-crossing or untemplatable encoding — falls back to the
    /// bytewise decoder. Both paths charge identical cycles and touch
    /// the TLB identically, so enabling the cache never changes
    /// `cycles()` or `counters()`.
    pub(crate) fn decode_instruction(&mut self, d: &mut Decoded) -> Result<(), Abort> {
        if self.icache_enabled && self.try_decode_cached(d)? {
            return Ok(());
        }
        self.decode_bytewise(d)
    }

    /// Attempts a cache-served decode into `d`. `Ok(false)` means "use
    /// the bytewise path" and guarantees no cycles were charged and no
    /// architectural state was touched.
    fn try_decode_cached(&mut self, d: &mut Decoded) -> Result<bool, Abort> {
        // Drain write notifications before trusting any entry: a store
        // into a cached code page (self-modifying code, VMM writes,
        // modify-bit writeback) invalidates that page's templates.
        self.drain_dirty_code();
        let pc = self.pc();
        let mode = self.psl.cur_mode();
        let Some(pa) = self.fetch_pa_probe(VirtAddr::new(pc), mode) else {
            return Ok(false);
        };
        let mapen = self.mmu.mapen();
        // Split borrows: the template stays a reference into the cache
        // while the fast path mutates only disjoint fields, so a hit
        // copies no template bytes.
        let Machine {
            icache,
            mem,
            regs,
            cycles,
            costs,
            ..
        } = self;
        let Some(tpl) = icache.get_or_insert(pa, || {
            let mut t = mem.page_tail(pa).and_then(parse_template)?;
            t.bake(pa);
            mem.note_code_page(pa >> PAGE_SHIFT);
            Some(t)
        }) else {
            return Ok(false);
        };
        if tpl.simple && !mapen {
            materialize_simple(tpl, regs, cycles, costs, d);
            return Ok(true);
        }
        let tpl = *tpl;
        self.materialize(&tpl, d)?;
        Ok(true)
    }

    /// Charge-free probe for the physical address of a fetch byte:
    /// identity when mapping is off, otherwise a TLB peek (no hit/miss
    /// accounting) plus protection check. `None` (unmapped, protected,
    /// or IO space) routes the decode to the bytewise path, which warms
    /// the TLB or raises the fault with the correct charges.
    pub(crate) fn fetch_pa_probe(&self, va: VirtAddr, mode: AccessMode) -> Option<u32> {
        let pa = if self.mmu.mapen() {
            let e = self.mmu.tlb().peek(va)?;
            if !e.prot.allows(mode, false) {
                return None;
            }
            (e.pfn << PAGE_SHIFT) | va.byte_offset()
        } else {
            va.raw()
        };
        (pa < IO_BASE_PA).then_some(pa)
    }

    /// Replays the cycle charge and TLB traffic of the `read_virt` a
    /// bytewise i-stream `fetch` of `len` bytes would issue: the
    /// memory-reference charge plus a *real* translation (TLB hit/miss
    /// counters, walk costs, modify machinery). The RAM byte read it
    /// omits is charge-free, and the bytes are already in the template.
    /// Cached instructions never cross a page, so one translation per
    /// fetch matches the bytewise path exactly.
    fn charge_fetch(&mut self, cur: &mut Cursor<'_>, len: u32) -> Result<(), Abort> {
        self.cycles += self.costs.memory_reference;
        // With mapping off, translate is the identity: zero cycles, no
        // TLB counters. Skipping the call keeps the replay bit-identical
        // while saving the dominant per-event cost of the cached path.
        if self.mmu.mapen() {
            let mode = self.psl.cur_mode();
            let t = {
                let Machine {
                    mmu, mem, costs, ..
                } = self;
                mmu.translate(mem, VirtAddr::new(cur.pc), mode, false, costs)?
            };
            self.cycles += t.cycles;
        }
        cur.pc = cur.pc.wrapping_add(len);
        Ok(())
    }

    /// Evaluates a template against live machine state, producing the
    /// same [`Decoded`] — and the same cycle/counter side effects — as
    /// [`Machine::decode_bytewise`] over the same bytes.
    fn materialize(&mut self, tpl: &InstTemplate, d: &mut Decoded) -> Result<(), Abort> {
        let pc_start = self.pc();
        d.op = tpl.op;
        d.pc_start = pc_start;
        d.operands.clear();
        d.reg_updates.clear();
        let mut cur = Cursor {
            pc: pc_start,
            reg_updates: &mut d.reg_updates,
        };
        for _ in 0..tpl.opcode_bytes {
            self.charge_fetch(&mut cur, 1)?;
        }
        for (top, spec) in tpl.ops.iter().zip(tpl.op.operands()) {
            let o = self.materialize_operand(&mut cur, top, spec.access, spec.dtype)?;
            d.operands.push(o);
        }
        debug_assert_eq!(cur.pc, pc_start.wrapping_add(tpl.len as u32));
        d.next_pc = cur.pc;
        Ok(())
    }

    fn materialize_operand(
        &mut self,
        cur: &mut Cursor<'_>,
        top: &OpTpl,
        access: AccessType,
        dtype: DataType,
    ) -> Result<DecOp, Abort> {
        if let OpTpl::Branch { w, disp } = *top {
            self.charge_fetch(cur, w as u32)?;
            return Ok(DecOp::Branch(cur.pc.wrapping_add(disp as u32)));
        }
        // Every non-branch operand starts with its specifier byte.
        self.charge_fetch(cur, 1)?;
        let width = dtype.bytes();
        let ea = match *top {
            OpTpl::Branch { .. } => unreachable!(),
            OpTpl::Literal(v) => return Ok(DecOp::Value(v as u32)),
            OpTpl::Immediate { w, value } => {
                self.charge_fetch(cur, w as u32)?;
                return Ok(DecOp::Value(value));
            }
            OpTpl::Register(r) => {
                return Ok(match access {
                    AccessType::Read => DecOp::Value(mask_width(cur.reg(self, r), width)),
                    AccessType::Write => DecOp::Loc {
                        loc: OperandLoc::Reg(r),
                        old: None,
                    },
                    AccessType::Modify => DecOp::Loc {
                        loc: OperandLoc::Reg(r),
                        old: Some(mask_width(cur.reg(self, r), width)),
                    },
                    // parse_template rejects register operands for
                    // Address access; Branch never reaches here.
                    AccessType::Address | AccessType::Branch => unreachable!(),
                });
            }
            OpTpl::Ea { base, index_reg } => match index_reg {
                Some(xr) => {
                    // The index register is read before any base side
                    // effect, as in the bytewise decoder.
                    let index = cur.reg(self, xr);
                    self.charge_fetch(cur, 1)?; // the base specifier byte
                    let base_ea = self.materialize_base(cur, base, width)?;
                    base_ea.wrapping_add(index.wrapping_mul(width))
                }
                None => self.materialize_base(cur, base, width)?,
            },
        };
        let ea = VirtAddr::new(ea);
        Ok(match access {
            AccessType::Read => DecOp::Value(self.read_operand_mem(ea, dtype)?),
            AccessType::Write => DecOp::Loc {
                loc: OperandLoc::Mem(ea),
                old: None,
            },
            AccessType::Modify => DecOp::Loc {
                loc: OperandLoc::Mem(ea),
                old: Some(self.read_operand_mem(ea, dtype)?),
            },
            AccessType::Address => DecOp::Addr(ea),
            AccessType::Branch => unreachable!(),
        })
    }

    fn materialize_base(
        &mut self,
        cur: &mut Cursor<'_>,
        base: BaseTpl,
        width: u32,
    ) -> Result<u32, Abort> {
        Ok(match base {
            BaseTpl::RegDeferred(r) => cur.reg(self, r),
            BaseTpl::AutoDec(r) => {
                let v = cur.reg(self, r).wrapping_sub(width);
                cur.update(r, v);
                v
            }
            BaseTpl::AutoInc(r) => {
                let v = cur.reg(self, r);
                cur.update(r, v.wrapping_add(width));
                v
            }
            BaseTpl::AutoIncDeferred(r) => {
                let ptr = cur.reg(self, r);
                cur.update(r, ptr.wrapping_add(4));
                self.read_operand_mem(VirtAddr::new(ptr), DataType::Long)?
            }
            BaseTpl::Absolute(a) => {
                self.charge_fetch(cur, 4)?;
                a
            }
            BaseTpl::Disp {
                reg,
                dw,
                disp,
                deferred,
            } => {
                self.charge_fetch(cur, dw as u32)?;
                let b = if reg == 15 {
                    cur.pc
                } else {
                    cur.reg(self, reg)
                };
                let direct = b.wrapping_add(disp as u32);
                if deferred {
                    self.read_operand_mem(VirtAddr::new(direct), DataType::Long)?
                } else {
                    direct
                }
            }
        })
    }

    /// The original byte-by-byte decoder: every i-stream byte comes in
    /// through `read_virt`. This is the semantic reference the cached
    /// path must match charge-for-charge, and the only path that can
    /// raise decode faults.
    pub(crate) fn decode_bytewise(&mut self, d: &mut Decoded) -> Result<(), Abort> {
        let pc_start = self.pc();
        d.pc_start = pc_start;
        d.operands.clear();
        d.reg_updates.clear();
        let mut cur = Cursor {
            pc: pc_start,
            reg_updates: &mut d.reg_updates,
        };
        let b0 = self.fetch_u8(&mut cur)?;
        let b1_pos = cur.pc;
        let op = if b0 == 0xFD {
            let b1 = self.fetch_u8(&mut cur)?;
            match Opcode::decode(b0, b1) {
                Some((op, _)) => op,
                None => return Err(Exception::ReservedInstruction.into()),
            }
        } else {
            match Opcode::decode(b0, 0) {
                Some((op, _)) => op,
                None => {
                    let _ = b1_pos;
                    return Err(Exception::ReservedInstruction.into());
                }
            }
        };
        d.op = op;
        for spec in op.operands() {
            let o = self.decode_operand(&mut cur, spec.access, spec.dtype)?;
            d.operands.push(o);
        }
        d.next_pc = cur.pc;
        Ok(())
    }

    /// Applies decode-time register side effects (autoincrement etc.).
    pub(crate) fn commit_reg_updates(&mut self, d: &Decoded) {
        for (r, v) in &d.reg_updates {
            self.set_reg(*r as usize, *v);
        }
    }

    /// Applies a VM-emulation packet's side effects on behalf of the VMM
    /// (the VMM calls this exactly when it emulates the instruction).
    pub fn apply_side_effects(&mut self, effects: &[(u8, u32)]) {
        for (r, v) in effects {
            self.set_reg(*r as usize, *v);
        }
    }

    /// Writes an operand destination with the operand's width, as `mode`.
    pub(crate) fn write_loc(
        &mut self,
        loc: OperandLoc,
        value: u32,
        dtype: DataType,
        mode: AccessMode,
    ) -> Result<(), Abort> {
        match loc {
            OperandLoc::Reg(r) => {
                let old = self.reg(r as usize);
                let merged = match dtype {
                    DataType::Byte => (old & !0xff) | (value & 0xff),
                    DataType::Word => (old & !0xffff) | (value & 0xffff),
                    DataType::Long => value,
                };
                self.set_reg(r as usize, merged);
            }
            OperandLoc::Mem(va) => {
                self.write_virt(va, value, dtype.bytes(), mode)?;
            }
        }
        Ok(())
    }
}

/// Fast materialization for templates with no memory-touching operands,
/// usable only with mapping off: every fetch event then charges exactly
/// one memory-reference (translate is the zero-cost identity) and
/// nothing can fault or update a register mid-decode, so the per-event
/// charges collapse into one add and operands come straight from the
/// template and the live registers. Bit-identical to
/// [`Machine::materialize`], which is itself bit-identical to the
/// bytewise decode. A free function over disjoint `Machine` fields so
/// the template can stay borrowed from the cache.
fn materialize_simple(
    tpl: &InstTemplate,
    regs: &[u32; 16],
    cycles: &mut u64,
    costs: &CostModel,
    d: &mut Decoded,
) {
    let pc_start = regs[15];
    // With mapping off every fetch event costs exactly one
    // memory-reference (translate is the identity and charge-free), so
    // the whole bytewise i-stream charge collapses into one add.
    *cycles += tpl.fetch_events as u64 * costs.memory_reference;
    d.op = tpl.op;
    d.pc_start = pc_start;
    d.next_pc = pc_start.wrapping_add(tpl.len as u32);
    // The template was baked at this PA, and with mapping off PA == VA,
    // so the pre-materialized operands are exact; only register-sourced
    // slots need the live register file.
    d.operands = tpl.baked;
    d.reg_updates.clear();
    for p in &tpl.patches {
        let v = mask_width(regs[p.reg as usize], p.width as u32);
        d.operands[p.idx as usize] = if p.modify {
            DecOp::Loc {
                loc: OperandLoc::Reg(p.reg),
                old: Some(v),
            }
        } else {
            DecOp::Value(v)
        };
    }
}

pub(crate) fn mask_width(v: u32, width: u32) -> u32 {
    match width {
        1 => v & 0xff,
        2 => v & 0xffff,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::MachineVariant;

    fn machine_with(code: &[u8]) -> Machine {
        let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
        m.mem_mut().write_slice(0x200, code).unwrap();
        m.set_pc(0x200);
        m
    }

    /// Test shim over the out-parameter decode API.
    fn decode(m: &mut Machine) -> Result<Decoded, Abort> {
        let mut d = Decoded::empty();
        m.decode_instruction(&mut d)?;
        Ok(d)
    }

    #[test]
    fn decodes_literal_and_register() {
        // MOVL #5, R0
        let mut m = machine_with(&[0xD0, 0x05, 0x50]);
        let d = decode(&mut m).unwrap();
        assert_eq!(d.op, Opcode::Movl);
        assert_eq!(d.operands[0], DecOp::Value(5));
        assert_eq!(
            d.operands[1],
            DecOp::Loc {
                loc: OperandLoc::Reg(0),
                old: None
            }
        );
        assert_eq!(d.next_pc, 0x203);
        assert!(d.reg_updates.is_empty());
    }

    #[test]
    fn autoincrement_is_pending_not_committed() {
        // MOVL (R1)+, R0 with R1 = 0x300
        let mut m = machine_with(&[0xD0, 0x81, 0x50]);
        m.set_reg(1, 0x300);
        m.mem_mut().write_u32(0x300, 0xCAFE).unwrap();
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(0xCAFE));
        assert_eq!(d.reg_updates, vec![(1, 0x304)]);
        assert_eq!(m.reg(1), 0x300, "nothing committed during decode");
        m.commit_reg_updates(&d);
        assert_eq!(m.reg(1), 0x304);
    }

    #[test]
    fn double_autoincrement_same_register() {
        // MOVL (R0)+, (R0)+  — the second use must see the first update.
        let mut m = machine_with(&[0xD0, 0x80, 0x80]);
        m.set_reg(0, 0x400);
        m.mem_mut().write_u32(0x400, 7).unwrap();
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(7));
        assert_eq!(
            d.operands[1],
            DecOp::Loc {
                loc: OperandLoc::Mem(VirtAddr::new(0x404)),
                old: None
            }
        );
        assert_eq!(d.reg_updates, vec![(0, 0x404), (0, 0x408)]);
    }

    #[test]
    fn autodecrement_computes_new_address() {
        // MOVL R0, -(SP)
        let mut m = machine_with(&[0xD0, 0x50, 0x7E]);
        m.set_reg(14, 0x800);
        let d = decode(&mut m).unwrap();
        assert_eq!(
            d.operands[1],
            DecOp::Loc {
                loc: OperandLoc::Mem(VirtAddr::new(0x7FC)),
                old: None
            }
        );
        assert_eq!(d.reg_updates, vec![(14, 0x7FC)]);
    }

    #[test]
    fn immediate_and_absolute() {
        // MOVL #0x11223344, @#0x500
        let mut m = machine_with(&[0xD0, 0x8F, 0x44, 0x33, 0x22, 0x11, 0x9F, 0x00, 0x05, 0, 0]);
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(0x1122_3344));
        assert_eq!(
            d.operands[1],
            DecOp::Loc {
                loc: OperandLoc::Mem(VirtAddr::new(0x500)),
                old: None
            }
        );
    }

    #[test]
    fn displacement_and_deferred() {
        // MOVL 8(R2), R0 ; R2=0x600, [0x608]=9
        let mut m = machine_with(&[0xD0, 0xA2, 0x08, 0x50]);
        m.set_reg(2, 0x600);
        m.mem_mut().write_u32(0x608, 9).unwrap();
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(9));

        // MOVL @8(R2), R0 ; [0x608]=0x700, [0x700]=42
        let mut m = machine_with(&[0xD0, 0xB2, 0x08, 0x50]);
        m.set_reg(2, 0x600);
        m.mem_mut().write_u32(0x608, 0x700).unwrap();
        m.mem_mut().write_u32(0x700, 42).unwrap();
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(42));
    }

    #[test]
    fn pc_relative_displacement_uses_updated_pc() {
        // MOVL 0x10(PC), R0 assembled at 0x200: specifier AF 10; base PC
        // after the displacement byte = 0x203, so ea = 0x213.
        let mut m = machine_with(&[0xD0, 0xAF, 0x10, 0x50]);
        m.mem_mut().write_u32(0x213, 0x5150).unwrap();
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(0x5150));
    }

    #[test]
    fn branch_displacement_resolves_target() {
        // BRB .-2 (disp = 0xFE)
        let mut m = machine_with(&[0x11, 0xFE]);
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Branch(0x200));
    }

    #[test]
    fn address_operand() {
        // MOVAL 4(R1), R0
        let mut m = machine_with(&[0xDE, 0xA1, 0x04, 0x50]);
        m.set_reg(1, 0x100);
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Addr(VirtAddr::new(0x104)));
    }

    #[test]
    fn reserved_addressing_modes_fault() {
        // Literal as a write destination: CLRL #1.
        let mut m = machine_with(&[0xD4, 0x01]);
        assert_eq!(
            decode(&mut m).unwrap_err(),
            Abort::Exc(Exception::ReservedAddressingMode)
        );
        // Address of a register: MOVAL R1, R0.
        let mut m = machine_with(&[0xDE, 0x51, 0x50]);
        assert_eq!(
            decode(&mut m).unwrap_err(),
            Abort::Exc(Exception::ReservedAddressingMode)
        );
        // Indexed mode.
        let mut m = machine_with(&[0xD0, 0x41, 0x50]);
        assert_eq!(
            decode(&mut m).unwrap_err(),
            Abort::Exc(Exception::ReservedAddressingMode)
        );
    }

    #[test]
    fn unknown_opcode_faults() {
        let mut m = machine_with(&[0x40]); // ADDF2: unimplemented F-float
        assert_eq!(
            decode(&mut m).unwrap_err(),
            Abort::Exc(Exception::ReservedInstruction)
        );
        let mut m = machine_with(&[0xFD, 0x77]);
        assert_eq!(
            decode(&mut m).unwrap_err(),
            Abort::Exc(Exception::ReservedInstruction)
        );
    }

    #[test]
    fn byte_width_register_read_masks() {
        // MOVB R1, R0 with R1 = 0x1234: value is 0x34.
        let mut m = machine_with(&[0x90, 0x51, 0x50]);
        m.set_reg(1, 0x1234);
        let d = decode(&mut m).unwrap();
        assert_eq!(d.operands[0], DecOp::Value(0x34));
    }
}
