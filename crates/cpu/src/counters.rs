//! Event counters, the raw material for every experiment table.

/// Counts of architectural events since machine creation.
///
/// All counters are cumulative; use [`CpuCounters::delta`] to measure an
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Exceptions delivered (on-machine, through the SCB).
    pub exceptions: u64,
    /// Interrupts delivered (on-machine).
    pub interrupts: u64,
    /// CHMx instructions executed (including those trapped for emulation).
    pub chm: u64,
    /// REI instructions executed (including those trapped for emulation).
    pub rei: u64,
    /// MOVPSL instructions executed.
    pub movpsl: u64,
    /// PROBER/PROBEW instructions executed.
    pub probe: u64,
    /// PROBEVMR/PROBEVMW instructions executed.
    pub probevm: u64,
    /// MTPR-to-IPL executions (the paper's §7.3 hot path).
    pub mtpr_ipl: u64,
    /// Other MTPR/MFPR executions.
    pub mtpr_other: u64,
    /// VM-emulation traps delivered to the VMM.
    pub vm_emulation_traps: u64,
    /// Exceptions exiting VM mode to the VMM (memory faults etc.).
    pub vm_exception_exits: u64,
    /// Interrupts exiting VM mode to the VMM.
    pub vm_interrupt_exits: u64,
    /// LDPCTX/SVPCTX context switches.
    pub context_switches: u64,
    /// Device CSR reads+writes (memory-mapped I/O traffic).
    pub device_csr_accesses: u64,
    /// Translation-buffer hits (from the MMU's TLB).
    pub tlb_hits: u64,
    /// Translation-buffer misses (from the MMU's TLB).
    pub tlb_misses: u64,
}

impl CpuCounters {
    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CpuCounters) -> CpuCounters {
        CpuCounters {
            instructions: self.instructions - earlier.instructions,
            exceptions: self.exceptions - earlier.exceptions,
            interrupts: self.interrupts - earlier.interrupts,
            chm: self.chm - earlier.chm,
            rei: self.rei - earlier.rei,
            movpsl: self.movpsl - earlier.movpsl,
            probe: self.probe - earlier.probe,
            probevm: self.probevm - earlier.probevm,
            mtpr_ipl: self.mtpr_ipl - earlier.mtpr_ipl,
            mtpr_other: self.mtpr_other - earlier.mtpr_other,
            vm_emulation_traps: self.vm_emulation_traps - earlier.vm_emulation_traps,
            vm_exception_exits: self.vm_exception_exits - earlier.vm_exception_exits,
            vm_interrupt_exits: self.vm_interrupt_exits - earlier.vm_interrupt_exits,
            context_switches: self.context_switches - earlier.context_switches,
            device_csr_accesses: self.device_csr_accesses - earlier.device_csr_accesses,
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
        }
    }

    /// Total exits from VM mode to the VMM.
    pub fn vm_exits(&self) -> u64 {
        self.vm_emulation_traps + self.vm_exception_exits + self.vm_interrupt_exits
    }

    /// TLB hit fraction in `[0, 1]` (0 before any lookup).
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }

    /// TLB hit fraction, or `None` when no lookup has happened — the
    /// honest value for reports, where a hard 0.0 would read as
    /// "every lookup missed".
    pub fn tlb_hit_rate_opt(&self) -> Option<f64> {
        if self.tlb_hits + self.tlb_misses == 0 {
            None
        } else {
            Some(self.tlb_hit_rate())
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// This is the single enumeration point metrics exposition builds on;
    /// adding a field without extending it breaks the exhaustiveness
    /// test below.
    pub fn named(&self) -> [(&'static str, u64); 17] {
        [
            ("instructions", self.instructions),
            ("exceptions", self.exceptions),
            ("interrupts", self.interrupts),
            ("chm", self.chm),
            ("rei", self.rei),
            ("movpsl", self.movpsl),
            ("probe", self.probe),
            ("probevm", self.probevm),
            ("mtpr_ipl", self.mtpr_ipl),
            ("mtpr_other", self.mtpr_other),
            ("vm_emulation_traps", self.vm_emulation_traps),
            ("vm_exception_exits", self.vm_exception_exits),
            ("vm_interrupt_exits", self.vm_interrupt_exits),
            ("context_switches", self.context_switches),
            ("device_csr_accesses", self.device_csr_accesses),
            ("tlb_hits", self.tlb_hits),
            ("tlb_misses", self.tlb_misses),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter set whose every field is distinct and nonzero, built
    /// through `named()` order so the test covers all 17 fields without
    /// naming each one twice.
    fn filled(seed: u64) -> CpuCounters {
        CpuCounters {
            instructions: seed,
            exceptions: seed + 1,
            interrupts: seed + 2,
            chm: seed + 3,
            rei: seed + 4,
            movpsl: seed + 5,
            probe: seed + 6,
            probevm: seed + 7,
            mtpr_ipl: seed + 8,
            mtpr_other: seed + 9,
            vm_emulation_traps: seed + 10,
            vm_exception_exits: seed + 11,
            vm_interrupt_exits: seed + 12,
            context_switches: seed + 13,
            device_csr_accesses: seed + 14,
            tlb_hits: seed + 15,
            tlb_misses: seed + 16,
        }
    }

    #[test]
    fn delta_subtracts_every_field() {
        let earlier = filled(100);
        let later = filled(1000);
        let d = later.delta(&earlier);
        for (i, ((name, dv), (_, lv))) in d.named().iter().zip(later.named().iter()).enumerate() {
            // later - earlier = (1000 + i) - (100 + i) = 900 for every field.
            assert_eq!(*dv, 900, "field {name} not subtracted");
            assert_eq!(*lv, 1000 + i as u64, "field {name} out of order in named()");
        }
        // delta of self with self is identically zero.
        let z = later.delta(&later);
        assert_eq!(z, CpuCounters::default());
    }

    #[test]
    fn named_is_exhaustive_and_unique() {
        // Destructure so adding a field without updating named() fails
        // to compile here.
        let CpuCounters {
            instructions: _,
            exceptions: _,
            interrupts: _,
            chm: _,
            rei: _,
            movpsl: _,
            probe: _,
            probevm: _,
            mtpr_ipl: _,
            mtpr_other: _,
            vm_emulation_traps: _,
            vm_exception_exits: _,
            vm_interrupt_exits: _,
            context_switches: _,
            device_csr_accesses: _,
            tlb_hits: _,
            tlb_misses: _,
        } = CpuCounters::default();
        let names: Vec<&str> = filled(0).named().iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate counter name");
    }

    #[test]
    fn tlb_hit_rate_opt_none_without_lookups() {
        let c = CpuCounters::default();
        assert_eq!(c.tlb_hit_rate_opt(), None);
        let c = CpuCounters {
            tlb_hits: 3,
            tlb_misses: 1,
            ..Default::default()
        };
        assert_eq!(c.tlb_hit_rate_opt(), Some(0.75));
    }

    #[test]
    fn vm_exits_sums_sources() {
        let c = CpuCounters {
            vm_emulation_traps: 3,
            vm_exception_exits: 4,
            vm_interrupt_exits: 5,
            ..Default::default()
        };
        assert_eq!(c.vm_exits(), 12);
    }
}
