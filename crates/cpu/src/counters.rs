//! Event counters, the raw material for every experiment table.

/// Counts of architectural events since machine creation.
///
/// All counters are cumulative; use [`CpuCounters::delta`] to measure an
/// interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Exceptions delivered (on-machine, through the SCB).
    pub exceptions: u64,
    /// Interrupts delivered (on-machine).
    pub interrupts: u64,
    /// CHMx instructions executed (including those trapped for emulation).
    pub chm: u64,
    /// REI instructions executed (including those trapped for emulation).
    pub rei: u64,
    /// MOVPSL instructions executed.
    pub movpsl: u64,
    /// PROBER/PROBEW instructions executed.
    pub probe: u64,
    /// PROBEVMR/PROBEVMW instructions executed.
    pub probevm: u64,
    /// MTPR-to-IPL executions (the paper's §7.3 hot path).
    pub mtpr_ipl: u64,
    /// Other MTPR/MFPR executions.
    pub mtpr_other: u64,
    /// VM-emulation traps delivered to the VMM.
    pub vm_emulation_traps: u64,
    /// Exceptions exiting VM mode to the VMM (memory faults etc.).
    pub vm_exception_exits: u64,
    /// Interrupts exiting VM mode to the VMM.
    pub vm_interrupt_exits: u64,
    /// LDPCTX/SVPCTX context switches.
    pub context_switches: u64,
    /// Device CSR reads+writes (memory-mapped I/O traffic).
    pub device_csr_accesses: u64,
    /// Translation-buffer hits (from the MMU's TLB).
    pub tlb_hits: u64,
    /// Translation-buffer misses (from the MMU's TLB).
    pub tlb_misses: u64,
}

impl CpuCounters {
    /// Component-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &CpuCounters) -> CpuCounters {
        CpuCounters {
            instructions: self.instructions - earlier.instructions,
            exceptions: self.exceptions - earlier.exceptions,
            interrupts: self.interrupts - earlier.interrupts,
            chm: self.chm - earlier.chm,
            rei: self.rei - earlier.rei,
            movpsl: self.movpsl - earlier.movpsl,
            probe: self.probe - earlier.probe,
            probevm: self.probevm - earlier.probevm,
            mtpr_ipl: self.mtpr_ipl - earlier.mtpr_ipl,
            mtpr_other: self.mtpr_other - earlier.mtpr_other,
            vm_emulation_traps: self.vm_emulation_traps - earlier.vm_emulation_traps,
            vm_exception_exits: self.vm_exception_exits - earlier.vm_exception_exits,
            vm_interrupt_exits: self.vm_interrupt_exits - earlier.vm_interrupt_exits,
            context_switches: self.context_switches - earlier.context_switches,
            device_csr_accesses: self.device_csr_accesses - earlier.device_csr_accesses,
            tlb_hits: self.tlb_hits - earlier.tlb_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
        }
    }

    /// Total exits from VM mode to the VMM.
    pub fn vm_exits(&self) -> u64 {
        self.vm_emulation_traps + self.vm_exception_exits + self.vm_interrupt_exits
    }

    /// TLB hit fraction in `[0, 1]` (0 before any lookup).
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_componentwise() {
        let a = CpuCounters {
            instructions: 10,
            chm: 2,
            ..Default::default()
        };
        let b = CpuCounters {
            instructions: 25,
            chm: 5,
            rei: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.chm, 3);
        assert_eq!(d.rei, 1);
    }

    #[test]
    fn vm_exits_sums_sources() {
        let c = CpuCounters {
            vm_emulation_traps: 3,
            vm_exception_exits: 4,
            vm_interrupt_exits: 5,
            ..Default::default()
        };
        assert_eq!(c.vm_exits(), 12);
    }
}
