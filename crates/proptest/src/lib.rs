//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest API its tests actually
//! use: `Strategy` (with `prop_map`), `any`, `Just`, integer-range
//! strategies, tuple and `collection::vec` combinators, `prop_oneof!`,
//! and the `proptest!` test macro. Inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and case index), so
//! failures reproduce across runs. There is no shrinking: a failing case
//! reports its case index and panics with the underlying assertion.

pub mod test_runner {
    /// Test-harness configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic xorshift/splitmix RNG for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator for one `(test, case)` pair. The seed mixes
        /// an FNV-1a hash of the test's name with the case index so every
        /// test and every case draws an independent stream.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1,
            };
            // Warm the state so nearby seeds diverge.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift rejection-free mapping is fine for tests.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (see [`any`]).
    pub trait ArbPrimitive: Sized {
        /// Draws a uniformly random value of the full domain.
        fn sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbPrimitive for $t {
                fn sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbPrimitive for bool {
        fn sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 != 0
        }
    }

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: ArbPrimitive> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng)
        }
    }

    /// The full-range strategy for a primitive type.
    pub fn any<T: ArbPrimitive>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    (lo + rng.below((hi - lo) as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V> Union<V> {
        /// An empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Union<V> {
            Union { arms: Vec::new() }
        }

        /// Adds an arm with the given relative weight.
        pub fn or<S>(mut self, weight: u32, s: S) -> Union<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            assert!(weight > 0, "zero-weight prop_oneof arm");
            self.arms.push((weight, Box::new(s)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec`s with random length (see [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(...)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items, like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> () { $body };
                if let Err(payload) =
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        case,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Picks between strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($weight, $arm))+
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or(1, $arm))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let i = (-31i8..31).generate(&mut rng);
            assert!((-31..31).contains(&i));
            let x = (0u8..=31).generate(&mut rng);
            assert!(x <= 31);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u32> = crate::collection::vec(any::<u32>(), 4..9)
            .generate(&mut crate::test_runner::TestRng::for_case("t", 5));
        let b: Vec<u32> = crate::collection::vec(any::<u32>(), 4..9)
            .generate(&mut crate::test_runner::TestRng::for_case("t", 5));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::test_runner::TestRng::for_case("arms", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(v in crate::collection::vec(any::<u8>(), 1..16), x in 0u32..10) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
        }
    }
}
