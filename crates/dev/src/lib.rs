#![warn(missing_docs)]

//! Simulated I/O devices for the VAX bus.
//!
//! The paper's §4.4.3 observation — that emulating memory-mapped I/O
//! registers is expensive and a start-I/O instruction is far cheaper — is
//! reproduced with these devices: [`SimDisk`] is a programmed-I/O block
//! controller whose every CSR touch costs a bus access (and, under a VMM
//! emulating memory-mapped I/O, a trap), and the VMM-side virtual disk in
//! `vax-vmm` offers the same storage behind a single `KCALL`.

pub mod disk;
pub mod printer;

pub use disk::{SimDisk, SECTOR_BYTES};
pub use printer::LinePrinter;
