//! A byte-sink line printer.
//!
//! | Offset | Register | Meaning                              |
//! |--------|----------|--------------------------------------|
//! | +0     | CSR      | bit7 READY (always set)              |
//! | +4     | DATA     | write a byte to print                |
//! | +8     | COUNT    | bytes printed so far                 |

use vax_cpu::{IrqRequest, MmioDevice};

/// A simulated line printer that accumulates output for inspection.
///
/// # Example
///
/// ```
/// use vax_cpu::MmioDevice;
/// use vax_dev::LinePrinter;
///
/// let mut lp = LinePrinter::new();
/// lp.write(4, b'h' as u32);
/// lp.write(4, b'i' as u32);
/// assert_eq!(lp.take_output(), b"hi");
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinePrinter {
    output: Vec<u8>,
    count: u32,
}

impl LinePrinter {
    /// A fresh printer with empty output.
    pub fn new() -> LinePrinter {
        LinePrinter::default()
    }

    /// Drains everything printed so far.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.output)
    }

    /// Peeks at the output without draining.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

impl MmioDevice for LinePrinter {
    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => 0x80, // always ready
            8 => self.count,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        if offset == 4 {
            self.output.push(value as u8);
            self.count += 1;
        }
    }

    fn tick(&mut self, _now: u64) -> Option<IrqRequest> {
        None
    }

    fn reset(&mut self) {
        self.output.clear();
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_and_counts() {
        let mut lp = LinePrinter::new();
        for b in b"vax" {
            lp.write(4, *b as u32);
        }
        assert_eq!(lp.read(8), 3);
        assert_eq!(lp.read(0), 0x80);
        assert_eq!(lp.output(), b"vax");
        assert_eq!(lp.take_output(), b"vax");
        assert!(lp.output().is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut lp = LinePrinter::new();
        lp.write(4, 65);
        lp.reset();
        assert_eq!(lp.read(8), 0);
        assert!(lp.output().is_empty());
    }
}
