//! A programmed-I/O block-storage controller.
//!
//! Register window (longword registers):
//!
//! | Offset | Register | Meaning                                        |
//! |--------|----------|------------------------------------------------|
//! | +0     | CSR      | bit0 GO, bits2:1 FUNC (1=read, 2=write), bit6 IE, bit7 READY, bit15 ERR |
//! | +4     | SECTOR   | sector number                                  |
//! | +8     | DATA     | sequential port into the 512-byte sector buffer |
//! | +12    | STATUS   | completed-operation count (diagnostics)        |
//!
//! A read: write SECTOR, write CSR=GO|FUNC_READ; wait for READY (poll or
//! interrupt); read DATA 128 times. A write: write SECTOR, write DATA 128
//! times, write CSR=GO|FUNC_WRITE; wait for READY. Every access is a bus
//! CSR touch — deliberately chatty, like real pre-DMA controllers.

use vax_cpu::{IrqRequest, MmioDevice};

/// Bytes per sector (one VAX page).
pub const SECTOR_BYTES: usize = 512;

/// CSR bit: start the selected function.
pub const CSR_GO: u32 = 1 << 0;
/// CSR function field: read a sector into the buffer.
pub const FUNC_READ: u32 = 1 << 1;
/// CSR function field: write the buffer to a sector.
pub const FUNC_WRITE: u32 = 2 << 1;
/// CSR bit: interrupt enable.
pub const CSR_IE: u32 = 1 << 6;
/// CSR bit: controller ready.
pub const CSR_READY: u32 = 1 << 7;
/// CSR bit: error (bad sector).
pub const CSR_ERR: u32 = 1 << 15;

/// A simulated disk.
///
/// # Example
///
/// ```
/// use vax_cpu::MmioDevice;
/// use vax_dev::disk::{SimDisk, CSR_GO, CSR_READY, FUNC_READ};
///
/// let mut disk = SimDisk::new(64, 100, 21, 0x100);
/// disk.load(3, b"boot!");
/// disk.write(4, 3);             // SECTOR = 3
/// disk.write(0, CSR_GO | FUNC_READ);
/// assert_eq!(disk.read(0) & CSR_READY, 0, "busy until the delay elapses");
/// disk.tick(0);    // anchors the 100-cycle latency
/// disk.tick(100);  // completes
/// assert_ne!(disk.read(0) & CSR_READY, 0);
/// let first = disk.read(8);     // DATA port
/// assert_eq!(&first.to_le_bytes(), b"boot");
/// ```
#[derive(Debug, Clone)]
pub struct SimDisk {
    sectors: Vec<[u8; SECTOR_BYTES]>,
    buffer: [u8; SECTOR_BYTES],
    buf_pos: usize,
    csr: u32,
    sector: u32,
    completions: u32,
    /// Latency not yet anchored to absolute time (set at GO).
    pending: Option<u64>,
    /// Absolute completion deadline once anchored by the first tick.
    deadline: Option<u64>,
    latency: u64,
    ipl: u8,
    vector: u16,
}

impl SimDisk {
    /// Creates a disk with `sectors` zeroed sectors, a per-operation
    /// `latency` in cycles, and the interrupt (ipl, vector) it raises.
    pub fn new(sectors: u32, latency: u64, ipl: u8, vector: u16) -> SimDisk {
        SimDisk {
            sectors: vec![[0; SECTOR_BYTES]; sectors as usize],
            buffer: [0; SECTOR_BYTES],
            buf_pos: 0,
            csr: CSR_READY,
            sector: 0,
            completions: 0,
            pending: None,
            deadline: None,
            latency,
            ipl,
            vector,
        }
    }

    /// Number of sectors.
    pub fn sector_count(&self) -> u32 {
        self.sectors.len() as u32
    }

    /// Loads data directly into a sector (host-side convenience for
    /// preparing boot media).
    ///
    /// # Panics
    ///
    /// Panics if the sector is out of range or the data exceeds a sector.
    pub fn load(&mut self, sector: u32, data: &[u8]) {
        assert!(data.len() <= SECTOR_BYTES);
        self.sectors[sector as usize][..data.len()].copy_from_slice(data);
    }

    /// Reads a sector directly (host-side inspection).
    pub fn peek(&self, sector: u32) -> &[u8; SECTOR_BYTES] {
        &self.sectors[sector as usize]
    }

    /// Completed-operation count.
    pub fn completions(&self) -> u32 {
        self.completions
    }

    fn start(&mut self, func: u32) {
        if self.sector as usize >= self.sectors.len() {
            self.csr |= CSR_ERR | CSR_READY;
            return;
        }
        self.csr &= !(CSR_READY | CSR_ERR);
        match func {
            FUNC_READ => { /* buffer filled at completion */ }
            FUNC_WRITE => {
                self.sectors[self.sector as usize] = self.buffer;
            }
            _ => {
                self.csr |= CSR_ERR | CSR_READY;
                return;
            }
        }
        self.csr |= func; // remember the in-flight function
        self.pending = Some(self.latency);
        self.deadline = None;
    }
}

impl MmioDevice for SimDisk {
    fn read(&mut self, offset: u32) -> u32 {
        match offset {
            0 => self.csr,
            4 => self.sector,
            8 => {
                let p = self.buf_pos;
                self.buf_pos = (self.buf_pos + 4) % SECTOR_BYTES;
                u32::from_le_bytes(self.buffer[p..p + 4].try_into().unwrap())
            }
            12 => self.completions,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, value: u32) {
        match offset {
            0 => {
                self.csr = (self.csr & (CSR_READY | CSR_ERR)) | (value & (CSR_IE | 0x6));
                if value & CSR_GO != 0 {
                    self.buf_pos = 0;
                    self.start(value & 0x6);
                }
            }
            4 => {
                self.sector = value;
                self.buf_pos = 0;
            }
            8 => {
                let p = self.buf_pos;
                self.buffer[p..p + 4].copy_from_slice(&value.to_le_bytes());
                self.buf_pos = (self.buf_pos + 4) % SECTOR_BYTES;
            }
            _ => {}
        }
    }

    fn tick(&mut self, now: u64) -> Option<IrqRequest> {
        if let Some(latency) = self.pending.take() {
            // Anchor the operation to absolute time on the first tick
            // after GO.
            self.deadline = Some(now + latency);
        }
        if let Some(deadline) = self.deadline {
            if now >= deadline {
                self.deadline = None;
                if self.csr & 0x6 == FUNC_READ {
                    self.buffer = self.sectors[self.sector as usize];
                }
                self.buf_pos = 0;
                self.csr |= CSR_READY;
                self.completions += 1;
                if self.csr & CSR_IE != 0 {
                    return Some(IrqRequest {
                        ipl: self.ipl,
                        vector: self.vector,
                    });
                }
            }
        }
        None
    }

    fn reset(&mut self) {
        self.csr = CSR_READY;
        self.sector = 0;
        self.buf_pos = 0;
        self.pending = None;
        self.deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_latency() {
        let mut d = SimDisk::new(8, 50, 21, 0x100);
        d.load(2, b"sector two data");
        d.write(4, 2);
        d.write(0, CSR_GO | FUNC_READ);
        assert_eq!(d.read(0) & CSR_READY, 0);
        assert!(d.tick(10).is_none(), "anchors the deadline at 10+50");
        assert!(d.tick(30).is_none());
        assert_eq!(d.read(0) & CSR_READY, 0, "still busy");
        assert!(d.tick(60).is_none(), "IE clear: completion, no irq");
        assert_ne!(d.read(0) & CSR_READY, 0);
        let w = d.read(8);
        assert_eq!(&w.to_le_bytes(), b"sect");
    }

    #[test]
    fn write_round_trip() {
        let mut d = SimDisk::new(8, 10, 21, 0x100);
        d.write(4, 5);
        for chunk in b"abcdefgh".chunks(4) {
            d.write(8, u32::from_le_bytes(chunk.try_into().unwrap()));
        }
        d.write(0, CSR_GO | FUNC_WRITE);
        d.tick(0);
        d.tick(20);
        assert_eq!(&d.peek(5)[..8], b"abcdefgh");
        assert_eq!(d.completions(), 1);
    }

    #[test]
    fn interrupt_when_enabled() {
        let mut d = SimDisk::new(8, 10, 21, 0x100);
        d.write(4, 1);
        d.write(0, CSR_GO | FUNC_READ | CSR_IE);
        assert!(d.tick(0).is_none());
        let irq = d.tick(15);
        assert_eq!(
            irq,
            Some(IrqRequest {
                ipl: 21,
                vector: 0x100
            })
        );
    }

    #[test]
    fn bad_sector_sets_error() {
        let mut d = SimDisk::new(4, 10, 21, 0x100);
        d.write(4, 99);
        d.write(0, CSR_GO | FUNC_READ);
        assert_ne!(d.read(0) & CSR_ERR, 0);
        assert_ne!(d.read(0) & CSR_READY, 0, "still ready after error");
    }

    #[test]
    fn reset_clears_state() {
        let mut d = SimDisk::new(4, 10, 21, 0x100);
        d.write(4, 2);
        d.write(0, CSR_GO | FUNC_READ);
        d.reset();
        assert_eq!(d.read(4), 0);
        assert_ne!(d.read(0) & CSR_READY, 0);
        assert!(d.tick(1000).is_none(), "no stale completion after reset");
    }
}
