//! Devices driven by real machine code over the memory-mapped bus.

use vax_arch::{MachineVariant, Psl};
use vax_cpu::{HaltReason, Machine, StepEvent, IO_BASE_PA};
use vax_dev::{LinePrinter, SimDisk};

fn run(m: &mut Machine, src: &str) {
    let p = vax_asm::assemble_text(src, 0x1000).expect("assembles");
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(0x1000);
    for _ in 0..1_000_000 {
        match m.step() {
            StepEvent::Ok => {}
            StepEvent::Halted(HaltReason::HaltInstruction) => return,
            other => panic!("unexpected {other:?} at pc={:#x}", m.pc()),
        }
    }
    panic!("did not halt");
}

#[test]
fn guest_code_prints_through_the_line_printer() {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.bus_mut()
        .attach(IO_BASE_PA + 0x1000, 16, Box::new(LinePrinter::new()));
    // Translation off: physical = virtual, but 0x20001000 is in I/O
    // space, reachable directly.
    run(
        &mut m,
        "
        start:
            movl #0x56, @#0x20001004    ; 'V'
            movl #0x41, @#0x20001004    ; 'A'
            movl #0x58, @#0x20001004    ; 'X'
            movl @#0x20001008, r2       ; COUNT
            movl @#0x20001000, r3       ; CSR: ready
            halt
        ",
    );
    assert_eq!(m.reg(2), 3);
    assert_eq!(m.reg(3), 0x80);
    // The printer output is inside the boxed device; verify via the
    // counters instead: CSR traffic happened.
    assert!(m.counters().device_csr_accesses >= 5);
}

#[test]
fn disk_write_then_read_back_from_machine_code() {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.bus_mut()
        .attach(IO_BASE_PA, 4096, Box::new(SimDisk::new(16, 100, 21, 0x100)));
    run(
        &mut m,
        "
        start:
            ; write a recognizable pattern to sector 3
            movl #3, @#0x20000004       ; SECTOR
            movl #128, r3
            movl #0xCAFE0000, r4
        fill:
            movl r4, @#0x20000008       ; DATA port
            incl r4
            sobgtr r3, fill
            movl #5, @#0x20000000       ; GO | WRITE
        poll1:
            movl @#0x20000000, r3
            bicl2 #0xFFFFFF7F, r3
            beql poll1
            ; read it back
            movl #3, @#0x20000004
            movl #3, @#0x20000000       ; GO | READ
        poll2:
            movl @#0x20000000, r3
            bicl2 #0xFFFFFF7F, r3
            beql poll2
            movl @#0x20000008, r5       ; first word
            movl @#0x20000008, r6       ; second word
            halt
        ",
    );
    assert_eq!(m.reg(5), 0xCAFE_0000);
    assert_eq!(m.reg(6), 0xCAFE_0001);
}

#[test]
fn disk_completion_interrupt_reaches_the_scb() {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.bus_mut()
        .attach(IO_BASE_PA, 4096, Box::new(SimDisk::new(16, 100, 21, 0x100)));
    // SCB vector 0x100 -> handler.
    m.set_scbb(0x200);
    let handler = vax_asm::assemble_text("h: movl #1, r9\n rei", 0x3000).unwrap();
    m.mem_mut().write_slice(0x3000, &handler.bytes).unwrap();
    m.mem_mut().write_u32(0x200 + 0x100, 0x3000).unwrap();
    m.set_isp(0x7000);
    run(
        &mut m,
        "
        start:
            movl #2, @#0x20000004
            movl #0x43, @#0x20000000    ; GO | READ | IE
            mtpr #0, #18                ; open up for the interrupt
        spin:
            tstl r9
            beql spin
            halt
        ",
    );
    assert_eq!(m.reg(9), 1, "completion interrupt delivered");
    assert!(m.counters().interrupts >= 1);
}
