//! Property-based tests on the architectural invariants.

use proptest::prelude::*;
use vax_arch::{AccessMode, Protection, Psl, Pte, VirtAddr, VmPsl};

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    (0u32..4).prop_map(AccessMode::from_bits)
}

fn arb_protection() -> impl Strategy<Value = Protection> {
    (0usize..Protection::ALL.len()).prop_map(|i| Protection::ALL[i])
}

proptest! {
    /// Write access implies read access, for every code and mode.
    #[test]
    fn write_implies_read(p in arb_protection(), m in arb_mode()) {
        if p.allows_write(m) {
            prop_assert!(p.allows_read(m));
        }
    }

    /// More privileged modes never have less access.
    #[test]
    fn privilege_is_monotone(p in arb_protection(), m in arb_mode(), w in any::<bool>()) {
        if p.allows(m, w) {
            for higher in AccessMode::ALL {
                if higher.is_more_privileged_than(m) {
                    prop_assert!(p.allows(higher, w), "{p} {higher} vs {m}");
                }
            }
        }
    }

    /// The ring-compression law (paper §4.3.1): compressed access for
    /// executive equals the union of kernel and executive access; all
    /// other modes are untouched.
    #[test]
    fn compression_law(p in arb_protection(), w in any::<bool>()) {
        let c = p.ring_compressed();
        prop_assert_eq!(
            c.allows(AccessMode::Executive, w),
            p.allows(AccessMode::Kernel, w) || p.allows(AccessMode::Executive, w)
        );
        for m in [AccessMode::Kernel, AccessMode::Supervisor, AccessMode::User] {
            prop_assert_eq!(c.allows(m, w), p.allows(m, w));
        }
        // Idempotent.
        prop_assert_eq!(c.ring_compressed(), c);
    }

    /// PSL field accessors are independent: setting one field never
    /// perturbs another.
    #[test]
    fn psl_fields_independent(
        raw in any::<u32>(),
        cur in arb_mode(),
        prv in arb_mode(),
        ipl in 0u8..=31,
    ) {
        let mut psl = Psl::from_raw(raw);
        let c_before = psl.flag(Psl::C);
        psl.set_cur_mode(cur);
        psl.set_prv_mode(prv);
        psl.set_ipl(ipl);
        prop_assert_eq!(psl.cur_mode(), cur);
        prop_assert_eq!(psl.prv_mode(), prv);
        prop_assert_eq!(psl.ipl(), ipl);
        prop_assert_eq!(psl.flag(Psl::C), c_before);
    }

    /// The VMPSL merge always hides PSL<VM> and takes modes/IPL from the
    /// VMPSL, everything else from the real PSL.
    #[test]
    fn vmpsl_merge_invariants(
        raw in any::<u32>(),
        cur in arb_mode(),
        prv in arb_mode(),
        ipl in 0u8..=31,
    ) {
        let real = Psl::from_raw(raw);
        let vmpsl = VmPsl::new(cur, prv).with_ipl(ipl);
        let merged = vmpsl.merge_into(real);
        prop_assert!(!merged.vm());
        prop_assert_eq!(merged.cur_mode(), cur);
        prop_assert_eq!(merged.prv_mode(), prv);
        prop_assert_eq!(merged.ipl(), ipl);
        prop_assert_eq!(merged.flag(Psl::C), real.flag(Psl::C));
        prop_assert_eq!(merged.flag(Psl::N), real.flag(Psl::N));
    }

    /// PTE field round trips never disturb the other fields.
    #[test]
    fn pte_round_trip(pfn in 0u32..(1 << 21), p in arb_protection(), v in any::<bool>(), m in any::<bool>()) {
        let pte = Pte::build(pfn, p, v, m);
        prop_assert_eq!(pte.pfn(), pfn);
        prop_assert_eq!(pte.protection(), p);
        prop_assert_eq!(pte.valid(), v);
        prop_assert_eq!(pte.modified(), m);
        let flipped = pte.with_modified(!m);
        prop_assert_eq!(flipped.pfn(), pfn);
        prop_assert_eq!(flipped.protection(), p);
        prop_assert_eq!(flipped.valid(), v);
        prop_assert_eq!(flipped.modified(), !m);
    }

    /// Virtual-address decomposition reassembles exactly.
    #[test]
    fn va_decomposition(raw in any::<u32>()) {
        let va = VirtAddr::new(raw);
        let rebuilt = va.region().base() + (va.vpn() << 9) + va.byte_offset();
        prop_assert_eq!(rebuilt, raw);
        prop_assert_eq!(va.page_base().byte_offset(), 0);
        prop_assert_eq!(va.page_base().vpn(), va.vpn());
    }
}
