//! Virtual-address decomposition: the P0, P1, and S regions.
//!
//! A VAX virtual address is 32 bits: bits 31:30 select the region
//! (`00` = P0, `01` = P1, `10` = S, `11` = reserved), bits 29:9 are the
//! virtual page number within the region, and bits 8:0 the byte within the
//! 512-byte page (paper Figure 1).

/// Bytes per VAX page.
pub const PAGE_BYTES: u32 = 512;

/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 9;

/// Base virtual address of the P1 region.
pub const P1_BASE: u32 = 0x4000_0000;

/// Base virtual address of the system (S) region.
pub const S_BASE: u32 = 0x8000_0000;

/// Base virtual address of the reserved region.
pub const RESERVED_BASE: u32 = 0xC000_0000;

/// One of the VAX virtual-address regions.
///
/// P0 ("program") grows upward from 0; P1 ("control", containing stacks)
/// grows downward toward [`P1_BASE`]; S ("system") is shared by all
/// processes and holds the operating system. The fourth quadrant is
/// architecturally reserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The per-process program region (addresses `0x0000_0000..0x4000_0000`).
    P0,
    /// The per-process control region (addresses `0x4000_0000..0x8000_0000`).
    P1,
    /// The shared system region (addresses `0x8000_0000..0xC000_0000`).
    S,
    /// The architecturally reserved quadrant (`0xC000_0000..`).
    Reserved,
}

impl Region {
    /// The region's base virtual address.
    pub fn base(self) -> u32 {
        match self {
            Region::P0 => 0,
            Region::P1 => P1_BASE,
            Region::S => S_BASE,
            Region::Reserved => RESERVED_BASE,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Region::P0 => "P0",
            Region::P1 => "P1",
            Region::S => "S",
            Region::Reserved => "reserved",
        }
    }
}

impl core::fmt::Display for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A VAX virtual address.
///
/// # Example
///
/// ```
/// use vax_arch::{Region, VirtAddr};
///
/// let va = VirtAddr::new(0x8000_1234);
/// assert_eq!(va.region(), Region::S);
/// assert_eq!(va.vpn(), 0x1234 >> 9);
/// assert_eq!(va.byte_offset(), 0x1234 & 0x1ff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u32);

impl VirtAddr {
    /// Wraps a raw 32-bit virtual address.
    pub fn new(raw: u32) -> VirtAddr {
        VirtAddr(raw)
    }

    /// The raw 32-bit address.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The region this address falls in.
    pub fn region(self) -> Region {
        match self.0 >> 30 {
            0 => Region::P0,
            1 => Region::P1,
            2 => Region::S,
            _ => Region::Reserved,
        }
    }

    /// The virtual page number *within the region* (bits 29:9).
    ///
    /// For P1 this is the raw field; note that P1 page tables are indexed
    /// by this VPN directly (the P1 base register is biased by convention
    /// so that the highest P1 pages are at the end of the table).
    pub fn vpn(self) -> u32 {
        (self.0 & 0x3fff_ffff) >> PAGE_SHIFT
    }

    /// The byte offset within the page (bits 8:0).
    pub fn byte_offset(self) -> u32 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// The address rounded down to its page base.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_BYTES - 1))
    }

    /// Adds a byte offset with wrapping arithmetic (VAX addresses wrap).
    pub fn wrapping_add(self, delta: u32) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(delta))
    }
}

impl From<u32> for VirtAddr {
    fn from(raw: u32) -> VirtAddr {
        VirtAddr(raw)
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl core::fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Number of pages needed to hold `bytes` bytes.
pub fn pages_for(bytes: u32) -> u32 {
    bytes.div_ceil(PAGE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_boundaries() {
        assert_eq!(VirtAddr::new(0).region(), Region::P0);
        assert_eq!(VirtAddr::new(0x3fff_ffff).region(), Region::P0);
        assert_eq!(VirtAddr::new(P1_BASE).region(), Region::P1);
        assert_eq!(VirtAddr::new(0x7fff_ffff).region(), Region::P1);
        assert_eq!(VirtAddr::new(S_BASE).region(), Region::S);
        assert_eq!(VirtAddr::new(0xbfff_ffff).region(), Region::S);
        assert_eq!(VirtAddr::new(RESERVED_BASE).region(), Region::Reserved);
        assert_eq!(VirtAddr::new(u32::MAX).region(), Region::Reserved);
    }

    #[test]
    fn vpn_and_offset() {
        let va = VirtAddr::new(S_BASE + 3 * PAGE_BYTES + 17);
        assert_eq!(va.vpn(), 3);
        assert_eq!(va.byte_offset(), 17);
        assert_eq!(va.page_base().raw(), S_BASE + 3 * PAGE_BYTES);
    }

    #[test]
    fn p1_vpn_keeps_region_relative_field() {
        // The last P1 page has VPN 0x1fffff.
        let va = VirtAddr::new(0x7fff_fe00);
        assert_eq!(va.region(), Region::P1);
        assert_eq!(va.vpn(), 0x1f_ffff);
    }

    #[test]
    fn wrapping_add_wraps() {
        assert_eq!(VirtAddr::new(u32::MAX).wrapping_add(1).raw(), 0);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(512), 1);
        assert_eq!(pages_for(513), 2);
    }

    #[test]
    fn region_bases() {
        assert_eq!(Region::P0.base(), 0);
        assert_eq!(Region::P1.base(), P1_BASE);
        assert_eq!(Region::S.base(), S_BASE);
        assert_eq!(Region::Reserved.base(), RESERVED_BASE);
    }
}
