//! Exception descriptors.
//!
//! The VAX delivers exceptions (synchronous) and interrupts (asynchronous)
//! through the SCB. Each [`Exception`] value names the event plus the
//! parameters the microcode pushes on the target stack after the PC/PSL
//! pair.

use crate::scb::ScbVector;
use crate::va::VirtAddr;
use crate::AccessMode;

/// Arithmetic exception type codes (pushed as the single parameter of an
/// arithmetic trap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ArithmeticCode {
    /// Integer overflow trap.
    IntegerOverflow = 1,
    /// Integer divide-by-zero trap.
    IntegerDivideByZero = 2,
}

/// A synchronous exception, with the parameters the microcode supplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exception {
    /// Access-control violation: the protection code denied the access.
    /// `length` distinguishes a page-table length violation.
    AccessViolation {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access was a write.
        write: bool,
        /// The fault was a length (page-table bounds) violation.
        length: bool,
        /// The faulting reference was to a process page table entry.
        pte_ref: bool,
    },
    /// Translation-not-valid (page fault): `PTE<V>` was clear.
    TranslationNotValid {
        /// Faulting virtual address.
        va: VirtAddr,
        /// The access was a write.
        write: bool,
        /// The faulting reference was to a process page table entry.
        pte_ref: bool,
    },
    /// **Paper extension**: write to a writable page whose `PTE<M>` is
    /// clear, on a machine with modify faults enabled.
    ModifyFault {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// A privileged instruction was executed outside kernel mode, or a
    /// reserved/unimplemented opcode was executed.
    ReservedInstruction,
    /// A reserved operand form was used (e.g. bad REI PSL image).
    ReservedOperand,
    /// A reserved addressing mode was used.
    ReservedAddressingMode,
    /// BPT instruction.
    Breakpoint,
    /// Arithmetic trap with its type code.
    Arithmetic(ArithmeticCode),
    /// Change-mode instruction: target mode and its sign-extended operand.
    ChangeMode {
        /// The mode the instruction requests.
        target: AccessMode,
        /// The sign-extended 16-bit change-mode code.
        code: u32,
    },
    /// Machine check (hardware error), e.g. reference to nonexistent
    /// physical memory.
    MachineCheck {
        /// Diagnostic summary code.
        code: u32,
    },
    /// The kernel stack was not valid while pushing an exception frame.
    KernelStackNotValid,
}

impl Exception {
    /// The SCB vector this exception dispatches through.
    pub fn vector(self) -> ScbVector {
        match self {
            Exception::AccessViolation { .. } => ScbVector::AccessViolation,
            Exception::TranslationNotValid { .. } => ScbVector::TranslationNotValid,
            Exception::ModifyFault { .. } => ScbVector::ModifyFault,
            Exception::ReservedInstruction => ScbVector::ReservedInstruction,
            Exception::ReservedOperand => ScbVector::ReservedOperand,
            Exception::ReservedAddressingMode => ScbVector::ReservedAddressingMode,
            Exception::Breakpoint => ScbVector::Breakpoint,
            Exception::Arithmetic(_) => ScbVector::Arithmetic,
            Exception::ChangeMode { target, .. } => ScbVector::for_chm_mode(target),
            Exception::MachineCheck { .. } => ScbVector::MachineCheck,
            Exception::KernelStackNotValid => ScbVector::KernelStackNotValid,
        }
    }

    /// Parameters pushed on the exception stack after PC and PSL, in push
    /// order (last parameter pushed first, so the handler sees them in
    /// this order at increasing addresses).
    pub fn parameters(self) -> ExceptionParams {
        let mut p = ExceptionParams::default();
        match self {
            Exception::AccessViolation {
                va,
                write,
                length,
                pte_ref,
            } => {
                // Parameter 1: fault summary (bit0 = length, bit1 = PTE ref,
                // bit2 = write). Parameter 2: faulting VA.
                let mut reason = 0u32;
                if length {
                    reason |= 1;
                }
                if pte_ref {
                    reason |= 2;
                }
                if write {
                    reason |= 4;
                }
                p.push(reason);
                p.push(va.raw());
            }
            Exception::TranslationNotValid { va, write, pte_ref } => {
                let mut reason = 0u32;
                if pte_ref {
                    reason |= 2;
                }
                if write {
                    reason |= 4;
                }
                p.push(reason);
                p.push(va.raw());
            }
            Exception::ModifyFault { va } => {
                p.push(va.raw());
            }
            Exception::Arithmetic(code) => {
                p.push(code as u32);
            }
            Exception::ChangeMode { code, .. } => {
                p.push(code);
            }
            Exception::MachineCheck { code } => {
                p.push(code);
            }
            _ => {}
        }
        p
    }

    /// True for faults that re-execute the instruction after the handler
    /// returns (PC pushed is the *start* of the faulting instruction).
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            Exception::AccessViolation { .. }
                | Exception::TranslationNotValid { .. }
                | Exception::ModifyFault { .. }
                | Exception::ReservedInstruction
                | Exception::ReservedOperand
                | Exception::ReservedAddressingMode
                | Exception::Breakpoint
        )
    }

    /// True for memory-management faults.
    pub fn is_memory_management(self) -> bool {
        matches!(
            self,
            Exception::AccessViolation { .. }
                | Exception::TranslationNotValid { .. }
                | Exception::ModifyFault { .. }
        )
    }
}

impl core::fmt::Display for Exception {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Exception::AccessViolation { va, write, .. } => {
                write!(f, "access violation at {va} ({})", rw(*write))
            }
            Exception::TranslationNotValid { va, write, .. } => {
                write!(f, "translation not valid at {va} ({})", rw(*write))
            }
            Exception::ModifyFault { va } => write!(f, "modify fault at {va}"),
            Exception::ReservedInstruction => f.write_str("reserved/privileged instruction"),
            Exception::ReservedOperand => f.write_str("reserved operand"),
            Exception::ReservedAddressingMode => f.write_str("reserved addressing mode"),
            Exception::Breakpoint => f.write_str("breakpoint"),
            Exception::Arithmetic(c) => write!(f, "arithmetic trap ({c:?})"),
            Exception::ChangeMode { target, code } => {
                write!(f, "CHM{} code {code:#x}", initial(*target))
            }
            Exception::MachineCheck { code } => write!(f, "machine check ({code:#x})"),
            Exception::KernelStackNotValid => f.write_str("kernel stack not valid"),
        }
    }
}

fn rw(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

fn initial(mode: AccessMode) -> char {
    match mode {
        AccessMode::Kernel => 'K',
        AccessMode::Executive => 'E',
        AccessMode::Supervisor => 'S',
        AccessMode::User => 'U',
    }
}

/// Up to two exception parameters, in handler-visible order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExceptionParams {
    params: [u32; 2],
    len: usize,
}

impl ExceptionParams {
    fn push(&mut self, v: u32) {
        self.params[self.len] = v;
        self.len += 1;
    }

    /// The parameters as a slice (first element is deepest on the stack).
    pub fn as_slice(&self) -> &[u32] {
        &self.params[..self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors() {
        let av = Exception::AccessViolation {
            va: VirtAddr::new(0x1000),
            write: true,
            length: false,
            pte_ref: false,
        };
        assert_eq!(av.vector(), ScbVector::AccessViolation);
        assert_eq!(
            Exception::ChangeMode {
                target: AccessMode::Kernel,
                code: 1
            }
            .vector(),
            ScbVector::Chmk
        );
        assert_eq!(
            Exception::ModifyFault {
                va: VirtAddr::new(0)
            }
            .vector(),
            ScbVector::ModifyFault
        );
    }

    #[test]
    fn access_violation_parameters_encode_reason() {
        let av = Exception::AccessViolation {
            va: VirtAddr::new(0x2345),
            write: true,
            length: true,
            pte_ref: true,
        };
        let p = av.parameters();
        assert_eq!(p.as_slice(), &[0b111, 0x2345]);
    }

    #[test]
    fn tnv_parameters() {
        let tnv = Exception::TranslationNotValid {
            va: VirtAddr::new(0x600),
            write: false,
            pte_ref: true,
        };
        assert_eq!(tnv.parameters().as_slice(), &[0b010, 0x600]);
    }

    #[test]
    fn chm_carries_code() {
        let chm = Exception::ChangeMode {
            target: AccessMode::Executive,
            code: 0xffff_fff0,
        };
        assert_eq!(chm.parameters().as_slice(), &[0xffff_fff0]);
    }

    #[test]
    fn fault_classification() {
        assert!(Exception::TranslationNotValid {
            va: VirtAddr::new(0),
            write: false,
            pte_ref: false
        }
        .is_fault());
        assert!(!Exception::ChangeMode {
            target: AccessMode::Kernel,
            code: 0
        }
        .is_fault());
        assert!(Exception::ModifyFault {
            va: VirtAddr::new(0)
        }
        .is_memory_management());
        assert!(!Exception::Breakpoint.is_memory_management());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Exception::ReservedInstruction.to_string().is_empty());
        assert!(!Exception::KernelStackNotValid.to_string().is_empty());
    }
}
