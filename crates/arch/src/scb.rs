//! System Control Block (SCB) vector layout.
//!
//! The SCB is a page of longword vectors in physical memory, located by the
//! `SCBB` internal processor register. Exceptions and interrupts transfer
//! control through the vector for their event type. Offsets below follow
//! the real VAX layout; the two vectors added by the paper's architecture
//! (the modify fault and the VM-emulation trap) are placed in
//! architecturally unused slots.

/// An SCB vector: the byte offset of an event's dispatch longword.
///
/// # Example
///
/// ```
/// use vax_arch::ScbVector;
///
/// assert_eq!(ScbVector::Chmk.offset(), 0x40);
/// assert_eq!(ScbVector::for_chm_mode(vax_arch::AccessMode::Executive),
///            ScbVector::Chme);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ScbVector {
    /// Machine check (hardware error).
    MachineCheck = 0x04,
    /// Kernel stack not valid during exception processing.
    KernelStackNotValid = 0x08,
    /// Reserved/privileged instruction fault.
    ReservedInstruction = 0x10,
    /// Customer-reserved instruction (XFC).
    CustomerReserved = 0x14,
    /// Reserved operand fault.
    ReservedOperand = 0x18,
    /// Reserved addressing mode fault.
    ReservedAddressingMode = 0x1C,
    /// Access-control violation fault.
    AccessViolation = 0x20,
    /// Translation-not-valid (page) fault.
    TranslationNotValid = 0x24,
    /// Trace pending fault.
    TracePending = 0x28,
    /// Breakpoint (BPT) fault.
    Breakpoint = 0x2C,
    /// Arithmetic trap/fault.
    Arithmetic = 0x34,
    /// CHMK change-mode trap.
    Chmk = 0x40,
    /// CHME change-mode trap.
    Chme = 0x44,
    /// CHMS change-mode trap.
    Chms = 0x48,
    /// CHMU change-mode trap.
    Chmu = 0x4C,
    /// **Paper extension**: modify fault (write to a page with `PTE<M>`
    /// clear on a machine running with modify faults enabled). The VAX
    /// later adopted this as an optional base-architecture feature.
    ModifyFault = 0x54,
    /// **Paper extension**: VM-emulation trap. Only delivered on the real
    /// machine (never inside a VM); carries the decoded-instruction packet.
    VmEmulation = 0x58,
    /// Software interrupt levels 1–15 occupy 0x84–0xBC; this is level 1.
    SoftwareLevel1 = 0x84,
    /// Interval timer interrupt.
    IntervalTimer = 0xC0,
    /// Console terminal receive interrupt.
    ConsoleReceive = 0xF8,
    /// Console terminal transmit interrupt.
    ConsoleTransmit = 0xFC,
    /// First device vector (our simulated disk controller uses this).
    Device0 = 0x100,
    /// Second device vector.
    Device1 = 0x104,
}

impl ScbVector {
    /// Byte offset of this vector within the SCB page.
    pub fn offset(self) -> u32 {
        self as u32
    }

    /// The vector for a software interrupt at the given level (1–15).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or greater than 15.
    pub fn software(level: u8) -> u32 {
        assert!(
            (1..=15).contains(&level),
            "software interrupt level {level}"
        );
        0x80 + 4 * level as u32
    }

    /// The CHM vector for a target mode.
    pub fn for_chm_mode(mode: crate::AccessMode) -> ScbVector {
        match mode {
            crate::AccessMode::Kernel => ScbVector::Chmk,
            crate::AccessMode::Executive => ScbVector::Chme,
            crate::AccessMode::Supervisor => ScbVector::Chms,
            crate::AccessMode::User => ScbVector::Chmu,
        }
    }
}

impl core::fmt::Display for ScbVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}@{:#x}", self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessMode;

    #[test]
    fn chm_vectors_are_contiguous() {
        assert_eq!(ScbVector::Chmk.offset(), 0x40);
        assert_eq!(ScbVector::Chme.offset(), 0x44);
        assert_eq!(ScbVector::Chms.offset(), 0x48);
        assert_eq!(ScbVector::Chmu.offset(), 0x4C);
        for m in AccessMode::ALL {
            assert_eq!(
                ScbVector::for_chm_mode(m).offset(),
                0x40 + 4 * m.bits(),
                "{m}"
            );
        }
    }

    #[test]
    fn software_vectors() {
        assert_eq!(ScbVector::software(1), ScbVector::SoftwareLevel1.offset());
        assert_eq!(ScbVector::software(15), 0xBC);
    }

    #[test]
    #[should_panic(expected = "software interrupt level")]
    fn software_level_zero_rejected() {
        ScbVector::software(0);
    }

    #[test]
    fn extension_vectors_do_not_collide_with_base_layout() {
        let base = [
            0x04u32, 0x08, 0x10, 0x14, 0x18, 0x1C, 0x20, 0x24, 0x28, 0x2C, 0x34, 0x40, 0x44, 0x48,
            0x4C, 0xC0, 0xF8, 0xFC, 0x100, 0x104,
        ];
        for v in [ScbVector::ModifyFault, ScbVector::VmEmulation] {
            assert!(!base.contains(&v.offset()), "{v} collides");
            assert!(
                !(0x80..=0xBC).contains(&v.offset()),
                "{v} in software range"
            );
        }
    }
}
