//! The calibrated cycle-cost model.
//!
//! The simulator charges deterministic "cycles" for architectural events.
//! Absolute values are arbitrary; *ratios* are calibrated to the relative
//! path lengths the paper reports for the VAX 8800 family (e.g. the
//! heavily optimized bare-hardware MTPR-to-IPL path versus its 10–12×
//! more expensive VMM emulation, paper §7.3). DESIGN.md §5 documents the
//! calibration; EXPERIMENTS.md reports the resulting shapes.

/// Per-event cycle charges for the simulated hardware.
///
/// VMM software path costs live in `vax-vmm`'s `cost` module; this struct
/// covers only what microcode/hardware does.
///
/// # Example
///
/// ```
/// use vax_arch::CostModel;
///
/// let costs = CostModel::default();
/// assert!(costs.exception_entry > costs.base_instruction);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of any instruction (fetch + decode + execute).
    pub base_instruction: u64,
    /// Additional cost per memory operand reference.
    pub memory_reference: u64,
    /// TLB miss requiring a single PTE fetch (system-space translation).
    pub tlb_miss_system: u64,
    /// TLB miss requiring a double fetch (process PTE is in S space).
    pub tlb_miss_process: u64,
    /// Microcode exception/interrupt entry (stack switch, SCB vector).
    pub exception_entry: u64,
    /// REI executed directly by microcode.
    pub rei: u64,
    /// CHMx executed directly by microcode (trap through SCB).
    pub chm: u64,
    /// The heavily optimized bare-hardware MTPR-to-IPL path (paper §7.3).
    pub mtpr_ipl_fast: u64,
    /// Other MTPR/MFPR register moves.
    pub mtpr_other: u64,
    /// LDPCTX/SVPCTX context load/save.
    pub context_switch: u64,
    /// PROBE executed in microcode against a valid (shadow) PTE.
    pub probe_fast: u64,
    /// PROBEVM executed in microcode (tests one byte).
    pub probevm: u64,
    /// MOVPSL, including the VM-mode merge from VMPSL (paper §4.2.1).
    pub movpsl: u64,
    /// Per-byte cost of character-string moves (MOVC3).
    pub string_per_byte: u64,
    /// Hardware setting `PTE<M>` on first write (base architecture only).
    pub set_modify_bit: u64,
    /// Delivering the decoded-operand VM-emulation trap packet.
    pub vm_emulation_trap: u64,
    /// A memory-mapped device CSR access on the bare machine.
    pub device_csr: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            base_instruction: 2,
            memory_reference: 1,
            tlb_miss_system: 6,
            tlb_miss_process: 12,
            exception_entry: 20,
            rei: 8,
            chm: 16,
            mtpr_ipl_fast: 4,
            mtpr_other: 8,
            context_switch: 40,
            probe_fast: 6,
            probevm: 8,
            movpsl: 3,
            string_per_byte: 1,
            set_modify_bit: 4,
            vm_emulation_trap: 30,
            device_csr: 5,
        }
    }
}

impl CostModel {
    /// A zero-cost model, useful for tests that assert state transitions
    /// without caring about accounting.
    pub fn free() -> CostModel {
        CostModel {
            base_instruction: 0,
            memory_reference: 0,
            tlb_miss_system: 0,
            tlb_miss_process: 0,
            exception_entry: 0,
            rei: 0,
            chm: 0,
            mtpr_ipl_fast: 0,
            mtpr_other: 0,
            context_switch: 0,
            probe_fast: 0,
            probevm: 0,
            movpsl: 0,
            string_per_byte: 0,
            set_modify_bit: 0,
            vm_emulation_trap: 0,
            device_csr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_invariants() {
        let c = CostModel::default();
        // Traps dominate straight-line execution.
        assert!(c.exception_entry > c.base_instruction);
        assert!(c.vm_emulation_trap > c.base_instruction);
        // Double-fetch TLB miss costs more than single.
        assert!(c.tlb_miss_process > c.tlb_miss_system);
        // The optimized IPL path is cheaper than a generic MTPR.
        assert!(c.mtpr_ipl_fast < c.mtpr_other);
    }

    #[test]
    fn free_model_is_all_zero() {
        let c = CostModel::free();
        assert_eq!(c.base_instruction, 0);
        assert_eq!(c.exception_entry, 0);
        assert_eq!(c.vm_emulation_trap, 0);
    }
}
