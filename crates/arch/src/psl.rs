//! The Processor Status Longword (PSL) and the `VMPSL` register.
//!
//! The PSL packs the condition codes, trap enables, the interrupt priority
//! level, and the current/previous access modes. The paper adds one bit,
//! `PSL<VM>`, set when the processor is executing a virtual machine, and a
//! new register `VMPSL` holding the parts of the VM's PSL that differ from
//! the real machine's PSL (the current and previous mode fields).

use crate::mode::AccessMode;

/// The VAX Processor Status Longword.
///
/// Bit layout (subset used by this simulator, matching the real machine):
///
/// | Bits  | Field   | Meaning                              |
/// |-------|---------|--------------------------------------|
/// | 0     | C       | carry condition code                 |
/// | 1     | V       | overflow condition code              |
/// | 2     | Z       | zero condition code                  |
/// | 3     | N       | negative condition code              |
/// | 4     | T       | trace trap enable                    |
/// | 5     | IV      | integer overflow trap enable         |
/// | 6     | FU      | floating underflow enable            |
/// | 7     | DV      | decimal overflow enable              |
/// | 16–20 | IPL     | interrupt priority level             |
/// | 22–23 | PRV_MOD | previous access mode                 |
/// | 24–25 | CUR_MOD | current access mode                  |
/// | 26    | IS      | executing on the interrupt stack     |
/// | 29    | VM      | **paper extension**: in VM mode      |
/// | 30    | TP      | trace pending                        |
/// | 31    | CM      | PDP-11 compatibility mode (unused)   |
///
/// `PSL<VM>` occupies bit 29, which must be zero on a standard VAX; the
/// paper specifies that software never observes it set (`MOVPSL` and
/// exception PSL pushes mask it).
///
/// # Example
///
/// ```
/// use vax_arch::{AccessMode, Psl};
///
/// let mut psl = Psl::new();
/// psl.set_cur_mode(AccessMode::User);
/// psl.set_prv_mode(AccessMode::Supervisor);
/// assert_eq!(psl.cur_mode(), AccessMode::User);
/// assert_eq!(psl.prv_mode(), AccessMode::Supervisor);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Psl(u32);

impl Psl {
    /// Carry condition code.
    pub const C: u32 = 1 << 0;
    /// Overflow condition code.
    pub const V: u32 = 1 << 1;
    /// Zero condition code.
    pub const Z: u32 = 1 << 2;
    /// Negative condition code.
    pub const N: u32 = 1 << 3;
    /// Trace enable.
    pub const T: u32 = 1 << 4;
    /// Integer overflow enable.
    pub const IV: u32 = 1 << 5;
    /// Interrupt-stack flag.
    pub const IS: u32 = 1 << 26;
    /// First-part-done flag.
    pub const FPD: u32 = 1 << 27;
    /// VM-mode bit (paper extension; bit 29 is MBZ on a standard VAX).
    pub const VM: u32 = 1 << 29;
    /// Trace-pending flag.
    pub const TP: u32 = 1 << 30;
    /// Compatibility-mode flag.
    pub const CM: u32 = 1 << 31;

    const IPL_SHIFT: u32 = 16;
    const IPL_MASK: u32 = 0x1f << Self::IPL_SHIFT;
    const PRV_SHIFT: u32 = 22;
    const PRV_MASK: u32 = 0b11 << Self::PRV_SHIFT;
    const CUR_SHIFT: u32 = 24;
    const CUR_MASK: u32 = 0b11 << Self::CUR_SHIFT;

    /// Mask of the mode fields emulated by `VMPSL` in VM mode.
    pub const MODE_FIELDS: u32 = Self::PRV_MASK | Self::CUR_MASK;

    /// Bits that must be zero in any PSL image REI is asked to load.
    /// (Bits 8–15, 21, 28, and the VM bit; IS/CM handling is simplified.)
    pub const MBZ: u32 = 0x0000_ff00 | (1 << 21) | (1 << 28) | Self::VM;

    /// A cleared PSL: kernel mode, IPL 0, no flags. This is *not* the
    /// hardware power-up PSL (which sets IPL 31); use
    /// [`Psl::power_up`] for that.
    pub fn new() -> Psl {
        Psl(0)
    }

    /// The PSL at processor power-up: kernel mode, interrupt stack, IPL 31.
    pub fn power_up() -> Psl {
        let mut p = Psl(Psl::IS);
        p.set_ipl(31);
        p
    }

    /// Constructs a PSL from a raw longword without validation.
    pub fn from_raw(raw: u32) -> Psl {
        Psl(raw)
    }

    /// The raw longword value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw value with `PSL<VM>` masked off, as any software read
    /// (MOVPSL, exception push) must present it.
    #[inline]
    pub fn raw_visible(self) -> u32 {
        self.0 & !Self::VM
    }

    /// Current access mode (`PSL<CUR_MOD>`).
    #[inline]
    pub fn cur_mode(self) -> AccessMode {
        AccessMode::from_bits(self.0 >> Self::CUR_SHIFT)
    }

    /// Sets the current access mode.
    #[inline]
    pub fn set_cur_mode(&mut self, mode: AccessMode) {
        self.0 = (self.0 & !Self::CUR_MASK) | (mode.bits() << Self::CUR_SHIFT);
    }

    /// Previous access mode (`PSL<PRV_MOD>`).
    #[inline]
    pub fn prv_mode(self) -> AccessMode {
        AccessMode::from_bits(self.0 >> Self::PRV_SHIFT)
    }

    /// Sets the previous access mode.
    #[inline]
    pub fn set_prv_mode(&mut self, mode: AccessMode) {
        self.0 = (self.0 & !Self::PRV_MASK) | (mode.bits() << Self::PRV_SHIFT);
    }

    /// Interrupt priority level, 0–31.
    #[inline]
    pub fn ipl(self) -> u8 {
        ((self.0 & Self::IPL_MASK) >> Self::IPL_SHIFT) as u8
    }

    /// Sets the interrupt priority level.
    ///
    /// # Panics
    ///
    /// Panics if `ipl > 31`.
    #[inline]
    pub fn set_ipl(&mut self, ipl: u8) {
        assert!(ipl <= 31, "IPL out of range: {ipl}");
        self.0 = (self.0 & !Self::IPL_MASK) | ((ipl as u32) << Self::IPL_SHIFT);
    }

    /// True if the given flag bit(s) are all set.
    #[inline]
    pub fn flag(self, mask: u32) -> bool {
        self.0 & mask == mask
    }

    /// Sets or clears the given flag bit(s).
    #[inline]
    pub fn set_flag(&mut self, mask: u32, value: bool) {
        if value {
            self.0 |= mask;
        } else {
            self.0 &= !mask;
        }
    }

    /// True if the processor is executing a virtual machine (`PSL<VM>`).
    #[inline]
    pub fn vm(self) -> bool {
        self.flag(Self::VM)
    }

    /// Sets or clears `PSL<VM>`.
    ///
    /// In the paper's design only the VMM's dispatch path sets this bit and
    /// only exception/interrupt microcode clears it.
    #[inline]
    pub fn set_vm(&mut self, value: bool) {
        self.set_flag(Self::VM, value);
    }

    /// Sets the N, Z, V, C condition codes from explicit booleans.
    #[inline]
    pub fn set_nzvc(&mut self, n: bool, z: bool, v: bool, c: bool) {
        self.set_flag(Self::N, n);
        self.set_flag(Self::Z, z);
        self.set_flag(Self::V, v);
        self.set_flag(Self::C, c);
    }

    /// Sets N and Z from a signed 32-bit result, clearing V; C unchanged.
    #[inline]
    pub fn set_nz_from(&mut self, value: u32) {
        self.set_flag(Self::N, (value as i32) < 0);
        self.set_flag(Self::Z, value == 0);
        self.set_flag(Self::V, false);
    }
}

impl core::fmt::Display for Psl {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PSL[cur={} prv={} ipl={}{}{}{}{}{}{}]",
            self.cur_mode(),
            self.prv_mode(),
            self.ipl(),
            if self.vm() { " VM" } else { "" },
            if self.flag(Self::IS) { " IS" } else { "" },
            if self.flag(Self::N) { " N" } else { "" },
            if self.flag(Self::Z) { " Z" } else { "" },
            if self.flag(Self::V) { " V" } else { "" },
            if self.flag(Self::C) { " C" } else { "" },
        )
    }
}

/// The `VMPSL` register: the parts of a VM's PSL that differ from the real
/// machine's PSL while the VM runs.
///
/// Per the paper (§4.2) only the current-mode and previous-mode fields need
/// emulation; condition codes, trap enables, etc. remain in the real PSL,
/// where ordinary instructions expect them. `MOVPSL` in VM mode merges the
/// two (see [`VmPsl::merge_into`]).
///
/// # Example
///
/// ```
/// use vax_arch::{AccessMode, Psl, VmPsl};
///
/// let mut real = Psl::new();
/// real.set_cur_mode(AccessMode::Executive); // compressed real mode
/// real.set_vm(true);
///
/// let vmpsl = VmPsl::new(AccessMode::Kernel, AccessMode::User);
/// let guest_view = vmpsl.merge_into(real);
/// assert_eq!(guest_view.cur_mode(), AccessMode::Kernel); // VM sees kernel
/// assert!(!guest_view.vm()); // PSL<VM> is never visible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VmPsl {
    cur: AccessMode,
    prv: AccessMode,
    ipl: u8,
}

impl VmPsl {
    /// Creates a `VMPSL` with the given VM current and previous modes and
    /// a virtual IPL of 0.
    pub fn new(cur: AccessMode, prv: AccessMode) -> VmPsl {
        VmPsl { cur, prv, ipl: 0 }
    }

    /// Returns a copy with the VM's interrupt priority level replaced.
    ///
    /// The real PSL's IPL stays at 0 while a VM runs (so real interrupts
    /// always preempt); the VM's own IPL is privileged state the VMM
    /// maintains, and keeping it in `VMPSL` lets the `MOVPSL` microcode
    /// merge return it (paper §7.3 discusses the cost of emulating
    /// MTPR-to-IPL against this register).
    pub fn with_ipl(mut self, ipl: u8) -> VmPsl {
        assert!(ipl <= 31, "IPL out of range: {ipl}");
        self.ipl = ipl;
        self
    }

    /// The VM's interrupt priority level.
    pub fn ipl(self) -> u8 {
        self.ipl
    }

    /// Sets the VM's interrupt priority level.
    ///
    /// # Panics
    ///
    /// Panics if `ipl > 31`.
    pub fn set_ipl(&mut self, ipl: u8) {
        assert!(ipl <= 31, "IPL out of range: {ipl}");
        self.ipl = ipl;
    }

    /// The VM's current access mode.
    pub fn cur_mode(self) -> AccessMode {
        self.cur
    }

    /// The VM's previous access mode.
    pub fn prv_mode(self) -> AccessMode {
        self.prv
    }

    /// Sets the VM's current access mode.
    pub fn set_cur_mode(&mut self, mode: AccessMode) {
        self.cur = mode;
    }

    /// Sets the VM's previous access mode.
    pub fn set_prv_mode(&mut self, mode: AccessMode) {
        self.prv = mode;
    }

    /// Produces the VM-visible PSL: the real PSL's non-mode fields merged
    /// with `VMPSL`'s mode fields, with `PSL<VM>` masked.
    ///
    /// This is exactly the microcode `MOVPSL` merge from paper §4.2.1 and
    /// the PSL image supplied with a VM-emulation trap.
    pub fn merge_into(self, real: Psl) -> Psl {
        let mut merged = Psl::from_raw(real.raw_visible() & !Psl::MODE_FIELDS);
        merged.set_cur_mode(self.cur);
        merged.set_prv_mode(self.prv);
        merged.set_ipl(self.ipl);
        merged
    }
}

impl core::fmt::Display for VmPsl {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "VMPSL[cur={} prv={} ipl={}]",
            self.cur, self.prv, self.ipl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_fields_round_trip() {
        let mut psl = Psl::new();
        for cur in AccessMode::ALL {
            for prv in AccessMode::ALL {
                psl.set_cur_mode(cur);
                psl.set_prv_mode(prv);
                assert_eq!(psl.cur_mode(), cur);
                assert_eq!(psl.prv_mode(), prv);
            }
        }
    }

    #[test]
    fn ipl_round_trip() {
        let mut psl = Psl::new();
        for ipl in 0..=31u8 {
            psl.set_ipl(ipl);
            assert_eq!(psl.ipl(), ipl);
        }
    }

    #[test]
    #[should_panic(expected = "IPL out of range")]
    fn ipl_rejects_out_of_range() {
        Psl::new().set_ipl(32);
    }

    #[test]
    fn vm_bit_is_invisible() {
        let mut psl = Psl::new();
        psl.set_vm(true);
        assert!(psl.vm());
        assert_eq!(psl.raw_visible() & Psl::VM, 0);
    }

    #[test]
    fn power_up_state() {
        let psl = Psl::power_up();
        assert_eq!(psl.cur_mode(), AccessMode::Kernel);
        assert_eq!(psl.ipl(), 31);
        assert!(psl.flag(Psl::IS));
    }

    #[test]
    fn condition_codes() {
        let mut psl = Psl::new();
        psl.set_nzvc(true, false, true, false);
        assert!(psl.flag(Psl::N));
        assert!(!psl.flag(Psl::Z));
        assert!(psl.flag(Psl::V));
        assert!(!psl.flag(Psl::C));

        psl.set_nz_from(0);
        assert!(psl.flag(Psl::Z));
        assert!(!psl.flag(Psl::N));
        psl.set_nz_from(0x8000_0000);
        assert!(psl.flag(Psl::N));
        assert!(!psl.flag(Psl::Z));
    }

    #[test]
    fn vmpsl_merge_preserves_real_flags_and_hides_vm_bit() {
        let mut real = Psl::new();
        real.set_cur_mode(AccessMode::Executive);
        real.set_prv_mode(AccessMode::Executive);
        real.set_ipl(5);
        real.set_nzvc(true, true, false, true);
        real.set_vm(true);

        let vmpsl = VmPsl::new(AccessMode::Kernel, AccessMode::Executive).with_ipl(8);
        let merged = vmpsl.merge_into(real);
        assert_eq!(merged.cur_mode(), AccessMode::Kernel);
        assert_eq!(merged.prv_mode(), AccessMode::Executive);
        assert_eq!(merged.ipl(), 8, "VM's IPL, not the real machine's");
        assert!(merged.flag(Psl::N) && merged.flag(Psl::Z) && merged.flag(Psl::C));
        assert!(!merged.vm());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Psl::power_up().to_string().is_empty());
        assert!(!VmPsl::default().to_string().is_empty());
    }
}
