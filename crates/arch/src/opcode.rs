//! The instruction set: opcodes, operand specifications, and the
//! privilege/sensitivity classification used by the Popek–Goldberg
//! analysis (paper Table 1).
//!
//! This simulator implements a representative VAX subset (99 opcodes)
//! covering every instruction the paper discusses plus enough of the
//! general instruction set to write operating systems and workloads.
//! Encodings match the real VAX; the three instructions added by the
//! paper (`WAIT`, `PROBEVMR`, `PROBEVMW`) live on the architecturally
//! designated `0xFD` extended-opcode page.

/// Operand data width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 8-bit byte.
    Byte,
    /// 16-bit word.
    Word,
    /// 32-bit longword.
    Long,
}

impl DataType {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            DataType::Byte => 1,
            DataType::Word => 2,
            DataType::Long => 4,
        }
    }
}

/// How an instruction accesses one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Operand value is read.
    Read,
    /// Operand location is written.
    Write,
    /// Operand location is read then written.
    Modify,
    /// The operand's *address* is the datum (no access performed).
    Address,
    /// A signed branch displacement of the given width follows in-line.
    Branch,
}

/// One operand's specification: access kind plus data width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSpec {
    /// How the operand is accessed.
    pub access: AccessType,
    /// The operand's width.
    pub dtype: DataType,
}

impl OperandSpec {
    /// Shorthand constructor.
    pub const fn new(access: AccessType, dtype: DataType) -> OperandSpec {
        OperandSpec { access, dtype }
    }
}

const fn rb() -> OperandSpec {
    OperandSpec::new(AccessType::Read, DataType::Byte)
}
const fn rw() -> OperandSpec {
    OperandSpec::new(AccessType::Read, DataType::Word)
}
const fn rl() -> OperandSpec {
    OperandSpec::new(AccessType::Read, DataType::Long)
}
const fn wb() -> OperandSpec {
    OperandSpec::new(AccessType::Write, DataType::Byte)
}
const fn ww() -> OperandSpec {
    OperandSpec::new(AccessType::Write, DataType::Word)
}
const fn wl() -> OperandSpec {
    OperandSpec::new(AccessType::Write, DataType::Long)
}
const fn ml() -> OperandSpec {
    OperandSpec::new(AccessType::Modify, DataType::Long)
}
const fn ab() -> OperandSpec {
    OperandSpec::new(AccessType::Address, DataType::Byte)
}
const fn al() -> OperandSpec {
    OperandSpec::new(AccessType::Address, DataType::Long)
}
const fn bb() -> OperandSpec {
    OperandSpec::new(AccessType::Branch, DataType::Byte)
}
const fn bw() -> OperandSpec {
    OperandSpec::new(AccessType::Branch, DataType::Word)
}

/// The privileged machine state an instruction can touch without being
/// privileged — the paper's Table 1 row labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensitiveData {
    /// `PSL<CUR_MOD>`, the current access mode.
    PslCur,
    /// `PSL<PRV_MOD>`, the previous access mode.
    PslPrv,
    /// `PTE<M>`, the modify bit (implicitly written by memory writes).
    PteM,
    /// `PTE<PROT>`, the protection code (read by PROBE).
    PteProt,
}

impl core::fmt::Display for SensitiveData {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SensitiveData::PslCur => f.write_str("PSL<CUR>"),
            SensitiveData::PslPrv => f.write_str("PSL<PRV>"),
            SensitiveData::PteM => f.write_str("PTE<M>"),
            SensitiveData::PteProt => f.write_str("PTE<PROT>"),
        }
    }
}

/// Popek–Goldberg classification of an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivilegeClass {
    /// Neither privileged nor sensitive.
    Innocuous,
    /// Privileged: traps unless executed in kernel mode. All privileged
    /// VAX instructions are also sensitive.
    Privileged,
    /// Sensitive but *not* privileged — the problematic class. Lists the
    /// sensitive data items touched (paper Table 1).
    SensitiveUnprivileged(&'static [SensitiveData]),
}

macro_rules! opcodes {
    ($(($variant:ident, $code:expr, $mnemonic:expr, [$($spec:expr),*], $class:expr);)+) => {
        /// An implemented VAX opcode.
        ///
        /// The discriminant is the encoding: plain opcodes are their single
        /// byte; extended opcodes are `0xFD00 | second_byte`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u16)]
        pub enum Opcode {
            $(
                #[doc = $mnemonic]
                $variant = $code,
            )+
        }

        impl Opcode {
            /// Every implemented opcode.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$variant),+];

            /// Decodes an opcode from its first byte and, when the first
            /// byte is the `0xFD` extension prefix, its second byte.
            /// Returns the opcode and its encoded length in bytes.
            pub fn decode(b0: u8, b1: u8) -> Option<(Opcode, u32)> {
                if b0 == 0xFD {
                    let code = 0xFD00u16 | b1 as u16;
                    match code {
                        $($code => {
                            if $code > 0xFF { Some((Opcode::$variant, 2)) } else { None }
                        })+
                        _ => None,
                    }
                } else {
                    let code = b0 as u16;
                    match code {
                        $($code => {
                            if $code <= 0xFF { Some((Opcode::$variant, 1)) } else { None }
                        })+
                        _ => None,
                    }
                }
            }

            /// The instruction mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic,)+
                }
            }

            /// The operand specifications, in encoding order.
            #[inline]
            pub fn operands(self) -> &'static [OperandSpec] {
                match self {
                    $(Opcode::$variant => {
                        const SPECS: &[OperandSpec] = &[$($spec),*];
                        SPECS
                    })+
                }
            }

            /// The Popek–Goldberg classification.
            #[inline]
            pub fn privilege_class(self) -> PrivilegeClass {
                match self {
                    $(Opcode::$variant => $class,)+
                }
            }
        }
    };
}

use PrivilegeClass::{Innocuous, Privileged, SensitiveUnprivileged};

opcodes! {
    (Halt,    0x00, "HALT",    [], Privileged);
    (Nop,     0x01, "NOP",     [], Innocuous);
    (Rei,     0x02, "REI",     [],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Bpt,     0x03, "BPT",     [], Innocuous);
    (Ret,     0x04, "RET",     [], Innocuous);
    (Rsb,     0x05, "RSB",     [], Innocuous);
    (Ldpctx,  0x06, "LDPCTX",  [], Privileged);
    (Svpctx,  0x07, "SVPCTX",  [], Privileged);
    (Prober,  0x0C, "PROBER",  [rb(), rw(), ab()],
        SensitiveUnprivileged(&[SensitiveData::PslPrv, SensitiveData::PteProt]));
    (Probew,  0x0D, "PROBEW",  [rb(), rw(), ab()],
        SensitiveUnprivileged(&[SensitiveData::PslPrv, SensitiveData::PteProt]));
    (Insque,  0x0E, "INSQUE",  [ab(), ab()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Remque,  0x0F, "REMQUE",  [ab(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bsbb,    0x10, "BSBB",    [bb()], Innocuous);
    (Brb,     0x11, "BRB",     [bb()], Innocuous);
    (Bneq,    0x12, "BNEQ",    [bb()], Innocuous);
    (Beql,    0x13, "BEQL",    [bb()], Innocuous);
    (Bgtr,    0x14, "BGTR",    [bb()], Innocuous);
    (Bleq,    0x15, "BLEQ",    [bb()], Innocuous);
    (Jsb,     0x16, "JSB",     [ab()], Innocuous);
    (Jmp,     0x17, "JMP",     [ab()], Innocuous);
    (Bgeq,    0x18, "BGEQ",    [bb()], Innocuous);
    (Blss,    0x19, "BLSS",    [bb()], Innocuous);
    (Bgtru,   0x1A, "BGTRU",   [bb()], Innocuous);
    (Blequ,   0x1B, "BLEQU",   [bb()], Innocuous);
    (Bvc,     0x1C, "BVC",     [bb()], Innocuous);
    (Bvs,     0x1D, "BVS",     [bb()], Innocuous);
    (Bgequ,   0x1E, "BGEQU",   [bb()], Innocuous);
    (Blssu,   0x1F, "BLSSU",   [bb()], Innocuous);
    (Movc3,   0x28, "MOVC3",   [rw(), ab(), ab()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bsbw,    0x30, "BSBW",    [bw()], Innocuous);
    (Brw,     0x31, "BRW",     [bw()], Innocuous);
    (Cvtwl,   0x32, "CVTWL",   [rw(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cvtwb,   0x33, "CVTWB",   [rw(), wb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Movzwl,  0x3C, "MOVZWL",  [rw(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Ashl,    0x78, "ASHL",    [rb(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Movb,    0x90, "MOVB",    [rb(), wb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cmpb,    0x91, "CMPB",    [rb(), rb()], Innocuous);
    (Clrb,    0x94, "CLRB",    [wb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Tstb,    0x95, "TSTB",    [rb()], Innocuous);
    (Incb,    0x96, "INCB",    [OperandSpec::new(AccessType::Modify, DataType::Byte)],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Decb,    0x97, "DECB",    [OperandSpec::new(AccessType::Modify, DataType::Byte)],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cvtbl,   0x98, "CVTBL",   [rb(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cvtbw,   0x99, "CVTBW",   [rb(), ww()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Movzbl,  0x9A, "MOVZBL",  [rb(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Movzbw,  0x9B, "MOVZBW",  [rb(), ww()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Movw,    0xB0, "MOVW",    [rw(), ww()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cmpw,    0xB1, "CMPW",    [rw(), rw()], Innocuous);
    (Clrw,    0xB4, "CLRW",    [ww()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Tstw,    0xB5, "TSTW",    [rw()], Innocuous);
    (Chmk,    0xBC, "CHMK",    [rw()],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Chme,    0xBD, "CHME",    [rw()],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Chms,    0xBE, "CHMS",    [rw()],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Chmu,    0xBF, "CHMU",    [rw()],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Addl2,   0xC0, "ADDL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Addl3,   0xC1, "ADDL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Subl2,   0xC2, "SUBL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Subl3,   0xC3, "SUBL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Mull2,   0xC4, "MULL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Mull3,   0xC5, "MULL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Divl2,   0xC6, "DIVL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Divl3,   0xC7, "DIVL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bisl2,   0xC8, "BISL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bisl3,   0xC9, "BISL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bicl2,   0xCA, "BICL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bicl3,   0xCB, "BICL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Xorl2,   0xCC, "XORL2",   [rl(), ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Xorl3,   0xCD, "XORL3",   [rl(), rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Mnegl,   0xCE, "MNEGL",   [rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Casel,   0xCF, "CASEL",   [rl(), rl(), rl()], Innocuous);
    (Movl,    0xD0, "MOVL",    [rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cmpl,    0xD1, "CMPL",    [rl(), rl()], Innocuous);
    (Mcoml,   0xD2, "MCOML",   [rl(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bitl,    0xD3, "BITL",    [rl(), rl()], Innocuous);
    (Clrl,    0xD4, "CLRL",    [wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Tstl,    0xD5, "TSTL",    [rl()], Innocuous);
    (Incl,    0xD6, "INCL",    [ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Decl,    0xD7, "DECL",    [ml()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Mtpr,    0xDA, "MTPR",    [rl(), rl()], Privileged);
    (Mfpr,    0xDB, "MFPR",    [rl(), wl()], Privileged);
    (Movpsl,  0xDC, "MOVPSL",  [wl()],
        SensitiveUnprivileged(&[SensitiveData::PslCur, SensitiveData::PslPrv]));
    (Pushl,   0xDD, "PUSHL",   [rl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Moval,   0xDE, "MOVAL",   [al(), wl()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Pushal,  0xDF, "PUSHAL",  [al()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bbs,     0xE0, "BBS",     [rl(), ab(), bb()], Innocuous);
    (Bbc,     0xE1, "BBC",     [rl(), ab(), bb()], Innocuous);
    (Bbss,    0xE2, "BBSS",    [rl(), ab(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Bbcc,    0xE4, "BBCC",    [rl(), ab(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Blbs,    0xE8, "BLBS",    [rl(), bb()], Innocuous);
    (Blbc,    0xE9, "BLBC",    [rl(), bb()], Innocuous);
    (Aoblss,  0xF2, "AOBLSS",  [rl(), ml(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Aobleq,  0xF3, "AOBLEQ",  [rl(), ml(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Sobgeq,  0xF4, "SOBGEQ",  [ml(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Sobgtr,  0xF5, "SOBGTR",  [ml(), bb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cvtlb,   0xF6, "CVTLB",   [rl(), wb()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Cvtlw,   0xF7, "CVTLW",   [rl(), ww()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    (Calls,   0xFB, "CALLS",   [rl(), ab()],
        SensitiveUnprivileged(&[SensitiveData::PteM]));
    // ---- Extended (0xFD) page: the paper's new instructions ----
    (Wait,    0xFD01, "WAIT",  [], Privileged);
    (Probevmr, 0xFD02, "PROBEVMR", [rb(), ab()], Privileged);
    (Probevmw, 0xFD03, "PROBEVMW", [rb(), ab()], Privileged);
}

impl Opcode {
    /// True if the opcode is privileged (traps outside kernel mode).
    #[inline]
    pub fn is_privileged(self) -> bool {
        matches!(self.privilege_class(), PrivilegeClass::Privileged)
    }

    /// True if the opcode is sensitive *and* unprivileged on the standard
    /// VAX — the set that violates the Popek–Goldberg requirement.
    ///
    /// Following the paper, instructions whose only sensitivity is the
    /// implicit `PTE<M>` write are included (any memory write sets the
    /// modify bit without a trap); the *control-visible* offenders are
    /// CHMx, REI, MOVPSL, and PROBEx.
    pub fn is_sensitive_unprivileged(self) -> bool {
        matches!(
            self.privilege_class(),
            PrivilegeClass::SensitiveUnprivileged(_)
        )
    }

    /// The sensitive data touched, if any.
    pub fn sensitive_data(self) -> &'static [SensitiveData] {
        match self.privilege_class() {
            PrivilegeClass::SensitiveUnprivileged(d) => d,
            _ => &[],
        }
    }

    /// True if the *only* sensitivity is the implicit `PTE<M>` write.
    pub fn only_pte_m_sensitive(self) -> bool {
        let d = self.sensitive_data();
        !d.is_empty() && d.iter().all(|s| *s == SensitiveData::PteM)
    }

    /// True for the control-state offenders the paper's Table 1 lists by
    /// name: instructions that read or write `PSL<CUR>`, `PSL<PRV>`, or
    /// `PTE<PROT>` without being privileged.
    pub fn is_table1_instruction(self) -> bool {
        self.sensitive_data()
            .iter()
            .any(|s| *s != SensitiveData::PteM)
    }

    /// Encoded length of the opcode itself (1, or 2 for `0xFD`-page).
    pub fn encoded_len(self) -> u32 {
        if (self as u16) > 0xFF {
            2
        } else {
            1
        }
    }

    /// The encoding bytes (one or two).
    pub fn encoding(self) -> ([u8; 2], usize) {
        let code = self as u16;
        if code > 0xFF {
            ([0xFD, (code & 0xFF) as u8], 2)
        } else {
            ([code as u8, 0], 1)
        }
    }

    /// True for the four change-mode instructions; returns the target mode.
    pub fn chm_target(self) -> Option<crate::AccessMode> {
        match self {
            Opcode::Chmk => Some(crate::AccessMode::Kernel),
            Opcode::Chme => Some(crate::AccessMode::Executive),
            Opcode::Chms => Some(crate::AccessMode::Supervisor),
            Opcode::Chmu => Some(crate::AccessMode::User),
            _ => None,
        }
    }
}

impl core::fmt::Display for Opcode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_round_trips_every_opcode() {
        for &op in Opcode::ALL {
            let (bytes, len) = op.encoding();
            let (decoded, dlen) = Opcode::decode(bytes[0], bytes[1]).expect("decodable");
            assert_eq!(decoded, op);
            assert_eq!(dlen as usize, len);
            assert_eq!(op.encoded_len() as usize, len);
        }
    }

    #[test]
    fn unknown_opcodes_decode_to_none() {
        assert_eq!(Opcode::decode(0x40, 0), None); // ADDF2, unimplemented
        assert_eq!(Opcode::decode(0xFD, 0x99), None);
        assert_eq!(Opcode::decode(0xFD, 0x00), None);
    }

    #[test]
    fn table1_instruction_set_matches_paper() {
        // Paper Table 1 names CHMx, REI, MOVPSL, PROBEx as the
        // control-visible sensitive unprivileged instructions.
        let named: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.is_table1_instruction())
            .collect();
        let expected = [
            Opcode::Rei,
            Opcode::Prober,
            Opcode::Probew,
            Opcode::Chmk,
            Opcode::Chme,
            Opcode::Chms,
            Opcode::Chmu,
            Opcode::Movpsl,
        ];
        for e in expected {
            assert!(named.contains(&e), "{e} missing from Table 1 set");
        }
        assert_eq!(named.len(), expected.len(), "{named:?}");
    }

    #[test]
    fn privileged_set_matches_architecture() {
        let privileged: Vec<Opcode> = Opcode::ALL
            .iter()
            .copied()
            .filter(|o| o.is_privileged())
            .collect();
        let expected = [
            Opcode::Halt,
            Opcode::Ldpctx,
            Opcode::Svpctx,
            Opcode::Mtpr,
            Opcode::Mfpr,
            Opcode::Wait,
            Opcode::Probevmr,
            Opcode::Probevmw,
        ];
        assert_eq!(privileged.len(), expected.len());
        for e in expected {
            assert!(privileged.contains(&e));
        }
    }

    #[test]
    fn memory_writers_carry_pte_m_sensitivity() {
        for &op in Opcode::ALL {
            let writes_memory = op
                .operands()
                .iter()
                .any(|s| matches!(s.access, AccessType::Write | AccessType::Modify))
                || matches!(
                    op,
                    Opcode::Pushl | Opcode::Pushal | Opcode::Calls | Opcode::Movc3
                );
            if writes_memory && !op.is_privileged() && !op.is_table1_instruction() {
                assert!(
                    op.sensitive_data().contains(&SensitiveData::PteM),
                    "{op} writes memory but lacks PTE<M> sensitivity"
                );
            }
        }
    }

    #[test]
    fn chm_targets() {
        assert_eq!(Opcode::Chmk.chm_target(), Some(crate::AccessMode::Kernel));
        assert_eq!(Opcode::Chmu.chm_target(), Some(crate::AccessMode::User));
        assert_eq!(Opcode::Movl.chm_target(), None);
    }

    #[test]
    fn extended_page_encodings() {
        assert_eq!(Opcode::Wait.encoding(), ([0xFD, 0x01], 2));
        assert_eq!(Opcode::Probevmr.encoding(), ([0xFD, 0x02], 2));
        assert_eq!(Opcode::Probevmw.encoding(), ([0xFD, 0x03], 2));
    }

    #[test]
    fn operand_specs_spot_checks() {
        assert_eq!(Opcode::Movl.operands().len(), 2);
        assert_eq!(Opcode::Prober.operands().len(), 3);
        assert_eq!(Opcode::Rei.operands().len(), 0);
        assert_eq!(Opcode::Movpsl.operands()[0].access, AccessType::Write);
        assert_eq!(Opcode::Brb.operands()[0].access, AccessType::Branch);
        assert_eq!(DataType::Byte.bytes(), 1);
        assert_eq!(DataType::Word.bytes(), 2);
        assert_eq!(DataType::Long.bytes(), 4);
    }

    #[test]
    fn only_pte_m_classification() {
        assert!(Opcode::Movl.only_pte_m_sensitive());
        assert!(!Opcode::Rei.only_pte_m_sensitive());
        assert!(!Opcode::Nop.only_pte_m_sensitive());
    }
}
