//! Internal processor registers (IPRs), accessed with `MTPR` and `MFPR`.
//!
//! All IPRs are privileged state: `MTPR`/`MFPR` are privileged instructions
//! on the base architecture. The paper's virtual VAX adds three registers —
//! `MEMSIZE`, `KCALL`, and `IORESET` — which exist *only* on the virtual
//! machine (they are emulated by the VMM and do not exist on real
//! hardware; see paper Table 4).

/// An internal processor register number.
///
/// Numbers match the VAX architecture where a real counterpart exists; the
/// virtual-machine registers use the processor-specific space above 128.
///
/// # Example
///
/// ```
/// use vax_arch::Ipr;
///
/// assert_eq!(Ipr::from_number(18), Some(Ipr::Ipl));
/// assert!(Ipr::Kcall.is_vm_only());
/// assert!(!Ipr::Ipl.is_vm_only());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Ipr {
    /// Kernel stack pointer.
    Ksp = 0,
    /// Executive stack pointer.
    Esp = 1,
    /// Supervisor stack pointer.
    Ssp = 2,
    /// User stack pointer.
    Usp = 3,
    /// Interrupt stack pointer.
    Isp = 4,
    /// P0 page-table base register (virtual address in S space).
    P0br = 8,
    /// P0 page-table length register (number of PTEs).
    P0lr = 9,
    /// P1 page-table base register.
    P1br = 10,
    /// P1 page-table length register.
    P1lr = 11,
    /// System page-table base register (physical address).
    Sbr = 12,
    /// System page-table length register.
    Slr = 13,
    /// Process control block base (physical address).
    Pcbb = 16,
    /// System control block base (physical address).
    Scbb = 17,
    /// Interrupt priority level (mirrors `PSL<IPL>`).
    Ipl = 18,
    /// AST level.
    Astlvl = 19,
    /// Software interrupt request register (write-only).
    Sirr = 20,
    /// Software interrupt summary register.
    Sisr = 21,
    /// Interval clock control/status.
    Iccs = 24,
    /// Next interval count (reload value, negative count).
    Nicr = 25,
    /// Interval count register.
    Icr = 26,
    /// Time-of-day register.
    Todr = 27,
    /// Console receive control/status.
    Rxcs = 32,
    /// Console receive data buffer.
    Rxdb = 33,
    /// Console transmit control/status.
    Txcs = 34,
    /// Console transmit data buffer.
    Txdb = 35,
    /// Memory-management enable.
    Mapen = 56,
    /// Translation buffer invalidate all (write-only).
    Tbia = 57,
    /// Translation buffer invalidate single (write-only; datum is a VA).
    Tbis = 58,
    /// System identification.
    Sid = 62,
    /// **Virtual VAX only**: total memory size in bytes (read-only).
    Memsize = 200,
    /// **Virtual VAX only**: kernel-call register; writing it passes a
    /// request block address to the VMM (start-I/O, management calls).
    Kcall = 201,
    /// **Virtual VAX only**: reset all virtual I/O devices (write-only).
    Ioreset = 202,
}

impl Ipr {
    /// Every register this simulator implements.
    pub const ALL: [Ipr; 31] = [
        Ipr::Ksp,
        Ipr::Esp,
        Ipr::Ssp,
        Ipr::Usp,
        Ipr::Isp,
        Ipr::P0br,
        Ipr::P0lr,
        Ipr::P1br,
        Ipr::P1lr,
        Ipr::Sbr,
        Ipr::Slr,
        Ipr::Pcbb,
        Ipr::Scbb,
        Ipr::Ipl,
        Ipr::Astlvl,
        Ipr::Sirr,
        Ipr::Sisr,
        Ipr::Iccs,
        Ipr::Nicr,
        Ipr::Icr,
        Ipr::Todr,
        Ipr::Rxcs,
        Ipr::Rxdb,
        Ipr::Txcs,
        Ipr::Txdb,
        Ipr::Mapen,
        Ipr::Tbia,
        Ipr::Tbis,
        Ipr::Sid,
        Ipr::Memsize,
        Ipr::Kcall,
    ];

    /// Decodes an IPR number, returning `None` for unimplemented numbers.
    pub fn from_number(n: u32) -> Option<Ipr> {
        Ipr::ALL
            .iter()
            .copied()
            .chain([Ipr::Ioreset])
            .find(|i| *i as u32 == n)
    }

    /// The register number used in `MTPR`/`MFPR` encodings.
    pub fn number(self) -> u32 {
        self as u32
    }

    /// True for the registers that exist only on the paper's virtual VAX.
    pub fn is_vm_only(self) -> bool {
        matches!(self, Ipr::Memsize | Ipr::Kcall | Ipr::Ioreset)
    }

    /// The per-mode stack-pointer register for an access mode.
    pub fn stack_pointer(mode: crate::AccessMode) -> Ipr {
        match mode {
            crate::AccessMode::Kernel => Ipr::Ksp,
            crate::AccessMode::Executive => Ipr::Esp,
            crate::AccessMode::Supervisor => Ipr::Ssp,
            crate::AccessMode::User => Ipr::Usp,
        }
    }
}

impl core::fmt::Display for Ipr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessMode;

    #[test]
    fn numbers_round_trip() {
        for ipr in Ipr::ALL.iter().copied().chain([Ipr::Ioreset]) {
            assert_eq!(Ipr::from_number(ipr.number()), Some(ipr));
        }
    }

    #[test]
    fn unknown_numbers_are_none() {
        assert_eq!(Ipr::from_number(5), None);
        assert_eq!(Ipr::from_number(999), None);
    }

    #[test]
    fn vm_only_registers() {
        assert!(Ipr::Memsize.is_vm_only());
        assert!(Ipr::Kcall.is_vm_only());
        assert!(Ipr::Ioreset.is_vm_only());
        assert!(!Ipr::Sbr.is_vm_only());
    }

    #[test]
    fn stack_pointers_match_mode_numbers() {
        assert_eq!(Ipr::stack_pointer(AccessMode::Kernel), Ipr::Ksp);
        assert_eq!(Ipr::stack_pointer(AccessMode::Executive), Ipr::Esp);
        assert_eq!(Ipr::stack_pointer(AccessMode::Supervisor), Ipr::Ssp);
        assert_eq!(Ipr::stack_pointer(AccessMode::User), Ipr::Usp);
        for m in AccessMode::ALL {
            assert_eq!(Ipr::stack_pointer(m).number(), m.bits());
        }
    }
}
