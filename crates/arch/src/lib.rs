#![warn(missing_docs)]

//! Architecture-level definitions for the VAX subset simulated by this
//! workspace, including the ISCA '91 virtualization extensions.
//!
//! This crate is pure data: access modes, the processor status longword
//! (PSL) and its `VM` bit, the `VMPSL` register, page-table entries and the
//! full four-bit VAX protection-code table, virtual-address decomposition,
//! system control block (SCB) vectors, internal processor registers (IPRs),
//! the opcode table with operand specifications, exception descriptors, and
//! the calibrated cycle-cost model. It has no dependencies and is shared by
//! every other crate in the workspace.
//!
//! # Example
//!
//! ```
//! use vax_arch::{AccessMode, Protection};
//!
//! // A page protected "executive write" is writable from kernel and
//! // executive modes, readable from those modes, and inaccessible to
//! // supervisor and user mode.
//! let prot = Protection::Ew;
//! assert!(prot.allows_write(AccessMode::Kernel));
//! assert!(prot.allows_write(AccessMode::Executive));
//! assert!(!prot.allows_read(AccessMode::Supervisor));
//! ```

pub mod cost;
pub mod exception;
pub mod ipr;
pub mod mode;
pub mod opcode;
pub mod psl;
pub mod pte;
pub mod scb;
pub mod va;

pub use cost::CostModel;
pub use exception::{ArithmeticCode, Exception};
pub use ipr::Ipr;
pub use mode::AccessMode;
pub use opcode::{AccessType, DataType, Opcode, OperandSpec};
pub use psl::{Psl, VmPsl};
pub use pte::{Protection, Pte};
pub use scb::ScbVector;
pub use va::{Region, VirtAddr, PAGE_BYTES, PAGE_SHIFT};

/// Which variant of the VAX architecture a machine implements.
///
/// The paper's modifications (`PSL<VM>`, `VMPSL`, the VM-emulation trap,
/// the modify fault, `PROBEVMx`, and `WAIT`) exist only on the
/// [`Modified`](MachineVariant::Modified) variant. A
/// [`Standard`](MachineVariant::Standard) machine behaves like the base
/// architecture; this is the machine on which the paper's Table 1
/// sensitivity analysis is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MachineVariant {
    /// The unmodified base VAX architecture.
    Standard,
    /// The VAX architecture with the ISCA '91 virtualization extensions.
    #[default]
    Modified,
}

impl MachineVariant {
    /// True if this variant implements the virtualization extensions.
    pub fn has_vm_extensions(self) -> bool {
        matches!(self, MachineVariant::Modified)
    }
}

impl core::fmt::Display for MachineVariant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineVariant::Standard => f.write_str("standard VAX"),
            MachineVariant::Modified => f.write_str("modified VAX"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_extensions() {
        assert!(MachineVariant::Modified.has_vm_extensions());
        assert!(!MachineVariant::Standard.has_vm_extensions());
        assert_eq!(MachineVariant::default(), MachineVariant::Modified);
    }

    #[test]
    fn variant_display() {
        assert_eq!(MachineVariant::Standard.to_string(), "standard VAX");
        assert_eq!(MachineVariant::Modified.to_string(), "modified VAX");
    }
}
