//! VAX access modes (protection rings).
//!
//! The VAX defines four access modes; smaller numeric values are *more*
//! privileged. The paper's ring-compression technique (its Figure 3) maps
//! four *virtual* modes onto the three least-privileged *real* modes,
//! reserving real kernel mode for the VMM.

/// One of the four VAX access modes, ordered from most to least privileged.
///
/// The numeric encoding matches the VAX `PSL<CUR_MOD>` field: kernel = 0,
/// executive = 1, supervisor = 2, user = 3.
///
/// # Example
///
/// ```
/// use vax_arch::AccessMode;
///
/// assert!(AccessMode::Kernel.is_more_privileged_than(AccessMode::User));
/// assert_eq!(AccessMode::from_bits(2), AccessMode::Supervisor);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AccessMode {
    /// Most privileged mode; privileged instructions execute only here.
    Kernel = 0,
    /// Second most privileged mode (used by VMS for RMS and command interp).
    Executive = 1,
    /// Third mode (used by VMS for the command language interpreter).
    Supervisor = 2,
    /// Least privileged mode; ordinary application code.
    User = 3,
}

impl AccessMode {
    /// All four modes, most privileged first.
    pub const ALL: [AccessMode; 4] = [
        AccessMode::Kernel,
        AccessMode::Executive,
        AccessMode::Supervisor,
        AccessMode::User,
    ];

    /// Decodes a two-bit mode field. Only the low two bits are examined.
    pub fn from_bits(bits: u32) -> AccessMode {
        match bits & 3 {
            0 => AccessMode::Kernel,
            1 => AccessMode::Executive,
            2 => AccessMode::Supervisor,
            _ => AccessMode::User,
        }
    }

    /// The two-bit encoding of this mode as stored in the PSL.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// True if `self` is strictly more privileged than `other`.
    ///
    /// On the VAX, "more privileged" means a *smaller* mode number.
    pub fn is_more_privileged_than(self, other: AccessMode) -> bool {
        (self as u8) < (other as u8)
    }

    /// The less privileged (numerically larger) of two modes.
    ///
    /// `PROBE` uses this to combine its mode operand with `PSL<PRV_MOD>`:
    /// the check is performed for the *less* privileged of the two.
    pub fn least_privileged(self, other: AccessMode) -> AccessMode {
        if (self as u8) >= (other as u8) {
            self
        } else {
            other
        }
    }

    /// The more privileged (numerically smaller) of two modes.
    pub fn most_privileged(self, other: AccessMode) -> AccessMode {
        if (self as u8) <= (other as u8) {
            self
        } else {
            other
        }
    }

    /// Short lowercase name as used in VAX documentation.
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Kernel => "kernel",
            AccessMode::Executive => "executive",
            AccessMode::Supervisor => "supervisor",
            AccessMode::User => "user",
        }
    }
}

impl Default for AccessMode {
    /// The power-up mode of a VAX processor is kernel.
    fn default() -> Self {
        AccessMode::Kernel
    }
}

impl core::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trips() {
        for m in AccessMode::ALL {
            assert_eq!(AccessMode::from_bits(m.bits()), m);
        }
    }

    #[test]
    fn from_bits_masks_high_bits() {
        assert_eq!(AccessMode::from_bits(0b100), AccessMode::Kernel);
        assert_eq!(AccessMode::from_bits(0b111), AccessMode::User);
    }

    #[test]
    fn privilege_ordering() {
        assert!(AccessMode::Kernel.is_more_privileged_than(AccessMode::Executive));
        assert!(AccessMode::Executive.is_more_privileged_than(AccessMode::Supervisor));
        assert!(AccessMode::Supervisor.is_more_privileged_than(AccessMode::User));
        assert!(!AccessMode::User.is_more_privileged_than(AccessMode::User));
        assert!(!AccessMode::User.is_more_privileged_than(AccessMode::Kernel));
    }

    #[test]
    fn least_and_most_privileged() {
        use AccessMode::*;
        assert_eq!(Kernel.least_privileged(User), User);
        assert_eq!(User.least_privileged(Kernel), User);
        assert_eq!(Executive.least_privileged(Executive), Executive);
        assert_eq!(Kernel.most_privileged(User), Kernel);
        assert_eq!(Supervisor.most_privileged(Executive), Executive);
    }

    #[test]
    fn names() {
        assert_eq!(AccessMode::Kernel.to_string(), "kernel");
        assert_eq!(AccessMode::User.to_string(), "user");
    }
}
