//! Page-table entries and the four-bit VAX protection-code table.
//!
//! The fields the paper cares about are `PTE<V>` (valid), `PTE<PROT>`
//! (protection), `PTE<M>` (modified), and `PTE<PFN>` (page frame number).
//! The key architectural quirk (paper §3.2.1) is that *hardware checks the
//! protection code even when the valid bit is clear*, which is what makes
//! the VMM's "null PTE" trick work: a PTE that is invalid but permits
//! all access always passes the protection check and then faults
//! translation-not-valid, giving the VMM a clean fill point.

use crate::mode::AccessMode;

/// A VAX page-table-entry protection code.
///
/// Each code names the *least privileged* mode that may write and the least
/// privileged mode that may read; write access implies read access. The
/// numeric values are the real VAX encodings. Code `0b0001` is reserved on
/// the VAX and is decoded here as [`Protection::Na`].
///
/// # Example
///
/// ```
/// use vax_arch::{AccessMode, Protection};
///
/// // "Executive write, supervisor read" from the paper's example table.
/// let p = Protection::Srew;
/// assert!(!p.allows_read(AccessMode::User));
/// assert!(p.allows_read(AccessMode::Supervisor));
/// assert!(!p.allows_write(AccessMode::Supervisor));
/// assert!(p.allows_write(AccessMode::Executive));
/// assert!(p.allows_write(AccessMode::Kernel));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Protection {
    /// No access for any mode.
    Na = 0b0000,
    /// Kernel write (kernel read).
    Kw = 0b0010,
    /// Kernel read only.
    Kr = 0b0011,
    /// All modes read and write.
    Uw = 0b0100,
    /// Executive write (kernel/executive read-write).
    Ew = 0b0101,
    /// Executive read, kernel write.
    Erkw = 0b0110,
    /// Executive read (kernel/executive read).
    Er = 0b0111,
    /// Supervisor write.
    Sw = 0b1000,
    /// Supervisor read, executive write.
    Srew = 0b1001,
    /// Supervisor read, kernel write.
    Srkw = 0b1010,
    /// Supervisor read.
    Sr = 0b1011,
    /// User read, supervisor write.
    Ursw = 0b1100,
    /// User read, executive write.
    Urew = 0b1101,
    /// User read, kernel write.
    Urkw = 0b1110,
    /// All modes read, none write.
    Ur = 0b1111,
}

impl Protection {
    /// All fifteen valid protection codes.
    pub const ALL: [Protection; 15] = [
        Protection::Na,
        Protection::Kw,
        Protection::Kr,
        Protection::Uw,
        Protection::Ew,
        Protection::Erkw,
        Protection::Er,
        Protection::Sw,
        Protection::Srew,
        Protection::Srkw,
        Protection::Sr,
        Protection::Ursw,
        Protection::Urew,
        Protection::Urkw,
        Protection::Ur,
    ];

    /// Decodes a four-bit protection field. The reserved code `0b0001`
    /// decodes as [`Protection::Na`].
    pub fn from_bits(bits: u32) -> Protection {
        match bits & 0xf {
            0b0010 => Protection::Kw,
            0b0011 => Protection::Kr,
            0b0100 => Protection::Uw,
            0b0101 => Protection::Ew,
            0b0110 => Protection::Erkw,
            0b0111 => Protection::Er,
            0b1000 => Protection::Sw,
            0b1001 => Protection::Srew,
            0b1010 => Protection::Srkw,
            0b1011 => Protection::Sr,
            0b1100 => Protection::Ursw,
            0b1101 => Protection::Urew,
            0b1110 => Protection::Urkw,
            0b1111 => Protection::Ur,
            _ => Protection::Na,
        }
    }

    /// The four-bit encoding.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// The least privileged mode allowed to write, or `None` if no mode may.
    pub fn write_mode(self) -> Option<AccessMode> {
        use AccessMode::*;
        match self {
            Protection::Na | Protection::Kr | Protection::Er | Protection::Sr | Protection::Ur => {
                None
            }
            Protection::Kw | Protection::Erkw | Protection::Srkw | Protection::Urkw => Some(Kernel),
            Protection::Ew | Protection::Srew | Protection::Urew => Some(Executive),
            Protection::Sw | Protection::Ursw => Some(Supervisor),
            Protection::Uw => Some(User),
        }
    }

    /// The least privileged mode allowed to read, or `None` if no mode may.
    ///
    /// Write access implies read access, so this is at least as permissive
    /// as [`Protection::write_mode`].
    pub fn read_mode(self) -> Option<AccessMode> {
        use AccessMode::*;
        match self {
            Protection::Na => None,
            Protection::Kw | Protection::Kr => Some(Kernel),
            Protection::Ew | Protection::Erkw | Protection::Er => Some(Executive),
            Protection::Sw | Protection::Srew | Protection::Srkw | Protection::Sr => {
                Some(Supervisor)
            }
            Protection::Uw
            | Protection::Ursw
            | Protection::Urew
            | Protection::Urkw
            | Protection::Ur => Some(User),
        }
    }

    /// True if `mode` may write pages carrying this protection.
    pub fn allows_write(self, mode: AccessMode) -> bool {
        self.write_mode()
            .is_some_and(|least| mode == least || mode.is_more_privileged_than(least))
    }

    /// True if `mode` may read pages carrying this protection.
    pub fn allows_read(self, mode: AccessMode) -> bool {
        self.read_mode()
            .is_some_and(|least| mode == least || mode.is_more_privileged_than(least))
    }

    /// True if `mode` may perform the given access.
    pub fn allows(self, mode: AccessMode, write: bool) -> bool {
        if write {
            self.allows_write(mode)
        } else {
            self.allows_read(mode)
        }
    }

    /// The paper's memory ring-compression translation (§4.3.1): any code
    /// that limits read or write access to kernel mode is widened to extend
    /// that access to executive mode. All other codes are unchanged.
    ///
    /// This is the translation the VMM applies when copying a VM's PTE
    /// protection into a shadow PTE, and it is the source of the one
    /// acknowledged imperfection: VM-executive code can then touch
    /// VM-kernel-only pages (paper §5, §7.1).
    pub fn ring_compressed(self) -> Protection {
        match self {
            Protection::Kw => Protection::Ew,
            Protection::Kr => Protection::Er,
            Protection::Erkw => Protection::Ew,
            Protection::Srkw => Protection::Srew,
            Protection::Urkw => Protection::Urew,
            other => other,
        }
    }

    /// Mnemonic as used in VAX documentation.
    pub fn name(self) -> &'static str {
        match self {
            Protection::Na => "NA",
            Protection::Kw => "KW",
            Protection::Kr => "KR",
            Protection::Uw => "UW",
            Protection::Ew => "EW",
            Protection::Erkw => "ERKW",
            Protection::Er => "ER",
            Protection::Sw => "SW",
            Protection::Srew => "SREW",
            Protection::Srkw => "SRKW",
            Protection::Sr => "SR",
            Protection::Ursw => "URSW",
            Protection::Urew => "UREW",
            Protection::Urkw => "URKW",
            Protection::Ur => "UR",
        }
    }
}

impl core::fmt::Display for Protection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A VAX page-table entry.
///
/// Layout: bit 31 `V` (valid), bits 30:27 `PROT`, bit 26 `M` (modified),
/// bits 20:0 `PFN`. The remaining bits are software-available and preserved.
///
/// # Example
///
/// ```
/// use vax_arch::{Protection, Pte};
///
/// let pte = Pte::build(0x1234, Protection::Urkw, true, false);
/// assert_eq!(pte.pfn(), 0x1234);
/// assert!(pte.valid());
/// assert!(!pte.modified());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u32);

impl Pte {
    /// Valid bit.
    pub const V: u32 = 1 << 31;
    /// Modified bit.
    pub const M: u32 = 1 << 26;
    const PROT_SHIFT: u32 = 27;
    const PROT_MASK: u32 = 0xf << Self::PROT_SHIFT;
    const PFN_MASK: u32 = 0x001f_ffff;

    /// The VMM's *null PTE* (paper §4.3.1): invalid, but permitting read
    /// and write access to all modes, so that the hardware protection
    /// check always succeeds and the reference faults translation-not-valid
    /// into the VMM for on-demand shadow fill.
    pub const NULL: Pte = Pte((Protection::Uw as u32) << Self::PROT_SHIFT);

    /// Constructs a PTE from a raw longword.
    pub fn from_raw(raw: u32) -> Pte {
        Pte(raw)
    }

    /// Builds a PTE from its fields.
    pub fn build(pfn: u32, prot: Protection, valid: bool, modified: bool) -> Pte {
        let mut raw = (pfn & Self::PFN_MASK) | (prot.bits() << Self::PROT_SHIFT);
        if valid {
            raw |= Self::V;
        }
        if modified {
            raw |= Self::M;
        }
        Pte(raw)
    }

    /// The raw longword.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// `PTE<V>`: true if the translation fields are valid.
    pub fn valid(self) -> bool {
        self.0 & Self::V != 0
    }

    /// Returns a copy with `PTE<V>` set or cleared.
    pub fn with_valid(self, valid: bool) -> Pte {
        if valid {
            Pte(self.0 | Self::V)
        } else {
            Pte(self.0 & !Self::V)
        }
    }

    /// `PTE<M>`: true if the page has been modified.
    pub fn modified(self) -> bool {
        self.0 & Self::M != 0
    }

    /// Returns a copy with `PTE<M>` set or cleared.
    pub fn with_modified(self, modified: bool) -> Pte {
        if modified {
            Pte(self.0 | Self::M)
        } else {
            Pte(self.0 & !Self::M)
        }
    }

    /// `PTE<PROT>`: the protection code.
    pub fn protection(self) -> Protection {
        Protection::from_bits(self.0 >> Self::PROT_SHIFT)
    }

    /// Returns a copy with the protection code replaced.
    pub fn with_protection(self, prot: Protection) -> Pte {
        Pte((self.0 & !Self::PROT_MASK) | (prot.bits() << Self::PROT_SHIFT))
    }

    /// `PTE<PFN>`: the page frame number.
    pub fn pfn(self) -> u32 {
        self.0 & Self::PFN_MASK
    }

    /// Returns a copy with the page frame number replaced.
    pub fn with_pfn(self, pfn: u32) -> Pte {
        Pte((self.0 & !Self::PFN_MASK) | (pfn & Self::PFN_MASK))
    }
}

impl core::fmt::Display for Pte {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PTE[pfn={:#x} prot={}{}{}]",
            self.pfn(),
            self.protection(),
            if self.valid() { " V" } else { "" },
            if self.modified() { " M" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessMode::*;

    #[test]
    fn protection_round_trips() {
        for p in Protection::ALL {
            assert_eq!(Protection::from_bits(p.bits()), p);
        }
    }

    #[test]
    fn reserved_code_decodes_as_na() {
        assert_eq!(Protection::from_bits(0b0001), Protection::Na);
    }

    #[test]
    fn write_implies_read_for_every_code_and_mode() {
        for p in Protection::ALL {
            for m in AccessMode::ALL {
                if p.allows_write(m) {
                    assert!(p.allows_read(m), "{p}: write without read for {m}");
                }
            }
        }
    }

    #[test]
    fn more_privileged_modes_never_lose_access() {
        for p in Protection::ALL {
            for w in [false, true] {
                // Walking from user up to kernel, access must be monotone.
                let mut prev = p.allows(User, w);
                for m in [Supervisor, Executive, Kernel] {
                    let cur = p.allows(m, w);
                    assert!(cur || !prev, "{p}: {m} lost access present below");
                    prev = cur;
                }
            }
        }
    }

    #[test]
    fn paper_example_table() {
        // Paper §3.2.1: "Executive Mode Write, Supervisor Mode Read"
        let p = Protection::Srew;
        assert!(!p.allows_read(User) && !p.allows_write(User));
        assert!(p.allows_read(Supervisor) && !p.allows_write(Supervisor));
        assert!(p.allows_read(Executive) && p.allows_write(Executive));
        assert!(p.allows_read(Kernel) && p.allows_write(Kernel));
    }

    #[test]
    fn specific_codes() {
        assert!(Protection::Kw.allows_write(Kernel));
        assert!(!Protection::Kw.allows_read(Executive));
        assert!(Protection::Uw.allows_write(User));
        assert!(Protection::Ur.allows_read(User));
        assert!(!Protection::Ur.allows_write(Kernel), "UR: no mode writes");
        assert!(!Protection::Na.allows_read(Kernel));
        assert!(Protection::Urkw.allows_read(User));
        assert!(!Protection::Urkw.allows_write(User));
        assert!(Protection::Urkw.allows_write(Kernel));
    }

    #[test]
    fn ring_compression_extends_kernel_access_to_executive() {
        for p in Protection::ALL {
            let c = p.ring_compressed();
            // Rule: compressed access for executive = union of the original
            // kernel and executive access; all other modes unchanged.
            for w in [false, true] {
                assert_eq!(
                    c.allows(Executive, w),
                    p.allows(Kernel, w) || p.allows(Executive, w),
                    "{p} -> {c} executive w={w}"
                );
                assert_eq!(c.allows(Kernel, w), p.allows(Kernel, w), "{p} kernel");
                for m in [Supervisor, User] {
                    assert_eq!(c.allows(m, w), p.allows(m, w), "{p} {m}");
                }
            }
        }
    }

    #[test]
    fn ring_compression_is_idempotent() {
        for p in Protection::ALL {
            assert_eq!(p.ring_compressed().ring_compressed(), p.ring_compressed());
        }
    }

    #[test]
    fn pte_fields_round_trip() {
        let pte = Pte::build(0x1f_ffff, Protection::Erkw, true, true);
        assert_eq!(pte.pfn(), 0x1f_ffff);
        assert_eq!(pte.protection(), Protection::Erkw);
        assert!(pte.valid());
        assert!(pte.modified());

        let pte2 = pte
            .with_pfn(0x42)
            .with_protection(Protection::Ur)
            .with_valid(false)
            .with_modified(false);
        assert_eq!(pte2.pfn(), 0x42);
        assert_eq!(pte2.protection(), Protection::Ur);
        assert!(!pte2.valid());
        assert!(!pte2.modified());
    }

    #[test]
    fn null_pte_is_invalid_but_fully_accessible() {
        let null = Pte::NULL;
        assert!(!null.valid());
        for m in AccessMode::ALL {
            assert!(null.protection().allows_read(m));
            assert!(null.protection().allows_write(m));
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Pte::NULL.to_string().is_empty());
        assert!(!Protection::Urkw.to_string().is_empty());
    }
}
