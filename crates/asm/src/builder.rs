//! The programmatic assembler: two-pass, label-based.

use crate::operand::Operand;
use vax_arch::{AccessType, Ipr, Opcode};

/// An opaque label handle created by [`Asm::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(usize);

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(LabelId),
    /// A label was bound twice.
    DuplicateBind(LabelId),
    /// Wrong number of operands for an opcode.
    OperandCount {
        /// The instruction.
        op: Opcode,
        /// Operands the opcode requires.
        expected: usize,
        /// Operands supplied.
        got: usize,
    },
    /// A branch displacement did not fit its encoding.
    BranchOutOfRange {
        /// The instruction.
        op: Opcode,
        /// The displacement that did not fit.
        displacement: i64,
    },
    /// `Operand::Branch` used for a general operand, or a general operand
    /// used where the spec requires a branch displacement.
    BranchOperandMisuse(Opcode),
    /// Unknown mnemonic, bad operand syntax, etc. in the text front-end.
    Parse(String),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label {l:?} was never bound"),
            AsmError::DuplicateBind(l) => write!(f, "label {l:?} bound twice"),
            AsmError::OperandCount { op, expected, got } => {
                write!(f, "{op} takes {expected} operands, got {got}")
            }
            AsmError::BranchOutOfRange { op, displacement } => {
                write!(f, "{op} branch displacement {displacement} out of range")
            }
            AsmError::BranchOperandMisuse(op) => {
                write!(f, "{op}: branch/general operand mismatch")
            }
            AsmError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Inst { op: Opcode, operands: Vec<Operand> },
    Bind(LabelId),
    Bytes(Vec<u8>),
    LongLabel(LabelId),
    Align(u32),
    Space(u32),
}

/// An assembled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Load (base) address the code was assembled for.
    pub base: u32,
    /// The machine code.
    pub bytes: Vec<u8>,
    labels: Vec<Option<u32>>,
}

impl Program {
    /// The absolute address a label was bound to.
    ///
    /// # Panics
    ///
    /// Panics if the label was created by a different [`Asm`] instance.
    pub fn addr(&self, label: LabelId) -> u32 {
        self.labels[label.0].expect("label bound (checked during assembly)")
    }

    /// End address (base + length).
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// The two-pass builder assembler. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    label_count: usize,
}

impl Asm {
    /// Creates an assembler targeting load address `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            items: Vec::new(),
            label_count: 0,
        }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> LabelId {
        let id = LabelId(self.label_count);
        self.label_count += 1;
        id
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// [`AsmError::DuplicateBind`] if already bound (detected at
    /// [`Asm::assemble`] time for simplicity of the single-pass API).
    pub fn bind(&mut self, label: LabelId) -> Result<(), AsmError> {
        self.items.push(Item::Bind(label));
        Ok(())
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> LabelId {
        let l = self.label();
        self.items.push(Item::Bind(l));
        l
    }

    /// Emits an instruction.
    ///
    /// # Errors
    ///
    /// [`AsmError::OperandCount`] or [`AsmError::BranchOperandMisuse`] on
    /// malformed use.
    pub fn inst(&mut self, op: Opcode, operands: &[Operand]) -> Result<&mut Asm, AsmError> {
        let specs = op.operands();
        if specs.len() != operands.len() {
            return Err(AsmError::OperandCount {
                op,
                expected: specs.len(),
                got: operands.len(),
            });
        }
        for (o, s) in operands.iter().zip(specs) {
            let is_branch_operand = matches!(o, Operand::Branch(_));
            let wants_branch = s.access == AccessType::Branch;
            if is_branch_operand != wants_branch {
                return Err(AsmError::BranchOperandMisuse(op));
            }
        }
        self.items.push(Item::Inst {
            op,
            operands: operands.to_vec(),
        });
        Ok(self)
    }

    /// Emits raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Asm {
        self.items.push(Item::Bytes(data.to_vec()));
        self
    }

    /// Emits a little-endian longword constant.
    pub fn long(&mut self, v: u32) -> &mut Asm {
        self.items.push(Item::Bytes(v.to_le_bytes().to_vec()));
        self
    }

    /// Emits the absolute address of `label` as a longword (for vector
    /// tables such as the SCB).
    pub fn long_label(&mut self, label: LabelId) -> &mut Asm {
        self.items.push(Item::LongLabel(label));
        self
    }

    /// Pads with zero bytes to the next multiple of `alignment`.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    pub fn align(&mut self, alignment: u32) -> &mut Asm {
        assert!(alignment.is_power_of_two());
        self.items.push(Item::Align(alignment));
        self
    }

    /// Reserves `n` zeroed bytes.
    pub fn space(&mut self, n: u32) -> &mut Asm {
        self.items.push(Item::Space(n));
        self
    }

    fn item_len(&self, item: &Item, offset: u32) -> u32 {
        match item {
            Item::Inst { op, operands } => {
                let mut len = op.encoded_len();
                for (o, s) in operands.iter().zip(op.operands()) {
                    len += o.encoded_len(*s);
                }
                len
            }
            Item::Bind(_) => 0,
            Item::Bytes(b) => b.len() as u32,
            Item::LongLabel(_) => 4,
            Item::Align(a) => (a - (self.base + offset) % a) % a,
            Item::Space(n) => *n,
        }
    }

    /// Runs both passes and produces the program image.
    ///
    /// # Errors
    ///
    /// Any [`AsmError`]; notably unbound labels and out-of-range branches.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        // Pass 1: bind labels.
        let mut labels: Vec<Option<u32>> = vec![None; self.label_count];
        let mut offset = 0u32;
        for item in &self.items {
            if let Item::Bind(l) = item {
                if labels[l.0].is_some() {
                    return Err(AsmError::DuplicateBind(*l));
                }
                labels[l.0] = Some(self.base + offset);
            }
            offset += self.item_len(item, offset);
        }

        let resolve = |l: LabelId| labels[l.0].ok_or(AsmError::UnboundLabel(l));

        // Pass 2: emit.
        let mut out: Vec<u8> = Vec::with_capacity(offset as usize);
        for item in &self.items {
            let offset = out.len() as u32;
            match item {
                Item::Bind(_) => {}
                Item::Bytes(b) => out.extend_from_slice(b),
                Item::LongLabel(l) => out.extend_from_slice(&resolve(*l)?.to_le_bytes()),
                Item::Align(_) | Item::Space(_) => {
                    let n = self.item_len(item, offset);
                    out.extend(std::iter::repeat_n(0, n as usize));
                }
                Item::Inst { op, operands } => {
                    let (enc, n) = op.encoding();
                    out.extend_from_slice(&enc[..n]);
                    for (o, s) in operands.iter().zip(op.operands()) {
                        let e = o.encode(*s);
                        let field_base = out.len();
                        out.extend_from_slice(&e.bytes);
                        if let Some((idx, width, l, kind)) = e.fixup {
                            let target = resolve(l)? as i64;
                            let field_pos = field_base + idx;
                            // Displacement is relative to the PC *after*
                            // the displacement field; absolute fixups take
                            // the label address itself.
                            let pc_after = self.base as i64 + field_pos as i64 + width as i64;
                            let disp = match kind {
                                crate::operand::FixupKind::Relative => target - pc_after,
                                crate::operand::FixupKind::Absolute => target,
                            };
                            let ok = match width {
                                1 => i8::try_from(disp).map(|d| out[field_pos] = d as u8).is_ok(),
                                2 => i16::try_from(disp)
                                    .map(|d| {
                                        out[field_pos..field_pos + 2]
                                            .copy_from_slice(&d.to_le_bytes())
                                    })
                                    .is_ok(),
                                _ => u32::try_from(disp as u64 & 0xffff_ffff)
                                    .map(|d| {
                                        out[field_pos..field_pos + 4]
                                            .copy_from_slice(&d.to_le_bytes())
                                    })
                                    .is_ok(),
                            };
                            if !ok {
                                return Err(AsmError::BranchOutOfRange {
                                    op: *op,
                                    displacement: disp,
                                });
                            }
                        }
                    }
                }
            }
        }

        Ok(Program {
            base: self.base,
            bytes: out,
            labels,
        })
    }

    // ---- Sugar for common instructions (keeps vax-os readable) ----

    /// `MOVL src, dst`
    pub fn movl(&mut self, src: Operand, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Movl, &[src, dst])
    }

    /// `PUSHL src`
    pub fn pushl(&mut self, src: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Pushl, &[src])
    }

    /// `CLRL dst`
    pub fn clrl(&mut self, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Clrl, &[dst])
    }

    /// `CMPL a, b`
    pub fn cmpl(&mut self, a: Operand, b: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Cmpl, &[a, b])
    }

    /// `ADDL2 add, sum`
    pub fn addl2(&mut self, add: Operand, sum: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Addl2, &[add, sum])
    }

    /// `SUBL2 sub, dif`
    pub fn subl2(&mut self, sub: Operand, dif: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Subl2, &[sub, dif])
    }

    /// `INCL dst`
    pub fn incl(&mut self, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Incl, &[dst])
    }

    /// `DECL dst`
    pub fn decl(&mut self, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Decl, &[dst])
    }

    /// `BRB label`
    pub fn brb(&mut self, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Brb, &[Operand::Branch(l)])
    }

    /// `BRW label`
    pub fn brw(&mut self, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Brw, &[Operand::Branch(l)])
    }

    /// `BEQL label`
    pub fn beql(&mut self, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Beql, &[Operand::Branch(l)])
    }

    /// `BNEQ label`
    pub fn bneq(&mut self, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Bneq, &[Operand::Branch(l)])
    }

    /// `JSB label` (PC-relative)
    pub fn jsb(&mut self, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Jsb, &[Operand::Label(l)])
    }

    /// `RSB`
    pub fn rsb(&mut self) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Rsb, &[])
    }

    /// `CHMK #code`
    pub fn chmk(&mut self, code: u32) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Chmk, &[Operand::Imm(code)])
    }

    /// `CHME #code`
    pub fn chme(&mut self, code: u32) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Chme, &[Operand::Imm(code)])
    }

    /// `CHMS #code`
    pub fn chms(&mut self, code: u32) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Chms, &[Operand::Imm(code)])
    }

    /// `REI`
    pub fn rei(&mut self) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Rei, &[])
    }

    /// `HALT`
    pub fn halt(&mut self) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Halt, &[])
    }

    /// `MTPR src, #reg`
    pub fn mtpr(&mut self, src: Operand, reg: Ipr) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Mtpr, &[src, Operand::Imm(reg.number())])
    }

    /// `MFPR #reg, dst`
    pub fn mfpr(&mut self, reg: Ipr, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Mfpr, &[Operand::Imm(reg.number()), dst])
    }

    /// `MOVPSL dst`
    pub fn movpsl(&mut self, dst: Operand) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Movpsl, &[dst])
    }

    /// `SOBGTR index, label`
    pub fn sobgtr(&mut self, index: Operand, l: LabelId) -> Result<&mut Asm, AsmError> {
        self.inst(Opcode::Sobgtr, &[index, Operand::Branch(l)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Reg;
    use vax_arch::Opcode;

    #[test]
    fn simple_loop_assembles() {
        let mut a = Asm::new(0x2000);
        let top = a.here();
        a.inst(Opcode::Movl, &[Operand::Imm(3), Operand::Reg(Reg::R0)])
            .unwrap();
        a.sobgtr(Operand::Reg(Reg::R0), top).unwrap();
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        assert_eq!(p.base, 0x2000);
        assert_eq!(p.addr(top), 0x2000);
        // MOVL #3, R0 = D0 03 50; SOBGTR R0, top = F5 50 disp; HALT = 00
        assert_eq!(p.bytes[0], 0xD0);
        assert_eq!(p.bytes[3], 0xF5);
        // disp target 0x2000, pc after disp = 0x2000+6 -> -6
        assert_eq!(p.bytes[5] as i8, -6);
        assert_eq!(*p.bytes.last().unwrap(), 0x00);
    }

    #[test]
    fn forward_branch_resolves() {
        let mut a = Asm::new(0);
        let end = a.label();
        a.brb(end).unwrap();
        a.inst(Opcode::Nop, &[]).unwrap();
        a.bind(end).unwrap();
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        // BRB disp: target 3, pc after = 2 -> +1
        assert_eq!(p.bytes, vec![0x11, 0x01, 0x01, 0x00]);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.brb(l).unwrap();
        assert!(matches!(a.assemble(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn duplicate_bind_is_an_error() {
        let mut a = Asm::new(0);
        let l = a.here();
        a.bind(l).unwrap();
        assert!(matches!(a.assemble(), Err(AsmError::DuplicateBind(_))));
    }

    #[test]
    fn operand_count_checked() {
        let mut a = Asm::new(0);
        assert!(matches!(
            a.inst(Opcode::Movl, &[Operand::Imm(1)]),
            Err(AsmError::OperandCount { .. })
        ));
    }

    #[test]
    fn branch_operand_misuse_checked() {
        let mut a = Asm::new(0);
        let l = a.here();
        assert!(matches!(
            a.inst(Opcode::Movl, &[Operand::Branch(l), Operand::Reg(Reg::R0)]),
            Err(AsmError::BranchOperandMisuse(_))
        ));
        assert!(matches!(
            a.inst(Opcode::Brb, &[Operand::Imm(0)]),
            Err(AsmError::BranchOperandMisuse(_))
        ));
    }

    #[test]
    fn byte_branch_out_of_range_detected() {
        let mut a = Asm::new(0);
        let far = a.label();
        a.brb(far).unwrap();
        a.space(300);
        a.bind(far).unwrap();
        a.halt().unwrap();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn word_branch_reaches_farther() {
        let mut a = Asm::new(0);
        let far = a.label();
        a.brw(far).unwrap();
        a.space(300);
        a.bind(far).unwrap();
        a.halt().unwrap();
        assert!(a.assemble().is_ok());
    }

    #[test]
    fn align_and_space_and_data() {
        let mut a = Asm::new(0x100);
        a.bytes(&[1, 2, 3]);
        a.align(4);
        let l = a.here();
        a.long(0xAABBCCDD);
        a.long_label(l);
        let p = a.assemble().unwrap();
        assert_eq!(p.addr(l), 0x104);
        assert_eq!(&p.bytes[4..8], &[0xDD, 0xCC, 0xBB, 0xAA]);
        assert_eq!(&p.bytes[8..12], &[0x04, 0x01, 0, 0]);
    }

    #[test]
    fn pc_relative_label_operand() {
        let mut a = Asm::new(0x1000);
        let data = a.label();
        a.inst(Opcode::Movl, &[Operand::Label(data), Operand::Reg(Reg::R0)])
            .unwrap();
        a.halt().unwrap();
        a.bind(data).unwrap();
        a.long(42);
        let p = a.assemble().unwrap();
        // MOVL len: 1 + 5 (EF + disp32) + 1 (R0) = 7; HALT at 0x1007;
        // data at 0x1008. disp = 0x1008 - (0x1000+1+1+4) = 2.
        assert_eq!(p.addr(data), 0x1008);
        assert_eq!(p.bytes[1], 0xEF);
        assert_eq!(i32::from_le_bytes(p.bytes[2..6].try_into().unwrap()), 2);
    }

    #[test]
    fn extended_opcode_emitted_with_prefix() {
        let mut a = Asm::new(0);
        a.inst(Opcode::Wait, &[]).unwrap();
        let p = a.assemble().unwrap();
        assert_eq!(p.bytes, vec![0xFD, 0x01]);
    }

    #[test]
    fn mtpr_sugar() {
        let mut a = Asm::new(0);
        a.mtpr(Operand::Imm(0), Ipr::Ipl).unwrap();
        let p = a.assemble().unwrap();
        // MTPR #0, #18 -> DA 00 12
        assert_eq!(p.bytes, vec![0xDA, 0x00, 0x12]);
    }
}
