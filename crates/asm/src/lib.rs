#![warn(missing_docs)]

//! A VAX-subset assembler and disassembler.
//!
//! The guest operating systems in this workspace (`vax-os`) are real VAX
//! machine code produced by this assembler — that is what lets the same
//! kernel image boot on the bare simulated machine and inside a virtual
//! machine, reproducing the paper's equivalence property.
//!
//! Two front-ends are provided:
//!
//! * a programmatic **builder** ([`Asm`]) with labels, used by `vax-os`;
//! * a **text** assembler ([`assemble_text`]) with conventional syntax,
//!   used in examples and tests.
//!
//! A [`disassemble`] helper renders machine code back
//! to mnemonics for debugging.
//!
//! # Example
//!
//! ```
//! use vax_asm::{Asm, Operand, Reg};
//! use vax_arch::Opcode;
//!
//! let mut a = Asm::new(0x1000);
//! let top = a.label();
//! a.bind(top)?;
//! a.inst(Opcode::Movl, &[Operand::Imm(5), Operand::Reg(Reg::R0)])?;
//! a.inst(Opcode::Sobgtr, &[Operand::Reg(Reg::R0), Operand::Branch(top)])?;
//! a.inst(Opcode::Halt, &[])?;
//! let image = a.assemble()?;
//! assert_eq!(image.bytes[0], 0xD0); // MOVL
//! # Ok::<(), vax_asm::AsmError>(())
//! ```

pub mod builder;
pub mod disasm;
pub mod operand;
pub mod text;

pub use builder::{Asm, AsmError, LabelId, Program};
pub use disasm::{disassemble, listing};
pub use operand::{IndexBase, Operand, Reg};
pub use text::{assemble_text, assemble_text_with_symbols};
