//! Operand forms and their VAX specifier encodings.

use crate::builder::LabelId;
use vax_arch::{AccessType, DataType, OperandSpec};

/// A VAX general register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    /// Argument pointer (R12).
    Ap = 12,
    /// Frame pointer (R13).
    Fp = 13,
    /// Stack pointer (R14).
    Sp = 14,
    /// Program counter (R15).
    Pc = 15,
}

impl Reg {
    /// Register number 0–15.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Decodes a register number (low four bits).
    pub fn from_number(n: u8) -> Reg {
        match n & 0xf {
            0 => Reg::R0,
            1 => Reg::R1,
            2 => Reg::R2,
            3 => Reg::R3,
            4 => Reg::R4,
            5 => Reg::R5,
            6 => Reg::R6,
            7 => Reg::R7,
            8 => Reg::R8,
            9 => Reg::R9,
            10 => Reg::R10,
            11 => Reg::R11,
            12 => Reg::Ap,
            13 => Reg::Fp,
            14 => Reg::Sp,
            _ => Reg::Pc,
        }
    }

    /// Conventional name (`r0`…`r11`, `ap`, `fp`, `sp`, `pc`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "ap", "fp",
            "sp", "pc",
        ];
        NAMES[self.number() as usize]
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The base of an indexed operand (`base[Rx]`): any addressable mode
/// except literal, register, immediate, or another index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexBase {
    /// `(Rn)[Rx]`
    Deferred(Reg),
    /// `(Rn)+[Rx]`
    AutoInc(Reg),
    /// `-(Rn)[Rx]`
    AutoDec(Reg),
    /// `@#addr[Rx]`
    Abs(u32),
    /// `disp(Rn)[Rx]`
    Disp(i32, Reg),
}

/// An assembler-level operand.
///
/// [`Operand::Imm`] automatically selects the six-bit short-literal form
/// when the value fits and the operand is a read; otherwise it emits the
/// full immediate. [`Operand::Disp`] selects the shortest displacement
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate constant (short literal or `I^#` immediate).
    Imm(u32),
    /// Register direct: `Rn`.
    Reg(Reg),
    /// Register deferred: `(Rn)`.
    Deferred(Reg),
    /// Autoincrement: `(Rn)+`.
    AutoInc(Reg),
    /// Autodecrement: `-(Rn)`.
    AutoDec(Reg),
    /// Absolute address: `@#addr`.
    Abs(u32),
    /// Displacement off a register: `disp(Rn)`.
    Disp(i32, Reg),
    /// Displacement deferred: `@disp(Rn)`.
    DispDeferred(i32, Reg),
    /// PC-relative reference to a label (longword displacement form).
    Label(LabelId),
    /// Immediate whose value is a label's absolute address: `#label`.
    ImmLabel(LabelId),
    /// Absolute reference to a label: `@#label`.
    AbsLabel(LabelId),
    /// Indexed: `base[Rx]` — effective address is the base address plus
    /// `Rx` scaled by the operand width.
    Indexed(IndexBase, Reg),
    /// Branch-displacement reference to a label (only for branch operands).
    Branch(LabelId),
}

/// How a label fixup field is to be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FixupKind {
    /// Displacement relative to the PC after the field.
    Relative,
    /// The label's absolute address.
    Absolute,
}

/// Encoding of one operand: the bytes emitted after the opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EncodedOperand {
    pub bytes: Vec<u8>,
    /// For label operands: (byte index of the field within `bytes`,
    /// field width, label, resolution kind).
    pub fixup: Option<(usize, u8, LabelId, FixupKind)>,
}

impl Operand {
    /// The encoded size in bytes, given the operand's spec.
    pub(crate) fn encoded_len(&self, spec: OperandSpec) -> u32 {
        match self {
            Operand::Imm(v) => {
                if spec.access == AccessType::Read && *v < 64 {
                    1
                } else {
                    1 + spec.dtype.bytes()
                }
            }
            Operand::Reg(_) | Operand::Deferred(_) | Operand::AutoInc(_) | Operand::AutoDec(_) => 1,
            Operand::Abs(_) => 5,
            Operand::Disp(d, _) | Operand::DispDeferred(d, _) => {
                if i8::try_from(*d).is_ok() {
                    2
                } else if i16::try_from(*d).is_ok() {
                    3
                } else {
                    5
                }
            }
            Operand::Label(_) => 5,
            Operand::ImmLabel(_) => 1 + spec.dtype.bytes(),
            Operand::AbsLabel(_) => 5,
            Operand::Indexed(base, _) => {
                1 + match base {
                    IndexBase::Deferred(_) | IndexBase::AutoInc(_) | IndexBase::AutoDec(_) => 1,
                    IndexBase::Abs(_) => 5,
                    IndexBase::Disp(d, _) => {
                        if i8::try_from(*d).is_ok() {
                            2
                        } else if i16::try_from(*d).is_ok() {
                            3
                        } else {
                            5
                        }
                    }
                }
            }
            Operand::Branch(_) => {
                if spec.dtype == DataType::Byte {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// Encodes the operand. Label displacements are zero-filled and
    /// reported via `fixup` for the second pass.
    pub(crate) fn encode(&self, spec: OperandSpec) -> EncodedOperand {
        let mut bytes = Vec::new();
        let mut fixup = None;
        match self {
            Operand::Imm(v) => {
                if spec.access == AccessType::Read && *v < 64 {
                    bytes.push(*v as u8); // short literal, mode 0-3
                } else {
                    bytes.push(0x8F); // (PC)+ = immediate
                    let w = spec.dtype.bytes();
                    bytes.extend_from_slice(&v.to_le_bytes()[..w as usize]);
                }
            }
            Operand::Reg(r) => bytes.push(0x50 | r.number()),
            Operand::Deferred(r) => bytes.push(0x60 | r.number()),
            Operand::AutoDec(r) => bytes.push(0x70 | r.number()),
            Operand::AutoInc(r) => bytes.push(0x80 | r.number()),
            Operand::Abs(addr) => {
                bytes.push(0x9F); // @(PC)+ = absolute
                bytes.extend_from_slice(&addr.to_le_bytes());
            }
            Operand::Disp(d, r) | Operand::DispDeferred(d, r) => {
                let deferred = matches!(self, Operand::DispDeferred(..));
                if let Ok(b) = i8::try_from(*d) {
                    bytes.push(if deferred { 0xB0 } else { 0xA0 } | r.number());
                    bytes.push(b as u8);
                } else if let Ok(w) = i16::try_from(*d) {
                    bytes.push(if deferred { 0xD0 } else { 0xC0 } | r.number());
                    bytes.extend_from_slice(&w.to_le_bytes());
                } else {
                    bytes.push(if deferred { 0xF0 } else { 0xE0 } | r.number());
                    bytes.extend_from_slice(&d.to_le_bytes());
                }
            }
            Operand::Label(l) => {
                bytes.push(0xEF); // long displacement off PC
                bytes.extend_from_slice(&[0; 4]);
                fixup = Some((1, 4, *l, FixupKind::Relative));
            }
            Operand::ImmLabel(l) => {
                bytes.push(0x8F); // (PC)+ = immediate
                let w = spec.dtype.bytes() as usize;
                bytes.extend(std::iter::repeat_n(0, w));
                fixup = Some((1, w as u8, *l, FixupKind::Absolute));
            }
            Operand::AbsLabel(l) => {
                bytes.push(0x9F); // @(PC)+ = absolute
                bytes.extend_from_slice(&[0; 4]);
                fixup = Some((1, 4, *l, FixupKind::Absolute));
            }
            Operand::Indexed(base, rx) => {
                bytes.push(0x40 | rx.number());
                match base {
                    IndexBase::Deferred(r) => bytes.push(0x60 | r.number()),
                    IndexBase::AutoDec(r) => bytes.push(0x70 | r.number()),
                    IndexBase::AutoInc(r) => bytes.push(0x80 | r.number()),
                    IndexBase::Abs(addr) => {
                        bytes.push(0x9F);
                        bytes.extend_from_slice(&addr.to_le_bytes());
                    }
                    IndexBase::Disp(d, r) => {
                        if let Ok(b) = i8::try_from(*d) {
                            bytes.push(0xA0 | r.number());
                            bytes.push(b as u8);
                        } else if let Ok(w) = i16::try_from(*d) {
                            bytes.push(0xC0 | r.number());
                            bytes.extend_from_slice(&w.to_le_bytes());
                        } else {
                            bytes.push(0xE0 | r.number());
                            bytes.extend_from_slice(&d.to_le_bytes());
                        }
                    }
                }
            }
            Operand::Branch(l) => {
                let w = if spec.dtype == DataType::Byte { 1 } else { 2 };
                bytes.extend(std::iter::repeat_n(0, w as usize));
                fixup = Some((0, w, *l, FixupKind::Relative));
            }
        }
        EncodedOperand { bytes, fixup }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::AccessType;

    fn spec(access: AccessType, dtype: DataType) -> OperandSpec {
        OperandSpec::new(access, dtype)
    }

    #[test]
    fn short_literal_for_small_read_immediates() {
        let e = Operand::Imm(5).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes, vec![0x05]);
    }

    #[test]
    fn full_immediate_for_large_values() {
        let e = Operand::Imm(0x1234).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes, vec![0x8F, 0x34, 0x12, 0, 0]);
        // Width follows the operand data type.
        let e = Operand::Imm(0x64).encode(spec(AccessType::Read, DataType::Byte));
        assert_eq!(e.bytes, vec![0x8F, 0x64]);
    }

    #[test]
    fn register_modes() {
        assert_eq!(
            Operand::Reg(Reg::R3)
                .encode(spec(AccessType::Write, DataType::Long))
                .bytes,
            vec![0x53]
        );
        assert_eq!(
            Operand::Deferred(Reg::Sp)
                .encode(spec(AccessType::Read, DataType::Long))
                .bytes,
            vec![0x6E]
        );
        assert_eq!(
            Operand::AutoInc(Reg::R1)
                .encode(spec(AccessType::Read, DataType::Long))
                .bytes,
            vec![0x81]
        );
        assert_eq!(
            Operand::AutoDec(Reg::Sp)
                .encode(spec(AccessType::Write, DataType::Long))
                .bytes,
            vec![0x7E]
        );
    }

    #[test]
    fn displacement_chooses_smallest_width() {
        let e = Operand::Disp(4, Reg::R2).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes, vec![0xA2, 4]);
        let e = Operand::Disp(-300, Reg::R2).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes[0], 0xC2);
        assert_eq!(e.bytes.len(), 3);
        let e = Operand::Disp(0x12345, Reg::R2).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes[0], 0xE2);
        assert_eq!(e.bytes.len(), 5);
    }

    #[test]
    fn absolute_mode() {
        let e = Operand::Abs(0x8000_0040).encode(spec(AccessType::Read, DataType::Long));
        assert_eq!(e.bytes, vec![0x9F, 0x40, 0x00, 0x00, 0x80]);
    }

    #[test]
    fn encoded_len_matches_encode() {
        let cases = [
            Operand::Imm(3),
            Operand::Imm(0x7777),
            Operand::Reg(Reg::R9),
            Operand::Deferred(Reg::R0),
            Operand::AutoInc(Reg::R4),
            Operand::AutoDec(Reg::Sp),
            Operand::Abs(0x1234),
            Operand::Disp(7, Reg::R1),
            Operand::Disp(5000, Reg::R1),
            Operand::DispDeferred(-9, Reg::Fp),
        ];
        for op in cases {
            for access in [AccessType::Read, AccessType::Write, AccessType::Address] {
                for dt in [DataType::Byte, DataType::Word, DataType::Long] {
                    let s = spec(access, dt);
                    assert_eq!(
                        op.encoded_len(s) as usize,
                        op.encode(s).bytes.len(),
                        "{op:?} {access:?} {dt:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn reg_names_round_trip() {
        for n in 0..16u8 {
            let r = Reg::from_number(n);
            assert_eq!(r.number(), n);
            assert!(!r.name().is_empty());
        }
        assert_eq!(Reg::Sp.name(), "sp");
    }
}
