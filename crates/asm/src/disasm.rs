//! A disassembler for debugging machine-code images.

use vax_arch::{AccessType, DataType, Opcode};

/// One disassembled instruction (or data byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Address of the first byte.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
    /// Rendered text, e.g. `movl #5, r0`.
    pub text: String,
}

fn reg_name(n: u8) -> &'static str {
    const NAMES: [&str; 16] = [
        "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "ap", "fp", "sp",
        "pc",
    ];
    NAMES[(n & 0xf) as usize]
}

fn take(bytes: &[u8], pos: &mut usize, n: usize) -> Option<u64> {
    if *pos + n > bytes.len() {
        return None;
    }
    let mut v = 0u64;
    for i in 0..n {
        v |= (bytes[*pos + i] as u64) << (8 * i);
    }
    *pos += n;
    Some(v)
}

fn operand_text(
    bytes: &[u8],
    pos: &mut usize,
    dtype: DataType,
    access: AccessType,
    base: u32,
) -> Option<String> {
    operand_text_depth(bytes, pos, dtype, access, base, 0)
}

fn operand_text_depth(
    bytes: &[u8],
    pos: &mut usize,
    dtype: DataType,
    access: AccessType,
    base: u32,
    depth: u8,
) -> Option<String> {
    if access == AccessType::Branch {
        let w = if dtype == DataType::Byte { 1 } else { 2 };
        let raw = take(bytes, pos, w)?;
        let disp = if w == 1 {
            raw as u8 as i8 as i64
        } else {
            raw as u16 as i16 as i64
        };
        let target = base as i64 + *pos as i64 + disp;
        return Some(format!("{:#x}", target as u32));
    }
    let spec = take(bytes, pos, 1)? as u8;
    let mode = spec >> 4;
    let reg = spec & 0xf;
    Some(match mode {
        0..=3 => format!("#{}", spec & 0x3f),
        4 => {
            // Indexed: render the base operand, then [rx]. Nested index
            // modes are reserved; stop runaway recursion defensively.
            if depth > 0 {
                return None;
            }
            let inner = operand_text_depth(bytes, pos, dtype, access, base, depth + 1)?;
            format!("{inner}[{}]", reg_name(reg))
        }
        5 => reg_name(reg).to_string(),
        6 => format!("({})", reg_name(reg)),
        7 => format!("-({})", reg_name(reg)),
        8 => {
            if reg == 15 {
                let w = dtype.bytes() as usize;
                let v = take(bytes, pos, w)?;
                format!("#{v:#x}")
            } else {
                format!("({})+", reg_name(reg))
            }
        }
        9 => {
            if reg == 15 {
                let v = take(bytes, pos, 4)?;
                format!("@#{v:#x}")
            } else {
                format!("@({})+", reg_name(reg))
            }
        }
        0xA | 0xB => {
            let d = take(bytes, pos, 1)? as u8 as i8;
            let at = if mode == 0xB { "@" } else { "" };
            if reg == 15 {
                let target = base as i64 + *pos as i64 + d as i64;
                format!("{at}{:#x}", target as u32)
            } else {
                format!("{at}{d}({})", reg_name(reg))
            }
        }
        0xC | 0xD => {
            let d = take(bytes, pos, 2)? as u16 as i16;
            let at = if mode == 0xD { "@" } else { "" };
            if reg == 15 {
                let target = base as i64 + *pos as i64 + d as i64;
                format!("{at}{:#x}", target as u32)
            } else {
                format!("{at}{d}({})", reg_name(reg))
            }
        }
        0xE | 0xF => {
            let d = take(bytes, pos, 4)? as u32 as i32;
            let at = if mode == 0xF { "@" } else { "" };
            if reg == 15 {
                let target = base as i64 + *pos as i64 + d as i64;
                format!("{at}{:#x}", target as u32)
            } else {
                format!("{at}{d}({})", reg_name(reg))
            }
        }
        _ => return None, // indexed mode: unsupported
    })
}

/// Disassembles a byte stream loaded at `base`.
///
/// Unknown opcodes and truncated operands are rendered as `.byte` lines so
/// the stream always decodes fully.
///
/// # Example
///
/// ```
/// let lines = vax_asm::disassemble(&[0xD0, 0x05, 0x50, 0x00], 0x1000);
/// assert_eq!(lines[0].text, "movl #5, r0");
/// assert_eq!(lines[1].text, "halt");
/// ```
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let start = pos;
        let b0 = bytes[pos];
        let b1 = if pos + 1 < bytes.len() {
            bytes[pos + 1]
        } else {
            0
        };
        let line = (|| -> Option<DisasmLine> {
            let (op, oplen) = Opcode::decode(b0, b1)?;
            let mut p = pos + oplen as usize;
            let mut texts = Vec::new();
            for spec in op.operands() {
                texts.push(operand_text(bytes, &mut p, spec.dtype, spec.access, base)?);
            }
            let text = if texts.is_empty() {
                op.mnemonic().to_lowercase()
            } else {
                format!("{} {}", op.mnemonic().to_lowercase(), texts.join(", "))
            };
            Some(DisasmLine {
                addr: base + start as u32,
                len: (p - start) as u32,
                text,
            })
        })();
        match line {
            Some(l) => {
                pos = start + l.len as usize;
                out.push(l);
            }
            None => {
                out.push(DisasmLine {
                    addr: base + start as u32,
                    len: 1,
                    text: format!(".byte {:#04x}", b0),
                });
                pos = start + 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Asm;
    use crate::operand::{Operand, Reg};

    #[test]
    fn round_trip_simple_program() {
        let mut a = Asm::new(0x1000);
        let top = a.here();
        a.movl(Operand::Imm(5), Operand::Reg(Reg::R0)).unwrap();
        a.inst(
            Opcode::Addl2,
            &[Operand::Deferred(Reg::R1), Operand::Reg(Reg::R2)],
        )
        .unwrap();
        a.sobgtr(Operand::Reg(Reg::R0), top).unwrap();
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        let lines = disassemble(&p.bytes, p.base);
        let texts: Vec<&str> = lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["movl #5, r0", "addl2 (r1), r2", "sobgtr r0, 0x1000", "halt"]
        );
    }

    #[test]
    fn unknown_bytes_become_data() {
        let lines = disassemble(&[0x99, 0x00], 0);
        assert_eq!(lines[0].text, ".byte 0x99");
    }

    #[test]
    fn immediate_and_absolute_render() {
        let mut a = Asm::new(0);
        a.movl(Operand::Imm(0x1234), Operand::Abs(0x8000_0000))
            .unwrap();
        let p = a.assemble().unwrap();
        let lines = disassemble(&p.bytes, 0);
        assert_eq!(lines[0].text, "movl #0x1234, @#0x80000000");
    }

    #[test]
    fn extended_opcode_decodes() {
        let lines = disassemble(&[0xFD, 0x01], 0);
        assert_eq!(lines[0].text, "wait");
        assert_eq!(lines[0].len, 2);
    }

    #[test]
    fn truncated_operand_degrades_to_bytes() {
        // MOVL with missing operands.
        let lines = disassemble(&[0xD0], 0);
        assert_eq!(lines[0].text, ".byte 0xd0");
    }
}

/// Renders an annotated listing: addresses, raw bytes, mnemonics, and
/// symbol labels — the classic assembler listing format.
///
/// # Example
///
/// ```
/// use std::collections::HashMap;
/// let (p, syms) = vax_asm::assemble_text_with_symbols("
///     start: movl #5, r0
///            halt
/// ", 0x1000)?;
/// let text = vax_asm::listing(&p.bytes, p.base, &syms);
/// assert!(text.contains("start:"));
/// assert!(text.contains("movl #5, r0"));
/// # Ok::<(), vax_asm::AsmError>(())
/// ```
pub fn listing(
    bytes: &[u8],
    base: u32,
    symbols: &std::collections::HashMap<String, u32>,
) -> String {
    let mut by_addr: std::collections::BTreeMap<u32, Vec<&str>> = Default::default();
    for (name, addr) in symbols {
        by_addr.entry(*addr).or_default().push(name);
    }
    let mut out = String::new();
    for line in disassemble(bytes, base) {
        if let Some(names) = by_addr.get(&line.addr) {
            for n in names {
                out.push_str(&format!("{n}:\n"));
            }
        }
        let start = (line.addr - base) as usize;
        let raw: Vec<String> = bytes[start..start + line.len as usize]
            .iter()
            .map(|b| format!("{b:02X}"))
            .collect();
        out.push_str(&format!(
            "  {:08X}  {:<24} {}\n",
            line.addr,
            raw.join(" "),
            line.text
        ));
    }
    out
}

#[cfg(test)]
mod listing_tests {
    use super::*;
    use crate::text::assemble_text_with_symbols;

    #[test]
    fn listing_interleaves_symbols_and_bytes() {
        let (p, syms) = assemble_text_with_symbols(
            "
            start:  movl #5, r0
            loop:   sobgtr r0, loop
                    halt
            ",
            0x2000,
        )
        .unwrap();
        let l = listing(&p.bytes, p.base, &syms);
        assert!(l.contains("start:\n"), "{l}");
        assert!(l.contains("loop:\n"));
        assert!(l.contains("D0 05 50"), "raw bytes shown: {l}");
        assert!(l.contains("sobgtr r0, 0x2003"));
    }
}
