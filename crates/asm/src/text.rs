//! The text front-end: conventional assembly syntax.
//!
//! ```text
//! ; comments run to end of line
//! start:  movl  #5, r0
//! loop:   sobgtr r0, loop
//!         mtpr  #0, #18        ; MTPR to IPL
//!         .long 0xdeadbeef
//!         .byte 1, 2, 3
//!         .align 4
//!         .space 16
//!         halt
//! ```
//!
//! Operand syntax: `#n` immediate, `rN`/`ap`/`fp`/`sp`/`pc` register,
//! `(rN)` deferred, `(rN)+` autoincrement, `-(rN)` autodecrement, `@#addr`
//! absolute, `disp(rN)` displacement, `@disp(rN)` displacement deferred,
//! and a bare identifier for a label (branch or PC-relative as the
//! instruction requires).

use crate::builder::{Asm, AsmError, LabelId};
use crate::operand::{Operand, Reg};
use std::collections::HashMap;
use vax_arch::{AccessType, Opcode};

/// Assembles text at the given base address.
///
/// # Errors
///
/// [`AsmError::Parse`] for syntax problems, plus any builder error.
///
/// # Example
///
/// ```
/// let p = vax_asm::assemble_text("
///     start:  movl #5, r0
///             sobgtr r0, start
///             halt
/// ", 0x1000)?;
/// assert_eq!(p.bytes[0], 0xD0);
/// # Ok::<(), vax_asm::AsmError>(())
/// ```
pub fn assemble_text(src: &str, base: u32) -> Result<crate::builder::Program, AsmError> {
    assemble_text_with_symbols(src, base).map(|(p, _)| p)
}

/// Like [`assemble_text`], but also returns the symbol table: every label
/// name mapped to its absolute address. Used by loaders that must place
/// handler addresses into vector tables (e.g. a guest SCB).
///
/// # Errors
///
/// Same as [`assemble_text`].
pub fn assemble_text_with_symbols(
    src: &str,
    base: u32,
) -> Result<(crate::builder::Program, HashMap<String, u32>), AsmError> {
    let mut asm = Asm::new(base);
    let mut names: HashMap<String, LabelId> = HashMap::new();

    let mut get_label = |asm: &mut Asm, name: &str| -> LabelId {
        if let Some(l) = names.get(name) {
            *l
        } else {
            let l = asm.label();
            names.insert(name.to_string(), l);
            l
        }
    };

    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                break;
            }
            let l = get_label(&mut asm, name);
            asm.bind(l)?;
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, args) = match rest.find(char::is_whitespace) {
            Some(i) => (&rest[..i], rest[i..].trim()),
            None => (rest, ""),
        };
        let err = |msg: String| AsmError::Parse(format!("line {}: {msg}", lineno + 1));

        if let Some(directive) = mnemonic.strip_prefix('.') {
            match directive.to_ascii_lowercase().as_str() {
                "byte" => {
                    let mut bytes = Vec::new();
                    for a in split_args(args) {
                        bytes.push(
                            parse_num(&a).ok_or_else(|| err(format!("bad byte {a:?}")))? as u8
                        );
                    }
                    asm.bytes(&bytes);
                }
                "word" => {
                    for a in split_args(args) {
                        let v = parse_num(&a).ok_or_else(|| err(format!("bad word {a:?}")))?;
                        asm.bytes(&(v as u16).to_le_bytes());
                    }
                }
                "long" => {
                    for a in split_args(args) {
                        if let Some(v) = parse_num(&a) {
                            asm.long(v);
                        } else if is_ident(&a) {
                            let l = get_label(&mut asm, &a);
                            asm.long_label(l);
                        } else {
                            return Err(err(format!("bad long {a:?}")));
                        }
                    }
                }
                "align" => {
                    let v = parse_num(args).ok_or_else(|| err("bad align".into()))?;
                    if !v.is_power_of_two() {
                        return Err(err(format!("alignment {v} not a power of two")));
                    }
                    asm.align(v);
                }
                "space" => {
                    let v = parse_num(args).ok_or_else(|| err("bad space".into()))?;
                    asm.space(v);
                }
                "ascii" | "asciz" => {
                    let t = args.trim();
                    let body = t
                        .strip_prefix('"')
                        .and_then(|b| b.strip_suffix('"'))
                        .ok_or_else(|| err("string must be double-quoted".into()))?;
                    // Minimal escapes: \n, \t, \0, \\ and \" .
                    let mut bytes: Vec<u8> = Vec::with_capacity(body.len());
                    let mut chars = body.bytes();
                    while let Some(b) = chars.next() {
                        if b == b'\\' {
                            match chars.next() {
                                Some(b'n') => bytes.push(b'\n'),
                                Some(b't') => bytes.push(b'\t'),
                                Some(b'0') => bytes.push(0),
                                Some(other) => bytes.push(other),
                                None => return Err(err("trailing backslash".into())),
                            }
                        } else {
                            bytes.push(b);
                        }
                    }
                    if directive.eq_ignore_ascii_case("asciz") {
                        bytes.push(0);
                    }
                    asm.bytes(&bytes);
                }
                other => return Err(err(format!("unknown directive .{other}"))),
            }
            continue;
        }

        let op = lookup_mnemonic(mnemonic)
            .ok_or_else(|| err(format!("unknown mnemonic {mnemonic:?}")))?;
        let specs = op.operands();
        let arg_list = split_args(args);
        if arg_list.len() != specs.len() {
            return Err(AsmError::OperandCount {
                op,
                expected: specs.len(),
                got: arg_list.len(),
            });
        }
        let mut operands = Vec::with_capacity(arg_list.len());
        for (a, spec) in arg_list.iter().zip(specs) {
            let o = if spec.access == AccessType::Branch {
                if !is_ident(a) {
                    return Err(err(format!("branch target must be a label, got {a:?}")));
                }
                Operand::Branch(get_label(&mut asm, a))
            } else {
                parse_operand(a, |n| get_label(&mut asm, n))
                    .ok_or_else(|| err(format!("bad operand {a:?}")))?
            };
            operands.push(o);
        }
        asm.inst(op, &operands)?;
    }
    let program = asm.assemble()?;
    let symbols = names
        .into_iter()
        .map(|(name, l)| {
            let addr = program.addr(l);
            (name, addr)
        })
        .collect();
    Ok((program, symbols))
}

fn lookup_mnemonic(m: &str) -> Option<Opcode> {
    let upper = m.to_ascii_uppercase();
    Opcode::ALL.iter().copied().find(|o| o.mnemonic() == upper)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_args(args: &str) -> Vec<String> {
    if args.trim().is_empty() {
        return Vec::new();
    }
    args.split(',').map(|s| s.trim().to_string()).collect()
}

fn parse_num(s: &str) -> Option<u32> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<u32>().ok()?
    };
    Some(if neg { v.wrapping_neg() } else { v })
}

fn parse_reg(s: &str) -> Option<Reg> {
    let lower = s.to_ascii_lowercase();
    (0..16u8).map(Reg::from_number).find(|r| r.name() == lower)
}

fn parse_operand(s: &str, mut label: impl FnMut(&str) -> LabelId) -> Option<Operand> {
    let s = s.trim();
    // Indexed: base[rx].
    if let Some(open) = s.find('[') {
        let rx = parse_reg(s[open..].strip_prefix('[')?.strip_suffix(']')?)?;
        use crate::operand::IndexBase;
        let base = match parse_plain_operand(&s[..open])? {
            Operand::Deferred(r) => IndexBase::Deferred(r),
            Operand::AutoInc(r) => IndexBase::AutoInc(r),
            Operand::AutoDec(r) => IndexBase::AutoDec(r),
            Operand::Abs(a) => IndexBase::Abs(a),
            Operand::Disp(d, r) => IndexBase::Disp(d, r),
            _ => return None,
        };
        return Some(Operand::Indexed(base, rx));
    }
    // Label-bearing forms.
    if let Some(imm) = s.strip_prefix("@#") {
        if parse_num(imm).is_none() && is_ident(imm) {
            return Some(Operand::AbsLabel(label(imm)));
        }
    } else if let Some(imm) = s.strip_prefix('#') {
        if parse_num(imm).is_none() && is_ident(imm) {
            return Some(Operand::ImmLabel(label(imm)));
        }
    }
    if let Some(op) = parse_plain_operand(s) {
        return Some(op);
    }
    if is_ident(s) {
        return Some(Operand::Label(label(s)));
    }
    None
}

/// Parses the label-free operand forms.
fn parse_plain_operand(s: &str) -> Option<Operand> {
    let s = s.trim();
    if let Some(imm) = s.strip_prefix("@#") {
        return Some(Operand::Abs(parse_num(imm)?));
    }
    if let Some(imm) = s.strip_prefix('#') {
        return Some(Operand::Imm(parse_num(imm)?));
    }
    if let Some(r) = parse_reg(s) {
        return Some(Operand::Reg(r));
    }
    if let Some(body) = s.strip_prefix("-(") {
        let r = parse_reg(body.strip_suffix(')')?)?;
        return Some(Operand::AutoDec(r));
    }
    if let Some(body) = s.strip_suffix(")+") {
        let r = parse_reg(body.strip_prefix('(')?)?;
        return Some(Operand::AutoInc(r));
    }
    // disp(rn), @disp(rn), (rn), @(rn) forms.
    let (deferred, body) = match s.strip_prefix('@') {
        Some(b) => (true, b),
        None => (false, s),
    };
    if let Some(open) = body.find('(') {
        let disp_str = &body[..open];
        let reg_str = body[open..].strip_prefix('(')?.strip_suffix(')')?;
        let r = parse_reg(reg_str)?;
        let disp = if disp_str.is_empty() {
            0
        } else {
            parse_num(disp_str)? as i32
        };
        return Some(if deferred {
            Operand::DispDeferred(disp, r)
        } else if disp == 0 && disp_str.is_empty() {
            Operand::Deferred(r)
        } else {
            Operand::Disp(disp, r)
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn assembles_loop_with_labels() {
        let p = assemble_text(
            "
            ; count down from 5
            start:  movl #5, r0
            loop:   sobgtr r0, loop
                    brb start
                    halt
            ",
            0x1000,
        )
        .unwrap();
        let texts: Vec<String> = disassemble(&p.bytes, p.base)
            .into_iter()
            .map(|l| l.text)
            .collect();
        assert_eq!(
            texts,
            vec!["movl #5, r0", "sobgtr r0, 0x1003", "brb 0x1000", "halt"]
        );
    }

    #[test]
    fn directives() {
        let p = assemble_text(
            "
            .byte 1, 2
            .align 4
            v:  .long 0xdead, v
            .space 2
            .word 0x1234
            ",
            0,
        )
        .unwrap();
        assert_eq!(&p.bytes[..4], &[1, 2, 0, 0]);
        assert_eq!(&p.bytes[4..8], &[0xAD, 0xDE, 0, 0]);
        assert_eq!(&p.bytes[8..12], &[4, 0, 0, 0]); // address of v
        assert_eq!(&p.bytes[12..16], &[0, 0, 0x34, 0x12]);
    }

    #[test]
    fn operand_forms() {
        let p = assemble_text(
            "movl 8(r2), r0\n movl (r3), r1\n movl (r4)+, r5\n movl r6, -(sp)\n movl @#0x80000000, r7\n movl @4(fp), r8\n",
            0,
        )
        .unwrap();
        let texts: Vec<String> = disassemble(&p.bytes, 0)
            .into_iter()
            .map(|l| l.text)
            .collect();
        assert_eq!(
            texts,
            vec![
                "movl 8(r2), r0",
                "movl (r3), r1",
                "movl (r4)+, r5",
                "movl r6, -(sp)",
                "movl @#0x80000000, r7",
                "movl @4(fp), r8"
            ]
        );
    }

    #[test]
    fn unknown_mnemonic_errors() {
        assert!(matches!(
            assemble_text("frobnicate r0", 0),
            Err(AsmError::Parse(_))
        ));
    }

    #[test]
    fn operand_count_errors() {
        assert!(matches!(
            assemble_text("movl r0", 0),
            Err(AsmError::OperandCount { .. })
        ));
    }

    #[test]
    fn negative_numbers_and_hex() {
        let p = assemble_text("movl #-1, r0", 0).unwrap();
        // -1 won't fit a short literal; full immediate.
        assert_eq!(p.bytes[1], 0x8F);
        assert_eq!(&p.bytes[2..6], &[0xFF, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn branch_to_number_rejected() {
        assert!(matches!(
            assemble_text("brb 0x100", 0),
            Err(AsmError::Parse(_))
        ));
    }
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    #[test]
    fn ascii_and_asciz_directives() {
        let p = assemble_text("msg: .asciz \"OK\"\n", 0x100).unwrap();
        assert_eq!(p.bytes, vec![b'O', b'K', 0]);
        let p = assemble_text(".ascii \"AB\"", 0).unwrap();
        assert_eq!(p.bytes, vec![b'A', b'B']);
        assert!(assemble_text(".ascii unquoted", 0).is_err());
    }
}
