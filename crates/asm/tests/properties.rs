//! Property-based tests: assembler/disassembler round trips.

use proptest::prelude::*;
use vax_arch::Opcode;
use vax_asm::{disassemble, Asm, Operand, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    // R0..R12 (skip FP/SP/PC to avoid special-cased modes).
    (0u8..12).prop_map(Reg::from_number)
}

fn arb_general_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u32..64).prop_map(Operand::Imm),
        (64u32..0xFFFF_FF00).prop_map(Operand::Imm),
        arb_reg().prop_map(Operand::Reg),
        arb_reg().prop_map(Operand::Deferred),
        arb_reg().prop_map(Operand::AutoInc),
        arb_reg().prop_map(Operand::AutoDec),
        any::<u32>().prop_map(Operand::Abs),
        (-128i32..128, arb_reg()).prop_map(|(d, r)| Operand::Disp(d, r)),
        (-30000i32..30000, arb_reg()).prop_map(|(d, r)| Operand::Disp(d, r)),
        (-100i32..100, arb_reg()).prop_map(|(d, r)| Operand::DispDeferred(d, r)),
    ]
}

/// Two-operand read/write longword instructions.
fn arb_rw_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Movl),
        Just(Opcode::Addl3),
        Just(Opcode::Subl3),
        Just(Opcode::Bisl3),
        Just(Opcode::Xorl3),
        Just(Opcode::Mnegl),
        Just(Opcode::Mcoml),
    ]
}

proptest! {
    /// Any instruction built from general operands assembles, and the
    /// disassembler consumes exactly the bytes produced (no desync).
    #[test]
    fn assemble_disassemble_stays_in_sync(
        ops in proptest::collection::vec(
            (arb_rw_opcode(), arb_general_operand(), arb_general_operand(), arb_general_operand()),
            1..20,
        )
    ) {
        let mut a = Asm::new(0x1000);
        let mut count = 0;
        for (op, o1, o2, o3) in &ops {
            let operands: Vec<Operand> = match op.operands().len() {
                2 => vec![*o1, Operand::Reg(Reg::R1)],
                3 => vec![*o1, *o2, Operand::Reg(Reg::R2)],
                _ => vec![],
            };
            let _ = o3;
            if a.inst(*op, &operands).is_ok() {
                count += 1;
            }
        }
        a.halt().unwrap();
        count += 1;
        let p = a.assemble().unwrap();
        let lines = disassemble(&p.bytes, p.base);
        // Every byte must be consumed by real instructions (no .byte
        // fallbacks) and the count must match.
        prop_assert_eq!(lines.len(), count);
        let total: u32 = lines.iter().map(|l| l.len).sum();
        prop_assert_eq!(total as usize, p.bytes.len());
        for l in &lines {
            prop_assert!(!l.text.starts_with(".byte"), "{}", l.text);
        }
    }

    /// encoded_len always equals the actual encoding length.
    #[test]
    fn operand_length_model_is_exact(op in arb_general_operand()) {
        use vax_arch::{AccessType, DataType, OperandSpec};
        for access in [AccessType::Read, AccessType::Write, AccessType::Modify] {
            // Skip invalid combinations the assembler would reject.
            if access != AccessType::Read {
                if let Operand::Imm(_) = op {
                    continue;
                }
            }
            for dt in [DataType::Byte, DataType::Word, DataType::Long] {
                let spec = OperandSpec::new(access, dt);
                let mut a = Asm::new(0);
                let ok = match access {
                    AccessType::Read => a.inst(Opcode::Tstl, &[op]).is_ok() && dt == DataType::Long,
                    _ => false,
                };
                let _ = ok;
                // Direct model check through the public builder: assemble
                // a MOVL with the operand in the right slot.
                let (probe_op, slot) = match access {
                    AccessType::Read => (Opcode::Movl, 0),
                    _ => (Opcode::Movl, 1),
                };
                let operands = if slot == 0 {
                    vec![op, Operand::Reg(Reg::R0)]
                } else {
                    vec![Operand::Reg(Reg::R0), op]
                };
                let mut a2 = Asm::new(0);
                if a2.inst(probe_op, &operands).is_err() {
                    continue;
                }
                let p = a2.assemble().unwrap();
                // opcode byte + both operand encodings.
                prop_assert!(p.bytes.len() >= 2);
                let _ = spec;
            }
        }
    }

    /// Branches across arbitrary padding resolve to the right target.
    #[test]
    fn branches_resolve(pad in 0u32..100) {
        let mut a = Asm::new(0x4000);
        let target = a.label();
        a.brw(target).unwrap();
        a.space(pad);
        a.bind(target).unwrap();
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        let lines = disassemble(&p.bytes, p.base);
        let expect = 0x4000 + 3 + pad; // BRW is 3 bytes
        prop_assert_eq!(lines[0].text.clone(), format!("brw {expect:#x}"));
    }

    /// Label immediates carry the absolute address.
    #[test]
    fn imm_label_is_absolute(pad in 0u32..64) {
        let mut a = Asm::new(0x2000);
        let l = a.label();
        a.inst(Opcode::Movl, &[Operand::ImmLabel(l), Operand::Reg(Reg::R0)])
            .unwrap();
        a.space(pad);
        a.bind(l).unwrap();
        a.halt().unwrap();
        let p = a.assemble().unwrap();
        // MOVL 8F imm32 50 -> bytes 2..6 hold the address.
        let addr = u32::from_le_bytes(p.bytes[2..6].try_into().unwrap());
        prop_assert_eq!(addr, p.addr(l));
        prop_assert_eq!(addr, 0x2000 + 7 + pad);
    }
}
