//! Smoke tests: every experiment driver runs end to end with reduced
//! parameters (the full sweeps run via the `tables` binary).

use vax_bench::*;

#[test]
fn e10_cache_effect_is_directionally_right() {
    let uncached = e10_shadow_cache(4, 1);
    let cached = e10_shadow_cache(4, 4);
    assert!(
        cached.fills * 5 < uncached.fills,
        "cached {} vs uncached {} fills",
        cached.fills,
        uncached.fills
    );
    assert!(cached.cycles < uncached.cycles);
    assert!(cached.hits > 0);
}

#[test]
fn e11_prefill_trades_faults_for_fills() {
    let on_demand = e11_faults_per_switch(1);
    let prefill = e11_faults_per_switch(8);
    assert!(prefill.faults < on_demand.faults, "prefill reduces faults");
    assert!(
        prefill.fills > on_demand.fills,
        "but translates far more PTEs"
    );
    assert!(
        prefill.cycles > on_demand.cycles,
        "and loses overall (paper 4.3.1): {} vs {}",
        prefill.cycles,
        on_demand.cycles
    );
}

#[test]
fn e12_start_io_beats_emulated_mmio() {
    let (start_io, mmio) = e12_io();
    assert_eq!(start_io.disk_ops, mmio.disk_ops, "same work");
    assert!(start_io.traps_per_op < 2.0);
    assert!(mmio.traps_per_op > 50.0);
    assert!(mmio.cycles > 3 * start_io.cycles);
}

#[test]
fn e13_read_only_shadow_costs_more() {
    let (mf, ro) = e13_dirty();
    assert_eq!(mf.probew_extra, 0);
    assert!(ro.probew_extra > 100);
    assert!(ro.cycles > mf.cycles);
    assert_eq!(mf.modify_faults, ro.upgrades, "same dirty pages either way");
}

#[test]
fn e8_mix_lands_in_the_papers_band() {
    // The headline claim, asserted in CI (deterministic simulation).
    let p = measure_perf(vax_os::Workload::EditTrans, 6, 300, 8);
    let rel = p.relative_perf();
    assert!(
        (0.44..=0.52).contains(&rel),
        "editing+transaction mix at {:.1}% (paper: 47-48%)",
        100.0 * rel
    );
    assert!(p.work_matches);
}
