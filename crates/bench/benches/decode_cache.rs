//! Decode-cache microbenchmarks: steady-state hit-path speed over
//! operand-rich code, and the cost of invalidation-heavy (self-modifying)
//! workloads, cache on vs. off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{Machine, StepEvent};

fn machine_running(program: &vax_asm::Program, decode_cache: bool) -> Machine {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.set_decode_cache_enabled(decode_cache);
    m.mem_mut()
        .write_slice(program.base, &program.bytes)
        .unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(program.base);
    m
}

fn bench(c: &mut Criterion) {
    // Operand-rich loop: displacement, autoincrement, and indexed
    // specifiers exercise the materialization paths the cache must
    // replay, not just the trivial register modes.
    let memory_loop = vax_asm::assemble_text(
        "
            movl #4000, r2
            movl #0x3000, r4
        top:
            movl r2, 4(r4)
            addl2 4(r4), r3
            movl #0x3000, r5
            movl (r5)+, r6
            sobgtr r2, top
            halt
        ",
        0x1000,
    )
    .unwrap();
    let instructions = 4_000u64 * 5 + 2;

    let mut g = c.benchmark_group("decode_cache");
    g.throughput(Throughput::Elements(instructions));
    for (name, decode_cache) in [("memory_loop", true), ("memory_loop_nocache", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = machine_running(&memory_loop, decode_cache);
                while m.step() == StepEvent::Ok {}
                assert_eq!(m.counters().instructions, instructions);
                m.reg(3)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
