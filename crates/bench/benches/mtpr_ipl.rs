//! E9 / paper §7.3: the MTPR-to-IPL hot path, bare versus emulated.

use criterion::{criterion_group, criterion_main, Criterion};
use vax_bench::e9_mtpr_ipl;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mtpr_ipl");
    g.sample_size(20);
    g.bench_function("bare_vs_emulated_2000_ops", |b| {
        b.iter(|| {
            let r = e9_mtpr_ipl(2000);
            assert!(r.ratio() > 5.0, "emulation must be much slower");
            r.ratio()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
