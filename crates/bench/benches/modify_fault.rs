//! E13 / paper §4.4.2: the modify fault versus the read-only-shadow
//! alternative on a write+probe mix.

use criterion::{criterion_group, criterion_main, Criterion};
use vax_os::{build_image, run_in_vm, OsConfig, Workload};
use vax_vmm::{DirtyStrategy, MonitorConfig, VmConfig};

fn bench(c: &mut Criterion) {
    let img = build_image(&OsConfig {
        nproc: 4,
        workload: Workload::Mixed,
        iterations: 100,
        ..OsConfig::default()
    })
    .unwrap();
    let mut g = c.benchmark_group("modify_fault");
    g.sample_size(10);
    for (label, strategy) in [
        ("modify_fault", DirtyStrategy::ModifyFault),
        ("read_only_shadow", DirtyStrategy::ReadOnlyShadow),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let (out, _, _) = run_in_vm(
                    &img,
                    MonitorConfig::default(),
                    VmConfig {
                        dirty_strategy: strategy,
                        ..VmConfig::default()
                    },
                    16_000_000_000,
                );
                assert!(out.completed);
                out.cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
