//! E12 / paper §4.4.3: start-I/O (KCALL) versus emulated memory-mapped
//! I/O.

use criterion::{criterion_group, criterion_main, Criterion};
use vax_os::{build_image, run_in_vm, OsConfig, Workload};
use vax_vmm::{IoStrategy, MonitorConfig, VmConfig};

fn bench(c: &mut Criterion) {
    let base = OsConfig {
        nproc: 1,
        workload: Workload::Transaction,
        iterations: 80,
        ..OsConfig::default()
    };
    let img_kcall = build_image(&base).unwrap();
    let img_mmio = build_image(&OsConfig {
        force_mmio: true,
        ..base
    })
    .unwrap();
    let mut g = c.benchmark_group("io_virtualization");
    g.sample_size(10);
    g.bench_function("start_io_kcall", |b| {
        b.iter(|| {
            let (out, _, _) = run_in_vm(
                &img_kcall,
                MonitorConfig::default(),
                VmConfig::default(),
                16_000_000_000,
            );
            assert!(out.completed);
            out.cycles
        })
    });
    g.bench_function("emulated_mmio", |b| {
        b.iter(|| {
            let (out, _, _) = run_in_vm(
                &img_mmio,
                MonitorConfig::default(),
                VmConfig {
                    io_strategy: IoStrategy::EmulatedMmio,
                    ..VmConfig::default()
                },
                64_000_000_000,
            );
            assert!(out.completed);
            out.cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
