//! E8 / paper §7.3: the editing+transaction mix on bare hardware versus
//! inside a VM (with and without the §7.2 shadow-table cache).
//!
//! Criterion measures *host wall time of the simulation*; the paper's
//! performance ratio is in *simulated cycles*, reported by
//! `cargo run -p vax-bench --bin tables -- --e8` (a VM exit handled by
//! fast host code can be cheaper in wall time than the many simulated
//! instructions it stands for, so the two metrics deliberately differ).

use criterion::{criterion_group, criterion_main, Criterion};
use vax_os::{build_image, run_bare, run_in_vm, OsConfig, Workload};
use vax_vmm::{MonitorConfig, ShadowConfig, VmConfig};

fn config() -> OsConfig {
    OsConfig {
        nproc: 4,
        workload: Workload::EditTrans,
        iterations: 120,
        quantum_ticks: 3,
        tick_cycles: 2500,
        ..OsConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let img = build_image(&config()).unwrap();
    let mut g = c.benchmark_group("vm_vs_native");
    g.sample_size(10);
    g.bench_function("bare_hardware", |b| {
        b.iter(|| {
            let out = run_bare(&img, 8_000_000_000);
            assert!(out.completed);
            out.cycles
        })
    });
    g.bench_function("vm_with_shadow_cache", |b| {
        b.iter(|| {
            let (out, _, _) = run_in_vm(
                &img,
                MonitorConfig::default(),
                VmConfig {
                    shadow: ShadowConfig {
                        cache_slots: 8,
                        ..ShadowConfig::default()
                    },
                    ..VmConfig::default()
                },
                32_000_000_000,
            );
            assert!(out.completed);
            out.cycles
        })
    });
    g.bench_function("vm_no_shadow_cache", |b| {
        b.iter(|| {
            let (out, _, _) = run_in_vm(
                &img,
                MonitorConfig::default(),
                VmConfig::default(),
                32_000_000_000,
            );
            assert!(out.completed);
            out.cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
