//! E10 / paper §7.2: shadow-table cache slots sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vax_bench::e10_shadow_cache;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow_cache");
    g.sample_size(10);
    for slots in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &s| {
            b.iter(|| {
                let p = e10_shadow_cache(6, s);
                p.fills
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
