//! E2/E13 companion: PROBE microcode fast path versus the PROBE-trap
//! path, and raw simulator throughput on the probe-heavy guest.

use criterion::{criterion_group, criterion_main, Criterion};
use vax_os::{build_image, run_bare, run_in_vm, OsConfig, Workload};
use vax_vmm::{MonitorConfig, VmConfig};

fn bench(c: &mut Criterion) {
    let img = build_image(&OsConfig {
        nproc: 2,
        workload: Workload::Probe,
        iterations: 150,
        ..OsConfig::default()
    })
    .unwrap();
    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    g.bench_function("bare", |b| {
        b.iter(|| {
            let out = run_bare(&img, 8_000_000_000);
            assert!(out.completed);
            out.cycles
        })
    });
    g.bench_function("vm", |b| {
        b.iter(|| {
            let (out, _, _) = run_in_vm(
                &img,
                MonitorConfig::default(),
                VmConfig::default(),
                16_000_000_000,
            );
            assert!(out.completed);
            out.cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
