//! Raw simulator throughput: simulated instructions per second of host
//! time, on a pure-compute guest (no VMM, no MMU churn after warmup).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{Machine, StepEvent};

fn bench(c: &mut Criterion) {
    let program = vax_asm::assemble_text(
        "
            movl #20000, r2
            clrl r3
        top:
            addl2 r2, r3
            xorl2 #0x55AA, r3
            sobgtr r2, top
            halt
        ",
        0x1000,
    )
    .unwrap();
    // 3 instructions per iteration + the 2-instruction prologue (HALT
    // does not retire).
    let instructions = 20_000u64 * 3 + 2;

    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(instructions));
    for (name, decode_cache) in [("compute_loop", true), ("compute_loop_nocache", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
                m.set_decode_cache_enabled(decode_cache);
                m.mem_mut().write_slice(0x1000, &program.bytes).unwrap();
                let mut psl = Psl::new();
                psl.set_ipl(31);
                m.set_psl(psl);
                m.set_pc(0x1000);
                while m.step() == StepEvent::Ok {}
                assert_eq!(m.counters().instructions, instructions);
                m.reg(3)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
