#![warn(missing_docs)]

//! Experiment drivers that regenerate every table and figure of the
//! paper, plus the quantitative claims of §4.3.1, §7.2, and §7.3.
//!
//! Each `e*`/`t*`/`f*` function returns structured results; the `tables`
//! binary renders them in the paper's shape, and the Criterion benches
//! time the underlying simulations. EXPERIMENTS.md records paper-vs-
//! measured values.

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::*;
