//! Rendering of experiment results in the paper's table shapes.

use crate::experiments::*;

/// Renders Table 1 (sensitive data and the unprivileged instructions
/// touching it), verified by the dynamic scan.
pub fn render_t1(r: &SensitivityResults) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Sensitive data touched by unprivileged instructions\n");
    out.push_str("(dynamically verified on the standard VAX, user mode)\n\n");
    out.push_str("  Data item   Instructions (observed behavior)\n");
    out.push_str("  ---------   --------------------------------\n");
    for (item, sel) in [
        ("PSL<CUR>", "PslCur"),
        ("PSL<PRV>", "PslPrv"),
        ("PTE<M>", "PteM"),
        ("PTE<PROT>", "PteProt"),
    ] {
        let mut entries: Vec<String> = Vec::new();
        for f in &r.standard {
            if f.sensitive_data.iter().any(|d| format!("{d:?}") == sel) {
                // Collapse the PTE<M> writers to one row entry.
                if sel == "PteM" && !f.opcode.is_table1_instruction() {
                    continue;
                }
                entries.push(format!("{} [{}]", f.opcode.mnemonic(), f.outcome));
            }
        }
        if sel == "PteM" {
            entries.push("any memory write [executes directly, sets PTE<M>]".into());
        }
        out.push_str(&format!("  {item:<11} {}\n", entries.join(", ")));
    }
    let violations = table1_violations(r);
    out.push_str(&format!(
        "\n  Popek-Goldberg violations on the standard VAX: {}\n",
        violations.join(", ")
    ));
    out
}

/// Renders Table 2 (PROBE versus PROBEVM), behaviorally.
pub fn render_t2() -> String {
    "Table 2: PROBE versus PROBEVM (verified by vax-cpu tests)\n\n  \
     PROBE                                  PROBEVM\n  \
     -----                                  -------\n  \
     unprivileged                           privileged\n  \
     tests first and last byte              tests only one byte\n  \
     probe mode clamped to PSL<PRV>         probe mode clamped to executive\n  \
     tests only protection                  tests protection, validity,\n  \
                                            modify (in that order)\n"
        .to_string()
}

/// Renders Table 3 (solutions for each sensitive item) from the in-VM
/// scan.
pub fn render_t3(r: &SensitivityResults) -> String {
    let outcome = |m: &str| {
        r.in_vm
            .iter()
            .find(|f| f.opcode.mnemonic() == m)
            .map(|f| format!("{}", f.outcome))
            .unwrap_or_default()
    };
    let mut out = String::new();
    out.push_str("Table 3: Solutions for sensitive data (observed in a VM)\n\n");
    out.push_str("  Data item  Instruction  Solution (observed)\n");
    out.push_str("  ---------  -----------  -------------------\n");
    for (item, ops) in [
        ("PSL<CUR>", vec!["CHMK", "REI", "MOVPSL"]),
        ("PSL<PRV>", vec!["CHMK", "REI", "MOVPSL", "PROBER"]),
        ("PTE<M>", vec!["(mem write)"]),
        ("PTE<PROT>", vec!["PROBER"]),
    ] {
        for op in ops {
            let solution = match op {
                "MOVPSL" => "compressed in microcode (no trap)".to_string(),
                "(mem write)" => "modify fault to the VMM".to_string(),
                "PROBER" => format!(
                    "microcode against valid shadow PTE; else {}",
                    "trap to the VMM"
                ),
                other => outcome(other),
            };
            out.push_str(&format!("  {item:<10} {op:<12} {solution}\n"));
        }
    }
    out
}

/// Renders Figure 1 (the VAX virtual address space).
pub fn render_f1() -> String {
    "Figure 1: VAX virtual address space\n\n  \
     0x00000000 +------------------+\n             \
     |        P0        |  per-process program region\n  \
     0x40000000 +------------------+\n             \
     |        P1        |  per-process control region (stacks)\n  \
     0x80000000 +------------------+\n             \
     |        S         |  system region, shared by all processes\n  \
     0xC0000000 +------------------+\n             \
     |     reserved     |\n  \
     0xFFFFFFFF +------------------+\n"
        .to_string()
}

/// Renders Figure 2 (VM and VMM shared address space) from the live
/// layout.
pub fn render_f2() -> String {
    format!(
        "Figure 2: VM and VMM shared address space\n\n{}\n",
        vax_vmm::layout::describe_shared_address_space(vax_vmm::VMM_BOUNDARY_VPN)
    )
}

/// Renders Figure 3 (ring compression) from the live compressor.
pub fn render_f3() -> String {
    use vax_arch::AccessMode;
    let mut out = String::new();
    out.push_str("Figure 3: Ring compression (virtual -> real)\n\n");
    out.push_str("  virtual mode   real mode\n");
    out.push_str("  ------------   ---------\n");
    for m in AccessMode::ALL {
        out.push_str(&format!(
            "  {:<14} {}\n",
            m.name(),
            vax_vmm::compress_mode(m).name()
        ));
    }
    out.push_str("  (VMM)          kernel  <- reserved to the VMM\n");
    out
}

/// Renders the E8 performance table.
pub fn render_e8(r: &E8Results) -> String {
    let mut out = String::new();
    out.push_str("E8 / paper 7.3: VM performance relative to bare hardware\n");
    out.push_str("(paper: 47-48% for the editing+transaction mix, with the 7.2 cache)\n\n");
    out.push_str(
        "  workload                                  bare cycles     VM cycles   relative\n",
    );
    out.push_str(
        "  ----------------------------------------  -----------  ------------  --------\n",
    );
    for p in r
        .per_workload
        .iter()
        .chain([&r.mix_uncached, &r.mix_cached])
    {
        out.push_str(&format!(
            "  {:<41} {:>12} {:>13}   {:>5.1}%{}\n",
            p.label,
            p.bare_cycles,
            p.vm_cycles,
            100.0 * p.relative_perf(),
            if p.work_matches {
                ""
            } else {
                "  (WORK MISMATCH!)"
            },
        ));
    }
    out
}

/// Renders E9.
pub fn render_e9(r: &E9Results) -> String {
    format!(
        "E9 / paper 7.3: MTPR-to-IPL cost\n\
         (paper: emulation cost 10-12x the bare 8800 path)\n\n  \
         bare hardware: {:>6.1} cycles/op\n  \
         VM (emulated): {:>6.1} cycles/op\n  \
         ratio:         {:>6.1}x\n",
        r.bare_cycles_per_op,
        r.vm_cycles_per_op,
        r.ratio()
    )
}

/// Renders the E10 sweep.
pub fn render_e10(points: &[E10Point]) -> String {
    let mut out = String::new();
    out.push_str("E10 / paper 7.2: multi-process shadow page tables\n");
    out.push_str("(paper: ~80% fewer shadow fill faults when processes <= slots)\n\n");
    out.push_str("  slots   fills    hits  misses     VM cycles\n");
    out.push_str("  -----  ------  ------  ------  ------------\n");
    let base = points.first().map(|p| p.fills).unwrap_or(1).max(1);
    for p in points {
        out.push_str(&format!(
            "  {:>5}  {:>6}  {:>6}  {:>6}  {:>12}   ({:>5.1}% of 1-slot fills)\n",
            p.slots,
            p.fills,
            p.hits,
            p.misses,
            p.cycles,
            100.0 * p.fills as f64 / base as f64
        ));
    }
    out
}

/// Renders the E11 sweep.
pub fn render_e11(points: &[E11Point]) -> String {
    let mut out = String::new();
    out.push_str("E11 / paper 4.3.1: shadow faults between context switches\n");
    out.push_str("(paper: ~17 page faults between context switches; prefill\n");
    out.push_str(" processing overshadowed its benefit)\n\n");
    out.push_str("  prefill  faults   fills  switches  faults/switch     VM cycles\n");
    out.push_str("  -------  ------  ------  --------  -------------  ------------\n");
    for p in points {
        out.push_str(&format!(
            "  {:>7}  {:>6}  {:>6}  {:>8}  {:>13.1}  {:>12}\n",
            p.prefill, p.faults, p.fills, p.switches, p.faults_per_switch, p.cycles
        ));
    }
    out
}

/// Renders E12.
pub fn render_e12(start_io: &E12Point, mmio: &E12Point) -> String {
    let mut out = String::new();
    out.push_str("E12 / paper 4.4.3: I/O virtualization strategies\n");
    out.push_str("(paper: start-I/O 'significantly reduces the number of traps')\n\n");
    out.push_str("  strategy                       disk ops  I/O traps  traps/op     VM cycles\n");
    out.push_str("  -----------------------------  --------  ---------  --------  ------------\n");
    for p in [start_io, mmio] {
        out.push_str(&format!(
            "  {:<29}  {:>8}  {:>9}  {:>8.1}  {:>12}\n",
            p.label, p.disk_ops, p.io_traps, p.traps_per_op, p.cycles
        ));
    }
    out
}

/// Renders E13.
pub fn render_e13(mf: &E13Point, ro: &E13Point) -> String {
    let mut out = String::new();
    out.push_str("E13 / paper 4.4.2: dirty-bit strategies\n");
    out.push_str("(paper: the modify fault avoids extra PROBEW traps)\n\n");
    out.push_str(
        "  strategy                     mod faults  upgrades  extra PROBEW traps     VM cycles\n",
    );
    out.push_str(
        "  ---------------------------  ----------  --------  ------------------  ------------\n",
    );
    for p in [mf, ro] {
        out.push_str(&format!(
            "  {:<27}  {:>10}  {:>8}  {:>18}  {:>12}\n",
            p.label, p.modify_faults, p.upgrades, p.probew_extra, p.cycles
        ));
    }
    out
}

/// Renders E14.
pub fn render_e14(r: &E14Results) -> String {
    format!(
        "E14 / paper 5: the WAIT idle handshake\n\
         (paper: without WAIT the VMM thinks an idle VM is busy)\n\n  \
         busy VM completion beside a WAITing idle VM: {:>12} cycles\n  \
         busy VM completion beside a spinning idle VM: {:>11} cycles\n  \
         idle VM executed {} WAITs; speedup {:.2}x\n",
        r.busy_cycles_with_wait,
        r.busy_cycles_with_spin,
        r.waits,
        r.busy_cycles_with_spin as f64 / r.busy_cycles_with_wait.max(1) as f64
    )
}

/// Renders E15.
pub fn render_e15(r: &E15Results) -> String {
    format!(
        "E15 / paper 4.3.1 and 5: the ring-compression leak\n\n  \
         VM-kernel access to a kernel-only page:    {}\n  \
         VM-executive access to the same page:      {}  <- the acknowledged leak\n  \
         VM-user access to the same page:           {}\n",
        if r.kernel_can_access {
            "allowed (required)"
        } else {
            "DENIED (BUG)"
        },
        if r.executive_can_access {
            "allowed"
        } else {
            "denied (would need a 5th ring)"
        },
        if r.user_blocked {
            "denied (boundary preserved)"
        } else {
            "ALLOWED (BUG)"
        },
    )
}

/// Renders Table 4 as verified behavior (the full matrix lives in the
/// `table4` integration test; this summarizes).
pub fn render_t4(r: &SensitivityResults) -> String {
    let find = |m: &str, vm: bool| -> String {
        let list = if vm { &r.in_vm } else { &r.standard };
        list.iter()
            .find(|f| f.opcode.mnemonic() == m)
            .map(|f| format!("{}", f.outcome))
            .unwrap_or_default()
    };
    let mut out = String::new();
    out.push_str("Table 4 (excerpt): observed behavior by machine\n\n");
    out.push_str(&format!(
        "  {:<10} {:<34} {:<30}\n",
        "operation", "standard VAX (user mode)", "modified VAX (in VM, v-kernel)"
    ));
    out.push_str(&format!("  {:-<10} {:-<34} {:-<30}\n", "", "", ""));
    for m in [
        "CHMK", "REI", "MOVPSL", "PROBER", "MTPR", "MFPR", "LDPCTX", "SVPCTX", "HALT", "WAIT",
        "PROBEVMR",
    ] {
        out.push_str(&format!(
            "  {:<10} {:<34} {:<30}\n",
            m,
            find(m, false),
            find(m, true)
        ));
    }
    out.push_str("\n  (the full 17-row matrix is asserted in tests/table4.rs)\n");
    out
}

/// Renders the quantum-sweep ablation.
pub fn render_quantum(points: &[QuantumPoint]) -> String {
    let mut out = String::new();
    out.push_str("Ablation: VMM scheduling quantum (two co-resident VMs)\n");
    out.push_str("(world switches cost a register file + MMU reload + TLB flush)\n\n");
    out.push_str("  quantum (cycles)  total cycles   VMM cycles  world switches\n");
    out.push_str("  ----------------  ------------  -----------  --------------\n");
    for p in points {
        out.push_str(&format!(
            "  {:>16}  {:>12}  {:>11}  {:>14}\n",
            p.quantum, p.total_cycles, p.vmm_cycles, p.switches
        ));
    }
    out
}

/// Renders the VM-scaling ablation.
pub fn render_scaling(points: &[ScalePoint]) -> String {
    let mut out = String::new();
    out.push_str("Ablation: co-resident VM count (identical guests)\n");
    out.push_str("(paper 7.2: VMs are memory-resident; admission is the only limit)\n\n");
    out.push_str("  VMs  total cycles  cycles/VM   VMM share\n");
    out.push_str("  ---  ------------  ---------  ----------\n");
    for p in points {
        out.push_str(&format!(
            "  {:>3}  {:>12}  {:>9}  {:>9.1}%\n",
            p.vms,
            p.total_cycles,
            p.per_vm_cycles,
            100.0 * p.vmm_share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_renders_are_nonempty() {
        assert!(render_t2().contains("PROBEVM"));
        assert!(render_f1().contains("P0"));
        assert!(render_f2().contains("VMM"));
        assert!(render_f3().contains("executive"));
    }

    #[test]
    fn t1_render_names_the_violations() {
        let r = e1_sensitivity();
        let t = render_t1(&r);
        assert!(t.contains("MOVPSL"));
        assert!(t.contains("REI"));
        assert!(t.contains("PROBER"));
    }
}
