//! Headless fleet-throughput benchmark: serial vs parallel execution of
//! many independent Monitors (DESIGN.md §12).
//!
//! Builds a fleet of single-CPU VAX monitors with a rotating mini-OS
//! guest mix (compute-bound, MTPR-to-IPL exit-heavy, transaction
//! processing with KCALL disk commits), runs it once serially as the
//! reference, then across increasing worker-thread counts. For every
//! thread count the per-monitor outcomes are **asserted bit-identical**
//! to the serial run — the determinism contract — and aggregate
//! simulated instructions per host wall-clock second are reported with
//! scaling efficiency against the host's core count.
//!
//! Usage: `cargo run --release -p vax-bench --bin fleet_throughput [-- --quick]`
//!
//! Writes `BENCH_fleet_throughput.json`.

use vax_os::{boot_in_monitor, build_image, OsConfig, Workload};
use vax_vmm::{Fleet, FleetReport, Monitor, MonitorConfig, RunExit, VmConfig};

/// Cycle budget per monitor: large enough that every guest halts.
const BUDGET: u64 = 64_000_000_000;

struct Scale {
    monitors: usize,
    compute_iters: u32,
    ipl_iters: u32,
    txn_iters: u32,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                monitors: 6,
                compute_iters: 2_000,
                ipl_iters: 1_000,
                txn_iters: 400,
            }
        } else {
            Scale {
                monitors: 8,
                compute_iters: 60_000,
                ipl_iters: 30_000,
                txn_iters: 8_000,
            }
        }
    }
}

/// Builds the fleet deterministically: the same call always yields the
/// same monitors, guest images, and boot state. Monitor `i` gets one of
/// three multiprogrammed mini-OS guests by `i % 3`.
fn build_fleet(scale: &Scale) -> Fleet {
    let configs = [
        OsConfig {
            nproc: 2,
            workload: Workload::Compute,
            iterations: scale.compute_iters,
            ..OsConfig::default()
        },
        OsConfig {
            nproc: 1,
            workload: Workload::IplHeavy,
            iterations: scale.ipl_iters,
            ..OsConfig::default()
        },
        OsConfig {
            nproc: 2,
            workload: Workload::Transaction,
            iterations: scale.txn_iters,
            ..OsConfig::default()
        },
    ];
    let images: Vec<_> = configs
        .iter()
        .map(|cfg| build_image(cfg).expect("guest image builds"))
        .collect();
    let mut fleet = Fleet::new();
    for i in 0..scale.monitors {
        let mut monitor = Monitor::new(MonitorConfig::default());
        boot_in_monitor(&mut monitor, &images[i % 3], VmConfig::default());
        fleet.push(monitor);
    }
    fleet
}

fn check_halted(report: &FleetReport) {
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(
            o.exit,
            RunExit::AllHalted,
            "monitor {i} must halt within budget"
        );
    }
}

/// Population coefficient of variation (stddev / mean) of `xs`.
fn cv(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64;
    var.sqrt() / mean
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = Scale::new(quick);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Reference semantics: the serial run.
    let mut fleet = build_fleet(&scale);
    let serial = fleet.run_serial(BUDGET);
    check_halted(&serial);
    let serial_ips = serial.instrs_per_sec();
    println!(
        "fleet_throughput: {} monitors, host cores {cores}{}",
        scale.monitors,
        if quick { " (quick)" } else { "" }
    );
    println!(
        "  serial: {:>12.0} instrs/sec  ({} simulated instructions, {:.3}s wall)",
        serial_ips,
        serial.total_instructions(),
        serial.wall.as_secs_f64()
    );

    // Parallel sweeps, each proven bit-identical to serial.
    let mut job_counts = vec![1usize, 2, 4];
    if !job_counts.contains(&cores) {
        job_counts.push(cores);
    }
    job_counts.sort_unstable();
    job_counts.retain(|&j| j <= scale.monitors);

    let mut rows = Vec::new();
    for &jobs in &job_counts {
        let mut fleet = build_fleet(&scale);
        let parallel = fleet.run_parallel(BUDGET, jobs);
        check_halted(&parallel);
        assert_eq!(
            parallel.outcomes, serial.outcomes,
            "parallel run at {jobs} jobs diverged from serial — determinism contract broken"
        );
        let ips = parallel.instrs_per_sec();
        let speedup = ips / serial_ips;
        let efficiency = speedup / jobs.min(cores) as f64;
        println!(
            "  jobs {jobs}: {ips:>12.0} instrs/sec  speedup {speedup:>5.2}x  \
             efficiency {:>5.1}%  bit-identical: yes",
            100.0 * efficiency
        );
        rows.push(format!(
            "    {{\"jobs\": {jobs}, \"wall_secs\": {:.6}, \"instrs_per_sec\": {ips:.0}, \
             \"speedup\": {speedup:.3}, \"efficiency\": {efficiency:.3}, \
             \"bit_identical\": true}}",
            parallel.wall.as_secs_f64()
        ));
    }

    // Per-monitor load profile: how evenly the shards weigh.
    let instrs: Vec<u64> = serial
        .outcomes
        .iter()
        .map(|o| o.counters.instructions)
        .collect();
    let cycles: Vec<u64> = serial.outcomes.iter().map(|o| o.cycles).collect();
    println!(
        "  per-monitor cycles cv {:.3}, instructions cv {:.3}",
        cv(&cycles),
        cv(&instrs)
    );

    let fmt_list = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"host_cores\": {cores},\n  \"monitors\": {},\n  \
         \"budget_cycles\": {BUDGET},\n  \
         \"serial\": {{\"wall_secs\": {:.6}, \"simulated_instructions\": {}, \
         \"instrs_per_sec\": {serial_ips:.0}}},\n  \"parallel\": [\n{}\n  ],\n  \
         \"per_monitor\": {{\n    \"instructions\": [{}],\n    \"cycles\": [{}],\n    \
         \"instructions_cv\": {:.6},\n    \"cycles_cv\": {:.6}\n  }}\n}}\n",
        scale.monitors,
        serial.wall.as_secs_f64(),
        serial.total_instructions(),
        rows.join(",\n"),
        fmt_list(&instrs),
        fmt_list(&cycles),
        cv(&instrs),
        cv(&cycles),
    );
    std::fs::write("BENCH_fleet_throughput.json", json).expect("write BENCH_fleet_throughput.json");
    println!("wrote BENCH_fleet_throughput.json");
}
