//! Regenerates every table and figure of the paper.
//!
//! Usage: `cargo run -p vax-bench --bin tables [--t1 --t2 --t3 --t4
//! --f1 --f2 --f3 --e8 --e9 --e10 --e11 --e12 --e13 --e14 --e15]`
//! (no arguments = everything).

use vax_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k);

    let scans = if want("--t1") || want("--t3") || want("--t4") {
        Some(e1_sensitivity())
    } else {
        None
    };

    if want("--t1") {
        println!("{}", render_t1(scans.as_ref().unwrap()));
    }
    if want("--t2") {
        println!("{}", render_t2());
    }
    if want("--t3") {
        println!("{}", render_t3(scans.as_ref().unwrap()));
    }
    if want("--t4") {
        println!("{}", render_t4(scans.as_ref().unwrap()));
    }
    if want("--f1") {
        println!("{}", render_f1());
    }
    if want("--f2") {
        println!("{}", render_f2());
    }
    if want("--f3") {
        println!("{}", render_f3());
    }
    if want("--e8") {
        println!("{}", render_e8(&e8_performance()));
    }
    if want("--e9") {
        println!("{}", render_e9(&e9_mtpr_ipl(2000)));
    }
    if want("--e10") {
        let points: Vec<_> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|s| e10_shadow_cache(6, s))
            .collect();
        println!("{}", render_e10(&points));
    }
    if want("--e11") {
        let points: Vec<_> = [1u32, 4, 16]
            .into_iter()
            .map(e11_faults_per_switch)
            .collect();
        println!("{}", render_e11(&points));
    }
    if want("--e12") {
        let (a, b) = e12_io();
        println!("{}", render_e12(&a, &b));
    }
    if want("--e13") {
        let (a, b) = e13_dirty();
        println!("{}", render_e13(&a, &b));
    }
    if want("--e14") {
        println!("{}", render_e14(&e14_wait()));
    }
    if want("--e15") {
        println!("{}", render_e15(&e15_ring_leak()));
    }
    if want("--ablation-quantum") {
        println!("{}", render_quantum(&ablation_quantum_sweep()));
    }
    if want("--ablation-scaling") {
        println!("{}", render_scaling(&ablation_vm_scaling()));
    }
}
