//! Headless profiler benchmark (DESIGN.md §15): sampling overhead on
//! the compute loop, the non-perturbation contract, the dirty-page
//! oracle, and a sample profile artifact — each asserted inline.
//!
//! * **Overhead**: the compute-loop guest runs with profiling off and
//!   on, interleaved, best-of-N wall time each. The simulated outcome
//!   (cycles, counters, guest registers, console bytes) must be
//!   bit-identical; the host-side slowdown must stay under 5%.
//! * **Dirty oracle**: for each exec tier the working-set tracker's
//!   dirty-page set must exactly equal the copy-on-write residency
//!   oracle — an independent record of written pages, since overlay
//!   pages materialize on (and only on) writes.
//! * **Artifact**: a collapsed-stack profile of the compute guest is
//!   written for flamegraph tools, plus a bare-machine superblock run
//!   so the translation tier shows up in the JSON.
//!
//! Usage: `cargo run --release -p vax-bench --bin profile_bench [-- --quick]`
//!
//! Writes `BENCH_profile.json` and `BENCH_profile_collapsed.txt`.

use std::time::Instant;
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{ExecTier, Machine, StepEvent};
use vax_os::{boot_in_monitor, build_image, GuestImage, OsConfig, Workload};
use vax_vmm::{Monitor, MonitorConfig, RunExit, VmConfig, DEFAULT_SAMPLE_INTERVAL};

/// Cycle budget that lets every guest in this file halt.
const BUDGET: u64 = 64_000_000_000;

struct Scale {
    iterations: u32,
    reps: u32,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                iterations: 400,
                reps: 3,
            }
        } else {
            Scale {
                iterations: 20_000,
                reps: 10,
            }
        }
    }
}

/// Everything the simulation produced — what must not change when
/// profiling is switched on.
#[derive(PartialEq)]
struct Outcome {
    cycles: u64,
    counters: vax_cpu::CpuCounters,
    regs: [u32; 16],
    console: Vec<u8>,
}

/// Boots the image, optionally enables profiling, runs to halt, and
/// returns (wall seconds, outcome, the finished monitor).
fn run_guest(image: &GuestImage, tier: ExecTier, profile: bool) -> (f64, Outcome, Monitor) {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.set_exec_tier(tier);
    let vm = boot_in_monitor(&mut monitor, image, VmConfig::default());
    if profile {
        monitor.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
    }
    let t = Instant::now();
    let exit = monitor.run(BUDGET);
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(exit, RunExit::AllHalted, "guest must halt within budget");
    let outcome = Outcome {
        cycles: monitor.machine().cycles(),
        counters: monitor.machine().counters(),
        regs: monitor.vm(vm).regs,
        console: monitor.vm_console_output(vm),
    };
    (wall, outcome, monitor)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = Scale::new(quick);
    println!(
        "profile_bench{}: compute guest, {} iterations, sample interval {}",
        if quick { " (quick)" } else { "" },
        scale.iterations,
        DEFAULT_SAMPLE_INTERVAL
    );

    let image = build_image(&OsConfig {
        nproc: 2,
        workload: Workload::Compute,
        iterations: scale.iterations,
        ..OsConfig::default()
    })
    .expect("guest image builds");

    // --- sampling overhead + non-perturbation ---------------------
    // Each rep runs off then on back to back, so the pair shares host
    // thermal/frequency state; the median of the per-rep ratios is the
    // drift-robust overhead statistic.
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut ratios = Vec::new();
    let mut baseline = None;
    for _ in 0..scale.reps {
        let (off_s, off_out, _) = run_guest(&image, ExecTier::default(), false);
        let (on_s, on_out, _) = run_guest(&image, ExecTier::default(), true);
        assert!(
            off_out == on_out,
            "profiling must not perturb the simulation (cycles {} vs {})",
            off_out.cycles,
            on_out.cycles
        );
        off_best = off_best.min(off_s);
        on_best = on_best.min(on_s);
        ratios.push(on_s / off_s);
        baseline = Some(off_out);
    }
    let baseline = baseline.expect("at least one rep");
    ratios.sort_by(f64::total_cmp);
    let overhead = ratios[ratios.len() / 2] - 1.0;
    println!(
        "  overhead: off {:.1} ms, on {:.1} ms, {:+.2}% ({} cycles, bit-identical: yes)",
        1e3 * off_best,
        1e3 * on_best,
        100.0 * overhead,
        baseline.cycles
    );
    if !quick {
        assert!(
            overhead < 0.05,
            "sampling overhead must stay under 5%, got {:.2}%",
            100.0 * overhead
        );
    }

    // --- dirty-page oracle per exec tier --------------------------
    // Run A tracks dirty pages; run B forks the machine memory at the
    // same point (discarding the child) so every subsequent write
    // materializes an overlay page — an independent exact record.
    let mut oracle_json = Vec::new();
    for tier in [ExecTier::Interp, ExecTier::Cache, ExecTier::Trans] {
        let (_, _, monitor) = run_guest(&image, tier, true);
        let dirty = monitor.machine().mem().dirty_pages();

        let mut oracle = Monitor::new(MonitorConfig::default());
        oracle.set_exec_tier(tier);
        boot_in_monitor(&mut oracle, &image, VmConfig::default());
        drop(oracle.machine_mut().fork_mem());
        assert_eq!(oracle.run(BUDGET), RunExit::AllHalted);
        let resident = oracle.machine().mem().resident_page_numbers();

        assert_eq!(
            dirty,
            resident,
            "tier {}: dirty set must equal the CoW residency oracle",
            tier.name()
        );
        println!(
            "  dirty oracle: tier {:<7} {} pages, exact match: yes",
            tier.name(),
            dirty.len()
        );
        oracle_json.push(format!(
            "\"{}\": {{\"pages\": {}, \"match\": true}}",
            tier.name(),
            dirty.len()
        ));
    }

    // --- sample artifact + superblock coverage --------------------
    let (_, _, monitor) = run_guest(&image, ExecTier::default(), true);
    let prof = monitor.prof().expect("profiling was on");
    let collapsed = prof.collapsed_stack();
    std::fs::write("BENCH_profile_collapsed.txt", &collapsed)
        .expect("write BENCH_profile_collapsed.txt");
    let samples = prof.samples();
    let pages = prof.page_buckets().len();

    // Mapped guests pin the translation tier off, so exercise it on a
    // bare machine to get a superblock table into the report.
    let program = vax_asm::assemble_text(
        "
            movl #20000, r0
            clrl r1
        top: addl2 r0, r1
            sobgtr r0, top
            halt
    ",
        0x1000,
    )
    .expect("bare loop assembles");
    let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
    m.set_exec_tier(ExecTier::Trans);
    m.enable_profiling(DEFAULT_SAMPLE_INTERVAL);
    m.mem_mut()
        .write_slice(program.base, &program.bytes)
        .expect("program fits");
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_reg(14, 0x8000);
    m.set_pc(program.base);
    while m.step() == StepEvent::Ok {}
    let blocks = m.superblock_profiles();
    assert!(
        !blocks.is_empty(),
        "the bare trans loop must produce superblock profiles"
    );
    let top = blocks[0];
    println!(
        "  superblocks: {} profiled, hottest {:#010x} ({} execs, {} cycles)",
        blocks.len(),
        top.entry_pa,
        top.executions,
        top.cycles_retired
    );
    println!(
        "  profile: {} samples over {} pages, collapsed stack {} bytes",
        samples,
        pages,
        collapsed.len()
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \
         \"overhead\": {{\"off_secs\": {off_best:.9}, \"on_secs\": {on_best:.9}, \
         \"ratio\": {overhead:.6}, \"target\": 0.05, \"bit_identical\": true}},\n  \
         \"dirty_oracle\": {{{}}},\n  \
         \"profile\": {{\"samples\": {samples}, \"pages\": {pages}, \
         \"sample_interval\": {DEFAULT_SAMPLE_INTERVAL}}},\n  \
         \"superblocks\": {{\"profiled\": {}, \"hottest_entry\": {}, \
         \"hottest_cycles\": {}}}\n}}\n",
        oracle_json.join(", "),
        blocks.len(),
        top.entry_pa,
        top.cycles_retired,
    );
    std::fs::write("BENCH_profile.json", json).expect("write BENCH_profile.json");
    println!("wrote BENCH_profile.json, BENCH_profile_collapsed.txt");
}
