//! Headless snapshot-subsystem benchmark (DESIGN.md §13): snapshot and
//! restore latency, copy-on-write fork cost and page-sharing ratio, and
//! a cross-monitor migration round-trip — each with its correctness
//! contract asserted inline (restore bit-identity, fork sharing ≥ 80%,
//! migrated guest output identical to an unmigrated run).
//!
//! Usage: `cargo run --release -p vax-bench --bin snapshot_bench [-- --quick]`
//!
//! Writes `BENCH_snapshot.json`.

use std::time::Instant;
use vax_os::{boot_in_monitor, build_image, OsConfig, Workload};
use vax_snap::{
    fork_monitor, restore_chain, restore_monitor, snapshot_chain_base, snapshot_delta,
    snapshot_digest, snapshot_monitor,
};
use vax_vmm::{Fleet, Monitor, MonitorConfig, RunExit, VmConfig};

/// Cycle budget that lets every guest in this file halt.
const BUDGET: u64 = 64_000_000_000;

struct Scale {
    iterations: u32,
    split: u64,
    reps: u32,
    forks: usize,
}

impl Scale {
    fn new(quick: bool) -> Scale {
        if quick {
            Scale {
                iterations: 400,
                split: 200_000,
                reps: 5,
                forks: 4,
            }
        } else {
            Scale {
                iterations: 20_000,
                split: 5_000_000,
                reps: 40,
                forks: 16,
            }
        }
    }
}

/// A monitor mid-flight through a multiprogrammed mini-OS guest — the
/// realistic snapshot subject: warm TLB, populated shadow tables,
/// console output in the buffers.
fn subject(scale: &Scale) -> Monitor {
    subject_with(scale, Workload::Mixed, false)
}

fn subject_with(scale: &Scale, workload: Workload, track: bool) -> Monitor {
    let image = build_image(&OsConfig {
        nproc: 3,
        workload,
        iterations: scale.iterations,
        ..OsConfig::default()
    })
    .expect("guest image builds");
    let mut monitor = Monitor::new(MonitorConfig::default());
    if track {
        monitor.enable_dirty_tracking();
    }
    boot_in_monitor(&mut monitor, &image, VmConfig::default());
    monitor.run(scale.split);
    monitor
}

fn mean_secs(times: &[f64]) -> f64 {
    times.iter().sum::<f64>() / times.len().max(1) as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = Scale::new(quick);
    println!(
        "snapshot_bench{}: subject guest nproc 3, {} iterations, split at {} cycles",
        if quick { " (quick)" } else { "" },
        scale.iterations,
        scale.split
    );

    // --- snapshot + restore latency -------------------------------
    let monitor = subject(&scale);
    let mem_bytes = monitor.machine().mem().size();
    let mut snap_times = Vec::new();
    let mut bytes = Vec::new();
    for _ in 0..scale.reps {
        let t = Instant::now();
        bytes = snapshot_monitor(&monitor).expect("snapshot");
        snap_times.push(t.elapsed().as_secs_f64());
    }
    let mut restore_times = Vec::new();
    let mut restored = None;
    for _ in 0..scale.reps {
        let t = Instant::now();
        restored = Some(restore_monitor(&bytes).expect("restore"));
        restore_times.push(t.elapsed().as_secs_f64());
    }
    // Bit-identity: the restored monitor re-serializes to the same image.
    let restored = restored.expect("at least one rep");
    assert_eq!(
        snapshot_monitor(&restored).expect("re-snapshot"),
        bytes,
        "restore must reproduce the snapshotted state exactly"
    );
    let snap_s = mean_secs(&snap_times);
    let restore_s = mean_secs(&restore_times);
    println!(
        "  snapshot: {} bytes ({}x smaller than the {} byte machine), {:.1} us",
        bytes.len(),
        mem_bytes as usize / bytes.len().max(1),
        mem_bytes,
        1e6 * snap_s
    );
    println!("  restore:  {:.1} us, bit-identical: yes", 1e6 * restore_s);

    // --- copy-on-write fork ---------------------------------------
    let mut parent = subject(&scale);
    let t = Instant::now();
    let mut children = fork_monitor(&mut parent, scale.forks).expect("fork");
    let fork_s = t.elapsed().as_secs_f64() / scale.forks as f64;
    // Every child (and the parent) runs to completion independently;
    // sharing is measured after the children's guests have dirtied
    // whatever they dirty.
    let mut min_shared = 1.0f64;
    for child in &mut children {
        assert_eq!(child.run(BUDGET), RunExit::AllHalted);
        min_shared = min_shared.min(child.machine().mem().shared_fraction());
    }
    assert_eq!(parent.run(BUDGET), RunExit::AllHalted);
    assert!(
        min_shared >= 0.8,
        "fork must share >= 80% of pages after the run, got {min_shared:.3}"
    );
    println!(
        "  fork: {} children, {:.1} us each, {:.1}% of pages still shared after running to halt",
        scale.forks,
        1e6 * fork_s,
        100.0 * min_shared
    );

    // --- incremental delta snapshots ------------------------------
    // A compute-bound guest is mostly idle memory-wise: after the base,
    // each segment dirties a handful of pages, so the delta must come
    // out an order of magnitude smaller than the full image.
    let mut chained = subject_with(&scale, Workload::Compute, true);
    let t = Instant::now();
    let base = snapshot_chain_base(&mut chained).expect("base snapshot");
    let base_s = t.elapsed().as_secs_f64();
    let segment = (scale.split / 20).max(1_000);
    let mut digest = snapshot_digest(&base);
    let mut deltas = Vec::new();
    let mut delta_times = Vec::new();
    for _ in 0..3 {
        chained.run(segment);
        let t = Instant::now();
        let d = snapshot_delta(&mut chained, digest).expect("delta snapshot");
        delta_times.push(t.elapsed().as_secs_f64());
        digest = snapshot_digest(&d);
        deltas.push(d);
    }
    let delta_bytes = deltas.iter().map(Vec::len).max().unwrap_or(0);
    let full_after = snapshot_monitor(&chained).expect("full snapshot of source");
    assert!(
        delta_bytes * 10 <= full_after.len(),
        "delta ({delta_bytes} bytes) must be >= 10x smaller than the full \
         snapshot ({} bytes) on a mostly-idle guest",
        full_after.len()
    );
    // Chain bit-identity: base + deltas reassemble the source exactly.
    let rechained = restore_chain(&base, &deltas).expect("chain restore");
    assert_eq!(
        snapshot_monitor(&rechained).expect("re-snapshot"),
        full_after,
        "restore_chain must reproduce the source state exactly"
    );
    let delta_s = mean_secs(&delta_times);
    println!(
        "  delta: {} bytes largest of {} links ({}x smaller than the {} byte full image), \
         {:.1} us capture (full: {:.1} us), chain restore bit-identical: yes",
        delta_bytes,
        deltas.len(),
        full_after.len() / delta_bytes.max(1),
        full_after.len(),
        1e6 * delta_s,
        1e6 * base_s,
    );

    // --- cross-monitor migration ----------------------------------
    // Reference: the same guest, never migrated.
    let mut reference = subject(&scale);
    assert_eq!(reference.run(BUDGET), RunExit::AllHalted);
    let ref_vm = reference.vm_ids().next().expect("one VM");
    let ref_console = reference.vm(ref_vm).console_out.clone();
    let ref_regs = reference.vm(ref_vm).regs;

    let mut fleet = Fleet::new();
    fleet.push(subject(&scale));
    fleet.push(Monitor::new(MonitorConfig::default()));
    let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
    let t = Instant::now();
    let moved = fleet.migrate(vm, 0, 1).expect("migrate");
    let migrate_s = t.elapsed().as_secs_f64();
    assert_eq!(fleet.monitor_mut(1).run(BUDGET), RunExit::AllHalted);
    let migrated = fleet.monitor(1).vm(moved);
    assert_eq!(
        migrated.console_out, ref_console,
        "migrated guest console output must match the unmigrated run"
    );
    assert_eq!(
        migrated.regs, ref_regs,
        "migrated guest registers must match the unmigrated run"
    );
    println!(
        "  migrate: {:.1} us round-trip, guest output identical: yes",
        1e6 * migrate_s
    );

    // --- pre-copy live migration downtime -------------------------
    // Stop-and-copy downtime is the whole round-trip above (the source
    // is frozen throughout). Pre-copy ships memory while the source
    // runs, so its stop window covers only the residual dirty pages
    // plus the state transfer. Best-of-N wall times on both sides; the
    // deterministic page-count proxy is the hard assert.
    let mut stopcopy_times = Vec::new();
    for _ in 0..scale.reps.min(5) {
        let mut fleet = Fleet::new();
        fleet.push(subject(&scale));
        fleet.push(Monitor::new(MonitorConfig::default()));
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        let t = Instant::now();
        fleet.migrate(vm, 0, 1).expect("migrate");
        stopcopy_times.push(t.elapsed().as_secs_f64());
    }
    let mut live_downtimes = Vec::new();
    let mut live_report = None;
    for _ in 0..scale.reps.min(5) {
        let mut fleet = Fleet::new();
        fleet.push(subject(&scale));
        fleet.push(Monitor::new(MonitorConfig::default()));
        let vm = fleet.monitor(0).vm_ids().next().expect("one VM");
        let report = fleet
            .migrate_live(vm, 0, 1, scale.split / 10, 8)
            .expect("live migration");
        assert!(
            report.final_pages < report.total_pages,
            "pre-copy must leave the stop phase fewer pages ({}) than a full \
             copy ({})",
            report.final_pages,
            report.total_pages
        );
        live_downtimes.push(report.downtime.as_secs_f64());
        // Guest correctness: the live-migrated guest finishes with the
        // same console bytes and registers as the unmigrated reference.
        assert_eq!(fleet.monitor_mut(1).run(BUDGET), RunExit::AllHalted);
        let migrated = fleet.monitor(1).vm(report.vm);
        assert_eq!(migrated.console_out, ref_console);
        assert_eq!(migrated.regs, ref_regs);
        live_report = Some(report);
    }
    let live_report = live_report.expect("at least one live rep");
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let stopcopy_best = best(&stopcopy_times);
    let live_best = best(&live_downtimes);
    assert!(
        live_best < stopcopy_best,
        "pre-copy downtime ({:.1} us) must undercut stop-and-copy ({:.1} us)",
        1e6 * live_best,
        1e6 * stopcopy_best
    );
    println!(
        "  migrate-live: downtime {:.1} us vs stop-and-copy {:.1} us ({} rounds, \
         {} of {} pages left for the stop phase)",
        1e6 * live_best,
        1e6 * stopcopy_best,
        live_report.rounds,
        live_report.final_pages,
        live_report.total_pages,
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"mem_bytes\": {mem_bytes},\n  \
         \"snapshot\": {{\"bytes\": {}, \"mean_secs\": {snap_s:.9}}},\n  \
         \"restore\": {{\"mean_secs\": {restore_s:.9}, \"bit_identical\": true}},\n  \
         \"fork\": {{\"children\": {}, \"mean_secs_per_child\": {fork_s:.9}, \
         \"min_shared_fraction_after_run\": {min_shared:.6}, \"sharing_target\": 0.8}},\n  \
         \"migration\": {{\"round_trip_secs\": {migrate_s:.9}, \"guest_identical\": true}},\n  \
         \"delta\": {{\"bytes\": {delta_bytes}, \"full_bytes\": {}, \"links\": {}, \
         \"mean_capture_secs\": {delta_s:.9}, \"full_capture_secs\": {base_s:.9}, \
         \"size_ratio_target\": 10, \"chain_bit_identical\": true}},\n  \
         \"migration_live\": {{\"downtime_secs\": {live_best:.9}, \
         \"stop_and_copy_secs\": {stopcopy_best:.9}, \"rounds\": {}, \
         \"precopy_pages\": {}, \"final_pages\": {}, \"total_pages\": {}, \
         \"guest_identical\": true}}\n}}\n",
        bytes.len(),
        scale.forks,
        full_after.len(),
        deltas.len(),
        live_report.rounds,
        live_report.precopy_pages,
        live_report.final_pages,
        live_report.total_pages,
    );
    std::fs::write("BENCH_snapshot.json", json).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");
}
