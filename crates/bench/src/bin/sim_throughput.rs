//! Headless simulator-throughput benchmark.
//!
//! Three workloads, one report (`BENCH_sim_throughput.json`):
//!
//! * `compute_loop_imm32` — the decode-cache stress kernel, run bare with
//!   translation off across all three execution tiers (`interp`, `cache`,
//!   `trans`); the report's `exec_tier` section records per-tier
//!   throughput and the translated tier's superblock statistics. No
//!   address translation happens, so its TLB hit rate is reported as
//!   `null`, not a misleading `0.0`.
//! * `mapped_loop` — the same machine with a host-built system page
//!   table and translation on, touching a multi-page buffer so the TLB
//!   actually works for a living and the hit rate is a real number.
//! * `vm_mtpr_ipl` — an MTPR-to-IPL loop run as a guest under the VMM
//!   with exit tracing enabled: reports the VM-exit breakdown and the
//!   measured emulation cost against the bare-machine cost of the same
//!   instruction (the paper's §7.3 "10–12× native" comparison).
//! * `shadow_cache_sweep` — the §7.2 experiment: a context-switch-heavy
//!   multiprogrammed guest at `cache_slots = 1` (the paper's base
//!   system) versus `4`, reporting shadow fill-fault counts and the
//!   reduction ratio (the paper observed ~80% fewer fill faults).
//!
//! Usage: `cargo run --release -p vax-bench --bin sim_throughput [-- --quick]`
//!
//! `--quick` shrinks iteration counts for CI smoke runs.

use std::time::Instant;
use vax_arch::{MachineVariant, Protection, Psl, Pte};
use vax_bench::e10_shadow_cache;
use vax_cpu::{DecodeCacheStats, ExecTier, Machine, StepEvent, TransStats};
use vax_vmm::{ExitCause, Monitor, MonitorConfig, RunExit, VmConfig};

const MAPPED_PAGES: u32 = 16;

/// S-space base virtual address.
const S_BASE: u32 = 0x8000_0000;
/// VAX page size.
const PAGE: u32 = 512;

struct Measurement {
    instrs_per_sec: f64,
    instructions: u64,
    simulated_cycles: u64,
    tlb_hit_rate: Option<f64>,
    cache_stats: DecodeCacheStats,
    trans_stats: TransStats,
}

/// Builds an identity-mapped system page table at `spt_pa` covering
/// `pages` pages and turns translation on, so S-space VA `S_BASE + x`
/// resolves to PA `x` through real single-level translation.
fn enable_identity_s_map(m: &mut Machine, spt_pa: u32, pages: u32) {
    for vpn in 0..pages {
        let pte = Pte::build(vpn, Protection::Kw, true, true);
        m.mem_mut().write_u32(spt_pa + 4 * vpn, pte.raw()).unwrap();
    }
    let mmu = m.mmu_mut();
    mmu.set_sbr(spt_pa);
    mmu.set_slr(pages);
    mmu.set_mapen(true);
}

fn run_once(program: &vax_asm::Program, tier: ExecTier, mapped: bool) -> Measurement {
    let mut m = Machine::new(MachineVariant::Standard, 256 * 1024);
    m.set_exec_tier(tier);
    let load_pa = if mapped {
        program.base - S_BASE
    } else {
        program.base
    };
    m.mem_mut().write_slice(load_pa, &program.bytes).unwrap();
    if mapped {
        // SPT parked at 128 KiB, above everything the workload touches.
        enable_identity_s_map(&mut m, 0x20000, 256);
    }
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(program.base);
    let start = Instant::now();
    while m.step() == StepEvent::Ok {}
    let elapsed = start.elapsed();
    let counters = m.counters();
    Measurement {
        instrs_per_sec: counters.instructions as f64 / elapsed.as_secs_f64(),
        instructions: counters.instructions,
        simulated_cycles: m.cycles(),
        tlb_hit_rate: counters.tlb_hit_rate_opt(),
        cache_stats: m.decode_cache_stats(),
        trans_stats: m.trans_stats(),
    }
}

/// Interleaves runs of every tier so all configurations sample the same
/// host-CPU conditions, returning the best of each in `tiers` order.
fn best_tier_sweep(
    program: &vax_asm::Program,
    n: u32,
    mapped: bool,
    tiers: &[ExecTier],
) -> Vec<Measurement> {
    let mut per_tier: Vec<Vec<Measurement>> = tiers.iter().map(|_| Vec::new()).collect();
    for _ in 0..n {
        for (i, tier) in tiers.iter().enumerate() {
            per_tier[i].push(run_once(program, *tier, mapped));
        }
    }
    per_tier
        .into_iter()
        .map(|ms| {
            ms.into_iter()
                .max_by(|a, b| a.instrs_per_sec.total_cmp(&b.instrs_per_sec))
                .unwrap()
        })
        .collect()
}

/// Simulated cycles a bare (unvirtualized) machine spends on one run of
/// `program` in kernel mode.
fn bare_cycles(program: &vax_asm::Program) -> u64 {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    m.mem_mut()
        .write_slice(program.base, &program.bytes)
        .unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(program.base);
    while m.step() == StepEvent::Ok {}
    m.cycles()
}

struct VmMtprReport {
    emulation_traps: u64,
    exception_exits: u64,
    interrupt_exits: u64,
    decode_cache_invalidations: u64,
    mtpr_ipl_exits: u64,
    mtpr_ipl_mean_cost: f64,
    mtpr_ipl_p99_cost: u64,
    mtpr_ipl_bare_cost: f64,
    mtpr_ipl_ratio: f64,
}

/// Runs the MTPR-to-IPL loop as a VMM guest with exit tracing on and the
/// same loop (plus its empty-control skeleton) bare, isolating the per-
/// instruction virtualized and native costs.
fn run_vm_mtpr(mtpr_iters: u32) -> VmMtprReport {
    let mtpr_loop = format!(
        "
            movl #{mtpr_iters}, r2
        top:
            mtpr #10, #18
            sobgtr r2, top
            halt
        "
    );
    let skeleton = format!(
        "
            movl #{mtpr_iters}, r2
        top:
            sobgtr r2, top
            halt
        "
    );
    let guest = vax_asm::assemble_text(&mtpr_loop, 0x1000).unwrap();
    let with_mtpr = bare_cycles(&guest);
    let without = bare_cycles(&vax_asm::assemble_text(&skeleton, 0x1000).unwrap());
    let bare_cost = (with_mtpr - without) as f64 / mtpr_iters as f64;

    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.enable_obs(4096);
    let vm = monitor.create_vm("mtpr_bench", VmConfig::default());
    monitor.vm_write_phys(vm, guest.base, &guest.bytes).unwrap();
    monitor.boot_vm(vm, guest.base);
    let exit = monitor.run(500_000_000);
    assert_eq!(exit, RunExit::AllHalted, "guest must halt cleanly");

    let counters = monitor.machine().counters();
    let dc = monitor.machine().decode_cache_stats();
    let obs = monitor.obs().expect("tracing enabled");
    let h = obs.histogram(ExitCause::EmulMtprIpl);
    assert_eq!(h.count(), mtpr_iters as u64, "every MTPR must trap");
    let mean = h.mean();
    VmMtprReport {
        emulation_traps: counters.vm_emulation_traps,
        exception_exits: counters.vm_exception_exits,
        interrupt_exits: counters.vm_interrupt_exits,
        decode_cache_invalidations: dc.invalidations,
        mtpr_ipl_exits: h.count(),
        mtpr_ipl_mean_cost: mean,
        mtpr_ipl_p99_cost: h.quantile(0.99),
        mtpr_ipl_bare_cost: bare_cost,
        mtpr_ipl_ratio: mean / bare_cost,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.6}"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (loop_iters, mapped_outer, mtpr_iters, reps) = if quick {
        (20_000u32, 200u32, 500u32, 2)
    } else {
        (200_000, 2_000, 2_000, 6)
    };

    // A long-immediate compute kernel: three-operand forms with 32-bit
    // immediates are the CISC encodings whose bytewise decode cost the
    // template cache amortizes (6-8 bytes per instruction).
    let compute = vax_asm::assemble_text(
        &format!(
            "
                movl #{loop_iters}, r2
                clrl r3
            top:
                addl3 #0x01010101, r3, r4
                bicl3 #0x0F0F0F0F, r4, r5
                xorl3 #0x55AA55AA, r5, r3
                addl2 #0x12345678, r3
                cmpl #0x11111111, #0x22222222
                sobgtr r2, top
                halt
            "
        ),
        0x1000,
    )
    .unwrap();
    // 6 instructions per iteration + the 2-instruction prologue (HALT
    // does not retire).
    let compute_instructions = loop_iters as u64 * 6 + 2;

    // The same machine with translation ON: walk a multi-page buffer so
    // every reference goes through the TLB.
    let mapped = vax_asm::assemble_text(
        &format!(
            "
                movl #{mapped_outer}, r2
            top:
                movl #{data_base:#x}, r6
                movl #{MAPPED_PAGES}, r7
            inner:
                movl (r6), r8
                addl2 #{PAGE}, r6
                sobgtr r7, inner
                sobgtr r2, top
                halt
            ",
            data_base = S_BASE + 0x8000,
        ),
        S_BASE + 0x1000,
    )
    .unwrap();

    let mut sweep = best_tier_sweep(
        &compute,
        reps,
        false,
        &[ExecTier::Interp, ExecTier::Cache, ExecTier::Trans],
    );
    let trans = sweep.pop().unwrap();
    let on = sweep.pop().unwrap();
    let off = sweep.pop().unwrap();
    for m in [&off, &on, &trans] {
        assert_eq!(
            m.instructions, compute_instructions,
            "workload must retire fully in every tier"
        );
        assert_eq!(
            m.simulated_cycles, on.simulated_cycles,
            "execution tier must not change simulated time"
        );
    }
    assert_eq!(
        on.tlb_hit_rate, None,
        "translation-off run has no TLB traffic"
    );
    assert!(
        trans.trans_stats.blocks_executed > 0,
        "trans tier must actually run superblocks on the compute loop"
    );
    let speedup = on.instrs_per_sec / off.instrs_per_sec;
    let trans_speedup = trans.instrs_per_sec / on.instrs_per_sec;

    let mut msweep = best_tier_sweep(
        &mapped,
        reps,
        true,
        &[ExecTier::Interp, ExecTier::Cache, ExecTier::Trans],
    );
    let mtrans = msweep.pop().unwrap();
    let mon = msweep.pop().unwrap();
    let moff = msweep.pop().unwrap();
    for m in [&moff, &mtrans] {
        assert_eq!(
            m.instructions, mon.instructions,
            "mapped workload must retire fully in every tier"
        );
        assert_eq!(
            m.simulated_cycles, mon.simulated_cycles,
            "execution tier must not change mapped simulated time"
        );
        assert_eq!(
            m.tlb_hit_rate, mon.tlb_hit_rate,
            "execution tier must not change TLB hit/miss counting"
        );
    }
    assert!(
        mtrans.trans_stats.blocks_executed > 0,
        "trans tier must run superblocks on the mapped loop"
    );
    assert!(
        mtrans.trans_stats.chain_hits > 0,
        "mapped loop blocks must chain directly"
    );
    let mapped_rate = mon
        .tlb_hit_rate
        .expect("mapped workload must exercise the TLB");
    let mapped_speedup = mon.instrs_per_sec / moff.instrs_per_sec;
    let mapped_trans_speedup = mtrans.instrs_per_sec / mon.instrs_per_sec;

    let vm = run_vm_mtpr(mtpr_iters);

    // §7.2: the multi-process shadow-table cache. Same context-switch
    // workload, one shadow slot (the paper's base system) vs four.
    let sweep_nproc = 4;
    let slots1 = e10_shadow_cache(sweep_nproc, 1);
    let slots4 = e10_shadow_cache(sweep_nproc, 4);
    let fill_reduction = 1.0 - slots4.fills as f64 / slots1.fills.max(1) as f64;
    assert!(
        fill_reduction > 0.5,
        "§7.2 cache must cut fill faults substantially (got {fill_reduction:.3})"
    );

    println!("sim_throughput: compute loop, {compute_instructions} simulated instructions");
    println!("  decode cache on:  {:>12.0} instrs/sec", on.instrs_per_sec);
    println!(
        "  decode cache off: {:>12.0} instrs/sec",
        off.instrs_per_sec
    );
    println!("  speedup:          {speedup:>12.2}x");
    println!(
        "  translated:       {:>12.0} instrs/sec ({trans_speedup:.2}x vs cache)",
        trans.instrs_per_sec
    );
    println!(
        "  superblocks: {} translated, {} executed, {} uops, {} interrupt / {} bail side exits",
        trans.trans_stats.blocks_translated,
        trans.trans_stats.blocks_executed,
        trans.trans_stats.uops_executed,
        trans.trans_stats.side_exit_interrupt,
        trans.trans_stats.side_exit_bail
    );
    println!(
        "  cache hits/misses/bytewise: {}/{}/{}  tlb hit rate: n/a (translation off)",
        on.cache_stats.hits, on.cache_stats.misses, on.cache_stats.bytewise_fallbacks
    );
    println!("mapped loop, {} simulated instructions", mon.instructions);
    println!(
        "  decode cache on:  {:>12.0} instrs/sec",
        mon.instrs_per_sec
    );
    println!("  speedup:          {mapped_speedup:>12.2}x");
    println!(
        "  translated:       {:>12.0} instrs/sec ({mapped_trans_speedup:.2}x vs cache)",
        mtrans.instrs_per_sec
    );
    println!(
        "  superblocks: {} executed, {} chain follows, {} links severed, \
         side exits: {} tlb-miss / {} prot / {} page-cross / {} smc",
        mtrans.trans_stats.blocks_executed,
        mtrans.trans_stats.chain_hits,
        mtrans.trans_stats.chain_links_severed,
        mtrans.trans_stats.side_exit_tlb_miss,
        mtrans.trans_stats.side_exit_prot,
        mtrans.trans_stats.side_exit_page_cross,
        mtrans.trans_stats.side_exit_smc
    );
    println!("  tlb hit rate:     {mapped_rate:>12.4}");
    println!("vm mtpr-ipl loop, {} exits traced", vm.mtpr_ipl_exits);
    println!(
        "  exits: {} emulation / {} exception / {} interrupt",
        vm.emulation_traps, vm.exception_exits, vm.interrupt_exits
    );
    println!(
        "  mtpr-ipl cost: {:.1} cycles virtualized vs {:.1} bare = {:.1}x",
        vm.mtpr_ipl_mean_cost, vm.mtpr_ipl_bare_cost, vm.mtpr_ipl_ratio
    );
    println!("shadow-cache sweep (§7.2), {sweep_nproc} guest processes");
    println!(
        "  fill faults: {} (1 slot) -> {} ({} slots), reduction {:.1}%",
        slots1.fills,
        slots4.fills,
        slots4.slots,
        100.0 * fill_reduction
    );

    let json = format!(
        "{{\n  \"workload\": \"compute_loop_imm32\",\n  \"simulated_instructions\": {},\n  \
         \"simulated_cycles\": {},\n  \
         \"instrs_per_sec_cache_on\": {:.0},\n  \"instrs_per_sec_cache_off\": {:.0},\n  \
         \"speedup\": {:.3},\n  \
         \"decode_cache_hits\": {},\n  \"decode_cache_misses\": {},\n  \
         \"decode_cache_bytewise_fallbacks\": {},\n  \
         \"tlb_hit_rate\": {},\n  \
         \"exec_tier\": {{\n    \"interp\": {{ \"instrs_per_sec\": {:.0} }},\n    \
         \"cache\": {{ \"instrs_per_sec\": {:.0} }},\n    \
         \"trans\": {{\n      \"instrs_per_sec\": {:.0},\n      \
         \"speedup_vs_cache\": {:.3},\n      \"blocks_translated\": {},\n      \
         \"blocks_executed\": {},\n      \"uops_executed\": {},\n      \
         \"side_exit_interrupt\": {},\n      \"side_exit_bail\": {}\n    }}\n  }},\n  \
         \"mapped_loop\": {{\n    \"simulated_instructions\": {},\n    \
         \"simulated_cycles\": {},\n    \"instrs_per_sec_cache_on\": {:.0},\n    \
         \"speedup\": {:.3},\n    \"tlb_hit_rate\": {},\n    \
         \"exec_tier\": {{\n      \"interp\": {{ \"instrs_per_sec\": {:.0} }},\n      \
         \"cache\": {{ \"instrs_per_sec\": {:.0} }},\n      \
         \"trans\": {{\n        \"instrs_per_sec\": {:.0},\n        \
         \"speedup_vs_cache\": {:.3},\n        \"blocks_executed\": {},\n        \
         \"chain_hits\": {},\n        \"chain_links_severed\": {},\n        \
         \"side_exit_tlb_miss\": {},\n        \"side_exit_smc\": {}\n      }}\n    }}\n  }},\n  \
         \"vm_mtpr_ipl\": {{\n    \"vm_exits\": {{\n      \"emulation_traps\": {},\n      \
         \"exception_exits\": {},\n      \"interrupt_exits\": {}\n    }},\n    \
         \"decode_cache_invalidations\": {},\n    \"mtpr_ipl_exits\": {},\n    \
         \"mtpr_ipl_mean_cost_cycles\": {:.2},\n    \"mtpr_ipl_p99_cost_cycles\": {},\n    \
         \"mtpr_ipl_bare_cost_cycles\": {:.2},\n    \"mtpr_ipl_ratio\": {:.2}\n  }},\n  \
         \"shadow_cache_sweep\": {{\n    \"nproc\": {sweep_nproc},\n    \
         \"slots_1_fills\": {},\n    \"slots_4_fills\": {},\n    \
         \"slots_4_cache_hits\": {},\n    \"fill_fault_reduction\": {:.4}\n  }}\n}}\n",
        compute_instructions,
        on.simulated_cycles,
        on.instrs_per_sec,
        off.instrs_per_sec,
        speedup,
        on.cache_stats.hits,
        on.cache_stats.misses,
        on.cache_stats.bytewise_fallbacks,
        json_opt(on.tlb_hit_rate),
        off.instrs_per_sec,
        on.instrs_per_sec,
        trans.instrs_per_sec,
        trans_speedup,
        trans.trans_stats.blocks_translated,
        trans.trans_stats.blocks_executed,
        trans.trans_stats.uops_executed,
        trans.trans_stats.side_exit_interrupt,
        trans.trans_stats.side_exit_bail,
        mon.instructions,
        mon.simulated_cycles,
        mon.instrs_per_sec,
        mapped_speedup,
        json_opt(mon.tlb_hit_rate),
        moff.instrs_per_sec,
        mon.instrs_per_sec,
        mtrans.instrs_per_sec,
        mapped_trans_speedup,
        mtrans.trans_stats.blocks_executed,
        mtrans.trans_stats.chain_hits,
        mtrans.trans_stats.chain_links_severed,
        mtrans.trans_stats.side_exit_tlb_miss,
        mtrans.trans_stats.side_exit_smc,
        vm.emulation_traps,
        vm.exception_exits,
        vm.interrupt_exits,
        vm.decode_cache_invalidations,
        vm.mtpr_ipl_exits,
        vm.mtpr_ipl_mean_cost,
        vm.mtpr_ipl_p99_cost,
        vm.mtpr_ipl_bare_cost,
        vm.mtpr_ipl_ratio,
        slots1.fills,
        slots4.fills,
        slots4.hits,
        fill_reduction,
    );
    std::fs::write("BENCH_sim_throughput.json", json).expect("write BENCH_sim_throughput.json");
    println!("wrote BENCH_sim_throughput.json");
}
