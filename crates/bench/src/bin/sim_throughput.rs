//! Headless simulator-throughput benchmark.
//!
//! Runs the compute-loop workload with the decode cache on and off,
//! prints a short report, and writes `BENCH_sim_throughput.json` to the
//! current directory (simulated instructions per host second for both
//! configurations, their ratio, decode-cache statistics, and the TLB
//! hit rate).
//!
//! Usage: `cargo run --release -p vax-bench --bin sim_throughput`

use std::time::Instant;
use vax_arch::{MachineVariant, Psl};
use vax_cpu::{DecodeCacheStats, Machine, StepEvent};

const LOOP_ITERS: u32 = 200_000;

struct Measurement {
    instrs_per_sec: f64,
    simulated_cycles: u64,
    tlb_hit_rate: f64,
    cache_stats: DecodeCacheStats,
}

fn run_once(program: &vax_asm::Program, instructions: u64, decode_cache: bool) -> Measurement {
    let mut m = Machine::new(MachineVariant::Standard, 64 * 1024);
    m.set_decode_cache_enabled(decode_cache);
    m.mem_mut().write_slice(program.base, &program.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(program.base);
    let start = Instant::now();
    while m.step() == StepEvent::Ok {}
    let elapsed = start.elapsed();
    let counters = m.counters();
    assert_eq!(counters.instructions, instructions, "workload must retire fully");
    Measurement {
        instrs_per_sec: instructions as f64 / elapsed.as_secs_f64(),
        simulated_cycles: m.cycles(),
        tlb_hit_rate: counters.tlb_hit_rate(),
        cache_stats: m.decode_cache_stats(),
    }
}

/// Alternates cache-on / cache-off runs so both configurations sample
/// the same host-CPU conditions, returning the best of each.
fn best_alternating(
    program: &vax_asm::Program,
    instructions: u64,
    n: u32,
) -> (Measurement, Measurement) {
    let (ons, offs): (Vec<Measurement>, Vec<Measurement>) = (0..n)
        .map(|_| {
            (
                run_once(program, instructions, true),
                run_once(program, instructions, false),
            )
        })
        .unzip();
    let best = |ms: Vec<Measurement>| {
        ms.into_iter()
            .max_by(|a, b| a.instrs_per_sec.total_cmp(&b.instrs_per_sec))
            .unwrap()
    };
    (best(ons), best(offs))
}

fn main() {
    // A long-immediate compute kernel: three-operand forms with 32-bit
    // immediates are the CISC encodings whose bytewise decode cost the
    // template cache amortizes (6-8 bytes per instruction).
    let program = vax_asm::assemble_text(
        &format!(
            "
                movl #{LOOP_ITERS}, r2
                clrl r3
            top:
                addl3 #0x01010101, r3, r4
                bicl3 #0x0F0F0F0F, r4, r5
                xorl3 #0x55AA55AA, r5, r3
                addl2 #0x12345678, r3
                cmpl #0x11111111, #0x22222222
                sobgtr r2, top
                halt
            "
        ),
        0x1000,
    )
    .unwrap();
    // 6 instructions per iteration + the 2-instruction prologue (HALT
    // does not retire).
    let instructions = LOOP_ITERS as u64 * 6 + 2;

    let (on, off) = best_alternating(&program, instructions, 6);
    assert_eq!(
        on.simulated_cycles, off.simulated_cycles,
        "decode cache must not change simulated time"
    );
    let speedup = on.instrs_per_sec / off.instrs_per_sec;

    println!("sim_throughput: compute loop, {instructions} simulated instructions");
    println!("  decode cache on:  {:>12.0} instrs/sec", on.instrs_per_sec);
    println!("  decode cache off: {:>12.0} instrs/sec", off.instrs_per_sec);
    println!("  speedup:          {speedup:>12.2}x");
    println!(
        "  cache hits/misses: {}/{}  tlb hit rate: {:.4}",
        on.cache_stats.hits, on.cache_stats.misses, on.tlb_hit_rate
    );

    let json = format!(
        "{{\n  \"workload\": \"compute_loop_imm32\",\n  \"simulated_instructions\": {},\n  \
         \"simulated_cycles\": {},\n  \
         \"instrs_per_sec_cache_on\": {:.0},\n  \"instrs_per_sec_cache_off\": {:.0},\n  \
         \"speedup\": {:.3},\n  \
         \"decode_cache_hits\": {},\n  \"decode_cache_misses\": {},\n  \
         \"tlb_hit_rate\": {:.6}\n}}\n",
        instructions,
        on.simulated_cycles,
        on.instrs_per_sec,
        off.instrs_per_sec,
        speedup,
        on.cache_stats.hits,
        on.cache_stats.misses,
        on.tlb_hit_rate,
    );
    std::fs::write("BENCH_sim_throughput.json", json).expect("write BENCH_sim_throughput.json");
    println!("wrote BENCH_sim_throughput.json");
}
