//! The experiment implementations (E1–E15 in DESIGN.md).

use vax_arch::{AccessMode, MachineVariant, Psl};
use vax_cpu::{scan_sensitivity, Machine, SensitivityFinding, StepEvent};
use vax_os::{build_image, run_bare, run_in_vm, OsConfig, RunOutcome, Workload};
use vax_vmm::{DirtyStrategy, IoStrategy, Monitor, MonitorConfig, ShadowConfig, VmConfig};

/// E1 / Table 1: the Popek–Goldberg scan of the standard VAX from user
/// mode, plus the same scan inside a VM on the modified VAX.
pub struct SensitivityResults {
    /// Standard VAX, user mode.
    pub standard: Vec<SensitivityFinding>,
    /// Modified VAX, inside a VM (virtual kernel mode).
    pub in_vm: Vec<SensitivityFinding>,
}

/// Runs the E1 scan.
pub fn e1_sensitivity() -> SensitivityResults {
    SensitivityResults {
        standard: scan_sensitivity(MachineVariant::Standard, false),
        in_vm: scan_sensitivity(MachineVariant::Modified, true),
    }
}

/// One measured performance pair (E8 / §7.3).
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Label (workload name).
    pub label: String,
    /// Bare-hardware cycles to complete the run.
    pub bare_cycles: u64,
    /// VM cycles (including attributed VMM work).
    pub vm_cycles: u64,
    /// Guest-visible work check: syscall counts must match.
    pub work_matches: bool,
}

impl PerfPoint {
    /// VM performance as a fraction of bare hardware (the paper reports
    /// 47–48% for the editing+transaction mix with the §7.2 cache).
    pub fn relative_perf(&self) -> f64 {
        self.bare_cycles as f64 / self.vm_cycles as f64
    }
}

fn perf_config(workload: Workload, nproc: u32, iterations: u32) -> OsConfig {
    OsConfig {
        nproc,
        workload,
        iterations,
        quantum_ticks: 3,
        tick_cycles: 2500,
        ..OsConfig::default()
    }
}

/// Runs one workload bare and in a VM (with `cache_slots` shadow slots)
/// and returns the pair.
pub fn measure_perf(
    workload: Workload,
    nproc: u32,
    iterations: u32,
    cache_slots: usize,
) -> PerfPoint {
    let cfg = perf_config(workload, nproc, iterations);
    let img = build_image(&cfg).expect("image builds");
    let bare = run_bare(&img, 8_000_000_000);
    let (vm, _, _) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        32_000_000_000,
    );
    assert!(bare.completed, "bare {workload:?} completed");
    assert!(vm.completed, "vm {workload:?} completed");
    PerfPoint {
        label: format!("{workload:?}"),
        bare_cycles: bare.cycles,
        vm_cycles: vm.cycles,
        work_matches: bare.kernel.syscalls == vm.kernel.syscalls
            && bare.kernel.disk_ops == vm.kernel.disk_ops,
    }
}

/// E8: the §7.3 benchmark — an interactive-editing plus transaction-
/// processing mix on VMS, measured bare and virtual, with the §7.2
/// multi-process shadow tables enabled (`cache_slots` ≥ nproc) and
/// disabled (1 slot).
pub struct E8Results {
    /// Per-workload points (cache enabled).
    pub per_workload: Vec<PerfPoint>,
    /// The headline mix with the shadow cache.
    pub mix_cached: PerfPoint,
    /// The same mix without the cache (every guest context switch
    /// invalidates the shadow tables).
    pub mix_uncached: PerfPoint,
}

/// Runs E8.
pub fn e8_performance() -> E8Results {
    let per_workload = vec![
        measure_perf(Workload::Compute, 2, 1500, 8),
        measure_perf(Workload::Editing, 2, 250, 8),
        measure_perf(Workload::Transaction, 2, 250, 8),
        measure_perf(Workload::Syscall, 2, 500, 8),
        measure_perf(Workload::IplHeavy, 2, 250, 8),
    ];
    // The paper's mix: interactive editing + transaction processing,
    // several concurrent processes.
    let mix_cached = {
        let mut p = measure_perf(Workload::EditTrans, 6, 300, 8);
        p.label = "editing+transaction mix (with 7.2 cache)".into();
        p
    };
    let mix_uncached = {
        let mut p = measure_perf(Workload::EditTrans, 6, 300, 1);
        p.label = "editing+transaction mix (no cache)".into();
        p
    };
    E8Results {
        per_workload,
        mix_cached,
        mix_uncached,
    }
}

/// E9 / §7.3: MTPR-to-IPL cost, bare versus emulated.
#[derive(Debug, Clone, Copy)]
pub struct E9Results {
    /// Cycles per MTPR-to-IPL on bare hardware (heavily optimized path).
    pub bare_cycles_per_op: f64,
    /// Cycles per MTPR-to-IPL emulated by the VMM.
    pub vm_cycles_per_op: f64,
}

impl E9Results {
    /// The paper reports 10–12× on the VAX 8800.
    pub fn ratio(&self) -> f64 {
        self.vm_cycles_per_op / self.bare_cycles_per_op
    }
}

/// Measures E9 with a micro-kernel that toggles IPL `n` times.
pub fn e9_mtpr_ipl(n: u32) -> E9Results {
    let src = format!(
        "
        start:
            movl #{n}, r2
        top:
            mtpr #24, #18
            mtpr #31, #18
            sobgtr r2, top
            halt
        "
    );
    // Bare: kernel mode, translation off.
    let p = vax_asm::assemble_text(&src, 0x1000).unwrap();
    let mut m = Machine::new(MachineVariant::Modified, 256 * 1024);
    m.mem_mut().write_slice(0x1000, &p.bytes).unwrap();
    let mut psl = Psl::new();
    psl.set_ipl(31);
    m.set_psl(psl);
    m.set_pc(0x1000);
    // Measure only the loop (skip the first instruction).
    assert_eq!(m.step(), StepEvent::Ok);
    let before = m.cycles();
    while !matches!(m.step(), StepEvent::Halted(_)) {}
    // Each iteration: 2 MTPRs + SOBGTR; subtract the loop overhead by
    // measuring a matching loop of NOPs.
    let bare_total = m.cycles() - before;

    let nop_src = format!(
        "
        start:
            movl #{n}, r2
        top:
            nop
            nop
            sobgtr r2, top
            halt
        "
    );
    let p2 = vax_asm::assemble_text(&nop_src, 0x1000).unwrap();
    let mut m2 = Machine::new(MachineVariant::Modified, 256 * 1024);
    m2.mem_mut().write_slice(0x1000, &p2.bytes).unwrap();
    m2.set_psl(psl);
    m2.set_pc(0x1000);
    assert_eq!(m2.step(), StepEvent::Ok);
    let b2 = m2.cycles();
    while !matches!(m2.step(), StepEvent::Halted(_)) {}
    let nop_total = m2.cycles() - b2;
    let nop_pair = nop_total as f64 / n as f64; // 2 nops + loop control
    let bare_per_op = (bare_total as f64 / n as f64 - (nop_pair - 2.0 * bare_nop_cost())) / 2.0;

    // VM: the same loop as a guest.
    let mut mon = Monitor::new(MonitorConfig::default());
    let vm = mon.create_vm("ipl", VmConfig::default());
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
    let start = mon.machine().cycles();
    mon.run(64_000_000 + 200 * n as u64);
    let vm_total = mon.machine().cycles() - start;
    // Attribute the whole VM run minus the nop-loop equivalent to the
    // 2n emulated MTPRs.
    let vm_per_op = (vm_total as f64 - nop_total as f64) / (2.0 * n as f64);

    E9Results {
        bare_cycles_per_op: bare_per_op,
        vm_cycles_per_op: vm_per_op,
    }
}

fn bare_nop_cost() -> f64 {
    vax_arch::CostModel::default().base_instruction as f64
}

/// E10 / §7.2: shadow-table cache sweep.
#[derive(Debug, Clone)]
pub struct E10Point {
    /// Cache slots configured.
    pub slots: usize,
    /// Shadow-PTE fill count over the run.
    pub fills: u64,
    /// Cache hits / misses on guest context switches.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Total VM cycles.
    pub cycles: u64,
}

/// Runs the multi-process guest with `slots` shadow slots.
pub fn e10_shadow_cache(nproc: u32, slots: usize) -> E10Point {
    let cfg = OsConfig {
        nproc,
        workload: Workload::Touch,
        iterations: 40,
        quantum_ticks: 2,
        tick_cycles: 2000,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: slots,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        32_000_000_000,
    );
    assert!(out.completed, "shadow-cache run completed");
    let s = mon.vm_stats(vm);
    E10Point {
        slots,
        fills: s.shadow_fills,
        hits: s.shadow_cache_hits,
        misses: s.shadow_cache_misses,
        cycles: out.cycles,
    }
}

/// E11 / §4.3.1: shadow faults per guest context switch, and the prefill
/// ablation.
#[derive(Debug, Clone)]
pub struct E11Point {
    /// Prefill group size (1 = pure on-demand).
    pub prefill: u32,
    /// Shadow faults taken.
    pub faults: u64,
    /// Shadow PTEs translated (fills).
    pub fills: u64,
    /// Guest context switches.
    pub switches: u64,
    /// Faults per switch (the paper observed ~17).
    pub faults_per_switch: f64,
    /// Total VM cycles.
    pub cycles: u64,
}

/// Runs the fault-rate measurement with a given prefill group.
pub fn e11_faults_per_switch(prefill: u32) -> E11Point {
    // A page-touch-heavy multiprogramming load whose per-quantum working
    // set resembles the paper's processes.
    let cfg = OsConfig {
        nproc: 6,
        workload: Workload::EditTrans,
        iterations: 400,
        quantum_ticks: 14,
        tick_cycles: 2500,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: 1, // the paper's base system
                prefill_group: prefill,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        32_000_000_000,
    );
    assert!(out.completed);
    let s = mon.vm_stats(vm);
    let switches = s.guest_context_switches.max(1);
    E11Point {
        prefill,
        faults: s.shadow_faults,
        fills: s.shadow_fills,
        switches,
        faults_per_switch: s.shadow_faults as f64 / switches as f64,
        cycles: out.cycles,
    }
}

/// E12 / §4.4.3: I/O virtualization strategies.
#[derive(Debug, Clone)]
pub struct E12Point {
    /// Strategy label.
    pub label: &'static str,
    /// Disk operations completed.
    pub disk_ops: u32,
    /// Traps taken for I/O (KCALLs or emulated CSR accesses).
    pub io_traps: u64,
    /// Traps per operation.
    pub traps_per_op: f64,
    /// Total VM cycles.
    pub cycles: u64,
}

/// Runs the I/O comparison.
pub fn e12_io() -> (E12Point, E12Point) {
    let base = OsConfig {
        nproc: 1,
        workload: Workload::Transaction,
        iterations: 160,
        ..OsConfig::default()
    };
    let img = build_image(&base).unwrap();
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig::default(),
        16_000_000_000,
    );
    assert!(out.completed);
    let s = mon.vm_stats(vm);
    let start_io = E12Point {
        label: "start-I/O (KCALL)",
        disk_ops: out.kernel.disk_ops,
        io_traps: s.kcalls,
        traps_per_op: s.kcalls as f64 / out.kernel.disk_ops.max(1) as f64,
        cycles: out.cycles,
    };
    let mmio_cfg = OsConfig {
        force_mmio: true,
        ..base
    };
    let img = build_image(&mmio_cfg).unwrap();
    let (out, mon, vm) = run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            io_strategy: IoStrategy::EmulatedMmio,
            ..VmConfig::default()
        },
        64_000_000_000,
    );
    assert!(out.completed);
    let s = mon.vm_stats(vm);
    let mmio = E12Point {
        label: "emulated memory-mapped I/O",
        disk_ops: out.kernel.disk_ops,
        io_traps: s.mmio_accesses,
        traps_per_op: s.mmio_accesses as f64 / out.kernel.disk_ops.max(1) as f64,
        cycles: out.cycles,
    };
    (start_io, mmio)
}

/// E13 / §4.4.2: modify fault versus the read-only-shadow alternative.
#[derive(Debug, Clone)]
pub struct E13Point {
    /// Strategy label.
    pub label: &'static str,
    /// Modify faults taken.
    pub modify_faults: u64,
    /// Write-upgrade traps (read-only-shadow strategy).
    pub upgrades: u64,
    /// Extra PROBEW traps forced by the strategy.
    pub probew_extra: u64,
    /// Total VM cycles.
    pub cycles: u64,
}

/// Runs the dirty-bit strategy comparison on a write+probe heavy guest.
pub fn e13_dirty() -> (E13Point, E13Point) {
    // Mixed load: the touch/transaction processes generate dirty pages,
    // the probe process generates PROBEW traffic.
    let cfg = OsConfig {
        nproc: 7,
        workload: Workload::Mixed,
        iterations: 150,
        ..OsConfig::default()
    };
    let img = build_image(&cfg).unwrap();
    let run = |strategy: DirtyStrategy, label: &'static str| {
        let (out, mon, vm) = run_in_vm(
            &img,
            MonitorConfig::default(),
            VmConfig {
                dirty_strategy: strategy,
                ..VmConfig::default()
            },
            16_000_000_000,
        );
        assert!(out.completed, "{label} run completed");
        let s = mon.vm_stats(vm);
        E13Point {
            label,
            modify_faults: s.modify_faults,
            upgrades: s.dirty_upgrades,
            probew_extra: s.probew_extra_traps,
            cycles: out.cycles,
        }
    };
    (
        run(DirtyStrategy::ModifyFault, "modify fault (paper)"),
        run(DirtyStrategy::ReadOnlyShadow, "read-only shadow (rejected)"),
    )
}

/// E14 / §5 WAIT: consolidation scheduling with and without the idle
/// handshake.
#[derive(Debug, Clone)]
pub struct E14Results {
    /// Cycles for the busy VM to finish while the idle VM uses WAIT.
    pub busy_cycles_with_wait: u64,
    /// Cycles for the busy VM to finish while the idle VM spins.
    pub busy_cycles_with_spin: u64,
    /// WAITs the idle VM executed.
    pub waits: u64,
}

/// Runs the WAIT experiment: one busy guest, one idle guest.
pub fn e14_wait() -> E14Results {
    let busy_src = "
        start:
            movl #30000, r2
            clrl r3
        top:
            addl2 r2, r3
            sobgtr r2, top
            halt
        ";
    let busy = vax_asm::assemble_text(busy_src, 0x1000).unwrap();

    let run = |idle_src: &str| -> (u64, u64) {
        let mut mon = Monitor::new(MonitorConfig::default());
        let a = mon.create_vm("busy", VmConfig::default());
        let b = mon.create_vm("idle", VmConfig::default());
        mon.vm_write_phys(a, 0x1000, &busy.bytes).unwrap();
        mon.boot_vm(a, 0x1000);
        let idle = vax_asm::assemble_text(idle_src, 0x1000).unwrap();
        mon.vm_write_phys(b, 0x1000, &idle.bytes).unwrap();
        mon.boot_vm(b, 0x1000);
        // Wall-clock cycles until the busy VM halts: a spinning idle VM
        // steals half of every round-robin cycle, a WAITing one does not.
        let mut budget = 0u64;
        while mon.vm(a).state != vax_vmm::VmState::ConsoleHalt && budget < 512 {
            mon.run(250_000);
            budget += 1;
        }
        (mon.machine().cycles(), mon.vm(b).stats.waits)
    };

    // Idle guest A: WAIT in a loop (the handshake).
    let (busy_with_wait, waits) = run("top: wait\n brb top");
    // Idle guest B: a conventional idle spin loop — the VMM thinks the VM
    // is busy and keeps scheduling it (paper §5).
    let (busy_with_spin, _) = run("top: brb top");

    E14Results {
        busy_cycles_with_wait: busy_with_wait,
        busy_cycles_with_spin: busy_with_spin,
        waits,
    }
}

/// Convenience: rerun one standard guest mix and expose the outcome (for
/// the report and Criterion).
pub fn standard_mix_vm() -> (RunOutcome, Monitor, vax_vmm::VmId) {
    let cfg = perf_config(Workload::Mixed, 4, 200);
    let img = build_image(&cfg).unwrap();
    run_in_vm(
        &img,
        MonitorConfig::default(),
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: 8,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
        16_000_000_000,
    )
}

/// Ablation: scheduling-quantum sweep with two co-resident VMs. Smaller
/// quanta mean more world switches (register file + MMU bases + full TLB
/// flush each), so total machine cycles to complete the same work grow.
#[derive(Debug, Clone)]
pub struct QuantumPoint {
    /// Quantum in cycles.
    pub quantum: u64,
    /// Total machine cycles until both VMs completed.
    pub total_cycles: u64,
    /// Cycles spent in VMM software paths.
    pub vmm_cycles: u64,
    /// World switches performed.
    pub switches: u64,
}

/// Runs the quantum ablation.
pub fn ablation_quantum_sweep() -> Vec<QuantumPoint> {
    [5_000u64, 20_000, 80_000, 320_000]
        .into_iter()
        .map(|quantum| {
            let cfg = perf_config(Workload::EditTrans, 2, 150);
            let img = build_image(&cfg).unwrap();
            let mut mon = Monitor::new(MonitorConfig {
                quantum,
                ..MonitorConfig::default()
            });
            let a = vax_os::boot_in_monitor(&mut mon, &img, VmConfig::default());
            let b = vax_os::boot_in_monitor(&mut mon, &img, VmConfig::default());
            let exit = mon.run(64_000_000_000);
            assert_eq!(exit, vax_vmm::RunExit::AllHalted, "quantum {quantum}");
            let _ = (a, b);
            QuantumPoint {
                quantum,
                total_cycles: mon.machine().cycles(),
                vmm_cycles: mon.vmm_cycles(),
                switches: mon.world_switches(),
            }
        })
        .collect()
}

/// Ablation: VM-count scaling. Each VM runs identical work; total
/// machine cycles grow with consolidation overhead (world switches plus
/// per-VM VMM service). The paper's design keeps VMs memory-resident
/// ("it did limit the size and number of active VMs to those that fit in
/// memory", §7.2), so admission is the only limit.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Co-resident VM count.
    pub vms: usize,
    /// Total machine cycles for all VMs to finish.
    pub total_cycles: u64,
    /// Average cycles per VM (total / count).
    pub per_vm_cycles: u64,
    /// Fraction of all cycles spent in VMM software paths.
    pub vmm_share: f64,
}

/// Runs the scaling ablation.
pub fn ablation_vm_scaling() -> Vec<ScalePoint> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|n| {
            let cfg = perf_config(Workload::EditTrans, 2, 120);
            let img = build_image(&cfg).unwrap();
            let mut mon = Monitor::new(MonitorConfig {
                mem_bytes: 16 * 1024 * 1024,
                ..MonitorConfig::default()
            });
            for _ in 0..n {
                vax_os::boot_in_monitor(&mut mon, &img, VmConfig::default());
            }
            let exit = mon.run(256_000_000_000);
            assert_eq!(exit, vax_vmm::RunExit::AllHalted, "{n} VMs");
            let total = mon.machine().cycles();
            ScalePoint {
                vms: n,
                total_cycles: total,
                per_vm_cycles: total / n as u64,
                vmm_share: mon.vmm_cycles() as f64 / total as f64,
            }
        })
        .collect()
}

/// E15: the ring-compression leak — virtual-executive access to a
/// VM-kernel-only page — alongside the preserved user/supervisor checks.
#[derive(Debug, Clone, Copy)]
pub struct E15Results {
    /// VM-kernel access to a kernel-only page works (required).
    pub kernel_can_access: bool,
    /// VM-executive access also works (the acknowledged leak, §4.3.1).
    pub executive_can_access: bool,
    /// VM-user access faults (boundary preserved).
    pub user_blocked: bool,
}

/// Runs E15 (reuses the scan machinery at the protection level).
pub fn e15_ring_leak() -> E15Results {
    use vax_arch::Protection;
    let kw = Protection::Kw.ring_compressed();
    E15Results {
        kernel_can_access: kw.allows_write(vax_vmm::compress_mode(AccessMode::Kernel)),
        executive_can_access: kw.allows_write(vax_vmm::compress_mode(AccessMode::Executive)),
        user_blocked: !kw.allows_read(AccessMode::User),
    }
}

/// Shared result check used in tests: scans must classify the famous
/// four instruction groups as the paper does.
pub fn table1_violations(results: &SensitivityResults) -> Vec<String> {
    results
        .standard
        .iter()
        .filter(|f| f.is_violation() && f.opcode.is_table1_instruction())
        .map(|f| f.opcode.mnemonic().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_cpu::ScanOutcome;

    #[test]
    fn e1_finds_the_papers_violations() {
        let r = e1_sensitivity();
        let v = table1_violations(&r);
        for m in ["REI", "MOVPSL", "PROBER", "PROBEW", "CHMK"] {
            assert!(v.contains(&m.to_string()), "{m} missing from {v:?}");
        }
        // In the VM every privileged-sensitive instruction takes the
        // VM-emulation trap.
        for f in &r.in_vm {
            if f.privileged {
                assert_eq!(
                    f.outcome,
                    ScanOutcome::VmEmulationTrap,
                    "{} should trap for emulation",
                    f.opcode
                );
            }
        }
    }

    #[test]
    fn e9_ratio_is_in_band() {
        let r = e9_mtpr_ipl(500);
        let ratio = r.ratio();
        assert!(
            (8.0..=14.0).contains(&ratio),
            "MTPR-to-IPL emulation ratio {ratio:.1} outside the paper's 10-12x band (±2)"
        );
    }

    #[test]
    fn e15_matches_the_paper() {
        let r = e15_ring_leak();
        assert!(r.kernel_can_access);
        assert!(r.executive_can_access, "the acknowledged leak");
        assert!(r.user_blocked);
    }

    #[test]
    fn e14_wait_lets_the_busy_vm_finish_sooner() {
        let r = e14_wait();
        assert!(r.waits > 0, "idle VM used the handshake");
        assert!(
            r.busy_cycles_with_wait < r.busy_cycles_with_spin,
            "WAIT must beat the spin loop: {} vs {}",
            r.busy_cycles_with_wait,
            r.busy_cycles_with_spin
        );
    }
}
