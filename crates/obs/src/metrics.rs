//! Snapshot registry and exposition formats.
//!
//! A [`Metrics`] value is a point-in-time snapshot — plain name/value
//! pairs plus named [`Histogram`] copies — assembled by whoever owns the
//! live state (the monitor, a bench harness) and rendered to JSON or
//! Prometheus text. Keeping the registry a dumb snapshot means the
//! exposition layer never touches live VMM state and needs no deps.

use crate::hist::Histogram;
use crate::ring::TraceRecord;

/// A snapshot of counters, gauges, and histograms ready for exposition.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, Option<f64>)>,
    histograms: Vec<(String, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds a monotonic counter sample.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Metrics {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Adds a gauge sample. `None` renders as JSON `null` and is omitted
    /// from Prometheus output — the honest encoding for a rate whose
    /// denominator is zero (e.g. TLB hit rate with no lookups).
    pub fn gauge(&mut self, name: &str, value: Option<f64>) -> &mut Metrics {
        self.gauges.push((name.to_string(), value));
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: &str, h: &Histogram) -> &mut Metrics {
        self.histograms.push((name.to_string(), h.clone()));
        self
    }

    /// Accumulates `delta` into a counter by name, creating it at `delta`
    /// if absent. [`Metrics::counter`] re-samples a value from live state;
    /// `bump` is for event-style counters a long-lived registry grows in
    /// place — snapshot bytes written, VM forks, migrations — where the
    /// registry itself is the only record of the total.
    pub fn bump(&mut self, name: &str, delta: u64) -> &mut Metrics {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 += delta,
            None => self.counters.push((name.to_string(), delta)),
        }
        self
    }

    /// Counter value by name, if present.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Folds another snapshot into this one: counters are summed by name
    /// (unknown names are appended in `other`'s order), histograms are
    /// merged by name. Gauges are **not** merged — a gauge is a
    /// point-in-time reading (a rate, a fraction) whose sum across
    /// registries means nothing; callers aggregating registries must
    /// recompute their gauges from the merged counters (as
    /// `Fleet::fleet_metrics` does for the TLB hit rate).
    pub fn merge(&mut self, other: &Metrics) -> &mut Metrics {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self
    }

    /// Histogram snapshot by name, if present.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections. Histograms carry summary moments,
    /// bucket-resolved p50/p90/p99, and the raw non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Some(x) => out.push_str(&format!("\n    \"{name}\": {x:.6}")),
                None => out.push_str(&format!("\n    \"{name}\": null")),
            }
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets()
                .map(|(edge, c)| format!("[{edge}, {c}]"))
                .collect();
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.2}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot as Prometheus text exposition (version 0.0.4):
    /// `vax_`-prefixed metric names, cumulative `le` buckets with a final
    /// `+Inf`, and `_sum`/`_count` series per histogram.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let m = prom_name(name);
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, v) in &self.gauges {
            if let Some(x) = v {
                let m = prom_name(name);
                out.push_str(&format!("# TYPE {m} gauge\n{m} {x}\n"));
            }
        }
        for (name, h) in &self.histograms {
            let m = prom_name(name);
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut acc = 0u64;
            for (edge, cum) in h.cumulative() {
                acc = cum;
                out.push_str(&format!("{m}_bucket{{le=\"{edge}\"}} {cum}\n"));
            }
            debug_assert_eq!(acc, h.count());
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{m}_sum {}\n", h.sum()));
            out.push_str(&format!("{m}_count {}\n", h.count()));
        }
        out
    }
}

/// Maps an arbitrary metric name onto the Prometheus charset with a
/// `vax_` namespace prefix.
fn prom_name(name: &str) -> String {
    let mut m = String::with_capacity(name.len() + 4);
    m.push_str("vax_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            m.push(ch);
        } else {
            m.push('_');
        }
    }
    m
}

/// Renders traced exits as Chrome trace-event JSON (the `about:tracing` /
/// Perfetto format): one complete (`ph: "X"`) event per record, with
/// `ts` = exit-start simulated cycles and `dur` = exit-to-resume cost.
/// The virtual ring at exit time becomes the `tid`, so the timeline
/// groups exits by the mode the guest believed it was in.
pub fn chrome_trace<'a, I>(records: I) -> String
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut out = String::with_capacity(1024);
    out.push_str("{\"traceEvents\": [");
    for (i, rec) in records.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"vmexit\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{\"pc\": \"{:#010x}\"}}}}",
            rec.cause.name(),
            rec.start_cycles,
            rec.cost_cycles,
            rec.ring,
            rec.guest_pc
        ));
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::ExitCause;

    fn sample() -> Metrics {
        let mut h = Histogram::new();
        for v in [90u64, 90, 6] {
            h.record(v);
        }
        let mut m = Metrics::new();
        m.counter("instructions", 1234)
            .gauge("tlb_hit_rate", None)
            .gauge("mips", Some(2.5))
            .histogram("exit_cost_emul_mtpr_ipl", &h);
        m
    }

    #[test]
    fn json_has_all_sections() {
        let j = sample().to_json();
        assert!(j.contains("\"instructions\": 1234"));
        assert!(j.contains("\"tlb_hit_rate\": null"));
        assert!(j.contains("\"mips\": 2.500000"));
        assert!(j.contains("\"exit_cost_emul_mtpr_ipl\""));
        assert!(j.contains("\"count\": 3"));
        assert!(j.contains("\"sum\": 186"));
        // Braces balance — cheap structural sanity without a JSON parser.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE vax_instructions counter"));
        assert!(p.contains("vax_instructions 1234"));
        // Null gauge omitted, present gauge kept.
        assert!(!p.contains("tlb_hit_rate"));
        assert!(p.contains("vax_mips 2.5"));
        // Histogram series: cumulative buckets end at +Inf = count.
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_bucket{le=\"+Inf\"} 3"));
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_sum 186"));
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_count 3"));
    }

    #[test]
    fn get_counter_roundtrip() {
        let m = sample();
        assert_eq!(m.get_counter("instructions"), Some(1234));
        assert_eq!(m.get_counter("missing"), None);
    }

    #[test]
    fn merge_sums_counters_and_folds_histograms() {
        let mut a = sample();
        let mut b = sample();
        b.counter("only_in_b", 7);
        a.merge(&b);
        assert_eq!(a.get_counter("instructions"), Some(2468));
        assert_eq!(a.get_counter("only_in_b"), Some(7));
        let h = a.get_histogram("exit_cost_emul_mtpr_ipl").unwrap();
        assert_eq!(h.count(), 6, "3 samples from each side");
        assert_eq!(h.sum(), 372);
        // Gauges are point-in-time readings: merge leaves ours alone and
        // never sums the other side's.
        let j = a.to_json();
        assert_eq!(j.matches("\"mips\"").count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity_either_way() {
        let mut empty = Metrics::new();
        empty.merge(&sample());
        assert_eq!(empty.get_counter("instructions"), Some(1234));
        let mut m = sample();
        m.merge(&Metrics::new());
        assert_eq!(m.get_counter("instructions"), Some(1234));
        assert_eq!(
            m.get_histogram("exit_cost_emul_mtpr_ipl").unwrap().count(),
            3
        );
    }

    #[test]
    fn chrome_trace_events() {
        let recs = [
            TraceRecord {
                cause: ExitCause::EmulMtprIpl,
                ring: 0,
                guest_pc: 0x8000_1000,
                start_cycles: 100,
                cost_cycles: 90,
            },
            TraceRecord {
                cause: ExitCause::ShadowFill,
                ring: 3,
                guest_pc: 0x200,
                start_cycles: 400,
                cost_cycles: 320,
            },
        ];
        let t = chrome_trace(recs.iter());
        assert!(t.contains("\"name\": \"emul_mtpr_ipl\""));
        assert!(t.contains("\"ts\": 100"));
        assert!(t.contains("\"dur\": 90"));
        assert!(t.contains("\"tid\": 3"));
        assert!(t.contains("\"pc\": \"0x80001000\""));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
    }
}
