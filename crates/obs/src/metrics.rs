//! Snapshot registry and exposition formats.
//!
//! A [`Metrics`] value is a point-in-time snapshot — plain name/value
//! pairs plus named [`Histogram`] copies — assembled by whoever owns the
//! live state (the monitor, a bench harness) and rendered to JSON or
//! Prometheus text. Keeping the registry a dumb snapshot means the
//! exposition layer never touches live VMM state and needs no deps.

use crate::hist::Histogram;
use crate::prof::ProfEvent;
use crate::ring::TraceRecord;

/// A snapshot of counters, gauges, and histograms ready for exposition.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, Option<f64>)>,
    histograms: Vec<(String, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds a monotonic counter sample.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Metrics {
        self.counters.push((name.to_string(), value));
        self
    }

    /// Adds a gauge sample. `None` renders as JSON `null` and is omitted
    /// from Prometheus output — the honest encoding for a rate whose
    /// denominator is zero (e.g. TLB hit rate with no lookups).
    pub fn gauge(&mut self, name: &str, value: Option<f64>) -> &mut Metrics {
        self.gauges.push((name.to_string(), value));
        self
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: &str, h: &Histogram) -> &mut Metrics {
        self.histograms.push((name.to_string(), h.clone()));
        self
    }

    /// Accumulates `delta` into a counter by name, creating it at `delta`
    /// if absent. [`Metrics::counter`] re-samples a value from live state;
    /// `bump` is for event-style counters a long-lived registry grows in
    /// place — snapshot bytes written, VM forks, migrations — where the
    /// registry itself is the only record of the total.
    pub fn bump(&mut self, name: &str, delta: u64) -> &mut Metrics {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 += delta,
            None => self.counters.push((name.to_string(), delta)),
        }
        self
    }

    /// Counter value by name, if present.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Folds another snapshot into this one: counters are summed by name
    /// (unknown names are appended in `other`'s order), histograms are
    /// merged by name. Gauges are **not** merged — a gauge is a
    /// point-in-time reading (a rate, a fraction) whose sum across
    /// registries means nothing; callers aggregating registries must
    /// recompute their gauges from the merged counters (as
    /// `Fleet::fleet_metrics` does for the TLB hit rate).
    pub fn merge(&mut self, other: &Metrics) -> &mut Metrics {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self
    }

    /// Gauge value by name, if present. The outer `Option` is presence;
    /// the inner is the gauge's own null encoding.
    pub fn get_gauge(&self, name: &str) -> Option<Option<f64>> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name, if present.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` sections. Histograms carry summary moments,
    /// bucket-resolved p50/p90/p99, and the raw non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Some(x) => out.push_str(&format!("\n    \"{name}\": {x:.6}")),
                None => out.push_str(&format!("\n    \"{name}\": null")),
            }
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets()
                .map(|(edge, c)| format!("[{edge}, {c}]"))
                .collect();
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.2}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{}]}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the snapshot as Prometheus text exposition (version 0.0.4):
    /// `vax_`-prefixed metric names, a `# HELP` / `# TYPE` annotation pair
    /// for every family, cumulative `le` buckets with a final `+Inf`, and
    /// `_sum`/`_count` series per histogram.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let m = prom_name(name);
            let help = prom_help(name);
            out.push_str(&format!("# HELP {m} {help}\n# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, v) in &self.gauges {
            if let Some(x) = v {
                let m = prom_name(name);
                let help = prom_help(name);
                out.push_str(&format!("# HELP {m} {help}\n# TYPE {m} gauge\n{m} {x}\n"));
            }
        }
        for (name, h) in &self.histograms {
            let m = prom_name(name);
            let help = prom_help(name);
            out.push_str(&format!("# HELP {m} {help}\n# TYPE {m} histogram\n"));
            let mut acc = 0u64;
            for (edge, cum) in h.cumulative() {
                acc = cum;
                out.push_str(&format!("{m}_bucket{{le=\"{edge}\"}} {cum}\n"));
            }
            debug_assert_eq!(acc, h.count());
            out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{m}_sum {}\n", h.sum()));
            out.push_str(&format!("{m}_count {}\n", h.count()));
        }
        out
    }
}

/// Maps an arbitrary metric name onto the Prometheus charset with a
/// `vax_` namespace prefix.
fn prom_name(name: &str) -> String {
    let mut m = String::with_capacity(name.len() + 4);
    m.push_str("vax_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            m.push(ch);
        } else {
            m.push('_');
        }
    }
    m
}

/// One-line `# HELP` text for a metric family. Known families get a
/// specific description; anything else falls back to a generic line so
/// every exported family is annotated (the exposition test rejects
/// unannotated families).
fn prom_help(name: &str) -> &'static str {
    match name {
        "instructions" => "Guest instructions retired (tier-invariant)",
        "cycles" | "simulated_cycles" => "Simulated machine cycles",
        "vmm_cycles" => "Cycles charged to VMM software emulation paths",
        "vm_exits" => "Guest-to-VMM exits of all causes",
        "world_switches" => "VM world switches performed by the monitor",
        "trace_records" => "Exit-trace records captured in the ring",
        "trace_records_dropped" => "Exit-trace records dropped at ring capacity",
        "fleet_monitors" => "Monitors aggregated into this registry",
        "tlb_hit_rate" => "TLB hits over lookups, point-in-time",
        "decode_cache_hit_rate" => "Decode-cache hits over lookups, point-in-time",
        "superblock_length" => "Superblock lengths in uops at translate time",
        "trans_blocks_translated" => "Superblocks lowered into the translation cache",
        "trans_blocks_executed" => "Superblock dispatches through the translated tier",
        "trans_uops_executed" => "Uops retired by the translated tier",
        "trans_side_exit_interrupt" => "Superblocks cut short by a deliverable interrupt",
        "trans_side_exit_bail" => "Fast-path bails to the interpreter of all causes",
        "trans_side_exit_smc" => "Superblocks stopped by a retired store dirtying code",
        "trans_side_exit_tlb_miss" => "Fast-path bails on a software-TLB miss",
        "trans_side_exit_prot" => "Fast-path bails on a page-protection mismatch",
        "trans_side_exit_modify" => "Fast-path bails on a write to a PTE with M clear",
        "trans_side_exit_page_cross" => "Fast-path bails on a mapped page-crossing operand",
        "trans_side_exit_io" => "Fast-path bails on an IO-space or unbacked reference",
        "trans_chain_hits" => "Direct superblock-to-superblock chain follows",
        "trans_chain_links_severed" => "Stale successor links severed after invalidation",
        "trans_invalidations" => "Translation-cache invalidation events",
        "profile_samples" => "Profiler interval samples taken",
        "profile_overflow_cycles" => "Sampled cycles past the PC-bucket cap",
        "profile_events_dropped" => "Superblock lifecycle events dropped at cap",
        "profile_dirty_rate" => "Pages newly dirtied per profiler sampling interval",
        "profile_page_cycles" => "Sampled cycles attributed per guest page",
        "dirty_pages" => "Distinct pages written since tracking enabled or last drain",
        "touched_pages" => "Distinct pages written since tracking enabled",
        "dirty_page_events" => "Monotonic count of page-dirtying events",
        "modify_faults" => "Guest modify faults taken via the shadow tables",
        "dirty_upgrades" => "Shadow PTEs upgraded to writable after a modify fault",
        "hot_superblocks" => "Translated superblocks with per-block profiles",
        "superblock_cycles_retired" => "Cycles retired per profiled superblock",
        "superblock_executions" => "Executions per profiled superblock",
        _ => {
            if name.starts_with("exit_cost_") {
                "Exit-to-resume cost in simulated cycles for this exit cause"
            } else if name.starts_with("profile_instructions_") {
                "Instructions retired through this execution path while profiling"
            } else if name.starts_with("profile_cycles_") {
                "Sampled cycles attributed to this execution path"
            } else {
                "Simulated-machine metric (see DESIGN.md for semantics)"
            }
        }
    }
}

/// Renders traced exits as Chrome trace-event JSON (the `about:tracing` /
/// Perfetto format): one complete (`ph: "X"`) event per record, with
/// `ts` = exit-start simulated cycles and `dur` = exit-to-resume cost.
/// The virtual ring at exit time becomes the `tid`, so the timeline
/// groups exits by the mode the guest believed it was in.
pub fn chrome_trace<'a, I>(records: I) -> String
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    chrome_trace_with_events(records, &[])
}

/// [`chrome_trace`] plus superblock lifecycle events from the profiler:
/// each [`ProfEvent`] becomes an instant (`ph: "i"`) event on its own
/// `tid` (99) so translate / invalidate / SMC-drain activity lines up on
/// the same simulated-cycle timeline as the VM exits.
pub fn chrome_trace_with_events<'a, I>(records: I, events: &[ProfEvent]) -> String
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut out = String::with_capacity(1024);
    out.push_str("{\"traceEvents\": [");
    let mut first = true;
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"vmexit\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 0, \"tid\": {}, \"args\": {{\"pc\": \"{:#010x}\"}}}}",
            rec.cause.name(),
            rec.start_cycles,
            rec.cost_cycles,
            rec.ring,
            rec.guest_pc
        ));
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"cat\": \"superblock\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {}, \"pid\": 0, \"tid\": 99, \
             \"args\": {{\"pa\": \"{:#010x}\", \"arg\": {}}}}}",
            ev.kind.name(),
            ev.cycles,
            ev.pa,
            ev.arg
        ));
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::ExitCause;

    fn sample() -> Metrics {
        let mut h = Histogram::new();
        for v in [90u64, 90, 6] {
            h.record(v);
        }
        let mut m = Metrics::new();
        m.counter("instructions", 1234)
            .gauge("tlb_hit_rate", None)
            .gauge("mips", Some(2.5))
            .histogram("exit_cost_emul_mtpr_ipl", &h);
        m
    }

    #[test]
    fn json_has_all_sections() {
        let j = sample().to_json();
        assert!(j.contains("\"instructions\": 1234"));
        assert!(j.contains("\"tlb_hit_rate\": null"));
        assert!(j.contains("\"mips\": 2.500000"));
        assert!(j.contains("\"exit_cost_emul_mtpr_ipl\""));
        assert!(j.contains("\"count\": 3"));
        assert!(j.contains("\"sum\": 186"));
        // Braces balance — cheap structural sanity without a JSON parser.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced JSON: {j}"
        );
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE vax_instructions counter"));
        assert!(p.contains("vax_instructions 1234"));
        // Null gauge omitted, present gauge kept.
        assert!(!p.contains("tlb_hit_rate"));
        assert!(p.contains("vax_mips 2.5"));
        // Histogram series: cumulative buckets end at +Inf = count.
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_bucket{le=\"+Inf\"} 3"));
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_sum 186"));
        assert!(p.contains("vax_exit_cost_emul_mtpr_ipl_count 3"));
    }

    #[test]
    fn get_counter_roundtrip() {
        let m = sample();
        assert_eq!(m.get_counter("instructions"), Some(1234));
        assert_eq!(m.get_counter("missing"), None);
    }

    #[test]
    fn merge_sums_counters_and_folds_histograms() {
        let mut a = sample();
        let mut b = sample();
        b.counter("only_in_b", 7);
        a.merge(&b);
        assert_eq!(a.get_counter("instructions"), Some(2468));
        assert_eq!(a.get_counter("only_in_b"), Some(7));
        let h = a.get_histogram("exit_cost_emul_mtpr_ipl").unwrap();
        assert_eq!(h.count(), 6, "3 samples from each side");
        assert_eq!(h.sum(), 372);
        // Gauges are point-in-time readings: merge leaves ours alone and
        // never sums the other side's.
        let j = a.to_json();
        assert_eq!(j.matches("\"mips\"").count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity_either_way() {
        let mut empty = Metrics::new();
        empty.merge(&sample());
        assert_eq!(empty.get_counter("instructions"), Some(1234));
        let mut m = sample();
        m.merge(&Metrics::new());
        assert_eq!(m.get_counter("instructions"), Some(1234));
        assert_eq!(
            m.get_histogram("exit_cost_emul_mtpr_ipl").unwrap().count(),
            3
        );
    }

    /// Satellite: every exported family must carry `# HELP` and `# TYPE`
    /// annotations. Parses the exposition the way a scraper would and
    /// rejects any sample whose family was not annotated first.
    #[test]
    fn prometheus_every_family_is_annotated() {
        let mut sb = Histogram::new();
        sb.record_n(7, 3);
        let mut m = sample();
        m.counter("profile_samples", 42)
            .counter("profile_cycles_trans", 9000)
            .counter("made_up_metric_nobody_registered", 1)
            .histogram("superblock_cycles_retired", &sb);
        let text = m.to_prometheus();
        let mut helped: std::collections::HashSet<&str> = std::collections::HashSet::new();
        let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (fam, help) = rest.split_once(' ').expect("HELP has text");
                assert!(!help.trim().is_empty(), "empty HELP for {fam}");
                helped.insert(fam);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split_whitespace().next().expect("TYPE has family"));
            } else if !line.is_empty() {
                let sample_name = line.split([' ', '{']).next().expect("sample name");
                let family = sample_name
                    .strip_suffix("_bucket")
                    .or_else(|| sample_name.strip_suffix("_sum"))
                    .or_else(|| sample_name.strip_suffix("_count"))
                    .unwrap_or(sample_name);
                assert!(
                    helped.contains(family) || helped.contains(sample_name),
                    "unannotated family for sample {sample_name}: missing # HELP"
                );
                assert!(
                    typed.contains(family) || typed.contains(sample_name),
                    "unannotated family for sample {sample_name}: missing # TYPE"
                );
            }
        }
        assert!(helped.contains("vax_profile_samples"));
        assert!(helped.contains("vax_superblock_cycles_retired"));
        assert!(helped.contains("vax_made_up_metric_nobody_registered"));
    }

    /// Satellite: `Metrics::merge` over `record_n`-built histograms and
    /// the profile families — disjoint registries append, overlapping
    /// registries fold, and gauges are left for the caller to recompute.
    #[test]
    fn merge_record_n_profile_families() {
        // Overlapping: same superblock family on both sides.
        let mut ha = Histogram::new();
        ha.record_n(100, 4); // 4 blocks retiring 100 cycles each
        let mut hb = Histogram::new();
        hb.record_n(100, 2);
        hb.record_n(7, 5);
        let mut a = Metrics::new();
        a.counter("profile_samples", 10)
            .gauge("profile_coverage", Some(0.5))
            .histogram("superblock_cycles_retired", &ha);
        let mut b = Metrics::new();
        b.counter("profile_samples", 32)
            .counter("profile_cycles_trans", 640)
            .gauge("profile_coverage", Some(0.9))
            .histogram("superblock_cycles_retired", &hb)
            .histogram("profile_dirty_rate", &hb);
        a.merge(&b);
        assert_eq!(a.get_counter("profile_samples"), Some(42));
        // Disjoint counter appended.
        assert_eq!(a.get_counter("profile_cycles_trans"), Some(640));
        let h = a
            .get_histogram("superblock_cycles_retired")
            .expect("merged");
        assert_eq!(h.count(), 11, "4 + 2 + 5 record_n'd samples");
        assert_eq!(h.sum(), 4 * 100 + 2 * 100 + 5 * 7);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 7);
        // Disjoint histogram appended whole.
        assert_eq!(
            a.get_histogram("profile_dirty_rate").map(|h| h.count()),
            Some(7)
        );
        // Gauges: ours kept as-is, theirs never summed in — the caller
        // recomputes (the Fleet tlb_hit_rate pattern).
        let j = a.to_json();
        assert_eq!(j.matches("\"profile_coverage\"").count(), 1);
        assert!(j.contains("\"profile_coverage\": 0.500000"));
    }

    #[test]
    fn chrome_trace_includes_superblock_lifecycle_events() {
        use crate::prof::{ProfEvent, ProfEventKind};
        let recs = [TraceRecord {
            cause: ExitCause::EmulMtprIpl,
            ring: 0,
            guest_pc: 0x1000,
            start_cycles: 100,
            cost_cycles: 90,
        }];
        let events = [
            ProfEvent {
                kind: ProfEventKind::Translate,
                pa: 0x2000,
                arg: 12,
                cycles: 50,
            },
            ProfEvent {
                kind: ProfEventKind::SmcDrain,
                pa: 0x2000,
                arg: 16,
                cycles: 400,
            },
        ];
        let t = chrome_trace_with_events(recs.iter(), &events);
        assert!(t.contains("\"name\": \"sb_translate\""));
        assert!(t.contains("\"name\": \"sb_smc_drain\""));
        assert!(t.contains("\"cat\": \"superblock\""));
        assert!(t.contains("\"ph\": \"i\""));
        assert!(t.contains("\"pa\": \"0x00002000\""));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
        // Events-only export (no exit records) still renders valid JSON.
        let none: [TraceRecord; 0] = [];
        let only = chrome_trace_with_events(none.iter(), &events);
        assert!(only.starts_with("{\"traceEvents\": [\n  {\"name\": \"sb_translate\""));
    }

    #[test]
    fn chrome_trace_events() {
        let recs = [
            TraceRecord {
                cause: ExitCause::EmulMtprIpl,
                ring: 0,
                guest_pc: 0x8000_1000,
                start_cycles: 100,
                cost_cycles: 90,
            },
            TraceRecord {
                cause: ExitCause::ShadowFill,
                ring: 3,
                guest_pc: 0x200,
                start_cycles: 400,
                cost_cycles: 320,
            },
        ];
        let t = chrome_trace(recs.iter());
        assert!(t.contains("\"name\": \"emul_mtpr_ipl\""));
        assert!(t.contains("\"ts\": 100"));
        assert!(t.contains("\"dur\": 90"));
        assert!(t.contains("\"tid\": 3"));
        assert!(t.contains("\"pc\": \"0x80001000\""));
        assert_eq!(t.matches('{').count(), t.matches('}').count());
    }
}
