//! The collection point the VMM drives from its exit/resume seams.

use crate::cause::ExitCause;
use crate::hist::Histogram;
use crate::ring::{TraceRecord, TraceRing};

/// An exit in flight: begun, not yet resumed.
#[derive(Debug, Clone, Copy)]
struct Pending {
    cause: ExitCause,
    start: u64,
    slot: usize,
}

/// Enabled observability state: the trace ring plus one cost histogram
/// per [`ExitCause`].
#[derive(Debug, Clone)]
pub struct Obs {
    ring: TraceRing,
    hist: [Histogram; ExitCause::COUNT],
    pending: Option<Pending>,
}

impl Obs {
    /// Creates enabled state with a trace ring of `ring_capacity`.
    pub fn new(ring_capacity: usize) -> Obs {
        Obs {
            ring: TraceRing::new(ring_capacity),
            hist: core::array::from_fn(|_| Histogram::new()),
            pending: None,
        }
    }

    /// The exit-trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.ring
    }

    /// The cost histogram for one cause.
    pub fn histogram(&self, cause: ExitCause) -> &Histogram {
        &self.hist[cause.index()]
    }

    /// Exits recorded for one cause.
    pub fn exits(&self, cause: ExitCause) -> u64 {
        self.hist[cause.index()].count()
    }

    /// Total exits recorded across all causes.
    pub fn total_exits(&self) -> u64 {
        self.hist.iter().map(Histogram::count).sum()
    }

    fn exit_begin(&mut self, cause: ExitCause, guest_pc: u32, ring: u8, now: u64) {
        let slot = self.ring.push(TraceRecord {
            cause,
            ring,
            guest_pc,
            start_cycles: now,
            cost_cycles: 0,
        });
        self.pending = Some(Pending {
            cause,
            start: now,
            slot,
        });
    }

    fn refine(&mut self, cause: ExitCause) {
        if let Some(p) = &mut self.pending {
            p.cause = cause;
            if let Some(rec) = self.ring.get_mut(p.slot) {
                rec.cause = cause;
            }
        }
    }

    fn exit_end(&mut self, now: u64) {
        if let Some(p) = self.pending.take() {
            let cost = now.saturating_sub(p.start);
            self.hist[p.cause.index()].record(cost);
            if let Some(rec) = self.ring.get_mut(p.slot) {
                rec.cost_cycles = cost;
            }
        }
    }
}

/// The sink the VMM owns. Enum dispatch keeps the disabled case a
/// branch-predictable no-op — no indirect call, no allocation — so
/// tracing costs ≈ nothing when off.
#[derive(Debug, Clone, Default)]
pub enum ObsSink {
    /// Tracing disabled: every call is a no-op.
    #[default]
    Off,
    /// Tracing enabled. Boxed so the sink itself stays pointer-sized
    /// inside the monitor.
    On(Box<Obs>),
}

impl ObsSink {
    /// A disabled sink.
    pub fn off() -> ObsSink {
        ObsSink::Off
    }

    /// An enabled sink with a trace ring of `ring_capacity` records.
    pub fn on(ring_capacity: usize) -> ObsSink {
        ObsSink::On(Box::new(Obs::new(ring_capacity)))
    }

    /// True when enabled.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, ObsSink::On(_))
    }

    /// The enabled state, if any.
    pub fn state(&self) -> Option<&Obs> {
        match self {
            ObsSink::Off => None,
            ObsSink::On(o) => Some(o),
        }
    }

    /// Marks the start of an exit: `cause` as classified at the exit
    /// seam (refinable later), the guest PC and virtual ring at exit,
    /// and the simulated-cycle timestamp the exit began at.
    #[inline]
    pub fn exit_begin(&mut self, cause: ExitCause, guest_pc: u32, ring: u8, now: u64) {
        if let ObsSink::On(o) = self {
            o.exit_begin(cause, guest_pc, ring, now);
        }
    }

    /// Re-classifies the in-flight exit once a deeper layer knows the
    /// real cause (e.g. MTPR turns out to target IPL; a translation
    /// fault turns out to be the guest's own page fault).
    #[inline]
    pub fn refine(&mut self, cause: ExitCause) {
        if let ObsSink::On(o) = self {
            o.refine(cause);
        }
    }

    /// Marks the end of the in-flight exit at simulated time `now`,
    /// recording `now - start` into the cause's cost histogram. A no-op
    /// when disabled or when no exit is in flight.
    #[inline]
    pub fn exit_end(&mut self, now: u64) {
        if let ObsSink::On(o) = self {
            o.exit_end(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_is_inert() {
        let mut s = ObsSink::off();
        assert!(!s.is_on());
        s.exit_begin(ExitCause::EmulRei, 0, 0, 10);
        s.refine(ExitCause::EmulChm);
        s.exit_end(20);
        assert!(s.state().is_none());
    }

    #[test]
    fn begin_end_records_latency() {
        let mut s = ObsSink::on(8);
        s.exit_begin(ExitCause::EmulMtprIpl, 0x2000, 0, 1000);
        s.exit_end(1090);
        let o = s.state().unwrap();
        assert_eq!(o.exits(ExitCause::EmulMtprIpl), 1);
        assert_eq!(o.histogram(ExitCause::EmulMtprIpl).sum(), 90);
        let rec = o.trace().iter().next().unwrap();
        assert_eq!(rec.guest_pc, 0x2000);
        assert_eq!(rec.start_cycles, 1000);
        assert_eq!(rec.cost_cycles, 90);
    }

    #[test]
    fn refine_moves_cause_before_accounting() {
        let mut s = ObsSink::on(8);
        s.exit_begin(ExitCause::EmulMtprOther, 0, 0, 0);
        s.refine(ExitCause::EmulMtprIpl);
        s.exit_end(66);
        let o = s.state().unwrap();
        assert_eq!(o.exits(ExitCause::EmulMtprOther), 0);
        assert_eq!(o.exits(ExitCause::EmulMtprIpl), 1);
        assert_eq!(
            o.trace().iter().next().unwrap().cause,
            ExitCause::EmulMtprIpl
        );
    }

    #[test]
    fn end_without_begin_is_noop() {
        let mut s = ObsSink::on(8);
        s.exit_end(5);
        assert_eq!(s.state().unwrap().total_exits(), 0);
    }
}
