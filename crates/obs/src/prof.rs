//! `vax-prof`: cycle-attributed guest profiling.
//!
//! The paper's evaluation (§4, §7) attributes VMM overhead to a handful
//! of hot exits and shadow faults; this module provides the matching
//! *in-guest* attribution — where do the guest's own cycles go, which
//! execution tier retired them, and which pages does the guest write.
//!
//! # Sampling model
//!
//! The profiler is driven from the CPU's retire path on the **simulated**
//! clock. Every retiring instruction (or µop) makes one cheap
//! [`Prof::observe`] call: an array increment plus a compare against the
//! next sample deadline. When the simulated clock crosses the deadline,
//! the *entire* cycle delta since the previous sample is attributed to
//! the sampled `(tier, PC)` bucket — so the attributed totals tile the
//! profiled run (no cycle is counted twice, none is lost except the tail
//! after the final sample), and the per-instruction cost stays far below
//! the 5% overhead budget the bench enforces.
//!
//! # Non-perturbation contract
//!
//! Like [`crate::ObsSink`], the profiler only ever *reads* the simulated
//! clock and PC; it never feeds anything back into execution. Enabling
//! it must leave architectural state, cycles, and counters bit-identical
//! — the repo's equivalence fuzzers enforce this for all three execution
//! tiers.

use crate::hist::Histogram;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Default sampling interval in simulated cycles. At the simulator's
/// 1–5 cycles per instruction this samples every few hundred
/// instructions — dense enough that even short runs resolve their hot
/// loops, sparse enough to stay inside the 5% overhead budget.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1024;

/// Cap on distinct `(tier, PC)` attribution buckets; cycles sampled past
/// the cap are accumulated in [`Prof::overflow_cycles`] rather than
/// silently dropped.
const MAX_BUCKETS: usize = 65_536;

/// Cap on retained lifecycle events; later events bump
/// [`Prof::events_dropped`] instead of growing without bound.
const MAX_EVENTS: usize = 65_536;

/// One-multiply mixer for the bucket map. The keys are packed
/// `(tier, pc)` pairs the profiler controls entirely, so the std
/// DoS-resistant SipHash buys nothing here and costs more than the
/// sampled attribution itself.
#[derive(Default)]
struct BucketHasher(u64);

impl Hasher for BucketHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; only the fixed-width paths below run in
        // practice (tuple fields hash via write_u8/write_u32).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Fibonacci-multiply mix; xor-folding the rotated input keeps
        // page-aligned PCs from clustering in the low bucket bits.
        let x = self.0.rotate_left(29) ^ v;
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type BucketMap = HashMap<(u8, u32), u64, BuildHasherDefault<BucketHasher>>;

/// The execution path that retired a sampled instruction.
///
/// This is attribution by *retire path*, not by the machine's configured
/// tier: a machine in the translated tier still retires untranslatable
/// instructions through the decode-cache interpreter path, and those
/// cycles show up under [`ProfTier::Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProfTier {
    /// Bytewise interpreter (decode cache off).
    Interp = 0,
    /// Decode-cached interpreter path.
    Cache = 1,
    /// Translated-superblock µop dispatch.
    Trans = 2,
}

impl ProfTier {
    /// Number of tiers.
    pub const COUNT: usize = 3;

    /// Every tier, in index order.
    pub const ALL: [ProfTier; ProfTier::COUNT] =
        [ProfTier::Interp, ProfTier::Cache, ProfTier::Trans];

    /// Dense index for per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used in metric names and stack frames).
    pub fn name(self) -> &'static str {
        match self {
            ProfTier::Interp => "interp",
            ProfTier::Cache => "cache",
            ProfTier::Trans => "trans",
        }
    }
}

/// What happened to a translated superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfEventKind {
    /// A superblock was formed at `pa` (`arg` = µop count).
    Translate,
    /// Translated blocks were invalidated (`arg` = 1 if targeted at the
    /// page containing `pa`, 0 for a whole-cache invalidation).
    Invalidate,
    /// A self-modifying-code drain killed the blocks in page `arg`
    /// (`pa` = the page's base physical address).
    SmcDrain,
}

impl ProfEventKind {
    /// Stable name for trace exports.
    pub fn name(self) -> &'static str {
        match self {
            ProfEventKind::Translate => "sb_translate",
            ProfEventKind::Invalidate => "sb_invalidate",
            ProfEventKind::SmcDrain => "sb_smc_drain",
        }
    }
}

/// One superblock lifecycle event on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEvent {
    /// What happened.
    pub kind: ProfEventKind,
    /// Entry (or page base) physical address.
    pub pa: u32,
    /// Kind-specific argument (µop count / targeted flag / pfn).
    pub arg: u32,
    /// Simulated cycle count when it happened.
    pub cycles: u64,
}

/// One ranked row of the per-`(tier, PC)` cycle attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcBucket {
    /// Retire path of the samples.
    pub tier: ProfTier,
    /// Sampled program counter.
    pub pc: u32,
    /// Simulated cycles attributed to this bucket.
    pub cycles: u64,
}

/// Interval-sampling guest profiler state. Construct via
/// [`ProfSink::on`]; drive via [`Prof::observe`] from the retire path.
#[derive(Debug, Clone)]
pub struct Prof {
    interval: u64,
    /// Simulated clock at the last attribution boundary.
    last_attr: u64,
    next_sample: u64,
    samples: u64,
    /// Exact per-tier retired-instruction counts (one add per retire).
    retired: [u64; ProfTier::COUNT],
    /// Sampled per-tier cycle attribution.
    attributed: [u64; ProfTier::COUNT],
    buckets: BucketMap,
    overflow_cycles: u64,
    /// Cumulative dirty-page events seen at the last sample (the memory
    /// side reports a monotonic count; the profiler differences it).
    dirty_seen: u64,
    dirty_rate: Histogram,
    events: Vec<ProfEvent>,
    events_dropped: u64,
}

impl Prof {
    fn new(interval: u64, now: u64) -> Prof {
        let interval = interval.max(1);
        Prof {
            interval,
            last_attr: now,
            next_sample: now + interval,
            samples: 0,
            retired: [0; ProfTier::COUNT],
            attributed: [0; ProfTier::COUNT],
            buckets: BucketMap::default(),
            overflow_cycles: 0,
            dirty_seen: 0,
            dirty_rate: Histogram::new(),
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    /// Observes one retiring instruction at `pc` on `tier` with the
    /// simulated clock at `now`. Returns `true` when an interval sample
    /// fired (the caller may then report working-set progress via
    /// [`Prof::note_dirty`]).
    #[inline]
    pub fn observe(&mut self, tier: ProfTier, pc: u32, now: u64) -> bool {
        self.retired[tier.index()] += 1;
        if now < self.next_sample {
            return false;
        }
        self.sample(tier, pc, now);
        true
    }

    /// The cold half of [`Prof::observe`]: attribute everything since the
    /// last boundary to the sampled `(tier, pc)`. Kept out of line so the
    /// per-retire fast path stays a load, an add, and a compare.
    #[cold]
    #[inline(never)]
    fn sample(&mut self, tier: ProfTier, pc: u32, now: u64) {
        let delta = now - self.last_attr;
        self.last_attr = now;
        self.next_sample = now + self.interval;
        self.samples += 1;
        self.attributed[tier.index()] += delta;
        let key = (tier.index() as u8, pc);
        if self.buckets.len() >= MAX_BUCKETS && !self.buckets.contains_key(&key) {
            self.overflow_cycles += delta;
        } else {
            *self.buckets.entry(key).or_insert(0) += delta;
        }
    }

    /// Records the memory side's monotonic dirty-page event count at a
    /// sample boundary; the difference from the previous boundary is one
    /// entry in the per-interval dirty-rate histogram.
    #[inline]
    pub fn note_dirty(&mut self, cumulative_dirty_events: u64) {
        let newly = cumulative_dirty_events.saturating_sub(self.dirty_seen);
        self.dirty_seen = cumulative_dirty_events;
        self.dirty_rate.record(newly);
    }

    /// Records a superblock lifecycle event.
    pub fn note_event(&mut self, kind: ProfEventKind, pa: u32, arg: u32, cycles: u64) {
        if self.events.len() >= MAX_EVENTS {
            self.events_dropped += 1;
            return;
        }
        self.events.push(ProfEvent {
            kind,
            pa,
            arg,
            cycles,
        });
    }

    /// The sampling interval in simulated cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of interval samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Exact count of instructions retired through `tier` while profiling.
    pub fn retired(&self, tier: ProfTier) -> u64 {
        self.retired[tier.index()]
    }

    /// Sampled cycles attributed to `tier`.
    pub fn attributed(&self, tier: ProfTier) -> u64 {
        self.attributed[tier.index()]
    }

    /// Total attributed cycles across all tiers (tiles the profiled run
    /// up to the tail after the final sample).
    pub fn attributed_total(&self) -> u64 {
        self.attributed.iter().sum()
    }

    /// Cycles sampled after the bucket table filled up.
    pub fn overflow_cycles(&self) -> u64 {
        self.overflow_cycles
    }

    /// Per-interval newly-dirtied-page histogram.
    pub fn dirty_rate(&self) -> &Histogram {
        &self.dirty_rate
    }

    /// Superblock lifecycle events, oldest first.
    pub fn events(&self) -> &[ProfEvent] {
        &self.events
    }

    /// Lifecycle events dropped after the retention cap.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The `(tier, PC)` attribution ranked by cycles (descending), ties
    /// broken by tier then PC so the output is deterministic.
    pub fn pc_buckets(&self) -> Vec<PcBucket> {
        let mut out: Vec<PcBucket> = self
            .buckets
            .iter()
            .map(|(&(t, pc), &cycles)| PcBucket {
                tier: ProfTier::ALL[t as usize],
                pc,
                cycles,
            })
            .collect();
        out.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then(a.tier.cmp(&b.tier))
                .then(a.pc.cmp(&b.pc))
        });
        out
    }

    /// Per-page cycle attribution (PC buckets rolled up by VAX page),
    /// ranked by cycles descending, ties broken by page number.
    pub fn page_buckets(&self) -> Vec<(u32, u64)> {
        let mut pages: HashMap<u32, u64> = HashMap::new();
        for (&(_, pc), &cycles) in &self.buckets {
            *pages.entry(pc >> 9).or_insert(0) += cycles;
        }
        let mut out: Vec<(u32, u64)> = pages.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Renders the attribution as collapsed-stack (flamegraph) text:
    /// one `guest;tier_X;page_0xNNNNN;pc_0xNNNNNNNN cycles` line per
    /// bucket, ranked. Feed straight into `flamegraph.pl` or speedscope.
    pub fn collapsed_stack(&self) -> String {
        let mut out = String::new();
        for b in self.pc_buckets() {
            out.push_str(&format!(
                "guest;tier_{};page_0x{:05x};pc_0x{:08x} {}\n",
                b.tier.name(),
                b.pc >> 9,
                b.pc,
                b.cycles
            ));
        }
        if self.overflow_cycles > 0 {
            out.push_str(&format!("guest;overflow {}\n", self.overflow_cycles));
        }
        out
    }
}

/// Enum-dispatch profiler sink, mirroring [`crate::ObsSink`]: the CPU
/// step loop holds one of these and the `Off` variant makes the retire
/// hook a single discriminant test.
#[derive(Debug, Clone, Default)]
pub enum ProfSink {
    /// Profiling disabled; every hook is a no-op.
    #[default]
    Off,
    /// Profiling enabled; boxed so the machine stays small when off.
    On(Box<Prof>),
}

impl ProfSink {
    /// A disabled sink.
    pub fn off() -> ProfSink {
        ProfSink::Off
    }

    /// An enabled sink sampling every `interval` simulated cycles,
    /// with the clock currently at `now`.
    pub fn on(interval: u64, now: u64) -> ProfSink {
        ProfSink::On(Box::new(Prof::new(interval, now)))
    }

    /// Whether profiling is enabled.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, ProfSink::On(_))
    }

    /// The profiler state, when enabled.
    pub fn state(&self) -> Option<&Prof> {
        match self {
            ProfSink::Off => None,
            ProfSink::On(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_attributes_whole_deltas() {
        let mut p = Prof::new(100, 0);
        // 40 retires of 10 cycles each; samples fire when the clock
        // crosses 100, 200, 300, 400.
        let mut now = 0;
        for _ in 0..40 {
            now += 10;
            p.observe(ProfTier::Cache, 0x1000, now);
        }
        assert_eq!(p.samples(), 4);
        assert_eq!(p.retired(ProfTier::Cache), 40);
        assert_eq!(p.attributed(ProfTier::Cache), 400);
        assert_eq!(p.attributed_total(), 400);
        let b = p.pc_buckets();
        assert_eq!(b.len(), 1);
        assert_eq!((b[0].pc, b[0].cycles), (0x1000, 400));
    }

    #[test]
    fn attribution_tiles_across_tiers() {
        let mut p = Prof::new(50, 0);
        p.observe(ProfTier::Interp, 0x100, 60); // sample: 60 to interp
        p.observe(ProfTier::Trans, 0x200, 130); // sample: 70 to trans
        p.observe(ProfTier::Trans, 0x200, 150); // no sample
        assert_eq!(p.attributed(ProfTier::Interp), 60);
        assert_eq!(p.attributed(ProfTier::Trans), 70);
        assert_eq!(p.attributed_total(), 130);
        assert_eq!(p.retired(ProfTier::Trans), 2);
    }

    #[test]
    fn collapsed_stack_is_ranked_and_parseable() {
        let mut p = Prof::new(1, 0);
        p.observe(ProfTier::Cache, 0x1000, 10);
        p.observe(ProfTier::Trans, 0x2000, 100);
        let text = p.collapsed_stack();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Ranked: the 90-cycle trans bucket first.
        assert_eq!(lines[0], "guest;tier_trans;page_0x00010;pc_0x00002000 90");
        assert_eq!(lines[1], "guest;tier_cache;page_0x00008;pc_0x00001000 10");
        for l in lines {
            let (stack, n) = l.rsplit_once(' ').expect("space-separated");
            assert!(stack.starts_with("guest;tier_"));
            n.parse::<u64>().expect("numeric suffix");
        }
    }

    #[test]
    fn page_buckets_roll_up_pcs() {
        let mut p = Prof::new(1, 0);
        p.observe(ProfTier::Cache, 0x1000, 10);
        p.observe(ProfTier::Cache, 0x1004, 30); // same page, +20
        p.observe(ProfTier::Cache, 0x2000, 35); // other page, +5
        let pages = p.page_buckets();
        assert_eq!(pages, vec![(0x8, 30), (0x10, 5)]);
    }

    #[test]
    fn dirty_rate_differences_monotonic_counts() {
        let mut p = Prof::new(1, 0);
        p.note_dirty(3);
        p.note_dirty(3);
        p.note_dirty(10);
        assert_eq!(p.dirty_rate().count(), 3);
        assert_eq!(p.dirty_rate().sum(), 10);
        assert_eq!(p.dirty_rate().max(), 7);
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut p = Prof::new(1, 0);
        for i in 0..(MAX_EVENTS + 5) {
            p.note_event(ProfEventKind::Translate, i as u32, 1, i as u64);
        }
        assert_eq!(p.events().len(), MAX_EVENTS);
        assert_eq!(p.events_dropped(), 5);
    }

    #[test]
    fn bucket_cap_accumulates_overflow() {
        let mut p = Prof::new(1, 0);
        let mut now = 0;
        for pc in 0..(MAX_BUCKETS as u32 + 3) {
            now += 1;
            p.observe(ProfTier::Interp, pc * 4, now);
        }
        assert_eq!(p.pc_buckets().len(), MAX_BUCKETS);
        assert_eq!(p.overflow_cycles(), 3);
        assert!(p.collapsed_stack().contains("guest;overflow 3\n"));
    }

    #[test]
    fn sink_off_is_default_and_stateless() {
        let s = ProfSink::default();
        assert!(!s.is_on());
        assert!(s.state().is_none());
        let s = ProfSink::on(256, 1000);
        assert!(s.is_on());
        assert_eq!(s.state().map(|p| p.interval()), Some(256));
    }
}
