#![warn(missing_docs)]
// Library (non-test) code must justify every panic site.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Observability for the VAX VMM: exit-reason tracing, per-cause
//! cycle-cost histograms, and a metrics exposition layer.
//!
//! The paper's whole evaluation (§7) is an attribution exercise: how many
//! simulated cycles went to which VM-exit cause (MTPR-to-IPL emulation at
//! 10–12× the bare-hardware path, ~17 page faults between guest context
//! switches, the §7.2 shadow-fill reduction). This crate provides the
//! raw machinery for producing those numbers from any run:
//!
//! * [`ExitCause`] — the taxonomy of reasons control leaves a VM;
//! * [`TraceRing`] — a bounded, preallocated ring of [`TraceRecord`]s
//!   (cause, guest PC, virtual ring, simulated-cycle timestamp, cost);
//! * [`Histogram`] — log2-bucket latency histograms, one per cause,
//!   measuring emulation cost from exit to resume;
//! * [`ObsSink`] — the enum-dispatch collection point the VMM calls at
//!   its exit/resume seams. `ObsSink::Off` makes every call a no-op so
//!   disabled tracing costs (almost) nothing and allocates nothing;
//! * [`Metrics`] — a snapshot registry rendering counters and histograms
//!   as JSON or Prometheus text exposition, plus [`chrome_trace`] for
//!   Chrome `about:tracing` / Perfetto timeline viewing.
//!
//! The contract enforced by the repo's equivalence tests: enabling
//! observability must never change simulated cycles or architectural
//! counters — this crate only ever *reads* the simulated clock.
//!
//! # Example
//!
//! ```
//! use vax_obs::{ExitCause, ObsSink};
//!
//! let mut sink = ObsSink::on(16);
//! sink.exit_begin(ExitCause::EmulMtprIpl, 0x1000, 0, 100);
//! sink.exit_end(190); // resume 90 simulated cycles later
//! let obs = sink.state().unwrap();
//! assert_eq!(obs.histogram(ExitCause::EmulMtprIpl).count(), 1);
//! assert_eq!(obs.histogram(ExitCause::EmulMtprIpl).sum(), 90);
//! ```

pub mod cause;
pub mod hist;
pub mod metrics;
pub mod prof;
pub mod ring;
pub mod sink;

pub use cause::ExitCause;
pub use hist::Histogram;
pub use metrics::{chrome_trace, chrome_trace_with_events, Metrics};
pub use prof::{
    PcBucket, Prof, ProfEvent, ProfEventKind, ProfSink, ProfTier, DEFAULT_SAMPLE_INTERVAL,
};
pub use ring::{TraceRecord, TraceRing};
pub use sink::{Obs, ObsSink};
