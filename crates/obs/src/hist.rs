//! Log2-bucket histograms for cycle-cost distributions.

/// Number of buckets. Bucket `b > 0` covers values in
/// `[2^(b-1), 2^b - 1]`; bucket 0 holds exactly the value 0; the last
/// bucket absorbs everything at or above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 40;

/// A fixed-size log2-bucket histogram of `u64` samples.
///
/// Recording is branch-light and allocation-free (the whole struct is
/// plain `Copy`-able data), which is what lets the VMM keep one per
/// [`ExitCause`](crate::ExitCause) on its exit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a sample.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of a bucket.
fn bucket_high(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples of value `v` in one step —
    /// equivalent to calling [`Histogram::record`]`(v)` `n` times.
    /// Lets callers fold pre-aggregated counts (e.g. a per-length
    /// superblock table) without a per-sample loop.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the inclusive
    /// upper edge of the bucket containing it (an upper bound on the true
    /// quantile). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)` pairs,
    /// lowest edge first.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(b, c)| (bucket_high(b), *c))
    }

    /// Cumulative buckets as `(inclusive_upper_edge, cumulative_count)`
    /// pairs — the Prometheus histogram shape (`le` edges).
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut acc = 0u64;
        self.counts.iter().enumerate().filter_map(move |(b, c)| {
            acc += c;
            (*c > 0).then_some((bucket_high(b), acc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_high(1), 1);
        assert_eq!(bucket_high(2), 3);
        assert_eq!(bucket_high(63), u64::MAX);
    }

    #[test]
    fn record_tracks_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        for v in [1u64, 3, 90, 90, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1184);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 236.8).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8,15]
        }
        for _ in 0..10 {
            h.record(100); // bucket [64,127]
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.9), 15);
        // The p99 sample lands in the 100s bucket, clamped to observed max.
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        // A quantile never undershoots the true value's bucket lower edge.
        assert!(h.quantile(0.5) >= 10);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut bulk = Histogram::new();
        let mut looped = Histogram::new();
        bulk.record_n(7, 4);
        bulk.record_n(900, 2);
        bulk.record_n(3, 0); // no-op: must not disturb min/max
        for _ in 0..4 {
            looped.record(7);
        }
        for _ in 0..2 {
            looped.record(900);
        }
        assert_eq!(bulk, looped);
        assert_eq!(bulk.count(), 6);
        assert_eq!(bulk.min(), 7);
        assert_eq!(bulk.max(), 900);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 7, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 4096] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 4096);
    }

    #[test]
    fn cumulative_counts_monotone() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 700, 700, 700] {
            h.record(v);
        }
        let cum: Vec<(u64, u64)> = h.cumulative().collect();
        assert_eq!(cum.last().unwrap().1, 6);
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }
}
