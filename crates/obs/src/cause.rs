//! The taxonomy of reasons control leaves a VM and enters the VMM.

/// Why a VM exit (or VMM-side event) happened.
///
/// The emulation causes mirror the paper's Table 4 row set — one per
/// sensitive-instruction class — so per-cause cost histograms reproduce
/// its "N× native" measurements directly. Exception exits are split into
/// the VMM-internal services (shadow fill, modify fault, MMIO emulation,
/// guest page fault) and the residue reflected to the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExitCause {
    /// CHMK/CHME/CHMS/CHMU emulation trap.
    EmulChm = 0,
    /// REI emulation trap.
    EmulRei,
    /// MTPR-to-IPL emulation trap (the paper's §7.3 hot path).
    EmulMtprIpl,
    /// Any other MTPR emulation trap.
    EmulMtprOther,
    /// MFPR emulation trap.
    EmulMfpr,
    /// LDPCTX emulation trap (guest context switch, load half).
    EmulLdpctx,
    /// SVPCTX emulation trap (guest context switch, save half).
    EmulSvpctx,
    /// PROBER/PROBEW emulation trap (invalid shadow PTE path).
    EmulProbe,
    /// WAIT handshake trap (guest going idle).
    EmulWait,
    /// HALT trap (virtual console entry).
    EmulHalt,
    /// Any other sensitive-instruction trap.
    EmulOther,
    /// Translation-not-valid exit serviced by a shadow null-PTE fill.
    ShadowFill,
    /// Modify-fault exit (first write to a clean page, §4.4.2).
    ModifyFault,
    /// Translation-not-valid exit that turned out to be the guest's own
    /// page fault, reflected through its SCB.
    GuestPageFault,
    /// Translation-not-valid exit into the emulated-MMIO window (the
    /// §4.4.3 rejected-alternative ablation).
    MmioEmulation,
    /// Any other exception exit, reflected to the guest.
    ExceptionExit,
    /// Real-machine interrupt while a VM was running.
    InterruptExit,
    /// VM-to-VM world switch performed by the scheduler.
    WorldSwitch,
    /// Guest-attributable VMM fault reflected into the guest as a
    /// virtual machine check (SCB vector 0x04, DESIGN.md §11).
    ReflectedMachineCheck,
    /// Non-deliverable VMM fault: the VM was halted at its virtual
    /// console with the reason recorded (DESIGN.md §11).
    SecurityHalt,
}

impl ExitCause {
    /// Number of causes (histogram array size).
    pub const COUNT: usize = 20;

    /// Every cause, in discriminant order.
    pub const ALL: [ExitCause; ExitCause::COUNT] = [
        ExitCause::EmulChm,
        ExitCause::EmulRei,
        ExitCause::EmulMtprIpl,
        ExitCause::EmulMtprOther,
        ExitCause::EmulMfpr,
        ExitCause::EmulLdpctx,
        ExitCause::EmulSvpctx,
        ExitCause::EmulProbe,
        ExitCause::EmulWait,
        ExitCause::EmulHalt,
        ExitCause::EmulOther,
        ExitCause::ShadowFill,
        ExitCause::ModifyFault,
        ExitCause::GuestPageFault,
        ExitCause::MmioEmulation,
        ExitCause::ExceptionExit,
        ExitCause::InterruptExit,
        ExitCause::WorldSwitch,
        ExitCause::ReflectedMachineCheck,
        ExitCause::SecurityHalt,
    ];

    /// Index into per-cause arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in every exposition format.
    pub fn name(self) -> &'static str {
        match self {
            ExitCause::EmulChm => "emul_chm",
            ExitCause::EmulRei => "emul_rei",
            ExitCause::EmulMtprIpl => "emul_mtpr_ipl",
            ExitCause::EmulMtprOther => "emul_mtpr_other",
            ExitCause::EmulMfpr => "emul_mfpr",
            ExitCause::EmulLdpctx => "emul_ldpctx",
            ExitCause::EmulSvpctx => "emul_svpctx",
            ExitCause::EmulProbe => "emul_probe",
            ExitCause::EmulWait => "emul_wait",
            ExitCause::EmulHalt => "emul_halt",
            ExitCause::EmulOther => "emul_other",
            ExitCause::ShadowFill => "shadow_fill",
            ExitCause::ModifyFault => "modify_fault",
            ExitCause::GuestPageFault => "guest_page_fault",
            ExitCause::MmioEmulation => "mmio_emulation",
            ExitCause::ExceptionExit => "exception_exit",
            ExitCause::InterruptExit => "interrupt_exit",
            ExitCause::WorldSwitch => "world_switch",
            ExitCause::ReflectedMachineCheck => "reflected_machine_check",
            ExitCause::SecurityHalt => "security_halt",
        }
    }

    /// True for the sensitive-instruction emulation-trap causes.
    pub fn is_emulation(self) -> bool {
        (self as u8) <= ExitCause::EmulOther as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_ordered() {
        for (i, c) in ExitCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of order");
        }
        // Names are unique.
        let mut names: Vec<&str> = ExitCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ExitCause::COUNT);
    }

    #[test]
    fn emulation_partition() {
        assert!(ExitCause::EmulChm.is_emulation());
        assert!(ExitCause::EmulOther.is_emulation());
        assert!(!ExitCause::ShadowFill.is_emulation());
        assert!(!ExitCause::WorldSwitch.is_emulation());
    }
}
