//! The bounded exit-trace ring buffer.

use crate::cause::ExitCause;

/// One traced VM exit (or VMM event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Why control left the VM.
    pub cause: ExitCause,
    /// The VM's *virtual* ring (access-mode bits, 0 = kernel … 3 = user)
    /// at exit time — the mode the guest believes it is in, not the
    /// compressed real mode.
    pub ring: u8,
    /// Guest PC at exit (for faults and emulation traps this is the
    /// faulting/trapping instruction; PC has not been advanced).
    pub guest_pc: u32,
    /// Simulated-cycle timestamp when the exit began.
    pub start_cycles: u64,
    /// Simulated cycles from exit to resume (microcode trap entry plus
    /// the VMM software path). Zero until the exit completes.
    pub cost_cycles: u64,
}

/// A bounded ring of [`TraceRecord`]s.
///
/// Storage is allocated once at construction; recording overwrites the
/// oldest entry when full and never allocates, so the hot path stays
/// allocation-free regardless of run length.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Index the next record will be written at.
    next: usize,
    /// Total records ever pushed (so `dropped` is recoverable).
    total: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full. Returns the
    /// slot index, which stays valid (addressing the same record) until
    /// `capacity` further pushes happen.
    pub fn push(&mut self, rec: TraceRecord) -> usize {
        let idx = self.next;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[idx] = rec;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
        idx
    }

    /// Mutable access to a slot returned by [`TraceRing::push`].
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut TraceRecord> {
        self.buf.get_mut(idx)
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total records ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            cause: ExitCause::EmulRei,
            ring: 0,
            guest_pc: 0x1000,
            start_cycles: t,
            cost_cycles: 0,
        }
    }

    #[test]
    fn wraps_and_keeps_newest() {
        let mut r = TraceRing::new(3);
        for t in 0..5 {
            r.push(rec(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        let starts: Vec<u64> = r.iter().map(|x| x.start_cycles).collect();
        assert_eq!(starts, [2, 3, 4], "oldest-first, newest retained");
    }

    #[test]
    fn push_index_patchable() {
        let mut r = TraceRing::new(2);
        let i = r.push(rec(7));
        r.get_mut(i).unwrap().cost_cycles = 99;
        assert_eq!(r.iter().next().unwrap().cost_cycles, 99);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut r = TraceRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(rec(1));
        r.push(rec(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().start_cycles, 2);
    }
}
