//! Compile-time `Send` audit for the fleet executor (DESIGN.md §12).
//!
//! `Fleet::run_parallel` moves whole Monitors to worker threads, so
//! every layer a Monitor owns — the machine, its memory and MMU, the
//! MMIO bus and its boxed devices, the decode cache, the obs sink —
//! must be `Send`. These are *compile-time* assertions: introducing an
//! `Rc`, a non-`Send` trait object (the historical offender was
//! `Box<dyn MmioDevice>` without `+ Send` on the bus), or raw-pointer
//! state anywhere in the ownership tree fails the build of this test,
//! not a run of it.

use vax_vmm::{Fleet, FleetReport, Monitor, MonitorOutcome, ObsSink, Vm, VmOutcome};

fn assert_send<T: Send>() {}

#[test]
fn vmm_ownership_tree_is_send() {
    // The fleet boundary itself.
    assert_send::<Fleet>();
    assert_send::<Monitor>();
    assert_send::<FleetReport>();
    assert_send::<MonitorOutcome>();
    assert_send::<VmOutcome>();
    // The layers a Monitor owns.
    assert_send::<vax_cpu::Machine>();
    assert_send::<vax_cpu::Bus>();
    assert_send::<vax_mem::Mmu>();
    assert_send::<Vm>();
    assert_send::<ObsSink>();
    assert_send::<vax_obs::Metrics>();
    // Devices travel inside the bus as boxed trait objects.
    assert_send::<vax_dev::SimDisk>();
    assert_send::<Box<dyn vax_cpu::MmioDevice + Send>>();
}
