//! Direct tests of the shadow page-table machinery against a synthetic
//! VM, independent of the monitor's run loop.

use std::collections::VecDeque;
use vax_arch::{AccessMode, MachineVariant, Protection, Psl, Pte, VirtAddr, VmPsl};
use vax_cpu::Machine;
use vax_vmm::shadow::FillOutcome;
use vax_vmm::vm::{DirtyStrategy, IoStrategy, VirtualTimer, Vm, VmState, VmStats};
use vax_vmm::{FrameAllocator, ShadowConfig, ShadowSet};

const VM_BASE_PFN: u32 = 512; // VM memory at real 256 KiB
const VM_PAGES: u32 = 256;

fn machine() -> Machine {
    Machine::new(MachineVariant::Modified, 2 * 1024 * 1024)
}

fn synthetic_vm() -> Vm {
    Vm {
        name: "synthetic".into(),
        mem_base_pfn: VM_BASE_PFN,
        mem_pages: VM_PAGES,
        regs: [0; 16],
        psl_flags: Psl::new(),
        vmpsl: VmPsl::new(AccessMode::Kernel, AccessMode::Kernel),
        vsp: [0; 4],
        vsp_is: 0,
        v_is: false,
        guest_scbb: 0,
        guest_pcbb: 0,
        guest_sbr: 0x4000,
        guest_slr: 64,
        guest_p0br: 0x8000_6000, // guest P0 table at guest S va (gpa 0x6000)
        guest_p0lr: 32,
        guest_p1br: 0,
        guest_p1lr: 1 << 21,
        guest_mapen: true,
        guest_astlvl: 4,
        guest_sisr: 0,
        guest_todr: 0,
        vtimer: VirtualTimer::default(),
        console_out: Vec::new(),
        vmm_log: Vec::new(),
        console_in: VecDeque::new(),
        vdisk: Vec::new(),
        vdisk_pending: None,
        uptime_cell: None,
        real_io_base: None,
        io_strategy: IoStrategy::StartIo,
        dirty_strategy: DirtyStrategy::ModifyFault,
        state: VmState::Ready,
        halt_reason: None,
        pending_virqs: Vec::new(),
        uptime_ticks: 0,
        stats: VmStats::default(),
    }
}

/// Writes a guest PTE into the guest's SPT (guest-physical 0x4000).
fn write_guest_spte(m: &mut Machine, vm: &Vm, vpn: u32, pte: Pte) {
    let pa = (VM_BASE_PFN << 9) + vm.guest_sbr + 4 * vpn;
    m.mem_mut().write_u32(pa, pte.raw()).unwrap();
}

/// Writes a guest P0 PTE (guest P0 table lives at guest-physical 0x6000,
/// which the guest maps at S va 0x80006000: guest S page 0x30).
fn write_guest_p0te(m: &mut Machine, vpn: u32, pte: Pte) {
    let pa = (VM_BASE_PFN << 9) + 0x6000 + 4 * vpn;
    m.mem_mut().write_u32(pa, pte.raw()).unwrap();
}

fn setup() -> (Machine, Vm, ShadowSet) {
    let mut m = machine();
    let vm = synthetic_vm();
    let mut falloc = FrameAllocator::new(1, VM_BASE_PFN);
    let shadow = ShadowSet::new(
        &mut m,
        &mut falloc,
        ShadowConfig {
            s_capacity: 128,
            p0_capacity: 64,
            p1_capacity: 16,
            cache_slots: 2,
            prefill_group: 1,
        },
    );
    // Guest SPT: identity (S page i -> guest frame i), kernel-write; the
    // page holding the guest P0 table (S vpn 0x30) must be mapped too.
    for vpn in 0..64 {
        write_guest_spte(
            &mut m,
            &vm,
            vpn,
            Pte::build(vpn, Protection::Kw, true, true),
        );
    }
    (m, vm, shadow)
}

#[test]
fn fill_translates_pfn_and_compresses_protection() {
    let (mut m, mut vm, mut shadow) = setup();
    write_guest_spte(&mut m, &vm, 5, Pte::build(5, Protection::Kw, true, true));
    let va = VirtAddr::new(0x8000_0000 + 5 * 512);
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    let spte = shadow.read_shadow(&m, va).unwrap();
    assert_eq!(spte.pfn(), VM_BASE_PFN + 5, "guest frame 5 relocated");
    assert_eq!(
        spte.protection(),
        Protection::Ew,
        "KW compressed to EW (ring compression)"
    );
    assert!(spte.valid());
    assert_eq!(vm.stats.shadow_fills, 1);
}

#[test]
fn fill_reflects_guest_page_fault() {
    let (mut m, mut vm, mut shadow) = setup();
    write_guest_spte(&mut m, &vm, 6, Pte::build(6, Protection::Uw, false, false));
    let va = VirtAddr::new(0x8000_0000 + 6 * 512);
    match shadow.fill(&mut m, &mut vm, va) {
        FillOutcome::Reflect(vax_arch::Exception::TranslationNotValid { .. }) => {}
        other => panic!("expected guest TNV, got {other:?}"),
    }
    assert_eq!(vm.stats.guest_page_faults, 1);
}

#[test]
fn fill_reflects_length_violation_beyond_guest_slr() {
    let (mut m, mut vm, mut shadow) = setup();
    let va = VirtAddr::new(0x8000_0000 + 100 * 512); // vpn 100 >= guest SLR 64
    match shadow.fill(&mut m, &mut vm, va) {
        FillOutcome::Reflect(vax_arch::Exception::AccessViolation { length: true, .. }) => {}
        other => panic!("expected length AV, got {other:?}"),
    }
}

#[test]
fn fill_halts_on_pfn_outside_vm_memory() {
    let (mut m, mut vm, mut shadow) = setup();
    // Guest PTE naming a frame beyond the VM's MEMSIZE.
    write_guest_spte(
        &mut m,
        &vm,
        7,
        Pte::build(0x5000, Protection::Uw, true, true),
    );
    let va = VirtAddr::new(0x8000_0000 + 7 * 512);
    assert!(matches!(
        shadow.fill(&mut m, &mut vm, va),
        FillOutcome::Fault(vax_vmm::VmmError::PteFrame { gpfn: 0x5000 })
    ));
}

#[test]
fn p0_fill_walks_the_guest_spt_for_the_process_pte() {
    let (mut m, mut vm, mut shadow) = setup();
    // Guest P0 vpn 3 -> guest frame 20, user-writable, M set.
    write_guest_p0te(&mut m, 3, Pte::build(20, Protection::Uw, true, true));
    let va = VirtAddr::new(3 * 512 + 7);
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    let spte = shadow.read_shadow(&m, va).unwrap();
    assert_eq!(spte.pfn(), VM_BASE_PFN + 20);
    assert_eq!(spte.protection(), Protection::Uw);
}

#[test]
fn p0_fill_reports_pte_ref_fault_when_guest_table_page_unmapped() {
    let (mut m, mut vm, mut shadow) = setup();
    // Invalidate the guest S page holding the P0 table (vpn 0x30).
    write_guest_spte(
        &mut m,
        &vm,
        0x30,
        Pte::build(0x30, Protection::Kw, false, false),
    );
    write_guest_p0te(&mut m, 3, Pte::build(20, Protection::Uw, true, true));
    let va = VirtAddr::new(3 * 512);
    match shadow.fill(&mut m, &mut vm, va) {
        FillOutcome::Reflect(vax_arch::Exception::TranslationNotValid {
            pte_ref: true, ..
        }) => {}
        other => panic!("expected PTE-reference TNV, got {other:?}"),
    }
}

#[test]
fn modify_fault_sets_m_in_both_tables() {
    let (mut m, mut vm, mut shadow) = setup();
    write_guest_spte(&mut m, &vm, 9, Pte::build(9, Protection::Uw, true, false));
    let va = VirtAddr::new(0x8000_0000 + 9 * 512);
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    assert!(!shadow.read_shadow(&m, va).unwrap().modified());
    assert_eq!(
        shadow.modify_fault(&mut m, &mut vm, va),
        FillOutcome::Filled
    );
    assert!(shadow.read_shadow(&m, va).unwrap().modified());
    // Paper §4.4.2: "the VM's page table accurately reflects the state of
    // modified pages".
    let gpte_pa = (VM_BASE_PFN << 9) + vm.guest_sbr + 4 * 9;
    assert!(Pte::from_raw(m.mem().read_u32(gpte_pa).unwrap()).modified());
}

#[test]
fn cache_switch_preserves_and_evicts() {
    let (mut m, mut vm, mut shadow) = setup();
    write_guest_p0te(&mut m, 3, Pte::build(20, Protection::Uw, true, true));
    let va = VirtAddr::new(3 * 512);

    // Process A touches a page.
    assert!(!shadow.switch_process(&mut m, 0x100), "first use: miss");
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    assert!(shadow.read_shadow(&m, va).unwrap().valid());

    // Switch to B (second slot), then back to A: the fill survives.
    assert!(!shadow.switch_process(&mut m, 0x200), "B: miss");
    assert!(shadow.switch_process(&mut m, 0x100), "A again: hit");
    assert!(
        shadow.read_shadow(&m, va).unwrap().valid(),
        "shadow PTEs preserved across the switch (paper 7.2)"
    );

    // A third process evicts the LRU (B), not A.
    assert!(!shadow.switch_process(&mut m, 0x300), "C: miss evicts B");
    assert!(shadow.switch_process(&mut m, 0x100), "A still cached");
    assert!(!shadow.switch_process(&mut m, 0x200), "B was evicted");
}

#[test]
fn invalidate_single_and_all() {
    let (mut m, mut vm, mut shadow) = setup();
    let va = VirtAddr::new(0x8000_0000 + 5 * 512);
    shadow.fill(&mut m, &mut vm, va);
    assert!(shadow.read_shadow(&m, va).unwrap().valid());
    let vm_copy = vm.clone();
    shadow.invalidate_single(&mut m, &vm_copy, va);
    assert!(
        !shadow.read_shadow(&m, va).unwrap().valid(),
        "TBIS nulls it"
    );
    shadow.fill(&mut m, &mut vm, va);
    shadow.invalidate_all(&mut m, &vm_copy);
    assert!(
        !shadow.read_shadow(&m, va).unwrap().valid(),
        "TBIA nulls it"
    );
}

#[test]
fn prefill_translates_neighbors() {
    let mut m = machine();
    let mut vm = synthetic_vm();
    let mut falloc = FrameAllocator::new(1, VM_BASE_PFN);
    let mut shadow = ShadowSet::new(
        &mut m,
        &mut falloc,
        ShadowConfig {
            s_capacity: 128,
            p0_capacity: 64,
            p1_capacity: 16,
            cache_slots: 1,
            prefill_group: 4,
        },
    );
    for vpn in 0..64 {
        write_guest_spte(
            &mut m,
            &vm,
            vpn,
            Pte::build(vpn, Protection::Uw, true, true),
        );
    }
    let va = VirtAddr::new(0x8000_0000 + 10 * 512);
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    assert_eq!(vm.stats.shadow_fills, 4, "group of four translated");
    for i in 10..14 {
        let v = VirtAddr::new(0x8000_0000 + i * 512);
        assert!(shadow.read_shadow(&m, v).unwrap().valid(), "vpn {i}");
    }
}

#[test]
fn mapen_off_identity_fill() {
    let (mut m, mut vm, mut shadow) = setup();
    vm.guest_mapen = false;
    let va = VirtAddr::new(12 * 512 + 3); // P0 region = guest physical
    assert_eq!(shadow.fill(&mut m, &mut vm, va), FillOutcome::Filled);
    let spte = shadow.read_shadow(&m, va).unwrap();
    assert_eq!(spte.pfn(), VM_BASE_PFN + 12, "identity, relocated");
    // Beyond MEMSIZE (but within the shadow capacity): security halt.
    vm.mem_pages = 32;
    let far = VirtAddr::new(40 * 512);
    assert!(matches!(
        shadow.fill(&mut m, &mut vm, far),
        FillOutcome::Fault(vax_vmm::VmmError::NonexistentMemory { .. })
    ));
}

#[test]
fn guest_tbia_clears_every_cached_slot() {
    // The §7.2 cache's known fragility (paper: "limited development time
    // prevented ... a fully robust implementation"): a guest-wide TB
    // invalidate must clear all cached shadow sets, active or not.
    let (mut m, mut vm, mut shadow) = setup();
    write_guest_p0te(&mut m, 3, Pte::build(20, Protection::Uw, true, true));
    let va = VirtAddr::new(3 * 512);
    shadow.switch_process(&mut m, 0x100);
    shadow.fill(&mut m, &mut vm, va);
    shadow.switch_process(&mut m, 0x200);
    // Guest TBIA while process B is active.
    let vm_copy = vm.clone();
    shadow.invalidate_all(&mut m, &vm_copy);
    // Back to A: must be a cache miss (the slot was keyed out), and the
    // old fill is gone.
    assert!(
        !shadow.switch_process(&mut m, 0x100),
        "TBIA evicted the cached slot"
    );
    assert!(!shadow.read_shadow(&m, va).unwrap().valid());
}
