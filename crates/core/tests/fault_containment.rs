//! Fault-containment regressions (DESIGN.md §11): every guest-reachable
//! failure either reflects into the guest as a virtual machine check or
//! cleanly halts the VM with a recorded reason — never a host panic, and
//! never a read or write of a neighboring VM's partition.

use std::collections::VecDeque;
use vax_arch::{AccessMode, MachineVariant, Protection, Psl, Pte, VirtAddr, VmPsl};
use vax_asm::assemble_text;
use vax_cpu::Machine;
use vax_vmm::shadow::FillOutcome;
use vax_vmm::vm::{DirtyStrategy, IoStrategy, VirtualTimer, Vm, VmState, VmStats};
use vax_vmm::{
    ExitCause, FrameAllocator, Monitor, MonitorConfig, RunExit, ShadowConfig, ShadowSet, VmConfig,
    VmId, VmmError,
};

fn monitor() -> Monitor {
    Monitor::new(MonitorConfig::default())
}

fn boot_with(mon: &mut Monitor, vm: VmId, src: &str, base: u32) {
    let p = assemble_text(src, base).expect("assembles");
    mon.vm_write_phys(vm, base, &p.bytes).unwrap();
    mon.boot_vm(vm, base);
}

// ---------------------------------------------------------------------
// Shadow walk at the partition boundary (synthetic, shadow-level)
// ---------------------------------------------------------------------

const VM_BASE_PFN: u32 = 512;
const VM_PAGES: u32 = 256;

fn synthetic_vm() -> Vm {
    Vm {
        name: "edge".into(),
        mem_base_pfn: VM_BASE_PFN,
        mem_pages: VM_PAGES,
        regs: [0; 16],
        psl_flags: Psl::new(),
        vmpsl: VmPsl::new(AccessMode::Kernel, AccessMode::Kernel),
        vsp: [0; 4],
        vsp_is: 0,
        v_is: false,
        guest_scbb: 0,
        guest_pcbb: 0,
        guest_sbr: 0x4000,
        guest_slr: 64,
        guest_p0br: 0x8000_6000,
        guest_p0lr: 32,
        guest_p1br: 0,
        guest_p1lr: 1 << 21,
        guest_mapen: true,
        guest_astlvl: 4,
        guest_sisr: 0,
        guest_todr: 0,
        vtimer: VirtualTimer::default(),
        console_out: Vec::new(),
        vmm_log: Vec::new(),
        console_in: VecDeque::new(),
        vdisk: Vec::new(),
        vdisk_pending: None,
        uptime_cell: None,
        real_io_base: None,
        io_strategy: IoStrategy::StartIo,
        dirty_strategy: DirtyStrategy::ModifyFault,
        state: VmState::Ready,
        halt_reason: None,
        pending_virqs: Vec::new(),
        uptime_ticks: 0,
        stats: VmStats::default(),
    }
}

fn shadow_setup(m: &mut Machine) -> ShadowSet {
    let mut falloc = FrameAllocator::new(1, VM_BASE_PFN);
    ShadowSet::new(
        m,
        &mut falloc,
        ShadowConfig {
            s_capacity: 128,
            p0_capacity: 64,
            p1_capacity: 16,
            cache_slots: 2,
            prefill_group: 1,
        },
    )
}

#[test]
fn partition_edge_walk_faults_without_reading_the_neighbor() {
    // The guest points its SPT base 2 bytes before the end of its own
    // partition. The PTE for S vpn 0 then straddles the boundary: its
    // first byte is guest memory, its last three belong to whatever real
    // frames come next (here: planted "neighbor" data). The old
    // first-byte-only check read those bytes; the walk must instead fault
    // — with an outcome independent of the neighbor's memory contents.
    let mem_bytes = VM_PAGES * 512;
    let outcome_with = |neighbor_word: u32| {
        let mut m = Machine::new(MachineVariant::Modified, 2 * 1024 * 1024);
        let mut vm = synthetic_vm();
        let mut shadow = shadow_setup(&mut m);
        vm.guest_sbr = mem_bytes - 2;
        // Plant bytes just past the partition; a leaky walk would parse
        // part of this longword as the PTE.
        let past_end = (VM_BASE_PFN << 9) + mem_bytes;
        m.mem_mut().write_u32(past_end, neighbor_word).unwrap();
        shadow.fill(&mut m, &mut vm, VirtAddr::new(0x8000_0000))
    };
    // A valid-looking in-range PTE if the leak parsed the neighbor bytes.
    let a = outcome_with(Pte::build(3, Protection::Uw, true, true).raw());
    let b = outcome_with(0);
    assert!(
        matches!(a, FillOutcome::Fault(VmmError::PageTableWalk { .. })),
        "walk must fault at the boundary, got {a:?}"
    );
    assert_eq!(a, b, "outcome must not depend on the neighbor's memory");
}

#[test]
fn unaligned_process_base_cannot_cross_the_table_frame() {
    // An unaligned guest P0BR puts a process PTE at an in-page offset up
    // to 511, so the 4-byte read would cross out of the validated frame.
    let mut m = Machine::new(MachineVariant::Modified, 2 * 1024 * 1024);
    let mut vm = synthetic_vm();
    let mut shadow = shadow_setup(&mut m);
    for vpn in 0..64 {
        let pa = (VM_BASE_PFN << 9) + vm.guest_sbr + 4 * vpn;
        m.mem_mut()
            .write_u32(pa, Pte::build(vpn, Protection::Kw, true, true).raw())
            .unwrap();
    }
    // P0 table based 2 bytes before a page boundary: PTE 0 sits at
    // in-page offset 510 and would straddle into the next frame.
    vm.guest_p0br = 0x8000_6000 + 512 - 2;
    let va = VirtAddr::new(0);
    let out = shadow.fill(&mut m, &mut vm, va);
    assert!(
        matches!(out, FillOutcome::Fault(VmmError::PageTableWalk { .. })),
        "straddling PTE read must fault, got {out:?}"
    );
}

// ---------------------------------------------------------------------
// Reflected virtual machine check (integration)
// ---------------------------------------------------------------------

#[test]
fn page_table_walk_fault_reflects_machine_check_through_scb_vector_4() {
    let mut mon = monitor();
    mon.enable_obs(4096);
    let vm = mon.create_vm("g", VmConfig::default());
    // Host-built identity tables: SPT at gpa 0x4000, P0 at S va
    // 0x80004800 (gpa 0x4800).
    for i in 0..64u32 {
        let pte = Pte::build(i, Protection::Uw, true, true);
        mon.vm_write_phys(vm, 0x4000 + 4 * i, &pte.raw().to_le_bytes())
            .unwrap();
        mon.vm_write_phys(vm, 0x4800 + 4 * i, &pte.raw().to_le_bytes())
            .unwrap();
    }
    // A P1 base that is not an S-space address makes every P1 walk
    // undecidable for the VMM. The fault is the guest's own doing, so it
    // comes back as a virtual machine check through SCB vector 0x04 —
    // deliverable, because S and P0 (code, stack, SCB) stay intact.
    let src = "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17        ; SCBB
            mtpr #0x4000, #12       ; SBR
            mtpr #64, #13           ; SLR
            mtpr #0x80004800, #8    ; P0BR (S va)
            mtpr #64, #9            ; P0LR
            mtpr #1, #56            ; MAPEN on
            mtpr #0x2000, #10       ; P1BR in P0 space: walk cannot work
            mtpr #0, #11            ; P1LR (clamped to the shadow floor)
            movl @#0x7FFFFE00, r8   ; top P1 page: walk faults
            halt                    ; skipped: mck handler runs instead
            .align 4
        mck_handler:
            movl #1, r9
            halt
        ";
    let (p, syms) = vax_asm::assemble_text_with_symbols(src, 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.vm_write_phys(vm, 0x200 + 0x04, &syms["mck_handler"].to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);

    assert_eq!(mon.vm(vm).regs[9], 1, "guest's machine-check handler ran");
    assert_eq!(mon.vm_stats(vm).machine_checks, 1);
    assert!(
        mon.vm(vm).halt_reason.is_none(),
        "guest halted itself cleanly: {:?}",
        mon.vm(vm).halt_reason
    );
    let obs = mon.obs().unwrap();
    assert!(obs.exits(ExitCause::ReflectedMachineCheck) >= 1);
    assert_eq!(
        mon.metrics().get_counter("reflected_machine_checks"),
        Some(1)
    );
}

// ---------------------------------------------------------------------
// KCALL boundary arithmetic
// ---------------------------------------------------------------------

#[test]
fn kcall_buffer_wrapping_the_address_space_gets_bad_address_status() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Disk read, BUFFER = 0xFFFFFFFC: buffer + 4 wraps past zero. The
    // old unchecked add landed the transfer in low guest memory; now the
    // guest gets the bad-address status and keeps running.
    boot_with(
        &mut mon,
        vm,
        "
        start:
            movl #1, @#0x300            ; FUNC = disk read
            movl #2, @#0x304            ; SECTOR
            movl #0xFFFFFFFC, @#0x308   ; BUFFER (wraps)
            movl #8, @#0x30C            ; LEN
            clrl @#0x310
            mtpr #0x300, #201           ; KCALL
            movl @#0x310, r2            ; STATUS
            halt
        ",
        0x1000,
    );
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 0x8000_0002, "bad-address status");
    assert!(mon.vm(vm).halt_reason.is_none(), "clean guest halt");
}

#[test]
fn kcall_dma_cannot_write_past_the_partition_into_a_neighbor() {
    let mut mon = monitor();
    let a = mon.create_vm("a", VmConfig::default());
    let b = mon.create_vm("b", VmConfig::default());
    mon.vm_load_disk(a, 2, b"ATTACKER SECTOR!").unwrap();
    // Sentinels at the start of B's partition — exactly where A's DMA
    // would land if the last partial longword leaked across the boundary.
    mon.vm_write_phys(b, 0, &0xB000_0001u32.to_le_bytes())
        .unwrap();
    mon.vm_write_phys(b, 4, &0xB000_0002u32.to_le_bytes())
        .unwrap();
    // A: disk read with BUFFER = MEMSIZE - 2. The first longword write
    // starts in A's memory but ends 2 bytes into B's.
    boot_with(
        &mut mon,
        a,
        "
        start:
            mfpr #200, r7               ; MEMSIZE
            subl2 #2, r7
            movl #1, @#0x300            ; FUNC = disk read
            movl #2, @#0x304            ; SECTOR
            movl r7, @#0x308            ; BUFFER = MEMSIZE - 2
            movl #8, @#0x30C            ; LEN
            clrl @#0x310
            mtpr #0x300, #201
            movl @#0x310, r2
            halt
        ",
        0x1000,
    );
    boot_with(&mut mon, b, "halt", 0x1000);
    assert_eq!(mon.run(10_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(a).regs[2], 0x8000_0002, "bad-address status");
    assert_eq!(mon.vm_read_phys_u32(b, 0), Some(0xB000_0001), "B intact");
    assert_eq!(mon.vm_read_phys_u32(b, 4), Some(0xB000_0002), "B intact");
}

#[test]
fn kcall_request_block_outside_memory_halts_with_reason() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Request block at MEMSIZE - 4: the VMM has no STATUS field to report
    // into, so containment is a recorded halt, not a panic.
    boot_with(
        &mut mon,
        vm,
        "
        start:
            mfpr #200, r7
            subl2 #4, r7
            mtpr r7, #201
            halt
        ",
        0x1000,
    );
    mon.run(5_000_000);
    assert_eq!(mon.vm(vm).state, VmState::ConsoleHalt);
    assert!(
        matches!(mon.vm(vm).halt_reason, Some(VmmError::GuestState { .. })),
        "{:?}",
        mon.vm(vm).halt_reason
    );
}

// ---------------------------------------------------------------------
// Host-side API hardening
// ---------------------------------------------------------------------

#[test]
fn vm_load_disk_rejects_bad_sector_and_oversized_buffer() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default()); // 64-sector vdisk
    assert_eq!(
        mon.vm_load_disk(vm, 64, b"x"),
        Err(VmmError::DiskSector {
            sector: 64,
            capacity: 64
        })
    );
    assert_eq!(
        mon.vm_load_disk(vm, u32::MAX, b"x"),
        Err(VmmError::DiskSector {
            sector: u32::MAX,
            capacity: 64
        })
    );
    assert_eq!(
        mon.vm_load_disk(vm, 0, &[0u8; 513]),
        Err(VmmError::DiskBuffer { len: 513 })
    );
    mon.vm_load_disk(vm, 63, b"last sector ok").unwrap();
    assert_eq!(&mon.vm(vm).vdisk[63][..4], b"last");
}

#[test]
fn vm_write_phys_rejects_ranges_leaving_the_partition() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let mem = mon.vm(vm).mem_bytes();
    assert!(mon.vm_write_phys(vm, mem - 1, &[1, 2]).is_err());
    assert!(mon.vm_write_phys(vm, u32::MAX, &[1]).is_err());
    assert!(mon.vm_write_phys(vm, mem - 2, &[1, 2]).is_ok());
    // A longword read at the last byte must also refuse (it used to read
    // three bytes of the next partition).
    assert_eq!(mon.vm_read_phys_u32(vm, mem - 1), None);
    assert!(mon.vm_read_phys_u32(vm, mem - 4).is_some());
}

#[test]
fn nonexistent_memory_touch_records_halt_reason_and_counts() {
    let mut mon = monitor();
    mon.enable_obs(4096);
    let vm = mon.create_vm("g", VmConfig::default());
    boot_with(&mut mon, vm, "movl @#0x100000, r0\n halt", 0x1000);
    mon.run(1_000_000);
    assert_eq!(mon.vm(vm).state, VmState::ConsoleHalt);
    assert!(
        matches!(
            mon.vm(vm).halt_reason,
            Some(VmmError::NonexistentMemory { gpa: 0x100000 })
        ),
        "{:?}",
        mon.vm(vm).halt_reason
    );
    assert!(mon.obs().unwrap().exits(ExitCause::SecurityHalt) >= 1);
    assert_eq!(mon.metrics().get_counter("security_halts"), Some(1));
    // Booting again clears the recorded reason.
    mon.boot_vm(vm, 0x1000);
    assert!(mon.vm(vm).halt_reason.is_none());
}
