//! VMM edge cases and failure injection: bad guest state must degrade to
//! a reflected exception or a console halt — never to VMM corruption or
//! a panic.

use vax_arch::{AccessMode, Psl};
use vax_asm::assemble_text;
use vax_vmm::{Monitor, MonitorConfig, RunExit, VmConfig, VmId, VmState};

fn monitor() -> Monitor {
    Monitor::new(MonitorConfig::default())
}

fn boot(mon: &mut Monitor, vm: VmId, src: &str) {
    let p = assemble_text(src, 0x1000).expect("assembles");
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.boot_vm(vm, 0x1000);
}

#[test]
fn rei_with_garbage_stack_is_reflected() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // SCB at 0x200 with a reserved-operand handler that records and halts
    // (the handler is the aligned label 4 bytes before the end:
    // movl #1,r9 = D0 01 59; halt = 00).
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17
            pushl #0xFFFFFFFF       ; impossible PSL image (MBZ bits set)
            pushl #0x1000
            rei                     ; must reflect reserved operand
        spin:
            brb spin
            .align 4
        handler:
            movl #1, r9
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    let handler = 0x1000 + code.bytes.len() as u32 - 4;
    mon.vm_write_phys(vm, 0x200 + 0x18, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[9], 1, "guest's own handler ran");
    assert!(mon.vm_stats(vm).reflected >= 1);
}

#[test]
fn vm_cannot_rei_into_virtual_kernel_from_user() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17
            movl #0x6000, r6
            mtpr r6, #3
            pushl #0x03C00000       ; to user mode
            pushal user_code
            rei
        user_code:
            pushl #0                ; kernel-mode PSL image
            pushal user_code        ; privilege-escalation attempt
            rei
        spin:
            brb spin
            .align 4
        handler:
            movpsl r9               ; record the mode the handler runs in
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    let handler = 0x1000 + code.bytes.len() as u32 - 3;
    mon.vm_write_phys(vm, 0x200 + 0x18, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    // The escalation was rejected: the reserved-operand handler ran in
    // virtual kernel mode with previous mode user.
    let psl = Psl::from_raw(mon.vm(vm).regs[9]);
    assert_eq!(psl.prv_mode(), AccessMode::User, "faulted from user mode");
    assert_eq!(mon.vm_stats(vm).rei, 2);
}

#[test]
fn empty_scb_vector_halts_the_vm_cleanly() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // CHMK with no SCB set up at all: vector reads 0 -> console halt.
    boot(&mut mon, vm, "movl #0x5000, sp\n chmk #1\n halt");
    mon.run(5_000_000);
    assert_eq!(mon.vm(vm).state, VmState::ConsoleHalt);
    assert!(
        mon.vm(vm).vmm_log.iter().any(|l| l.contains("halted")),
        "{:?}",
        mon.vm(vm).vmm_log
    );
}

#[test]
fn runaway_guest_exhausts_budget_without_hanging_the_monitor() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    boot(&mut mon, vm, "top: brb top");
    let start = std::time::Instant::now();
    assert_eq!(mon.run(3_000_000), RunExit::BudgetExhausted);
    assert!(start.elapsed().as_secs() < 30);
    assert_eq!(mon.vm(vm).state, VmState::Ready, "still schedulable");
}

#[test]
fn guest_console_input_via_rxdb() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    boot(
        &mut mon,
        vm,
        "
        poll:
            mfpr #32, r0        ; RXCS
            beql poll
            mfpr #33, r2        ; RXDB
            mfpr #33, r3        ; queue now empty -> 0
            mfpr #32, r4
            halt
        ",
    );
    mon.vm_mut(vm).console_in.push_back(b'X');
    mon.run(5_000_000);
    assert_eq!(mon.vm(vm).regs[2], b'X' as u32);
    assert_eq!(mon.vm(vm).regs[3], 0);
    assert_eq!(mon.vm(vm).regs[4], 0, "RXCS clear after drain");
}

#[test]
fn guest_software_interrupts_via_sirr() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x5800, #4        ; virtual ISP
            mtpr #0x200, #17
            mtpr #31, #18           ; masked for now
            mtpr #3, #20            ; SIRR: request level 3
            mfpr #21, r2            ; SISR shows it pending
            mtpr #0, #18            ; unmask: delivery happens here
            halt
        spin:
            brb spin
            .align 4
        soft_handler:
            movl #1, r9
            mfpr #21, r3            ; cleared after delivery
            rei
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    // Software level 3 vector = 0x8C; handler is 12 bytes before the end
    // (movl #1,r9 = D0 01 59; mfpr #21, r3 = DB 15 53; rei = 02) -> 7
    // bytes + rei... compute from the tail: handler starts at len-7.
    let handler = 0x1000 + code.bytes.len() as u32 - 7;
    assert_eq!(handler % 4, 0, "handler aligned");
    mon.vm_write_phys(vm, 0x200 + 0x8C, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 1 << 3, "pending while masked");
    assert_eq!(mon.vm(vm).regs[9], 1, "delivered after unmask");
    assert_eq!(mon.vm(vm).regs[3], 0, "summary bit cleared");
}

#[test]
fn ioreset_cancels_pending_disk_completion() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    boot(
        &mut mon,
        vm,
        "
        start:
            movl #1, @#0x300        ; disk read
            clrl @#0x304
            movl #0x2000, @#0x308
            movl #512, @#0x30C
            clrl @#0x310
            mtpr #0x300, #201       ; start it
            mtpr #0, #202           ; IORESET immediately
            movl #2000, r2
        spin:
            sobgtr r2, spin
            movl @#0x310, r3        ; status must still be 0
            halt
        ",
    );
    assert_eq!(mon.run(50_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[3], 0, "completion cancelled by IORESET");
    assert!(mon.vm(vm).vdisk_pending.is_none());
}

#[test]
fn two_vms_get_comparable_service() {
    let mut mon = monitor();
    let a = mon.create_vm("a", VmConfig::default());
    let b = mon.create_vm("b", VmConfig::default());
    for vm in [a, b] {
        boot(
            &mut mon,
            vm,
            "
            movl #60000, r2
            clrl r3
        top:
            addl2 r2, r3
            sobgtr r2, top
            halt
            ",
        );
    }
    assert_eq!(mon.run(50_000_000), RunExit::AllHalted);
    let ca = mon.vm_stats(a).cycles_run as f64;
    let cb = mon.vm_stats(b).cycles_run as f64;
    assert!(
        (ca / cb - 1.0).abs() < 0.2,
        "round-robin fairness: {ca} vs {cb}"
    );
}

#[test]
fn monitor_with_no_vms_returns_immediately() {
    // Vacuously "all halted": nothing to run, no spinning.
    let mut mon = monitor();
    let start = std::time::Instant::now();
    assert_eq!(mon.run(1_000_000), RunExit::AllHalted);
    assert!(start.elapsed().as_millis() < 1000);
}

#[test]
fn vm_memory_exhaustion_is_a_clean_panic_at_creation() {
    // Admission control: the frame allocator panics when real memory
    // cannot back the VM (fixed allocation, no paging — paper §7.2).
    let result = std::panic::catch_unwind(|| {
        let mut mon = Monitor::new(MonitorConfig {
            mem_bytes: 1024 * 1024,
            ..MonitorConfig::default()
        });
        for i in 0..64 {
            mon.create_vm(&format!("vm{i}"), VmConfig::default());
        }
    });
    assert!(result.is_err(), "out of real memory must be detected");
}

#[test]
fn arithmetic_trap_in_vm_is_reflected_to_the_guest() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17
            movl #7, r2
            divl2 #0, r2            ; divide by zero: reflected trap
        spin:
            brb spin
            .align 4
        arith_handler:
            movl (sp)+, r9          ; trap type code
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    // Arithmetic vector (0x34) -> handler (7 bytes from the end:
    // movl (sp)+, r9 = D0 8E 59; halt = 00).
    let handler = 0x1000 + code.bytes.len() as u32 - 4;
    mon.vm_write_phys(vm, 0x200 + 0x34, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[9], 2, "integer divide-by-zero code");
    assert_eq!(mon.vm(vm).regs[2], 7, "destination unchanged");
}

#[test]
fn breakpoint_in_vm_is_reflected() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x200, #17
            bpt
        spin:
            brb spin
            .align 4
        bpt_handler:
            movl #1, r9
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    let handler = 0x1000 + code.bytes.len() as u32 - 4;
    mon.vm_write_phys(vm, 0x200 + 0x2C, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[9], 1, "guest debugger hook ran");
}

#[test]
fn virtual_ast_delivery_matches_bare_behavior() {
    // The emulated REI performs the same ASTLVL check against the VM's
    // virtual ASTLVL register.
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    let code = assemble_text(
        "
        start:
            movl #0x5000, sp
            mtpr #0x5800, #4
            mtpr #0x200, #17
            mtpr #3, #19            ; virtual ASTLVL = 3
            movl #0x6000, r6
            mtpr r6, #3
            pushl #0x03C00000       ; user image, IPL 0
            pushal user_code
            rei                     ; AST software interrupt requested
        user_code:
            nop
            nop
        spin:
            brb spin
            .align 4
        ast_handler:
            movl #1, r9
            halt
        ",
        0x1000,
    )
    .unwrap();
    mon.vm_write_phys(vm, 0x1000, &code.bytes).unwrap();
    let handler = 0x1000 + code.bytes.len() as u32 - 4;
    mon.vm_write_phys(vm, 0x200 + 0x88, &handler.to_le_bytes())
        .unwrap(); // level 2
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[9], 1, "virtual AST delivered");
}
