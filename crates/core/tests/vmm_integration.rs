//! End-to-end VMM tests with real guest machine code.
//!
//! The simpler guests run with translation off (guest VAs = guest
//! physical); the memory-management tests host-build guest page tables
//! and have the guest enable MAPEN, exercising shadow fills, modify
//! faults, and the ring-compression leak.

use vax_arch::{AccessMode, Protection, Psl, Pte};
use vax_asm::assemble_text;
use vax_vmm::{
    DirtyStrategy, IoStrategy, Monitor, MonitorConfig, RunExit, ShadowConfig, VmConfig, VmId,
    VmState,
};

fn monitor() -> Monitor {
    Monitor::new(MonitorConfig::default())
}

fn boot_with(mon: &mut Monitor, vm: VmId, src: &str, base: u32) {
    let p = assemble_text(src, base).expect("assembles");
    mon.vm_write_phys(vm, base, &p.bytes).unwrap();
    mon.boot_vm(vm, base);
}

#[test]
fn guest_reads_memsize_and_sid() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // MFPR MEMSIZE -> R2; MFPR SID -> R3; HALT.
    boot_with(
        &mut mon,
        vm,
        "
        mfpr #200, r2
        mfpr #62, r3
        halt
        ",
        0x1000,
    );
    assert_eq!(mon.run(1_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 512 * 512, "MEMSIZE = 512 pages");
    assert_eq!(mon.vm(vm).regs[3], 0x0300_0000, "virtual VAX SID");
}

#[test]
fn virtual_ipl_is_software_state() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Set IPL 8, read it back through MFPR and MOVPSL.
    boot_with(
        &mut mon,
        vm,
        "
        mtpr #8, #18
        mfpr #18, r2
        movpsl r3
        halt
        ",
        0x1000,
    );
    mon.run(1_000_000);
    assert_eq!(mon.vm(vm).regs[2], 8);
    let psl = Psl::from_raw(mon.vm(vm).regs[3]);
    assert_eq!(psl.ipl(), 8, "MOVPSL merge returns the VM's IPL");
    assert_eq!(psl.cur_mode(), AccessMode::Kernel, "VM sees virtual kernel");
    assert!(!psl.vm());
    assert_eq!(mon.vm_stats(vm).mtpr_ipl, 1);
}

#[test]
fn chm_and_rei_preserve_four_virtual_modes() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Guest: builds an SCB at 0x200 (gpa), drops to user mode with REI,
    // CHMKs back in, records MOVPSL at each stage, halts.
    let src = "
        start:
            movl #0x5000, sp        ; kernel stack
            mtpr #0x200, #17        ; SCBB
            mtpr #0, #18            ; IPL 0
            movl #0x6000, r6        ; user stack
            mtpr r6, #3             ; USP
            movpsl r2               ; in virtual kernel
            pushl #0x03C00000       ; PSL image: cur=user, prv=user
            pushal user_code        ; PC
            rei
        user_code:
            movpsl r3               ; in virtual user
            chmk #99
            movpsl r5               ; back in user after the kernel REI
            chmk #77                ; ask kernel to halt
        spin:
            brb spin
            .align 4
        kernel_entry:
            movpsl r4               ; in virtual kernel, prv=user
            movl (sp)+, r7          ; CHM code
            cmpl r7, #77
            beql do_halt
            rei
        do_halt:
            halt
        ";
    let p = assemble_text(src, 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    // SCB: CHMK vector (0x40) -> kernel_entry. Find its address: the
    // label is not exported, so assemble a probe: kernel_entry follows
    // 'spin: brb spin'. Instead, place the handler address by assembling
    // with a known layout: use text order. Easiest: scan for the MOVPSL
    // r4 opcode sequence (DC 54).
    let code = &p.bytes;
    let off = code
        .windows(2)
        .position(|w| w == [0xDC, 0x54])
        .expect("kernel_entry found");
    let kernel_entry = 0x1000 + off as u32;
    mon.vm_write_phys(vm, 0x200 + 0x40, &kernel_entry.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(2_000_000), RunExit::AllHalted);

    let r = &mon.vm(vm).regs;
    let k0 = Psl::from_raw(r[2]);
    let u0 = Psl::from_raw(r[3]);
    let k1 = Psl::from_raw(r[4]);
    let u1 = Psl::from_raw(r[5]);
    assert_eq!(k0.cur_mode(), AccessMode::Kernel);
    assert_eq!(u0.cur_mode(), AccessMode::User);
    assert_eq!(k1.cur_mode(), AccessMode::Kernel, "CHMK entered kernel");
    assert_eq!(k1.prv_mode(), AccessMode::User, "previous mode preserved");
    assert_eq!(u1.cur_mode(), AccessMode::User, "REI returned to user");
    assert_eq!(r[7], 77, "CHM code delivered on the target stack");
    let stats = mon.vm_stats(vm);
    assert_eq!(stats.chm, 2);
    assert!(stats.rei >= 2);
    assert!(
        mon.vm_stats(vm).emulation_traps >= 4,
        "CHM/REI all trapped for emulation"
    );
}

#[test]
fn kcall_disk_round_trip_with_interrupt() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Request block at 0x300; write 'VAXDATA!' from 0x400 to sector 5,
    // poll status; read it back to 0x500; compare; print result to TXDB.
    let src = "
        start:
            ; stay at boot IPL 31: we poll rather than take interrupts
            movl #0x44585841, @#0x400   ; 'AXXD'... value checked below
            movl #0x21415441, @#0x404
            ; request: write sector 5 from 0x400
            movl #2, @#0x300
            movl #5, @#0x304
            movl #0x400, @#0x308
            movl #8, @#0x30C
            clrl @#0x310
            mtpr #0x300, #201       ; KCALL
        wait1:
            tstl @#0x310
            beql wait1
            ; request: read sector 5 to 0x500
            movl #1, @#0x300
            movl #0x500, @#0x308
            clrl @#0x310
            mtpr #0x300, #201
        wait2:
            tstl @#0x310
            beql wait2
            movl @#0x500, r2
            movl @#0x504, r3
            halt
        ";
    boot_with(&mut mon, vm, src, 0x1000);
    assert_eq!(mon.run(10_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 0x4458_5841);
    assert_eq!(mon.vm(vm).regs[3], 0x2141_5441);
    let stats = mon.vm_stats(vm);
    assert_eq!(stats.kcalls, 2);
    // Sector content visible host-side.
    assert_eq!(&mon.vm(vm).vdisk[5][..4], &0x4458_5841u32.to_le_bytes());
}

#[test]
fn wait_parks_vm_and_scheduler_runs_other_vm() {
    let mut mon = monitor();
    let a = mon.create_vm("a", VmConfig::default());
    let b = mon.create_vm("b", VmConfig::default());
    // VM a: WAIT then halt (timeout path). VM b: compute then halt.
    boot_with(&mut mon, a, "wait\n halt", 0x1000);
    boot_with(
        &mut mon,
        b,
        "
        movl #1000, r2
        clrl r3
    top:
        addl2 r2, r3
        sobgtr r2, top
        halt
        ",
        0x1000,
    );
    assert_eq!(mon.run(50_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(b).regs[3], 500500, "b ran to completion");
    assert_eq!(mon.vm_stats(a).waits, 1);
    assert_eq!(mon.vm(a).state, VmState::ConsoleHalt);
}

#[test]
fn guest_touching_nonexistent_memory_is_halted() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // 512 pages = 256 KiB; touch beyond it.
    boot_with(&mut mon, vm, "movl @#0x100000, r0\n halt", 0x1000);
    mon.run(1_000_000);
    assert_eq!(mon.vm(vm).state, VmState::ConsoleHalt);
    assert!(
        mon.vm(vm).vmm_log.iter().any(|l| l.contains("halted")),
        "security halt reported: {:?}",
        mon.vm(vm).vmm_log
    );
}

#[test]
fn vm_cannot_reach_vmm_or_other_vm_memory() {
    // Resource control: guest-physical addressing is bounded by MEMSIZE,
    // so a VM cannot name another VM's real frames at all. Prove the two
    // VMs' gpa 0 map to different real memory.
    let mut mon = monitor();
    let a = mon.create_vm("a", VmConfig::default());
    let b = mon.create_vm("b", VmConfig::default());
    boot_with(&mut mon, a, "movl #0xAAAAAAAA, @#0x40\n halt", 0x1000);
    boot_with(&mut mon, b, "movl #0xBBBBBBBB, @#0x40\n halt", 0x1000);
    mon.run(10_000_000);
    assert_eq!(mon.vm_read_phys_u32(a, 0x40), Some(0xAAAA_AAAA));
    assert_eq!(mon.vm_read_phys_u32(b, 0x40), Some(0xBBBB_BBBB));
}

/// Host-side construction of guest page tables for the MAPEN-on tests:
/// guest SPT at gpa 0x4000 identity-maps S pages 0..48; guest P0 table at
/// gpa 0x4800 (= S va 0x80004800) identity-maps P0 pages 0..48.
fn build_guest_tables(mon: &mut Monitor, vm: VmId, data_page_prot: Protection, data_m: bool) {
    for i in 0..64u32 {
        let pte = Pte::build(i, Protection::Uw, true, true);
        mon.vm_write_phys(vm, 0x4000 + 4 * i, &pte.raw().to_le_bytes())
            .unwrap();
    }
    for i in 0..64u32 {
        // P0 page 0x20 (va 0x4000) is the "data page" under test.
        let (prot, m) = if i == 0x20 {
            (data_page_prot, data_m)
        } else {
            (Protection::Uw, true)
        };
        let pte = Pte::build(i, prot, true, m);
        mon.vm_write_phys(vm, 0x4800 + 4 * i, &pte.raw().to_le_bytes())
            .unwrap();
    }
}

const ENABLE_MMU: &str = "
        mtpr #0x4000, #12       ; SBR (guest-physical)
        mtpr #64, #13           ; SLR
        mtpr #0x80004800, #8    ; P0BR (S va)
        mtpr #64, #9            ; P0LR
        mtpr #1, #56            ; MAPEN on
";

#[test]
fn shadow_fill_makes_guest_translation_work() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    build_guest_tables(&mut mon, vm, Protection::Uw, true);
    let src = format!(
        "
        start:
            {ENABLE_MMU}
            movl #0x12345678, @#0x4000   ; P0 data page via translation
            movl @#0x80004000, r2        ; same page via its S alias? no:
                                         ; S page 0x20 also maps gpfn 0x20
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 0x1234_5678, "S alias sees the write");
    let stats = mon.vm_stats(vm);
    assert!(stats.shadow_fills > 0, "on-demand fills happened");
    // The write went to guest gpa 0x4000 (gpfn 0x20).
    assert_eq!(mon.vm_read_phys_u32(vm, 0x4000), Some(0x1234_5678));
}

#[test]
fn modify_fault_propagates_m_bit_into_guest_pte() {
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    // Data page PTE starts with M clear.
    build_guest_tables(&mut mon, vm, Protection::Uw, false);
    let src = format!(
        "
        start:
            {ENABLE_MMU}
            movl @#0x4000, r2            ; read: no modify fault
            movl #7, @#0x4000            ; first write: modify fault
            movl #8, @#0x4000            ; second write: none
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    let stats = mon.vm_stats(vm);
    assert_eq!(stats.modify_faults, 1, "exactly one modify fault");
    // Paper §4.4.2: the VMM must set PTE<M> in the VM's own page table.
    let gpte = Pte::from_raw(mon.vm_read_phys_u32(vm, 0x4800 + 4 * 0x20).unwrap());
    assert!(gpte.modified(), "guest PTE<M> set by the VMM");
}

#[test]
fn read_only_shadow_ablation_upgrades_on_first_write() {
    let mut mon = monitor();
    let vm = mon.create_vm(
        "g",
        VmConfig {
            dirty_strategy: DirtyStrategy::ReadOnlyShadow,
            ..VmConfig::default()
        },
    );
    build_guest_tables(&mut mon, vm, Protection::Uw, false);
    let src = format!(
        "
        start:
            {ENABLE_MMU}
            movl @#0x4000, r2
            movl #7, @#0x4000
            movl #8, @#0x4000
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    let stats = mon.vm_stats(vm);
    assert_eq!(stats.modify_faults, 0, "no modify faults in this strategy");
    assert_eq!(stats.dirty_upgrades, 1, "one write-protection upgrade");
    let gpte = Pte::from_raw(mon.vm_read_phys_u32(vm, 0x4800 + 4 * 0x20).unwrap());
    assert!(gpte.modified(), "M still propagated to the guest PTE");
}

#[test]
fn ring_compression_leak_executive_touches_kernel_page() {
    // Paper §4.3.1/§5: under ring compression, a page the VM protects
    // kernel-only is in fact accessible from VM-executive mode. Verify
    // both directions: VM-kernel works (required), VM-executive also
    // works (the acknowledged leak).
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    build_guest_tables(&mut mon, vm, Protection::Kw, true); // kernel-only data page
    let src = format!(
        "
        start:
            movl #0x5000, sp             ; kernel stack
            {ENABLE_MMU}
            mtpr #0, #18
            movl #0x99, @#0x4000         ; VM-kernel write: must work
            mtpr #0x200, #17             ; SCBB for the coming CHME
            movl #0x7000, r6
            mtpr r6, #1                  ; ESP
            pushl #0x01400000            ; PSL image: cur=exec, prv=exec
            pushal exec_code
            rei
        exec_code:
            movl @#0x4000, r2            ; VM-executive read: THE LEAK
            movl #0xAB, @#0x4000         ; VM-executive write: also works
            movl @#0x4000, r3
            chme #1                      ; exec handler halts
        spin:
            brb spin
            .align 4
        handler:
            halt
        "
    );
    let p = assemble_text(&src, 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    // CHME vector (0x44) -> handler (the final HALT: opcode 00 at end).
    let handler = 0x1000 + p.bytes.len() as u32 - 1;
    mon.vm_write_phys(vm, 0x200 + 0x44, &handler.to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 0x99, "executive READ the kernel page");
    assert_eq!(mon.vm(vm).regs[3], 0xAB, "executive WROTE the kernel page");
}

#[test]
fn user_mode_cannot_touch_kernel_page_in_vm() {
    // The supervisor/user boundaries are fully preserved (paper §4.1:
    // those are the ones VMS security leans on).
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    build_guest_tables(&mut mon, vm, Protection::Kw, true);
    let src = format!(
        "
        start:
            movl #0x5000, sp             ; kernel stack
            {ENABLE_MMU}
            mtpr #0, #18
            mtpr #0x200, #17
            movl #0x7000, r6
            mtpr r6, #3                  ; USP
            pushl #0x03C00000            ; user mode image
            pushal user_code
            rei
        user_code:
            movl @#0x4000, r2            ; must fault: AV reflected
        spin:
            brb spin
            .align 4
        av_handler:
            halt
        "
    );
    let p = assemble_text(&src, 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    let handler = 0x1000 + p.bytes.len() as u32 - 1; // final HALT
    mon.vm_write_phys(vm, 0x200 + 0x20, &handler.to_le_bytes())
        .unwrap(); // AV vector
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 0, "user read must not succeed");
    assert!(mon.vm_stats(vm).reflected >= 1, "AV reflected to the guest");
}

#[test]
fn emulated_mmio_strategy_traps_per_csr_access() {
    let mut mon = monitor();
    let vm = mon.create_vm(
        "g",
        VmConfig {
            io_strategy: IoStrategy::EmulatedMmio,
            ..VmConfig::default()
        },
    );
    // Guest tables identity + map P0 page 0x30 (va 0x6000) to the I/O
    // window gpfn.
    build_guest_tables(&mut mon, vm, Protection::Uw, true);
    let io_pte = Pte::build(vax_vmm::GUEST_IO_GPFN_BASE, Protection::Uw, true, true);
    mon.vm_write_phys(vm, 0x4800 + 4 * 0x30, &io_pte.raw().to_le_bytes())
        .unwrap();
    // Load sector 2 of the real-bus disk.
    mon.vm_load_disk(vm, 2, b"mmio sector data").unwrap();
    let src = format!(
        "
        start:
            {ENABLE_MMU}
            movl #2, @#0x6004            ; SECTOR = 2
            movl #3, @#0x6000            ; CSR = GO | FUNC_READ
        poll:
            movl @#0x6000, r2            ; read CSR
            bicl2 #0xffffff7f, r2        ; isolate READY
            beql poll
            movl @#0x6008, r3            ; first DATA word
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(20_000_000), RunExit::AllHalted);
    assert_eq!(&mon.vm(vm).regs[3].to_le_bytes(), b"mmio");
    let stats = mon.vm_stats(vm);
    assert!(
        stats.mmio_accesses >= 4,
        "every CSR touch trapped: {}",
        stats.mmio_accesses
    );
}

#[test]
fn shadow_cache_avoids_refills_on_context_switch() {
    // Simulate two guest "processes" by flipping P0BR between two guest
    // P0 tables via LDPCTX... simplified: flip P0BR directly (which
    // resets the active shadow) vs. LDPCTX with two PCBs (which uses the
    // cache). Here: two PCBs, cache of 2, each process touches its pages,
    // switch back and forth; second visit must not refill.
    let mut mon = monitor();
    let vm = mon.create_vm(
        "g",
        VmConfig {
            shadow: ShadowConfig {
                cache_slots: 2,
                ..ShadowConfig::default()
            },
            ..VmConfig::default()
        },
    );
    build_guest_tables(&mut mon, vm, Protection::Uw, true);
    // Two PCBs at 0x5000 / 0x5100, both resuming at `proc_body` with the
    // same P0 table (content is irrelevant; identity is by PCBB).
    let src = format!(
        "
        start:
            {ENABLE_MMU}
            mtpr #0, #18
            movl #0x7800, sp
            ; --- build both PCBs' PC/PSL/P0 fields ---
            moval proc_body, @#0x5048    ; PCB0.PC
            clrl @#0x504C                ; PCB0.PSL (kernel)
            movl #0x80004800, @#0x5050   ; PCB0.P0BR
            movl #64, @#0x5054           ; PCB0.P0LR
            movl #0x7000, @#0x5000       ; PCB0.KSP
            moval proc_body, @#0x5148
            clrl @#0x514C
            movl #0x80004800, @#0x5150
            movl #64, @#0x5154
            movl #0x7400, @#0x5100       ; PCB1.KSP
            ; switch to process 0
            mtpr #0x5000, #16
            ldpctx
            rei
        proc_body:
            movl @#0x2000, r2            ; touch a P0 page (fill)
            incl @#0x700                 ; visit counter (regs are
                                         ; reloaded from the PCB)
            cmpl @#0x700, #4
            bgeq done
            ; alternate PCBB between 0x5000 and 0x5100
            mfpr #16, r4
            cmpl r4, #0x5000
            beql to1
            mtpr #0x5000, #16
            brb sw
        to1:
            mtpr #0x5100, #16
        sw: ldpctx
            rei
        done:
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(20_000_000), RunExit::AllHalted);
    let stats = mon.vm_stats(vm);
    assert_eq!(stats.guest_context_switches, 4, "{stats:?}");
    assert_eq!(stats.shadow_cache_misses, 2, "first visit of each PCB");
    assert_eq!(stats.shadow_cache_hits, 2, "revisits hit the cache");
}

#[test]
fn two_emulated_mmio_vms_have_isolated_disks_and_vectors() {
    let mut mon = monitor();
    let mk = || VmConfig {
        io_strategy: IoStrategy::EmulatedMmio,
        ..VmConfig::default()
    };
    let a = mon.create_vm("a", mk());
    let b = mon.create_vm("b", mk());
    mon.vm_load_disk(a, 2, b"DISK-A sector two").unwrap();
    mon.vm_load_disk(b, 2, b"DISK-B sector two").unwrap();

    let src = "
        start:
            mtpr #0x4000, #12
            mtpr #64, #13
            mtpr #0x80004800, #8
            mtpr #64, #9
            mtpr #1, #56
            movl #2, @#0x6004            ; SECTOR = 2
            movl #3, @#0x6000            ; GO | READ
        poll:
            movl @#0x6000, r2
            bicl2 #0xffffff7f, r2
            beql poll
            movl @#0x6008, r3            ; first DATA word
            movl @#0x6008, r4            ; second
            halt
        ";
    for vm in [a, b] {
        build_guest_tables(&mut mon, vm, Protection::Uw, true);
        let io_pte = Pte::build(vax_vmm::GUEST_IO_GPFN_BASE, Protection::Uw, true, true);
        mon.vm_write_phys(vm, 0x4800 + 4 * 0x30, &io_pte.raw().to_le_bytes())
            .unwrap();
        let p = assemble_text(src, 0x1000).unwrap();
        mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
        mon.boot_vm(vm, 0x1000);
    }
    assert_eq!(mon.run(80_000_000), RunExit::AllHalted);
    assert_eq!(&mon.vm(a).regs[3].to_le_bytes(), b"DISK");
    assert_eq!(
        &mon.vm(a).regs[4].to_le_bytes(),
        b"-A s",
        "VM a reads disk A"
    );
    assert_eq!(
        &mon.vm(b).regs[4].to_le_bytes(),
        b"-B s",
        "VM b reads disk B"
    );
    assert!(mon.vm_stats(a).mmio_accesses >= 4);
    assert!(mon.vm_stats(b).mmio_accesses >= 4);
}

#[test]
fn probe_in_vm_uses_guest_protection_even_when_pte_invalid() {
    // Paper §3.2.1/§4.3.2: the protection field is meaningful even when
    // PTE<V> is clear. A PROBE of an invalid-but-accessible guest page
    // traps (the shadow is invalid) and the VMM answers from the guest's
    // own PTE: accessible, without faulting the page in.
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    build_guest_tables(&mut mon, vm, Protection::Uw, true);
    // Guest P0 page 0x22 (va 0x4400): UW but invalid.
    let pte = Pte::build(0x22, Protection::Uw, false, false);
    mon.vm_write_phys(vm, 0x4800 + 4 * 0x22, &pte.raw().to_le_bytes())
        .unwrap();
    // Guest P0 page 0x23 (va 0x4600): KW (user-inaccessible) and invalid.
    let pte = Pte::build(0x23, Protection::Kw, false, false);
    mon.vm_write_phys(vm, 0x4800 + 4 * 0x23, &pte.raw().to_le_bytes())
        .unwrap();
    let src = format!(
        "
        start:
            movl #0x5000, sp
            {ENABLE_MMU}
            prober #3, #4, @#0x4400    ; invalid but UW: accessible
            beql not_acc1
            movl #1, r2
        not_acc1:
            prober #3, #4, @#0x4600    ; invalid and KW: denied for user
            bneq acc2
            movl #1, r3
        acc2:
            halt
        "
    );
    boot_with(&mut mon, vm, &src, 0x1000);
    assert_eq!(mon.run(5_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[2], 1, "invalid+UW probes accessible");
    assert_eq!(mon.vm(vm).regs[3], 1, "invalid+KW denied for user");
    // The probes did NOT fault the pages in.
    let gpte = Pte::from_raw(mon.vm_read_phys_u32(vm, 0x4800 + 4 * 0x22).unwrap());
    assert!(!gpte.valid(), "guest PTE untouched by PROBE");
}

#[test]
fn chm_push_to_demand_paged_stack_retries_after_guest_fault() {
    // The supervisor stack page is invalid in the guest's own tables;
    // a CHMS must reflect the guest's page fault (PC still at the CHMS),
    // let the guest's TNV handler validate the page, and then re-execute
    // the CHMS successfully.
    let mut mon = monitor();
    let vm = mon.create_vm("g", VmConfig::default());
    build_guest_tables(&mut mon, vm, Protection::Uw, true);
    // Make P0 page 0x28 (va 0x5000) the supervisor stack page: valid=0.
    let pte = Pte::build(0x28, Protection::Uw, false, true);
    mon.vm_write_phys(vm, 0x4800 + 4 * 0x28, &pte.raw().to_le_bytes())
        .unwrap();
    let src = format!(
        "
        start:
            movl #0x5000, sp             ; kernel stack (valid)
            {ENABLE_MMU}
            mtpr #0x200, #17
            movl #0x5200, r6
            mtpr r6, #2                  ; SSP -> the invalid page
            movl #0x6000, r6
            mtpr r6, #3                  ; USP
            pushl #0x03C00000
            pushal user_code
            rei
        user_code:
            chms #5                      ; push faults -> guest validates
        spin:
            brb spin
            .align 4
        chms_handler:
            movl (sp)+, r9               ; the CHM code: proves the retry
            chmk #0
        spin2:
            brb spin2
            .align 4
        chmk_handler:
            halt
            .align 4
        tnv_handler:
            incl r8                      ; count guest page faults
            movl 4(sp), r0               ; faulting va (frame: reason, va)
            ashl #-9, r0, r1
            ashl #2, r1, r1
            addl2 #0x80004800, r1        ; guest P0 table (S alias)
            bisl2 #0x80000000, (r1)      ; set PTE<V>
            mtpr r0, #58                 ; TBIS
            addl2 #8, sp
            rei
        "
    );
    let (p, syms) = vax_asm::assemble_text_with_symbols(&src, 0x1000).unwrap();
    mon.vm_write_phys(vm, 0x1000, &p.bytes).unwrap();
    mon.vm_write_phys(vm, 0x200 + 0x48, &syms["chms_handler"].to_le_bytes())
        .unwrap();
    mon.vm_write_phys(vm, 0x200 + 0x40, &syms["chmk_handler"].to_le_bytes())
        .unwrap();
    mon.vm_write_phys(vm, 0x200 + 0x24, &syms["tnv_handler"].to_le_bytes())
        .unwrap();
    mon.boot_vm(vm, 0x1000);
    assert_eq!(mon.run(10_000_000), RunExit::AllHalted);
    assert_eq!(mon.vm(vm).regs[8], 1, "one guest page fault on the stack");
    assert_eq!(mon.vm(vm).regs[9], 5, "the retried CHMS delivered its code");
}
