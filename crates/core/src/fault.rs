//! The fault-containment taxonomy (DESIGN.md §11).
//!
//! The security-kernel invariant (paper §4–5) is that nothing a virtual
//! machine does can take down the monitor: sensitive operations trap and
//! are emulated, faults are *reflected* into the guest, and the VMM's own
//! error paths must never turn a malformed guest into a host panic. Every
//! guest-reachable failure is therefore named by a [`VmmError`] and ends
//! in one of two architecturally clean outcomes, decided by
//! [`VmmError::containment`]:
//!
//! * **Reflect** — the guest receives a *virtual machine check* through
//!   its SCB vector 0x04, exactly as real hardware reports a bad
//!   page-table reference. Used when the guest's own privileged state
//!   (page-table base registers, PTE contents) names memory outside the
//!   VM: the state is wrong by the guest's own doing, and its operating
//!   system is entitled to hear about it the way a real VAX would say it.
//! * **Halt** — the VM transitions to its virtual console with the
//!   reason recorded in [`crate::vm::Vm::halt_reason`]. Used when the
//!   event cannot be delivered to the guest at all (its SCB or exception
//!   stack is gone), when the paper explicitly prescribes a security halt
//!   (§5: a reference to nonexistent memory "may be the symptom of a
//!   security attack"), or when a VMM-internal invariant failed.
//!
//! Host-facing loader/console APIs ([`crate::Monitor::vm_write_phys`],
//! [`crate::Monitor::vm_load_disk`]) return these errors as `Result`s
//! instead; the containment policy applies only to faults raised while a
//! VM is executing.

use vax_arch::Exception;

/// Diagnostic codes carried by a reflected virtual machine check (the
/// single parameter pushed after PC/PSL). The low code space is left to
/// the hardware's own machine-check summaries; the VMM uses 0x10 up.
pub mod mck {
    /// A guest page-table walk referenced guest-physical memory outside
    /// the VM (bogus SBR, or a walk that ran off the end of memory).
    pub const PT_WALK: u32 = 0x10;
    /// A guest P0BR/P1BR does not point into guest S space.
    pub const PT_NOT_S: u32 = 0x11;
    /// A guest PTE maps a page frame beyond the VM's MEMSIZE.
    pub const PTE_FRAME: u32 = 0x12;
}

/// Everything that can go wrong on a guest-reachable VMM path, plus the
/// host-API misuses the same machinery reports as `Result`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmmError {
    /// A guest page-table walk referenced guest-physical memory outside
    /// the VM's partition: the PTE longword at `gpa` is not entirely
    /// inside guest memory (bogus SBR, or a base at the partition edge).
    PageTableWalk {
        /// Guest-physical address of the PTE the walk tried to read.
        gpa: u32,
    },
    /// A guest P0BR/P1BR points outside guest S space, so no process PTE
    /// can be located for the faulting address.
    ProcessBaseNotS {
        /// The offending base-register value.
        base: u32,
    },
    /// A guest PTE names a page frame beyond the VM's MEMSIZE.
    PteFrame {
        /// The out-of-range guest page frame number.
        gpfn: u32,
    },
    /// A guest-physical reference outside the VM's memory while guest
    /// translation is off (paper §5: halt — possible security attack).
    NonexistentMemory {
        /// The out-of-range guest-physical address.
        gpa: u32,
    },
    /// The real machine reported a machine check while the VM ran — the
    /// paper's §5 "hardware errors" case.
    RealMachineCheck {
        /// The hardware's diagnostic summary code.
        code: u32,
    },
    /// A reflected exception or virtual interrupt could not be delivered:
    /// the guest's SCB, its chosen vector, or its exception stack is
    /// unusable, so the guest can no longer hear about its own faults.
    Undeliverable {
        /// Which delivery structure failed.
        what: &'static str,
    },
    /// Guest privileged state the emulation needed (PCB, KCALL request
    /// block) is not readable/writable guest memory.
    GuestState {
        /// Which structure was bad.
        what: &'static str,
    },
    /// The emulated-MMIO window is misconfigured for this VM.
    Mmio {
        /// What was wrong with the window.
        what: &'static str,
    },
    /// A VMM-internal invariant failed. Never guest-attributable; the VM
    /// is halted so the inconsistency cannot spread.
    Internal {
        /// The invariant that failed.
        what: &'static str,
    },
    /// Host API: the requested virtual-disk sector does not exist.
    DiskSector {
        /// Requested sector.
        sector: u32,
        /// Sectors on the virtual disk.
        capacity: u32,
    },
    /// Host API: a sector buffer longer than the 512-byte sector size.
    DiskBuffer {
        /// Offending buffer length.
        len: usize,
    },
    /// Host API: a guest-physical range not contained in the VM's memory.
    GuestRange {
        /// Start of the range.
        gpa: u32,
        /// Length of the range in bytes.
        len: u32,
    },
    /// Host API: a snapshot image failed validation on restore. Never
    /// guest-attributable — the image, not the guest, is malformed.
    Snapshot {
        /// What was wrong with the image.
        what: &'static str,
    },
}

/// Every `&'static str` diagnostic the monitor's own code attaches to a
/// [`VmmError`]. Snapshot restore re-interns serialized halt reasons
/// against this table so a restored error is byte-for-byte (and
/// pointer-for-pointer) the same value the uninterrupted run would
/// produce. A diagnostic added to an emulation path without a row here
/// still round-trips *by content* (str equality is content equality) via
/// the leaked-string fallback in [`intern_diagnostic`].
pub static KNOWN_DIAGNOSTICS: &[&str] = &[
    "KCALL request block outside VM memory",
    "window without a real device",
    "access outside shadowed space",
    "real machine halted during MMIO emulation",
    "shadow fill did not converge",
    "kernel stack not valid",
    "exception frame push failed",
    "guest SCB unreadable",
    "guest exception vector empty",
    "guest interrupt vector empty",
    "guest CHM vector empty",
    "guest PCB unreadable",
    "guest PCB unwritable",
    "guest_pte returned Filled",
    "no real device attached",
    "device rejected CSR write",
    "real machine halt in VM mode",
];

/// Maps a serialized diagnostic message back to a `&'static str` for a
/// restored [`VmmError`]. Known messages intern to the table entry;
/// unknown ones are leaked (snapshot loaders cap message length, so the
/// leak is bounded per restore) to preserve content equality with the
/// original run.
pub fn intern_diagnostic(msg: &str) -> &'static str {
    for known in KNOWN_DIAGNOSTICS {
        if *known == msg {
            return known;
        }
    }
    Box::leak(msg.to_owned().into_boxed_str())
}

/// What the monitor does with a [`VmmError`] raised while a VM runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// Reflect the exception (a virtual machine check) into the guest
    /// through its SCB.
    Reflect(Exception),
    /// Halt the VM at its virtual console, recording the reason.
    Halt,
}

impl VmmError {
    /// The containment decision for this error — the §11 decision table.
    pub fn containment(self) -> Containment {
        match self {
            // The guest's own page-table state is bogus: architecturally a
            // machine check, and the guest OS gets to handle it.
            VmmError::PageTableWalk { .. } => {
                Containment::Reflect(Exception::MachineCheck { code: mck::PT_WALK })
            }
            VmmError::ProcessBaseNotS { .. } => Containment::Reflect(Exception::MachineCheck {
                code: mck::PT_NOT_S,
            }),
            VmmError::PteFrame { .. } => Containment::Reflect(Exception::MachineCheck {
                code: mck::PTE_FRAME,
            }),
            // Everything else either cannot be delivered to the guest or
            // is the paper's prescribed security halt.
            VmmError::NonexistentMemory { .. }
            | VmmError::RealMachineCheck { .. }
            | VmmError::Undeliverable { .. }
            | VmmError::GuestState { .. }
            | VmmError::Mmio { .. }
            | VmmError::Internal { .. }
            | VmmError::DiskSector { .. }
            | VmmError::DiskBuffer { .. }
            | VmmError::GuestRange { .. }
            | VmmError::Snapshot { .. } => Containment::Halt,
        }
    }

    /// True when the error is attributable to the guest's own actions
    /// (as opposed to a VMM invariant failure or host-API misuse).
    pub fn is_guest_attributable(self) -> bool {
        !matches!(
            self,
            VmmError::Internal { .. }
                | VmmError::DiskSector { .. }
                | VmmError::DiskBuffer { .. }
                | VmmError::GuestRange { .. }
                | VmmError::Snapshot { .. }
        )
    }
}

impl core::fmt::Display for VmmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmmError::PageTableWalk { gpa } => {
                write!(
                    f,
                    "guest page-table walk outside VM memory (PTE at {gpa:#010x})"
                )
            }
            VmmError::ProcessBaseNotS { base } => {
                write!(
                    f,
                    "guest process page-table base outside S space ({base:#010x})"
                )
            }
            VmmError::PteFrame { gpfn } => {
                write!(f, "guest PTE maps frame outside VM memory (gpfn {gpfn:#x})")
            }
            VmmError::NonexistentMemory { gpa } => {
                write!(f, "physical reference outside VM memory ({gpa:#010x})")
            }
            VmmError::RealMachineCheck { code } => {
                write!(f, "real machine check while VM running (code {code:#x})")
            }
            VmmError::Undeliverable { what } => write!(f, "undeliverable exception: {what}"),
            VmmError::GuestState { what } => write!(f, "bad guest state: {what}"),
            VmmError::Mmio { what } => write!(f, "MMIO emulation: {what}"),
            VmmError::Internal { what } => write!(f, "VMM internal invariant failed: {what}"),
            VmmError::DiskSector { sector, capacity } => {
                write!(
                    f,
                    "disk sector {sector} beyond virtual disk ({capacity} sectors)"
                )
            }
            VmmError::DiskBuffer { len } => {
                write!(
                    f,
                    "sector buffer of {len} bytes exceeds the 512-byte sector"
                )
            }
            VmmError::GuestRange { gpa, len } => {
                write!(
                    f,
                    "guest-physical range {gpa:#010x}+{len:#x} outside VM memory"
                )
            }
            VmmError::Snapshot { what } => write!(f, "snapshot restore: {what}"),
        }
    }
}

impl std::error::Error for VmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_table_errors_reflect_machine_checks() {
        for (err, code) in [
            (VmmError::PageTableWalk { gpa: 0x3FFFE }, mck::PT_WALK),
            (VmmError::ProcessBaseNotS { base: 0x1000 }, mck::PT_NOT_S),
            (VmmError::PteFrame { gpfn: 0x5000 }, mck::PTE_FRAME),
        ] {
            match err.containment() {
                Containment::Reflect(Exception::MachineCheck { code: c }) => {
                    assert_eq!(c, code, "{err:?}");
                }
                other => panic!("{err:?}: expected reflected machine check, got {other:?}"),
            }
            assert!(err.is_guest_attributable());
        }
    }

    #[test]
    fn non_deliverable_errors_halt() {
        for err in [
            VmmError::NonexistentMemory { gpa: 0x10_0000 },
            VmmError::RealMachineCheck { code: 1 },
            VmmError::Undeliverable {
                what: "guest SCB unreadable",
            },
            VmmError::GuestState {
                what: "guest PCB unreadable",
            },
            VmmError::Internal { what: "x" },
            VmmError::Snapshot { what: "bad magic" },
        ] {
            assert_eq!(err.containment(), Containment::Halt, "{err:?}");
        }
        assert!(!VmmError::Internal { what: "x" }.is_guest_attributable());
        assert!(!VmmError::Snapshot { what: "bad magic" }.is_guest_attributable());
    }

    #[test]
    fn intern_diagnostic_round_trips_every_known_message() {
        for msg in KNOWN_DIAGNOSTICS {
            // A restored message must be the very same static string, so
            // restored errors are indistinguishable from originals.
            let serialized = String::from(*msg);
            assert!(std::ptr::eq(
                intern_diagnostic(&serialized).as_ptr(),
                msg.as_ptr()
            ));
        }
        assert_eq!(intern_diagnostic("no such message"), "no such message");
    }

    #[test]
    fn display_is_informative() {
        let e = VmmError::PageTableWalk { gpa: 0x3FFFE };
        assert!(e.to_string().contains("0x0003fffe"), "{e}");
        assert!(!VmmError::DiskSector {
            sector: 99,
            capacity: 64
        }
        .to_string()
        .is_empty());
    }
}
