//! Physical-memory and address-space layout (paper Figure 2).
//!
//! The VMM shares the virtual address space with the VM: the guest owns S
//! space below an installation-defined boundary, the VMM owns S space
//! above it. Concretely, each VM gets a *real system page table* whose
//! low entries are the guest's shadow S PTEs (initialized to the null
//! PTE) and whose entries above the boundary map VMM-owned structures —
//! most importantly the shadow P0/P1 process tables, which the paper's
//! footnote 4 places in the VMM's virtual memory.

use vax_arch::va::{PAGE_BYTES, PAGE_SHIFT, S_BASE};

/// Default limit on a VM's S space, in pages (paper §5, "Virtual memory
/// limits": the VMM may impose a smaller limit than the architecture's
/// 1 GB).
pub const DEFAULT_GUEST_S_PAGES: u32 = 4096; // 2 MiB of S space

/// Default limit on a VM's P0 space, in pages.
pub const DEFAULT_GUEST_P0_PAGES: u32 = 4096;

/// Default limit on a VM's P1 space, in pages (counted from the top).
pub const DEFAULT_GUEST_P1_PAGES: u32 = 512;

/// The S-space VPN where the VMM region begins (the "installation-defined
/// boundary" of Figure 2). Guests may use S VPNs below this.
pub const VMM_BOUNDARY_VPN: u32 = DEFAULT_GUEST_S_PAGES;

/// The boundary as a virtual address.
pub const VMM_BOUNDARY_VA: u32 = S_BASE + (VMM_BOUNDARY_VPN << PAGE_SHIFT);

/// A bump allocator over real page frames reserved for the VMM.
///
/// The VMM owns real memory exclusively (VMs get fixed, contiguous
/// blocks; nothing is paged — paper §7.2 "leaving paging to the VMOS
/// kept the VMM's memory manager simple").
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u32,
    limit: u32,
}

impl FrameAllocator {
    /// Manages frames `[start, limit)`.
    pub fn new(start_pfn: u32, limit_pfn: u32) -> FrameAllocator {
        FrameAllocator {
            next: start_pfn,
            limit: limit_pfn,
        }
    }

    /// Allocates `count` contiguous frames; returns the first PFN.
    ///
    /// # Panics
    ///
    /// Panics when real memory is exhausted — VM admission control must
    /// size machines up front (fixed allocation, no paging).
    pub fn alloc(&mut self, count: u32) -> u32 {
        assert!(
            self.next + count <= self.limit,
            "VMM out of real memory: need {count} frames, {} left",
            self.limit - self.next
        );
        let pfn = self.next;
        self.next += count;
        pfn
    }

    /// Frames still available.
    pub fn remaining(&self) -> u32 {
        self.limit - self.next
    }
}

/// Frames needed to hold `entries` PTEs.
pub fn table_frames(entries: u32) -> u32 {
    (entries * 4).div_ceil(PAGE_BYTES)
}

/// Renders the Figure-2 address-space split for a given configuration.
pub fn describe_shared_address_space(guest_s_pages: u32) -> String {
    let boundary = S_BASE + (guest_s_pages << PAGE_SHIFT);
    format!(
        "P0 [0x00000000..0x40000000): VM program region (limit applies)\n\
         P1 [0x40000000..0x80000000): VM control region (limit applies)\n\
         S  [0x80000000..{boundary:#010x}): VM system space ({guest_s_pages} pages)\n\
         S  [{boundary:#010x}..0xC0000000): VMM (shadow tables, kernel-protected)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_bumps_and_panics_when_exhausted() {
        let mut a = FrameAllocator::new(10, 20);
        assert_eq!(a.alloc(4), 10);
        assert_eq!(a.alloc(1), 14);
        assert_eq!(a.remaining(), 5);
        let r = std::panic::catch_unwind(move || {
            let mut a = a;
            a.alloc(6)
        });
        assert!(r.is_err());
    }

    #[test]
    fn table_frames_rounds_up() {
        assert_eq!(table_frames(0), 0);
        assert_eq!(table_frames(1), 1);
        assert_eq!(table_frames(128), 1); // 128 PTEs = 512 bytes
        assert_eq!(table_frames(129), 2);
    }

    #[test]
    fn boundary_is_in_s_space() {
        const { assert!(VMM_BOUNDARY_VA >= S_BASE) };
        const { assert!(VMM_BOUNDARY_VA < 0xC000_0000) };
        let d = describe_shared_address_space(DEFAULT_GUEST_S_PAGES);
        assert!(d.contains("VMM"));
        assert!(d.contains(&format!("{VMM_BOUNDARY_VA:#010x}")));
    }
}
