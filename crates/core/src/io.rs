//! I/O virtualization (paper §4.4.3): the start-I/O `KCALL` design and
//! the memory-mapped-emulation ablation it beat.
//!
//! # The KCALL request block
//!
//! The guest builds a request block in its physical memory and writes its
//! address to the `KCALL` processor register (one trap total):
//!
//! | Offset | Field  | Meaning                                     |
//! |--------|--------|---------------------------------------------|
//! | +0     | FUNC   | 1 disk read, 2 disk write, 3 console write, 4 register uptime cell |
//! | +4     | SECTOR | disk sector number                           |
//! | +8     | BUFFER | guest-physical buffer address                |
//! | +12    | LEN    | transfer length in bytes                     |
//! | +16    | STATUS | written by the VMM: 1 done, ≥0x80000000 error |
//!
//! Error statuses: `0x8000_0000` unknown function, `0x8000_0001` bad
//! sector/length, `0x8000_0002` buffer address outside guest memory (or
//! wrapping past the top of the 32-bit space). The whole 20-byte request
//! block must lie inside guest memory; a block the VMM cannot even report
//! status into halts the VM (DESIGN.md §11).
//!
//! Disk transfers complete asynchronously: STATUS goes to 1 and a virtual
//! interrupt (IPL 21, the guest's `Device0` vector) is delivered after
//! the configured latency.
//!
//! # Emulated memory-mapped I/O (the ablation)
//!
//! The guest maps guest-physical frames at [`GUEST_IO_GPFN_BASE`]; the
//! shadow PTEs for that window are kept invalid, so **every** CSR access
//! traps. The VMM services each trap by briefly validating the mapping to
//! the real bus device, single-stepping the VM, and invalidating again —
//! one full trap round-trip per CSR touch, which is exactly the cost the
//! paper rejected.

use crate::fault::VmmError;
use crate::monitor::Monitor;
use crate::shadow::vmm_write_u32;
use crate::vm::VirtualIrq;
use vax_arch::va::{VirtAddr, PAGE_SHIFT};
use vax_arch::{Protection, Pte, ScbVector};
use vax_cpu::StepEvent;

/// First guest-physical frame of the emulated I/O window.
pub const GUEST_IO_GPFN_BASE: u32 = 0x000F_0000;

/// Pages in the emulated I/O window.
pub const GUEST_IO_PAGES: u32 = 8;

/// KCALL function: read a disk sector into guest memory.
pub const KCALL_DISK_READ: u32 = 1;
/// KCALL function: write guest memory to a disk sector.
pub const KCALL_DISK_WRITE: u32 = 2;
/// KCALL function: write bytes to the virtual console.
pub const KCALL_CONSOLE_WRITE: u32 = 3;
/// KCALL function: register the uptime cell (paper §5, "Time").
pub const KCALL_SET_UPTIME_CELL: u32 = 4;

/// Largest accepted console-write LEN. A guest-controlled length with no
/// cap would let one VM grow the host-side console buffer by 4 GiB per
/// KCALL; longer writes get the bad-length status instead.
pub const KCALL_CONSOLE_MAX_LEN: u32 = 4096;

/// The disk-controller GO|WRITE command (used by host-side disk loads).
pub(crate) fn disk_write_cmd() -> u32 {
    vax_dev::disk::CSR_GO | vax_dev::disk::FUNC_WRITE
}

/// Services a KCALL. Returns `false` only if the VM was halted.
pub(crate) fn kcall(mon: &mut Monitor, idx: usize, req_gpa: u32) -> bool {
    mon.charge(mon.config.costs.kcall);
    mon.vms[idx].vm.stats.kcalls += 1;

    // The whole 20-byte request block must be guest memory. A guest that
    // points KCALL at (or near) the end of its partition gives the VMM no
    // STATUS field to report errors into, so containment is a halt —
    // and a request at 0xFFFF_FFFC must not wrap around address zero.
    if mon.vms[idx].vm.gpa_to_pa_len(req_gpa, 20).is_none() {
        return mon.security_halt(
            idx,
            VmmError::GuestState {
                what: "KCALL request block outside VM memory",
            },
        );
    }
    let func = mon.read_gp(idx, req_gpa).unwrap_or(0);
    let sector = mon.read_gp_at(idx, req_gpa, 4).unwrap_or(0);
    let buffer = mon.read_gp_at(idx, req_gpa, 8).unwrap_or(0);
    let len = mon.read_gp_at(idx, req_gpa, 12).unwrap_or(0);
    // In range: req_gpa + 16 < req_gpa + 20, validated above.
    let status_gpa = req_gpa.wrapping_add(16);

    match func {
        KCALL_DISK_READ | KCALL_DISK_WRITE => {
            let nsec = mon.vms[idx].vm.vdisk.len() as u32;
            if sector >= nsec || len > 512 {
                let _ = mon.write_gp(idx, status_gpa, 0x8000_0001);
                return true;
            }
            // Transfer now; completion (status + interrupt) after the
            // latency, like a real controller with DMA. Guest-controlled
            // BUFFER arithmetic stays checked: an address that wraps or
            // leaves guest memory (even by 1–3 bytes of a longword, which
            // would otherwise DMA into the adjacent VM) is a bad-address
            // status, never a panic.
            let n = len.min(512);
            if func == KCALL_DISK_READ {
                let data = mon.vms[idx].vm.vdisk[sector as usize];
                for i in (0..n).step_by(4) {
                    let mut word = [0u8; 4];
                    word.copy_from_slice(&data[i as usize..i as usize + 4]);
                    let ok = buffer
                        .checked_add(i)
                        .and_then(|dst| mon.write_gp(idx, dst, u32::from_le_bytes(word)));
                    if ok.is_none() {
                        let _ = mon.write_gp(idx, status_gpa, 0x8000_0002);
                        return true;
                    }
                }
            } else {
                let mut data = mon.vms[idx].vm.vdisk[sector as usize];
                for i in (0..n).step_by(4) {
                    let word = buffer.checked_add(i).and_then(|src| mon.read_gp(idx, src));
                    let Some(w) = word else {
                        let _ = mon.write_gp(idx, status_gpa, 0x8000_0002);
                        return true;
                    };
                    data[i as usize..i as usize + 4].copy_from_slice(&w.to_le_bytes());
                }
                mon.vms[idx].vm.vdisk[sector as usize] = data;
            }
            let _ = mon.write_gp(idx, status_gpa, 0);
            let at = mon.machine().cycles() + mon.config.vdisk_latency;
            mon.vms[idx].vm.vdisk_pending = Some((
                at,
                VirtualIrq {
                    ipl: 21,
                    vector: ScbVector::Device0.offset() as u16,
                },
                status_gpa,
            ));
            true
        }
        KCALL_CONSOLE_WRITE => {
            if len > KCALL_CONSOLE_MAX_LEN {
                let _ = mon.write_gp(idx, status_gpa, 0x8000_0001);
                return true;
            }
            for i in 0..len {
                let word = buffer
                    .checked_add(i & !3)
                    .and_then(|src| mon.read_gp(idx, src));
                let Some(w) = word else {
                    let _ = mon.write_gp(idx, status_gpa, 0x8000_0002);
                    return true;
                };
                let b = (w >> (8 * (i & 3))) as u8;
                mon.vms[idx].vm.console_out.push(b);
            }
            let _ = mon.write_gp(idx, status_gpa, 1);
            true
        }
        KCALL_SET_UPTIME_CELL => {
            mon.vms[idx].vm.uptime_cell = Some(buffer);
            let _ = mon.write_gp(idx, status_gpa, 1);
            true
        }
        _ => {
            let _ = mon.write_gp(idx, status_gpa, 0x8000_0000);
            true
        }
    }
}

impl Monitor {
    /// If `va`'s guest PTE maps a frame in the emulated I/O window,
    /// returns that guest frame number.
    pub(crate) fn mmio_window_gpfn(&mut self, idx: usize, va: VirtAddr) -> Option<u32> {
        let slot = &self.vms[idx];
        let (gpte, _) = slot.shadow.guest_pte(&self.machine, &slot.vm, va).ok()?;
        let gpfn = gpte.pfn();
        (gpte.valid() && (GUEST_IO_GPFN_BASE..GUEST_IO_GPFN_BASE + GUEST_IO_PAGES).contains(&gpfn))
            .then_some(gpfn)
    }
}

/// Emulates one memory-mapped CSR access: validate the shadow mapping to
/// the real device window, single-step the VM, and invalidate again so
/// the next access traps too. Returns `true` to resume.
pub(crate) fn emulate_mmio_access(mon: &mut Monitor, idx: usize, va: VirtAddr, gpfn: u32) -> bool {
    mon.charge(mon.config.costs.mmio_access);
    mon.vms[idx].vm.stats.mmio_accesses += 1;

    let Some(real_io_base) = mon.vms[idx].vm.real_io_base else {
        return mon.security_halt(
            idx,
            VmmError::Mmio {
                what: "window without a real device",
            },
        );
    };
    let real_pfn = (real_io_base >> PAGE_SHIFT) + (gpfn - GUEST_IO_GPFN_BASE);
    let Some(shadow_pa) = mon.vms[idx].shadow.shadow_pte_pa(va) else {
        return mon.security_halt(
            idx,
            VmmError::Mmio {
                what: "access outside shadowed space",
            },
        );
    };

    // Temporarily validate the mapping straight at the real device.
    let pte = Pte::build(real_pfn, Protection::Uw, true, true);
    vmm_write_u32(&mut mon.machine, shadow_pa, pte.raw());
    mon.machine.mmu_mut().tlb_mut().invalidate_single(va);

    let vmpsl = mon.vms[idx].vm.vmpsl;
    mon.machine.enter_vm(vmpsl);
    let ev = mon.machine.step();

    // Invalidate again: the next CSR touch must trap.
    vmm_write_u32(&mut mon.machine, shadow_pa, Pte::NULL.raw());
    mon.machine.mmu_mut().tlb_mut().invalidate_single(va);

    match ev {
        StepEvent::Ok => true,
        StepEvent::VmExit(e) => mon.handle_exit(idx, e),
        StepEvent::Halted(_) => mon.security_halt(
            idx,
            VmmError::Mmio {
                what: "real machine halted during MMIO emulation",
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_window_is_inside_guest_physical_space_but_outside_ram() {
        // The window must be representable in a 21-bit PFN and must not
        // collide with plausible RAM sizes (paper guests are megabytes).
        const { assert!(GUEST_IO_GPFN_BASE + GUEST_IO_PAGES <= 1 << 21) };
        const { assert!((GUEST_IO_GPFN_BASE << PAGE_SHIFT) >= 0x1000_0000) };
    }
}
