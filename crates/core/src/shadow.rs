//! Shadow page tables (paper §4.3): the only tables the microcode sees.
//!
//! For every page in the VM's virtual address space there is a PTE in the
//! VM's own page table and a corresponding *shadow* PTE that the VMM
//! derives from it: the guest PFN translated to a real PFN and the guest
//! protection code passed through [`Protection::ring_compressed`]. Shadow
//! entries start as the *null PTE* (invalid but granting all access), so
//! the first touch of a page always passes the hardware protection check
//! and then faults translation-not-valid into the VMM, which fills the
//! entry on demand (§4.3.1).
//!
//! The module also implements the §7.2 optimization: a cache of shadow
//! process-table pairs keyed by guest PCBB, so that re-running a recently
//! suspended guest process does not re-take a fill fault for every page
//! it had touched. As the paper admits, this caching is not fully robust
//! against a guest that edits a *switched-out* process's valid PTEs
//! without a TB invalidate — real VAX operating systems do not do that.

use crate::fault::VmmError;
use crate::layout::{table_frames, FrameAllocator};
use crate::vm::{DirtyStrategy, Vm};
use vax_arch::va::{Region, VirtAddr, PAGE_BYTES, PAGE_SHIFT, S_BASE};
use vax_arch::{AccessMode, Exception, Protection, Pte};
use vax_cpu::Machine;

/// Total number of P1 virtual pages (21-bit VPN space).
const P1_VPNS: u32 = 1 << 21;

/// Shadow-table configuration.
#[derive(Debug, Clone, Copy)]
pub struct ShadowConfig {
    /// Guest S-space capacity in pages (the §5 "virtual memory limit").
    pub s_capacity: u32,
    /// Guest P0 capacity in pages.
    pub p0_capacity: u32,
    /// Guest P1 capacity in pages (topmost pages of P1).
    pub p1_capacity: u32,
    /// Number of cached shadow process-table pairs (§7.2). 1 reproduces
    /// the unoptimized system: every context switch invalidates.
    pub cache_slots: usize,
    /// On a fill, also translate this many consecutive PTEs (1 = pure
    /// on-demand). The §4.3.1 prefill ablation.
    pub prefill_group: u32,
}

impl Default for ShadowConfig {
    fn default() -> ShadowConfig {
        ShadowConfig {
            s_capacity: crate::layout::DEFAULT_GUEST_S_PAGES,
            p0_capacity: crate::layout::DEFAULT_GUEST_P0_PAGES,
            p1_capacity: crate::layout::DEFAULT_GUEST_P1_PAGES,
            cache_slots: 1,
            prefill_group: 1,
        }
    }
}

/// One cached shadow process-table pair.
#[derive(Debug, Clone, Copy)]
pub struct ShadowSlot {
    /// Guest PCBB this slot currently shadows, if any.
    pub key: Option<u32>,
    /// Physical base of the shadow P0 table.
    pub p0_pa: u32,
    /// S-space VA the shadow P0 table is mapped at (real P0BR value).
    pub p0_va: u32,
    /// Physical base of the shadow P1 table.
    pub p1_pa: u32,
    /// S-space VA of the shadow P1 table start.
    pub p1_va: u32,
    /// LRU stamp.
    pub last_used: u64,
}

/// The snapshot-portable half of a [`ShadowSet`]: slot keys, LRU state,
/// and counters. The table *contents* (shadow PTEs) live in real memory
/// frames and travel with the physical-memory image; the frame addresses
/// themselves are deterministic from reconstruction ([`ShadowSet::new`]
/// with the same [`FrameAllocator`] sequence re-derives them), so only
/// the bookkeeping needs to cross the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowCacheState {
    /// Guest PCBB key per slot, in slot order.
    pub keys: Vec<Option<u32>>,
    /// LRU stamp per slot, in slot order.
    pub last_used: Vec<u64>,
    /// Index of the active slot.
    pub active: usize,
    /// The LRU clock.
    pub clock: u64,
    /// Lifetime slot evictions.
    pub evictions: u64,
    /// Lifetime whole-set invalidations.
    pub invalidations: u64,
}

/// What a fill attempt concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FillOutcome {
    /// Shadow updated; re-execute the faulting instruction.
    Filled,
    /// The guest's own tables fault this access: reflect to the guest.
    Reflect(Exception),
    /// A contained VMM fault: the guest's privileged state references
    /// memory outside the VM (or translation is off and the reference is
    /// nonexistent). [`crate::Monitor`] applies the
    /// [`VmmError::containment`] policy — reflect a virtual machine
    /// check, or halt the VM with the reason recorded.
    Fault(VmmError),
}

/// Reads a longword from real memory the VMM has already validated: its
/// own shadow/SPT frames (from [`FrameAllocator::alloc`], always inside
/// machine memory) or guest frames bounds-checked against the VM
/// partition. Failure here is a VMM bug, not a guest-reachable
/// condition, hence the allowed panic.
#[allow(clippy::expect_used)]
pub(crate) fn vmm_read_u32(machine: &Machine, pa: u32) -> u32 {
    machine.mem().read_u32(pa).expect("validated VMM memory")
}

/// Writes a longword to validated real memory; see [`vmm_read_u32`].
#[allow(clippy::expect_used)]
pub(crate) fn vmm_write_u32(machine: &mut Machine, pa: u32, value: u32) {
    machine
        .mem_mut()
        .write_u32(pa, value)
        .expect("validated VMM memory");
}

/// The complete shadow state for one VM.
#[derive(Debug, Clone)]
pub struct ShadowSet {
    config: ShadowConfig,
    /// Physical base of this VM's real system page table.
    real_spt_pa: u32,
    /// Total entries in the real SPT (guest window + VMM region).
    real_spt_entries: u32,
    /// Next free VMM-region VPN.
    vmm_next_vpn: u32,
    slots: Vec<ShadowSlot>,
    active: usize,
    clock: u64,
    /// Occupied slots evicted by [`ShadowSet::switch_process`] misses —
    /// how often the §7.2 cache was too small for the working set.
    evictions: u64,
    /// Whole-set invalidations (guest TBIA / MAPEN flips / base-register
    /// rewrites) that discarded cached shadow state.
    invalidations: u64,
}

impl ShadowSet {
    /// Allocates and initializes the shadow state for one VM: the real
    /// SPT (guest window nulled) and `cache_slots` process-table pairs
    /// mapped into the VMM region above the boundary.
    pub fn new(
        machine: &mut Machine,
        falloc: &mut FrameAllocator,
        config: ShadowConfig,
    ) -> ShadowSet {
        assert!(config.cache_slots >= 1);
        assert!(config.prefill_group >= 1);
        let p0_frames = table_frames(config.p0_capacity);
        let p1_frames = table_frames(config.p1_capacity);
        let vmm_region_pages = config.cache_slots as u32 * (p0_frames + p1_frames);
        let spt_entries = config.s_capacity + vmm_region_pages;
        let spt_frames = table_frames(spt_entries);
        let spt_pfn = falloc.alloc(spt_frames);
        let real_spt_pa = spt_pfn << PAGE_SHIFT;

        let mut set = ShadowSet {
            config,
            real_spt_pa,
            real_spt_entries: spt_entries,
            vmm_next_vpn: config.s_capacity,
            slots: Vec::with_capacity(config.cache_slots),
            active: 0,
            clock: 0,
            evictions: 0,
            invalidations: 0,
        };

        // Guest S window: inaccessible until the guest sets SLR.
        for vpn in 0..config.s_capacity {
            set.write_real_spt(machine, vpn, Pte::build(0, Protection::Na, false, false));
        }

        for _ in 0..config.cache_slots {
            let p0_pfn = falloc.alloc(p0_frames);
            let p1_pfn = falloc.alloc(p1_frames);
            let p0_va = set.map_vmm_frames(machine, p0_pfn, p0_frames);
            let p1_va = set.map_vmm_frames(machine, p1_pfn, p1_frames);
            let slot = ShadowSlot {
                key: None,
                p0_pa: p0_pfn << PAGE_SHIFT,
                p0_va,
                p1_pa: p1_pfn << PAGE_SHIFT,
                p1_va,
                last_used: 0,
            };
            null_fill(machine, slot.p0_pa, config.p0_capacity);
            null_fill(machine, slot.p1_pa, config.p1_capacity);
            set.slots.push(slot);
        }
        set
    }

    fn write_real_spt(&self, machine: &mut Machine, vpn: u32, pte: Pte) {
        vmm_write_u32(machine, self.real_spt_pa + 4 * vpn, pte.raw());
    }

    /// Maps `count` frames starting at `pfn` into the VMM region of this
    /// VM's real SPT, kernel-protected; returns the S VA of the first.
    fn map_vmm_frames(&mut self, machine: &mut Machine, pfn: u32, count: u32) -> u32 {
        let first_vpn = self.vmm_next_vpn;
        for i in 0..count {
            let pte = Pte::build(pfn + i, Protection::Kw, true, true);
            self.write_real_spt(machine, first_vpn + i, pte);
        }
        self.vmm_next_vpn += count;
        S_BASE + (first_vpn << PAGE_SHIFT)
    }

    /// The configuration in effect.
    pub fn config(&self) -> ShadowConfig {
        self.config
    }

    /// Occupied process-table slots evicted on cache misses.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whole-set invalidations that discarded cached shadow state.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Captures the snapshot-portable shadow bookkeeping (§7.2 cache keys,
    /// LRU state, counters). Pairs with [`ShadowSet::import_cache_state`].
    pub fn export_cache_state(&self) -> ShadowCacheState {
        ShadowCacheState {
            keys: self.slots.iter().map(|s| s.key).collect(),
            last_used: self.slots.iter().map(|s| s.last_used).collect(),
            active: self.active,
            clock: self.clock,
            evictions: self.evictions,
            invalidations: self.invalidations,
        }
    }

    /// Reinstates shadow bookkeeping captured by
    /// [`ShadowSet::export_cache_state`] into a freshly constructed set
    /// with the same `cache_slots`. The shadow table contents must be
    /// restored separately via the physical-memory image.
    ///
    /// # Panics
    ///
    /// Panics if the state's slot count or active index does not match
    /// this set's configuration; snapshot loaders validate first.
    pub fn import_cache_state(&mut self, state: ShadowCacheState) {
        assert_eq!(state.keys.len(), self.slots.len(), "slot count mismatch");
        assert_eq!(state.last_used.len(), self.slots.len());
        assert!(state.active < self.slots.len(), "active slot out of range");
        for (slot, (key, last_used)) in self
            .slots
            .iter_mut()
            .zip(state.keys.into_iter().zip(state.last_used))
        {
            slot.key = key;
            slot.last_used = last_used;
        }
        self.active = state.active;
        self.clock = state.clock;
        self.evictions = state.evictions;
        self.invalidations = state.invalidations;
    }

    /// Values for the real MMU base registers while this VM runs:
    /// `(sbr, slr, p0br, p0lr, p1br, p1lr)`.
    pub fn real_mmu_bases(&self, vm: &Vm) -> (u32, u32, u32, u32, u32, u32) {
        let slot = &self.slots[self.active];
        // While the guest runs with translation off, its "virtual"
        // addresses are guest-physical: open the whole shadow P0 window
        // so identity fills can happen on demand.
        let p0lr = if vm.guest_mapen {
            vm.guest_p0lr.min(self.config.p0_capacity)
        } else {
            self.config.p0_capacity
        };
        let p1_floor = P1_VPNS - self.config.p1_capacity;
        let p1lr = vm.guest_p1lr.max(p1_floor);
        // P1BR is biased so that entry for VPN v sits at p1br + 4v.
        let p1br = slot.p1_va.wrapping_sub(4 * p1_floor);
        (
            self.real_spt_pa,
            self.real_spt_entries,
            slot.p0_va,
            p0lr,
            p1br,
            p1lr,
        )
    }

    /// Physical address of the shadow PTE covering `va`, or `None` if the
    /// address is outside the shadowed capacity.
    pub fn shadow_pte_pa(&self, va: VirtAddr) -> Option<u32> {
        let vpn = va.vpn();
        let slot = &self.slots[self.active];
        match va.region() {
            Region::S => (vpn < self.config.s_capacity).then(|| self.real_spt_pa + 4 * vpn),
            Region::P0 => (vpn < self.config.p0_capacity).then(|| slot.p0_pa + 4 * vpn),
            Region::P1 => {
                let floor = P1_VPNS - self.config.p1_capacity;
                (vpn >= floor).then(|| slot.p1_pa + 4 * (vpn - floor))
            }
            Region::Reserved => None,
        }
    }

    /// Reads a shadow PTE.
    pub fn read_shadow(&self, machine: &Machine, va: VirtAddr) -> Option<Pte> {
        let pa = self.shadow_pte_pa(va)?;
        Some(Pte::from_raw(vmm_read_u32(machine, pa)))
    }

    /// Resets the guest S window for a new guest SBR/SLR.
    pub fn reset_guest_s(&mut self, machine: &mut Machine, guest_slr: u32) {
        let usable = guest_slr.min(self.config.s_capacity);
        for vpn in 0..usable {
            self.write_real_spt(machine, vpn, Pte::NULL);
        }
        for vpn in usable..self.config.s_capacity {
            self.write_real_spt(machine, vpn, Pte::build(0, Protection::Na, false, false));
        }
        machine.mmu_mut().tlb_mut().invalidate_all();
    }

    /// Invalidate the shadow PTE for one page (guest TBIS).
    pub fn invalidate_single(&mut self, machine: &mut Machine, vm: &Vm, va: VirtAddr) {
        if let Some(pa) = self.shadow_pte_pa(va) {
            let pte = if va.region() == Region::S && va.vpn() >= vm.guest_slr {
                Pte::build(0, Protection::Na, false, false)
            } else {
                Pte::NULL
            };
            vmm_write_u32(machine, pa, pte.raw());
        }
        machine.mmu_mut().tlb_mut().invalidate_single(va);
    }

    /// Invalidate everything (guest TBIA): the S window and every cached
    /// process slot.
    pub fn invalidate_all(&mut self, machine: &mut Machine, vm: &Vm) {
        self.invalidations += 1;
        self.reset_guest_s(machine, vm.guest_slr);
        for i in 0..self.slots.len() {
            let slot = self.slots[i];
            null_fill(machine, slot.p0_pa, self.config.p0_capacity);
            null_fill(machine, slot.p1_pa, self.config.p1_capacity);
            self.slots[i].key = None;
        }
        machine.mmu_mut().tlb_mut().invalidate_all();
        machine.invalidate_decode_cache();
    }

    /// Clears the active slot's process tables (guest changed P0/P1 base
    /// registers directly).
    pub fn reset_active_process(&mut self, machine: &mut Machine) {
        let slot = self.slots[self.active];
        null_fill(machine, slot.p0_pa, self.config.p0_capacity);
        null_fill(machine, slot.p1_pa, self.config.p1_capacity);
        self.slots[self.active].key = None;
        machine.mmu_mut().tlb_mut().invalidate_process();
        machine.invalidate_decode_cache();
    }

    /// Switches the active shadow process tables for a guest context
    /// switch to the process whose PCB is at `pcbb` (§7.2 cache).
    /// Returns `true` on a cache hit (previously valid shadow PTEs are
    /// preserved and no refill faults will be taken for them).
    pub fn switch_process(&mut self, machine: &mut Machine, pcbb: u32) -> bool {
        self.clock += 1;
        let hit = self.slots.iter().position(|s| s.key == Some(pcbb));
        let (idx, hit) = match hit {
            Some(i) => (i, true),
            None => {
                // Evict the least recently used slot (the constructor
                // asserts there is at least one).
                let lru = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let slot = self.slots[lru];
                if slot.key.is_some() {
                    self.evictions += 1;
                }
                null_fill(machine, slot.p0_pa, self.config.p0_capacity);
                null_fill(machine, slot.p1_pa, self.config.p1_capacity);
                self.slots[lru].key = Some(pcbb);
                (lru, false)
            }
        };
        self.slots[idx].last_used = self.clock;
        self.active = idx;
        // The real TLB's process half always goes: its entries are tagged
        // by VA, not by address space.
        machine.mmu_mut().tlb_mut().invalidate_process();
        hit
    }

    /// Locates the guest PTE for `va` and reads it (public within the
    /// crate for the PROBE and MMIO paths).
    pub(crate) fn guest_pte(
        &self,
        machine: &Machine,
        vm: &Vm,
        va: VirtAddr,
    ) -> Result<(Pte, u32), FillOutcome> {
        if !vm.guest_mapen {
            // Translation off in the guest: guest VAs are guest-physical.
            if va.raw() < vm.mem_bytes() {
                // Synthesize an identity PTE; there is no guest PTE to
                // write back to (pa = 0 sentinel is never used because
                // modify faults cannot occur: synthesized PTEs have M set).
                return Ok((Pte::build(va.vpn(), Protection::Uw, true, true), 0));
            }
            return Err(FillOutcome::Fault(VmmError::NonexistentMemory {
                gpa: va.raw(),
            }));
        }
        let vpn = va.vpn();
        let gpte_pa = match va.region() {
            Region::S => {
                if vpn >= vm.guest_slr {
                    return Err(FillOutcome::Reflect(length_violation(va)));
                }
                // The whole PTE longword must lie inside the VM: a guest
                // SBR at mem_bytes - {1,2,3} would otherwise read bytes
                // from the adjacent VM's frames, and the add itself can
                // wrap for an SBR near 2^32.
                let gpa = vm.guest_sbr.checked_add(4 * vpn);
                match gpa.and_then(|g| vm.gpa_to_pa_len(g, 4)) {
                    Some(pa) => pa,
                    None => {
                        return Err(FillOutcome::Fault(VmmError::PageTableWalk {
                            gpa: gpa.unwrap_or(u32::MAX),
                        }))
                    }
                }
            }
            Region::P0 | Region::P1 => {
                let (base, ok) = if va.region() == Region::P0 {
                    (vm.guest_p0br, vpn < vm.guest_p0lr)
                } else {
                    (vm.guest_p1br, vpn >= vm.guest_p1lr)
                };
                if !ok {
                    return Err(FillOutcome::Reflect(length_violation(va)));
                }
                let pte_sva = VirtAddr::new(base.wrapping_add(4 * vpn));
                if pte_sva.region() != Region::S {
                    return Err(FillOutcome::Fault(VmmError::ProcessBaseNotS { base }));
                }
                // Walk the guest SPT in software for the PTE's page.
                let s_vpn = pte_sva.vpn();
                if s_vpn >= vm.guest_slr {
                    return Err(FillOutcome::Reflect(Exception::AccessViolation {
                        va,
                        write: false,
                        length: true,
                        pte_ref: true,
                    }));
                }
                let spte_gpa = vm.guest_sbr.checked_add(4 * s_vpn);
                let spte_pa = match spte_gpa.and_then(|g| vm.gpa_to_pa_len(g, 4)) {
                    Some(pa) => pa,
                    None => {
                        return Err(FillOutcome::Fault(VmmError::PageTableWalk {
                            gpa: spte_gpa.unwrap_or(u32::MAX),
                        }))
                    }
                };
                let spte = Pte::from_raw(vmm_read_u32(machine, spte_pa));
                if !spte.valid() {
                    return Err(FillOutcome::Reflect(Exception::TranslationNotValid {
                        va,
                        write: false,
                        pte_ref: true,
                    }));
                }
                let Some(pfn) = vm.gpfn_to_pfn(spte.pfn()) else {
                    return Err(FillOutcome::Fault(VmmError::PteFrame { gpfn: spte.pfn() }));
                };
                let off = pte_sva.raw() & (PAGE_BYTES - 1);
                if off > PAGE_BYTES - 4 {
                    // An unaligned guest PxBR can park the PTE across a
                    // page boundary; reading on would leave the validated
                    // frame (possibly leaving the VM entirely).
                    return Err(FillOutcome::Fault(VmmError::PageTableWalk {
                        gpa: (spte.pfn() << PAGE_SHIFT) | off,
                    }));
                }
                (pfn << PAGE_SHIFT) | off
            }
            Region::Reserved => {
                return Err(FillOutcome::Reflect(length_violation(va)));
            }
        };
        // gpte_pa came from a range-checked walk above, and both branches
        // keep the full longword inside the validated frame/partition.
        let gpte = Pte::from_raw(vmm_read_u32(machine, gpte_pa));
        Ok((gpte, gpte_pa))
    }

    /// Builds the shadow PTE value for a guest PTE, applying the ring
    /// compression translation and the dirty-bit strategy.
    fn shadow_value(&self, vm: &Vm, gpte: Pte) -> Result<Pte, FillOutcome> {
        let Some(pfn) = vm.gpfn_to_pfn(gpte.pfn()) else {
            return Err(FillOutcome::Fault(VmmError::PteFrame { gpfn: gpte.pfn() }));
        };
        let mut prot = gpte.protection().ring_compressed();
        let mut modified = gpte.modified();
        if vm.dirty_strategy == DirtyStrategy::ReadOnlyShadow && !gpte.modified() {
            // Rejected alternative (§4.4.2): write-protect clean pages so
            // the first write faults as an access violation.
            prot = read_only_equivalent(prot);
            modified = true; // hardware M-machinery disabled for this page
        }
        Ok(Pte::build(pfn, prot, true, modified))
    }

    /// Services a translation-not-valid exit for `va`: the on-demand fill
    /// of §4.3.1 (plus the optional prefill-group ablation).
    pub fn fill(&mut self, machine: &mut Machine, vm: &mut Vm, va: VirtAddr) -> FillOutcome {
        let Some(shadow_pa) = self.shadow_pte_pa(va) else {
            return FillOutcome::Reflect(length_violation(va));
        };
        let (gpte, _) = match self.guest_pte(machine, vm, va) {
            Ok(x) => x,
            Err(out) => return out,
        };
        if !gpte.valid() {
            // The guest's own page fault.
            vm.stats.guest_page_faults += 1;
            return FillOutcome::Reflect(Exception::TranslationNotValid {
                va,
                write: false,
                pte_ref: false,
            });
        }
        let shadow = match self.shadow_value(vm, gpte) {
            Ok(s) => s,
            Err(out) => return out,
        };
        vmm_write_u32(machine, shadow_pa, shadow.raw());
        machine.mmu_mut().tlb_mut().invalidate_single(va);
        vm.stats.shadow_fills += 1;

        // Prefill ablation: translate following PTEs of the same region.
        for i in 1..self.config.prefill_group {
            let next = VirtAddr::new(va.page_base().raw().wrapping_add(i * PAGE_BYTES));
            if next.region() != va.region() {
                break;
            }
            let Some(next_pa) = self.shadow_pte_pa(next) else {
                break;
            };
            let Ok((gpte, _)) = self.guest_pte(machine, vm, next) else {
                break;
            };
            if !gpte.valid() {
                continue;
            }
            let Ok(shadow) = self.shadow_value(vm, gpte) else {
                break;
            };
            vmm_write_u32(machine, next_pa, shadow.raw());
            vm.stats.shadow_fills += 1;
        }
        FillOutcome::Filled
    }

    /// Services a modify-fault exit (§4.4.2): set `PTE<M>` in both the
    /// shadow PTE and the VM's own PTE, so "the VM's page table accurately
    /// reflects the state of modified pages".
    pub fn modify_fault(
        &mut self,
        machine: &mut Machine,
        vm: &mut Vm,
        va: VirtAddr,
    ) -> FillOutcome {
        let Some(shadow_pa) = self.shadow_pte_pa(va) else {
            return FillOutcome::Reflect(length_violation(va));
        };
        let shadow = Pte::from_raw(vmm_read_u32(machine, shadow_pa));
        if !shadow.valid() {
            // Race shape: fault on a page whose shadow went away; refill.
            return self.fill(machine, vm, va);
        }
        vmm_write_u32(machine, shadow_pa, shadow.with_modified(true).raw());
        let (gpte, gpte_pa) = match self.guest_pte(machine, vm, va) {
            Ok(x) => x,
            Err(out) => return out,
        };
        if gpte_pa != 0 {
            vmm_write_u32(machine, gpte_pa, gpte.with_modified(true).raw());
        }
        machine.mmu_mut().tlb_mut().invalidate_single(va);
        vm.stats.modify_faults += 1;
        FillOutcome::Filled
    }

    /// Services an access-violation exit under the ReadOnlyShadow
    /// strategy: if the guest PTE actually permits the write, upgrade the
    /// shadow protection and set the modify bits. Returns `Filled` when
    /// upgraded, otherwise the exception to reflect.
    pub fn write_upgrade(
        &mut self,
        machine: &mut Machine,
        vm: &mut Vm,
        va: VirtAddr,
        real_mode: AccessMode,
    ) -> FillOutcome {
        let Some(shadow_pa) = self.shadow_pte_pa(va) else {
            return FillOutcome::Reflect(length_violation(va));
        };
        let (gpte, gpte_pa) = match self.guest_pte(machine, vm, va) {
            Ok(x) => x,
            Err(out) => return out,
        };
        let true_prot = gpte.protection().ring_compressed();
        if gpte.valid() && true_prot.allows_write(real_mode) {
            let Some(pfn) = vm.gpfn_to_pfn(gpte.pfn()) else {
                return FillOutcome::Fault(VmmError::PteFrame { gpfn: gpte.pfn() });
            };
            vmm_write_u32(
                machine,
                shadow_pa,
                Pte::build(pfn, true_prot, true, true).raw(),
            );
            if gpte_pa != 0 {
                vmm_write_u32(machine, gpte_pa, gpte.with_modified(true).raw());
            }
            machine.mmu_mut().tlb_mut().invalidate_single(va);
            vm.stats.dirty_upgrades += 1;
            return FillOutcome::Filled;
        }
        FillOutcome::Reflect(Exception::AccessViolation {
            va,
            write: true,
            length: false,
            pte_ref: false,
        })
    }
}

/// The guest-visible fault for an out-of-bounds reference.
fn length_violation(va: VirtAddr) -> Exception {
    Exception::AccessViolation {
        va,
        write: false,
        length: true,
        pte_ref: false,
    }
}

/// The most permissive read-only code covering the readers of `prot`.
fn read_only_equivalent(prot: Protection) -> Protection {
    match prot.read_mode() {
        None => Protection::Na,
        Some(AccessMode::Kernel) => Protection::Kr,
        Some(AccessMode::Executive) => Protection::Er,
        Some(AccessMode::Supervisor) => Protection::Sr,
        Some(AccessMode::User) => Protection::Ur,
    }
}

/// Fills a table with the null PTE.
fn null_fill(machine: &mut Machine, table_pa: u32, entries: u32) {
    for i in 0..entries {
        vmm_write_u32(machine, table_pa + 4 * i, Pte::NULL.raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_equivalents_preserve_readers() {
        for p in Protection::ALL {
            let ro = read_only_equivalent(p);
            for m in AccessMode::ALL {
                assert_eq!(ro.allows_read(m), p.allows_read(m), "{p} -> {ro} {m}");
                assert!(!ro.allows_write(m), "{ro} must be read-only");
            }
        }
    }

    #[test]
    fn length_violation_shape() {
        let e = length_violation(VirtAddr::new(0x1234));
        assert!(matches!(e, Exception::AccessViolation { length: true, .. }));
    }
}
