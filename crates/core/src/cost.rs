//! VMM software path lengths, in simulated cycles.
//!
//! The machine charges microcode costs (trap entry, REI, …) itself; these
//! constants model the VMM's own emulation code, the part the paper's
//! team "streamlined a great deal" (§7.3). The free parameter that the
//! paper pins down hardest is MTPR-to-IPL: its VMM emulation cost on the
//! VAX 8800 was **10–12×** the (heavily optimized) bare-hardware path.
//! With the default hardware model (`base_instruction` 2 +
//! `mtpr_ipl_fast` 4 = 6 cycles bare) and the machine's
//! `vm_emulation_trap` charge of 30, an `mtpr_ipl` handler cost of 36
//! puts the emulated path at 66 cycles = **11×** — the middle of the
//! paper's band. The other handlers are scaled to that yardstick by
//! their relative path complexity (CHM forwards a frame into guest
//! memory; REI additionally validates and may deliver interrupts; a
//! shadow fill reads the guest PTE through the guest's own tables).

/// Per-operation VMM software costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmmCosts {
    /// Generic dispatch overhead on every VMM entry/exit beyond the
    /// microcode trap cost (register save, reason decode, resume).
    pub dispatch: u64,
    /// CHMx emulation: clamp mode, read guest SCB, push the frame onto
    /// the guest stack, switch virtual stacks.
    pub chm: u64,
    /// REI emulation: pop and validate the image, decompress modes,
    /// switch virtual stacks, scan for deliverable virtual interrupts.
    pub rei: u64,
    /// MTPR-to-IPL emulation (the §7.3 hot path).
    pub mtpr_ipl: u64,
    /// Other MTPR/MFPR emulations.
    pub mtpr_other: u64,
    /// One shadow-PTE fill: walk the guest page table, translate the
    /// PFN, compress the protection code, write the shadow entry.
    pub shadow_fill: u64,
    /// Modify-fault service: set `PTE<M>` in the shadow and guest PTEs.
    pub modify_fault: u64,
    /// Reflecting an exception into the guest through its SCB.
    pub reflect: u64,
    /// Delivering one virtual interrupt.
    pub virq_delivery: u64,
    /// Guest LDPCTX/SVPCTX emulation (excluding shadow-table switching,
    /// charged separately per fill avoided/incurred).
    pub context_switch: u64,
    /// A start-I/O KCALL: validate and copy the request block, run the
    /// operation against the virtual device.
    pub kcall: u64,
    /// One emulated memory-mapped CSR access (map, single-step, unmap).
    pub mmio_access: u64,
    /// WAIT handling: mark the VM idle and invoke the scheduler.
    pub wait: u64,
    /// VM-to-VM world switch (register file, MMU bases, TLB flush).
    pub world_switch: u64,
}

impl Default for VmmCosts {
    fn default() -> VmmCosts {
        VmmCosts {
            dispatch: 24,
            chm: 195,
            rei: 260,
            mtpr_ipl: 36,
            mtpr_other: 60,
            shadow_fill: 300,
            modify_fault: 150,
            reflect: 160,
            virq_delivery: 200,
            context_switch: 340,
            kcall: 400,
            mmio_access: 220,
            wait: 80,
            world_switch: 500,
        }
    }
}

impl VmmCosts {
    /// A zero-cost model for state-transition tests.
    pub fn free() -> VmmCosts {
        VmmCosts {
            dispatch: 0,
            chm: 0,
            rei: 0,
            mtpr_ipl: 0,
            mtpr_other: 0,
            shadow_fill: 0,
            modify_fault: 0,
            reflect: 0,
            virq_delivery: 0,
            context_switch: 0,
            kcall: 0,
            mmio_access: 0,
            wait: 0,
            world_switch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_arch::CostModel;

    #[test]
    fn mtpr_ipl_ratio_is_in_the_papers_band() {
        let hw = CostModel::default();
        let vmm = VmmCosts::default();
        let bare = hw.base_instruction + hw.mtpr_ipl_fast;
        let emulated = hw.vm_emulation_trap + vmm.mtpr_ipl;
        let ratio = emulated as f64 / bare as f64;
        assert!(
            (10.0..=12.0).contains(&ratio),
            "MTPR-to-IPL emulation must cost 10-12x bare (paper §7.3), got {ratio:.1}x"
        );
    }

    #[test]
    fn relative_ordering() {
        let c = VmmCosts::default();
        assert!(c.shadow_fill > c.modify_fault);
        assert!(c.rei > c.chm);
        assert!(
            c.kcall < 2 * c.mmio_access + c.dispatch,
            "a single KCALL must beat even a couple of emulated CSR accesses"
        );
        assert!(c.mtpr_ipl < c.mtpr_other);
    }
}
