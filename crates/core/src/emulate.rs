//! Sensitive-instruction emulation and exception reflection — the VMM
//! half of execution ring compression (paper §4.2).
//!
//! Every handler receives the decoded-operand packet the microcode built
//! (so no instruction parsing happens here), transforms the VM's virtual
//! privileged state, and resumes the VM at the instruction's successor.

use crate::fault::{Containment, VmmError};
use crate::monitor::{compress_mode, Monitor};
use crate::shadow::FillOutcome;
use crate::vm::{DirtyStrategy, IoStrategy, VirtualIrq, VmState};
use vax_arch::{AccessMode, Exception, Ipr, Opcode, Psl, VirtAddr};
use vax_cpu::{OperandLoc, OperandValue, VmExit, VmTrapInfo};
use vax_mem::MemFault;

/// Condition-code and trap-enable bits carried between guest PSL images.
const CC_BITS: [u32; 6] = [Psl::C, Psl::V, Psl::Z, Psl::N, Psl::T, Psl::IV];

impl Monitor {
    /// Saves the live stack pointer into the VM's slot for its current
    /// (mode, interrupt-stack) pair.
    fn save_live_sp(&mut self, idx: usize) {
        let sp = self.machine.reg(14);
        let vm = &mut self.vms[idx].vm;
        let (cur, is) = (vm.vmpsl.cur_mode(), vm.v_is);
        vm.set_stack_slot(cur, is, sp);
    }

    /// Switches the VM's virtual mode, updating VMPSL, the real
    /// (compressed) PSL, and the live stack pointer. The caller must have
    /// already saved the live SP and stored any new value into the target
    /// slot.
    fn set_vm_mode(
        &mut self,
        idx: usize,
        cur: AccessMode,
        prv: AccessMode,
        is: bool,
        clear_cc: bool,
    ) {
        let vm = &mut self.vms[idx].vm;
        vm.vmpsl.set_cur_mode(cur);
        vm.vmpsl.set_prv_mode(prv);
        vm.v_is = is;
        let new_sp = vm.stack_slot(cur, is);
        let mut psl = if clear_cc {
            Psl::new()
        } else {
            self.machine.psl()
        };
        psl.set_vm(false);
        psl.set_cur_mode(compress_mode(cur));
        psl.set_prv_mode(compress_mode(prv));
        psl.set_ipl(0); // the real IPL stays 0 while a VM runs
        self.machine.set_psl(psl);
        self.machine.set_reg(14, new_sp);
    }

    /// Reads guest virtual memory as the VM (with shadow fills on
    /// demand). `Err` carries what to do instead (reflect or halt).
    pub(crate) fn vm_read(
        &mut self,
        idx: usize,
        va: VirtAddr,
        len: u32,
        real_mode: AccessMode,
    ) -> Result<u32, FillOutcome> {
        for _ in 0..8 {
            let r = self.machine.read_virt(va, len, real_mode);
            match r {
                Ok(v) => return Ok(v),
                Err(fault) => self.service_fault(idx, fault, false)?,
            }
        }
        Err(FillOutcome::Fault(VmmError::Internal {
            what: "shadow fill did not converge",
        }))
    }

    /// Writes guest virtual memory as the VM.
    pub(crate) fn vm_write(
        &mut self,
        idx: usize,
        va: VirtAddr,
        value: u32,
        len: u32,
        real_mode: AccessMode,
    ) -> Result<(), FillOutcome> {
        for _ in 0..8 {
            let r = self.machine.write_virt(va, value, len, real_mode);
            match r {
                Ok(()) => return Ok(()),
                Err(fault) => self.service_fault(idx, fault, true)?,
            }
        }
        Err(FillOutcome::Fault(VmmError::Internal {
            what: "shadow fill did not converge",
        }))
    }

    /// Services one memory fault hit while the VMM itself touches guest
    /// memory: fill / modify / upgrade, or propagate.
    fn service_fault(
        &mut self,
        idx: usize,
        fault: MemFault,
        write: bool,
    ) -> Result<(), FillOutcome> {
        let slot = &mut self.vms[idx];
        let machine = &mut self.machine;
        match fault {
            MemFault::TranslationNotValid { va, .. } => {
                match slot.shadow.fill(machine, &mut slot.vm, va) {
                    FillOutcome::Filled => Ok(()),
                    other => Err(other),
                }
            }
            MemFault::ModifyFault { va } => {
                match slot.shadow.modify_fault(machine, &mut slot.vm, va) {
                    FillOutcome::Filled => Ok(()),
                    other => Err(other),
                }
            }
            MemFault::AccessViolation { va, .. }
                if write && slot.vm.dirty_strategy == DirtyStrategy::ReadOnlyShadow =>
            {
                match slot
                    .shadow
                    .write_upgrade(machine, &mut slot.vm, va, AccessMode::Executive)
                {
                    FillOutcome::Filled => Ok(()),
                    other => Err(other),
                }
            }
            other => Err(FillOutcome::Reflect(other.to_exception())),
        }
    }

    /// Reads a longword of guest physical memory (VMM-internal). The
    /// whole longword must lie inside the VM — checking only the first
    /// byte would let an address at `mem_bytes - {1,2,3}` read into the
    /// adjacent VM's frames.
    pub(crate) fn read_gp(&self, idx: usize, gpa: u32) -> Option<u32> {
        let pa = self.vms[idx].vm.gpa_to_pa_len(gpa, 4)?;
        self.machine.mem().read_u32(pa).ok()
    }

    /// Reads a longword at `base + off` in guest physical memory,
    /// failing cleanly if the guest-supplied base makes the sum wrap.
    pub(crate) fn read_gp_at(&self, idx: usize, base: u32, off: u32) -> Option<u32> {
        self.read_gp(idx, base.checked_add(off)?)
    }

    /// Writes a longword of guest physical memory (VMM-internal); the
    /// same whole-longword containment as [`Monitor::read_gp`].
    pub(crate) fn write_gp(&mut self, idx: usize, gpa: u32, v: u32) -> Option<()> {
        let pa = self.vms[idx].vm.gpa_to_pa_len(gpa, 4)?;
        self.machine.mem_mut().write_u32(pa, v).ok()
    }

    /// Writes a longword at `base + off`, overflow-checked.
    pub(crate) fn write_gp_at(&mut self, idx: usize, base: u32, off: u32, v: u32) -> Option<()> {
        self.write_gp(idx, base.checked_add(off)?, v)
    }

    /// Handles a failed VMM access to guest memory: reflect the guest's
    /// own fault (the faulted operation will be retried or the guest's
    /// handler takes over), or contain the VMM fault.
    fn guest_access_failed(&mut self, idx: usize, outcome: FillOutcome, ctx: &'static str) -> bool {
        match outcome {
            FillOutcome::Reflect(e) => self.reflect(idx, e),
            FillOutcome::Fault(err) => self.contain(idx, err),
            FillOutcome::Filled => self.security_halt(idx, VmmError::Internal { what: ctx }),
        }
    }

    /// Applies the [`VmmError::containment`] policy (DESIGN.md §11) to a
    /// fault raised while this VM was executing: reflect a virtual
    /// machine check through the guest SCB, or halt the VM with the
    /// reason recorded. Returns `true` when the VM should resume (into
    /// its machine-check handler).
    pub(crate) fn contain(&mut self, idx: usize, err: VmmError) -> bool {
        match err.containment() {
            Containment::Reflect(e) => {
                self.obs.refine(vax_obs::ExitCause::ReflectedMachineCheck);
                self.vms[idx].vm.stats.machine_checks += 1;
                self.reflect(idx, e)
            }
            Containment::Halt => self.security_halt(idx, err),
        }
    }

    /// Halts the VM at its virtual console with `err` recorded as the
    /// reason — the clean-halt arm of fault containment. Always returns
    /// `false` (do not resume).
    pub(crate) fn security_halt(&mut self, idx: usize, err: VmmError) -> bool {
        self.obs.refine(vax_obs::ExitCause::SecurityHalt);
        let vm = &mut self.vms[idx].vm;
        vm.state = VmState::ConsoleHalt;
        vm.halt_reason = Some(err);
        vm.vmm_log.push(format!("{} halted: {err}", vm.name));
        false
    }

    /// A guest-requested console halt (HALT in virtual kernel mode) —
    /// not an error, so no halt reason is recorded.
    fn console_halt(&mut self, idx: usize, why: &str) -> bool {
        let vm = &mut self.vms[idx].vm;
        vm.state = VmState::ConsoleHalt;
        vm.vmm_log.push(format!("{} halted: {why}", vm.name));
        false
    }

    /// Central exit dispatcher. Returns `true` to resume the VM.
    pub(crate) fn handle_exit(&mut self, idx: usize, exit: VmExit) -> bool {
        match exit {
            VmExit::Emulation(info) => {
                self.vms[idx].vm.stats.emulation_traps += 1;
                self.charge(self.config.costs.dispatch);
                self.emulate(idx, *info)
            }
            VmExit::Exception(e) => {
                self.charge(self.config.costs.dispatch);
                self.handle_exception(idx, e)
            }
            VmExit::Interrupt { ipl, vector } => {
                // A real device completed: route to the owning VM as a
                // virtual interrupt.
                let owner = self
                    .real_vector_owner
                    .iter()
                    .find(|(v, _, _)| *v == vector)
                    .copied();
                if let Some((_, owner_idx, guest_vector)) = owner {
                    self.vms[owner_idx].vm.pend_virq(VirtualIrq {
                        ipl,
                        vector: guest_vector,
                    });
                }
                true
            }
        }
    }

    fn handle_exception(&mut self, idx: usize, e: Exception) -> bool {
        match e {
            Exception::TranslationNotValid { va, .. } => {
                if self.vms[idx].vm.io_strategy == IoStrategy::EmulatedMmio {
                    if let Some(gpfn) = self.mmio_window_gpfn(idx, va) {
                        self.obs.refine(vax_obs::ExitCause::MmioEmulation);
                        return crate::io::emulate_mmio_access(self, idx, va, gpfn);
                    }
                }
                self.vms[idx].vm.stats.shadow_faults += 1;
                let fills_before = self.vms[idx].vm.stats.shadow_fills;
                let slot = &mut self.vms[idx];
                let outcome = slot.shadow.fill(&mut self.machine, &mut slot.vm, va);
                // Charge the per-PTE translation work — this is what made
                // the paper's prefill experiment a net loss (§4.3.1).
                let fills = (self.vms[idx].vm.stats.shadow_fills - fills_before).max(1);
                self.charge(self.config.costs.shadow_fill * fills);
                match outcome {
                    FillOutcome::Filled => true,
                    FillOutcome::Reflect(ge) => {
                        // Not a shadow-fill service after all: the guest's
                        // own tables say the page is invalid.
                        self.obs.refine(vax_obs::ExitCause::GuestPageFault);
                        self.reflect(idx, ge)
                    }
                    FillOutcome::Fault(err) => self.contain(idx, err),
                }
            }
            Exception::ModifyFault { va } => {
                self.charge(self.config.costs.modify_fault);
                let slot = &mut self.vms[idx];
                match slot
                    .shadow
                    .modify_fault(&mut self.machine, &mut slot.vm, va)
                {
                    FillOutcome::Filled => true,
                    FillOutcome::Reflect(ge) => self.reflect(idx, ge),
                    FillOutcome::Fault(err) => self.contain(idx, err),
                }
            }
            Exception::AccessViolation { va, write, .. } => {
                if write && self.vms[idx].vm.dirty_strategy == DirtyStrategy::ReadOnlyShadow {
                    self.charge(self.config.costs.modify_fault);
                    let slot = &mut self.vms[idx];
                    let real_mode = self.machine.psl().cur_mode();
                    match slot
                        .shadow
                        .write_upgrade(&mut self.machine, &mut slot.vm, va, real_mode)
                    {
                        FillOutcome::Filled => return true,
                        FillOutcome::Reflect(ge) => return self.reflect(idx, ge),
                        FillOutcome::Fault(err) => return self.contain(idx, err),
                    }
                }
                let ge = self.guestify_av(idx, e);
                self.reflect(idx, ge)
            }
            Exception::MachineCheck { code } => {
                // Paper §5: a reference to nonexistent memory can be a
                // symptom of a security attack — halt the VM.
                self.security_halt(idx, VmmError::RealMachineCheck { code })
            }
            Exception::KernelStackNotValid => self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "kernel stack not valid",
                },
            ),
            other => self.reflect(idx, other),
        }
    }

    /// Recomputes an access violation's guest-visible length bit against
    /// the *guest's* length registers (the real machine checked the
    /// shadow capacities).
    fn guestify_av(&self, idx: usize, e: Exception) -> Exception {
        let Exception::AccessViolation {
            va,
            write,
            length,
            pte_ref,
        } = e
        else {
            return e;
        };
        let vm = &self.vms[idx].vm;
        let vpn = va.vpn();
        let length = length
            || match va.region() {
                vax_arch::Region::S => vpn >= vm.guest_slr,
                vax_arch::Region::P0 => vpn >= vm.guest_p0lr,
                vax_arch::Region::P1 => vpn < vm.guest_p1lr,
                vax_arch::Region::Reserved => true,
            };
        Exception::AccessViolation {
            va,
            write,
            length,
            pte_ref,
        }
    }

    /// Reflects an exception into the guest through its SCB (paper §4.2:
    /// "forward the exception to the VM").
    pub(crate) fn reflect(&mut self, idx: usize, e: Exception) -> bool {
        self.charge(self.config.costs.reflect);
        self.vms[idx].vm.stats.reflected += 1;
        self.save_live_sp(idx);

        let (old_cur, is) = {
            let vm = &self.vms[idx].vm;
            (vm.vmpsl.cur_mode(), vm.v_is)
        };
        // CHM-style exceptions never come through here; everything else
        // targets virtual kernel mode, staying on the virtual interrupt
        // stack if already there.
        let target = AccessMode::Kernel;
        let merged = self.vms[idx].vm.vmpsl.merge_into(self.machine.psl());
        let pc = self.machine.pc();

        let mut sp = self.vms[idx].vm.stack_slot(target, is);
        let params = e.parameters();
        let mut frame: Vec<u32> = vec![merged.raw_visible(), pc];
        for p in params.as_slice().iter().rev() {
            frame.push(*p);
        }
        let real_mode = compress_mode(target);
        for v in frame {
            sp = sp.wrapping_sub(4);
            if self
                .vm_write(idx, VirtAddr::new(sp), v, 4, real_mode)
                .is_err()
            {
                // Reflecting the push failure would recurse into the same
                // broken stack: the guest can no longer hear about its own
                // faults, so contain by halting.
                return self.security_halt(
                    idx,
                    VmmError::Undeliverable {
                        what: "exception frame push failed",
                    },
                );
            }
        }
        self.vms[idx].vm.set_stack_slot(target, is, sp);

        let handler = self.vms[idx]
            .vm
            .guest_scbb
            .checked_add(e.vector().offset())
            .and_then(|vector_gpa| self.read_gp(idx, vector_gpa));
        let Some(handler) = handler else {
            return self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest SCB unreadable",
                },
            );
        };
        if handler & !3 == 0 {
            return self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest exception vector empty",
                },
            );
        }
        self.set_vm_mode(idx, target, old_cur, is, true);
        self.machine.set_pc(handler & !3);
        true
    }

    /// Delivers a pending virtual interrupt (guest SCB, virtual interrupt
    /// stack, virtual IPL raised to the source's level).
    pub(crate) fn deliver_virq(&mut self, idx: usize, irq: VirtualIrq) {
        self.charge(self.config.costs.virq_delivery);
        self.save_live_sp(idx);
        let old_cur = self.vms[idx].vm.vmpsl.cur_mode();
        let merged = self.vms[idx].vm.vmpsl.merge_into(self.machine.psl());
        let pc = self.machine.pc();

        let mut sp = self.vms[idx].vm.vsp_is;
        for v in [merged.raw_visible(), pc] {
            sp = sp.wrapping_sub(4);
            if let Err(out) = self.vm_write(idx, VirtAddr::new(sp), v, 4, AccessMode::Executive) {
                // The interrupt stays pending; the guest handles its own
                // fault first (or the VM halts on a security violation).
                self.guest_access_failed(idx, out, "interrupt frame push failed");
                return;
            }
        }
        self.vms[idx].vm.vsp_is = sp;

        let handler = self.vms[idx]
            .vm
            .guest_scbb
            .checked_add(irq.vector as u32)
            .and_then(|vector_gpa| self.read_gp(idx, vector_gpa));
        let Some(handler) = handler else {
            self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest SCB unreadable",
                },
            );
            return;
        };
        if handler & !3 == 0 {
            self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest interrupt vector empty",
                },
            );
            return;
        }
        {
            let vm = &mut self.vms[idx].vm;
            vm.clear_virq(irq);
            vm.stats.virqs += 1;
            vm.vmpsl.set_ipl(irq.ipl);
        }
        self.set_vm_mode(idx, AccessMode::Kernel, old_cur, true, true);
        self.machine.set_pc(handler & !3);
        self.machine.enter_vm(self.vms[idx].vm.vmpsl);
    }

    // ---- instruction emulations ----

    fn emulate(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        match info.opcode {
            Opcode::Chmk | Opcode::Chme | Opcode::Chms | Opcode::Chmu => {
                self.emulate_chm(idx, info)
            }
            Opcode::Rei => self.emulate_rei(idx, info),
            Opcode::Mtpr => self.emulate_mtpr(idx, info),
            Opcode::Mfpr => self.emulate_mfpr(idx, info),
            Opcode::Ldpctx => self.emulate_ldpctx(idx, info),
            Opcode::Svpctx => self.emulate_svpctx(idx, info),
            Opcode::Prober | Opcode::Probew => self.emulate_probe(idx, info),
            Opcode::Halt => {
                // Virtual console entry.
                self.console_halt(idx, "HALT instruction")
            }
            Opcode::Wait => {
                // The WAIT handshake (paper §5): the VM is idle; run
                // someone else. It times out so every VM runs eventually.
                self.charge(self.config.costs.wait);
                let until = self.machine.cycles() + self.config.wait_timeout;
                let vm = &mut self.vms[idx].vm;
                vm.stats.waits += 1;
                vm.state = VmState::Idle { until };
                self.machine.apply_side_effects(&info.reg_side_effects);
                self.machine.set_pc(info.next_pc);
                false
            }
            Opcode::Probevmr | Opcode::Probevmw => {
                // No self-virtualization (paper §4.3.3): deliver the
                // unimplemented-instruction exception to the VM.
                self.reflect(idx, Exception::ReservedInstruction)
            }
            other => {
                // Defensive: anything else is unexpected.
                let _ = other;
                self.reflect(idx, Exception::ReservedInstruction)
            }
        }
    }

    fn emulate_chm(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.chm);
        self.vms[idx].vm.stats.chm += 1;
        let code = info.operands[0].value().unwrap_or(0) as u16 as i16 as i32 as u32;
        let Some(instr_target) = info.opcode.chm_target() else {
            // Only CHMx opcodes dispatch here; a non-CHM trap info is a
            // decoder inconsistency, handled as a reserved instruction
            // rather than a panic.
            return self.reflect(idx, Exception::ReservedInstruction);
        };
        let old_cur = self.vms[idx].vm.vmpsl.cur_mode();
        // Change-mode maximizes privilege: a CHM to a less privileged
        // mode stays in the current mode.
        let new_mode = old_cur.most_privileged(instr_target);
        let merged = info.vm_psl;

        self.save_live_sp(idx);
        // Frame on the *target* mode's stack: (SP)=code, PC, PSL.
        let mut sp = self.vms[idx].vm.stack_slot(new_mode, false);
        let real_mode = compress_mode(new_mode);
        for v in [merged.raw_visible(), info.next_pc, code] {
            sp = sp.wrapping_sub(4);
            if let Err(out) = self.vm_write(idx, VirtAddr::new(sp), v, 4, real_mode) {
                // PC still points at the CHM: reflecting the fault lets
                // the guest validate its stack and re-execute the CHM.
                return self.guest_access_failed(idx, out, "CHM stack push failed");
            }
        }
        self.vms[idx].vm.set_stack_slot(new_mode, false, sp);

        // Vector selected by the *instruction's* target mode.
        let handler = self.vms[idx]
            .vm
            .guest_scbb
            .checked_add(0x40 + 4 * instr_target.bits())
            .and_then(|vector_gpa| self.read_gp(idx, vector_gpa));
        let Some(handler) = handler else {
            return self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest SCB unreadable",
                },
            );
        };
        if handler & !3 == 0 {
            return self.security_halt(
                idx,
                VmmError::Undeliverable {
                    what: "guest CHM vector empty",
                },
            );
        }
        self.machine.apply_side_effects(&info.reg_side_effects);
        self.set_vm_mode(idx, new_mode, old_cur, false, true);
        self.machine.set_pc(handler & !3);
        true
    }

    fn emulate_rei(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.rei);
        self.vms[idx].vm.stats.rei += 1;
        let (cur, is) = {
            let vm = &self.vms[idx].vm;
            (vm.vmpsl.cur_mode(), vm.v_is)
        };
        let real_mode = compress_mode(cur);
        let sp = self.machine.reg(14);
        let new_pc = match self.vm_read(idx, VirtAddr::new(sp), 4, real_mode) {
            Ok(v) => v,
            Err(out) => return self.guest_access_failed(idx, out, "REI stack read"),
        };
        let img_raw = match self.vm_read(idx, VirtAddr::new(sp.wrapping_add(4)), 4, real_mode) {
            Ok(v) => v,
            Err(out) => return self.guest_access_failed(idx, out, "REI stack read"),
        };
        let img = Psl::from_raw(img_raw);

        // The same validity checks the microcode applies, but against
        // *virtual* modes — this is where the guest is prevented from
        // increasing its own privilege.
        let valid = img_raw & Psl::MBZ == 0
            && !img.cur_mode().is_more_privileged_than(cur)
            && !img.prv_mode().is_more_privileged_than(img.cur_mode())
            && (img.ipl() == 0 || img.cur_mode() == AccessMode::Kernel)
            && (!img.flag(Psl::IS) || is)
            && !(img.flag(Psl::IS) && img.cur_mode() != AccessMode::Kernel);
        if !valid {
            return self.reflect(idx, Exception::ReservedOperand);
        }

        // Commit: pop the frame, bank the old stack, load the image.
        self.machine.set_reg(14, sp.wrapping_add(8));
        self.save_live_sp(idx);
        {
            let vm = &mut self.vms[idx].vm;
            vm.vmpsl.set_ipl(img.ipl());
            // AST delivery check against the *virtual* ASTLVL.
            if img.cur_mode().bits() >= vm.guest_astlvl && vm.guest_astlvl <= 3 {
                vm.guest_sisr |= 1 << 2;
            }
        }
        self.machine.apply_side_effects(&info.reg_side_effects);
        self.set_vm_mode(
            idx,
            img.cur_mode(),
            img.prv_mode(),
            img.flag(Psl::IS),
            false,
        );
        // Restore the image's condition codes into the real PSL.
        let mut psl = self.machine.psl();
        for flag in CC_BITS {
            psl.set_flag(flag, img.flag(flag));
        }
        self.machine.set_psl(psl);
        self.machine.set_pc(new_pc);
        let _ = info;
        true
    }

    fn emulate_mtpr(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        let value = info.operands[0].value().unwrap_or(0);
        let regno = info.operands[1].value().unwrap_or(u32::MAX);
        let Some(ipr) = Ipr::from_number(regno) else {
            return self.reflect(idx, Exception::ReservedOperand);
        };
        if ipr == Ipr::Ipl {
            self.obs.refine(vax_obs::ExitCause::EmulMtprIpl);
            self.charge(self.config.costs.mtpr_ipl);
            self.vms[idx].vm.stats.mtpr_ipl += 1;
        } else {
            self.charge(self.config.costs.mtpr_other);
            self.vms[idx].vm.stats.mtpr_other += 1;
        }

        match ipr {
            Ipr::Ipl => self.vms[idx].vm.vmpsl.set_ipl((value & 0x1f) as u8),
            Ipr::Sirr => {
                let level = value & 0xf;
                if level != 0 {
                    self.vms[idx].vm.guest_sisr |= 1 << level;
                }
            }
            Ipr::Sisr => self.vms[idx].vm.guest_sisr = (value & 0xfffe) as u16,
            Ipr::Scbb => self.vms[idx].vm.guest_scbb = value & !0x1ff,
            Ipr::Pcbb => self.vms[idx].vm.guest_pcbb = value,
            Ipr::Sbr => {
                self.vms[idx].vm.guest_sbr = value & !3;
                let slot = &mut self.vms[idx];
                let slr = slot.vm.guest_slr;
                slot.shadow.reset_guest_s(&mut self.machine, slr);
                self.refresh_mmu(idx);
            }
            Ipr::Slr => {
                let cap = self.vms[idx].shadow.config().s_capacity;
                self.vms[idx].vm.guest_slr = value.min(cap);
                let slot = &mut self.vms[idx];
                let slr = slot.vm.guest_slr;
                slot.shadow.reset_guest_s(&mut self.machine, slr);
                self.refresh_mmu(idx);
            }
            Ipr::P0br => {
                self.vms[idx].vm.guest_p0br = value;
                self.vms[idx].shadow.reset_active_process(&mut self.machine);
                self.refresh_mmu(idx);
            }
            Ipr::P0lr => {
                let cap = self.vms[idx].shadow.config().p0_capacity;
                self.vms[idx].vm.guest_p0lr = value.min(cap);
                self.refresh_mmu(idx);
            }
            Ipr::P1br => {
                self.vms[idx].vm.guest_p1br = value;
                self.vms[idx].shadow.reset_active_process(&mut self.machine);
                self.refresh_mmu(idx);
            }
            Ipr::P1lr => {
                let floor = (1u32 << 21) - self.vms[idx].shadow.config().p1_capacity;
                self.vms[idx].vm.guest_p1lr = value.max(floor);
                self.refresh_mmu(idx);
            }
            Ipr::Tbia => {
                let slot = &mut self.vms[idx];
                let vm_copy = slot.vm.clone();
                slot.shadow.invalidate_all(&mut self.machine, &vm_copy);
            }
            Ipr::Tbis => {
                let slot = &mut self.vms[idx];
                let vm_copy = slot.vm.clone();
                slot.shadow
                    .invalidate_single(&mut self.machine, &vm_copy, VirtAddr::new(value));
            }
            Ipr::Mapen => {
                self.vms[idx].vm.guest_mapen = value & 1 != 0;
                let slot = &mut self.vms[idx];
                let vm_copy = slot.vm.clone();
                slot.shadow.invalidate_all(&mut self.machine, &vm_copy);
                self.refresh_mmu(idx);
            }
            Ipr::Iccs => self.vms[idx].vm.vtimer.write_iccs(value),
            Ipr::Nicr => self.vms[idx].vm.vtimer.nicr = value as i32 as i64,
            Ipr::Todr => self.vms[idx].vm.guest_todr = value,
            Ipr::Astlvl => self.vms[idx].vm.guest_astlvl = value & 7,
            Ipr::Ksp | Ipr::Esp | Ipr::Ssp | Ipr::Usp => {
                let mode = AccessMode::from_bits(ipr.number());
                let vm = &mut self.vms[idx].vm;
                if mode == vm.vmpsl.cur_mode() && !vm.v_is {
                    self.machine.set_reg(14, value);
                } else {
                    vm.vsp[mode as usize] = value;
                }
            }
            Ipr::Isp => {
                let vm = &mut self.vms[idx].vm;
                if vm.v_is {
                    self.machine.set_reg(14, value);
                } else {
                    vm.vsp_is = value;
                }
            }
            Ipr::Txdb => self.vms[idx].vm.console_out.push(value as u8),
            Ipr::Rxcs | Ipr::Txcs => {}
            Ipr::Kcall => {
                if !crate::io::kcall(self, idx, value) {
                    return false;
                }
            }
            Ipr::Ioreset => {
                let vm = &mut self.vms[idx].vm;
                vm.vdisk_pending = None;
                vm.pending_virqs.clear();
            }
            Ipr::Rxdb | Ipr::Icr | Ipr::Sid | Ipr::Memsize => {
                return self.reflect(idx, Exception::ReservedOperand);
            }
        }
        self.machine.apply_side_effects(&info.reg_side_effects);
        self.machine.set_pc(info.next_pc);
        true
    }

    fn emulate_mfpr(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.mtpr_other);
        self.vms[idx].vm.stats.mtpr_other += 1;
        let regno = info.operands[0].value().unwrap_or(u32::MAX);
        let Some(ipr) = Ipr::from_number(regno) else {
            return self.reflect(idx, Exception::ReservedOperand);
        };
        let value = {
            let vm = &mut self.vms[idx].vm;
            match ipr {
                Ipr::Ipl => vm.vmpsl.ipl() as u32,
                Ipr::Sisr => vm.guest_sisr as u32,
                Ipr::Scbb => vm.guest_scbb,
                Ipr::Pcbb => vm.guest_pcbb,
                Ipr::Sbr => vm.guest_sbr,
                Ipr::Slr => vm.guest_slr,
                Ipr::P0br => vm.guest_p0br,
                Ipr::P0lr => vm.guest_p0lr,
                Ipr::P1br => vm.guest_p1br,
                Ipr::P1lr => vm.guest_p1lr,
                Ipr::Mapen => vm.guest_mapen as u32,
                Ipr::Iccs => vm.vtimer.iccs,
                Ipr::Nicr => vm.vtimer.nicr as u32,
                Ipr::Icr => vm.vtimer.icr as u32,
                Ipr::Todr => vm.guest_todr,
                Ipr::Astlvl => vm.guest_astlvl,
                Ipr::Sid => 0x0300_0000, // a distinct "virtual VAX" model
                Ipr::Memsize => vm.mem_bytes(),
                Ipr::Rxcs => {
                    if vm.console_in.is_empty() {
                        0
                    } else {
                        0x80
                    }
                }
                Ipr::Rxdb => vm.console_in.pop_front().map_or(0, u32::from),
                Ipr::Txcs => 0x80,
                Ipr::Txdb => 0,
                Ipr::Ksp | Ipr::Esp | Ipr::Ssp | Ipr::Usp => {
                    let mode = AccessMode::from_bits(ipr.number());
                    if mode == vm.vmpsl.cur_mode() && !vm.v_is {
                        self.machine.reg(14)
                    } else {
                        vm.vsp[mode as usize]
                    }
                }
                Ipr::Isp => {
                    if vm.v_is {
                        self.machine.reg(14)
                    } else {
                        vm.vsp_is
                    }
                }
                Ipr::Sirr | Ipr::Tbia | Ipr::Tbis | Ipr::Kcall | Ipr::Ioreset => {
                    return self.reflect(idx, Exception::ReservedOperand);
                }
            }
        };
        let OperandValue::Location { loc, .. } = info.operands[1] else {
            return self.reflect(idx, Exception::ReservedOperand);
        };
        // The destination write can fault (and the instruction then
        // retries), so operand side effects commit only after it.
        match loc {
            OperandLoc::Reg(r) => self.machine.set_reg(r as usize, value),
            OperandLoc::Mem(va) => {
                let real_mode = compress_mode(self.vms[idx].vm.vmpsl.cur_mode());
                if let Err(out) = self.vm_write(idx, va, value, 4, real_mode) {
                    return self.guest_access_failed(idx, out, "MFPR destination unwritable");
                }
            }
        }
        self.machine.apply_side_effects(&info.reg_side_effects);
        self.machine.set_pc(info.next_pc);
        true
    }

    fn emulate_ldpctx(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.context_switch);
        self.vms[idx].vm.stats.guest_context_switches += 1;
        let pcbb = self.vms[idx].vm.guest_pcbb;
        let rd = |m: &Monitor, off: u32| m.read_gp_at(idx, pcbb, off);
        let Some(ksp) = rd(self, 0) else {
            return self.security_halt(
                idx,
                VmmError::GuestState {
                    what: "guest PCB unreadable",
                },
            );
        };
        let esp = rd(self, 4).unwrap_or(0);
        let ssp = rd(self, 8).unwrap_or(0);
        let usp = rd(self, 12).unwrap_or(0);
        let mut gp_regs = [0u32; 14];
        for (i, r) in gp_regs.iter_mut().enumerate() {
            *r = rd(self, 16 + 4 * i as u32).unwrap_or(0);
        }
        let pc_img = rd(self, 72).unwrap_or(0);
        let psl_img = rd(self, 76).unwrap_or(0);
        let p0br = rd(self, 80).unwrap_or(0);
        let p0lr = rd(self, 84).unwrap_or(0);
        let p1br = rd(self, 88).unwrap_or(0);
        let p1lr = rd(self, 92).unwrap_or(0);

        {
            let vm = &mut self.vms[idx].vm;
            vm.vsp[1] = esp;
            vm.vsp[2] = ssp;
            vm.vsp[3] = usp;
            if vm.v_is {
                vm.vsp[0] = ksp;
            }
            vm.guest_p0br = p0br;
            let p0cap = self.vms[idx].shadow.config().p0_capacity;
            let vm = &mut self.vms[idx].vm;
            vm.guest_p0lr = p0lr.min(p0cap);
            vm.guest_p1br = p1br;
            let floor = (1u32 << 21) - self.vms[idx].shadow.config().p1_capacity;
            let vm = &mut self.vms[idx].vm;
            vm.guest_p1lr = p1lr.max(floor);
        }
        for (i, r) in gp_regs.iter().enumerate() {
            self.machine.set_reg(i, *r);
        }
        if !self.vms[idx].vm.v_is {
            self.machine.set_reg(14, ksp);
        }

        // §7.2: switch shadow process tables through the cache.
        let hit = self.vms[idx].shadow.switch_process(&mut self.machine, pcbb);
        if hit {
            self.vms[idx].vm.stats.shadow_cache_hits += 1;
        } else {
            self.vms[idx].vm.stats.shadow_cache_misses += 1;
            // Clearing a slot costs time proportional to its size.
            let cfg = self.vms[idx].shadow.config();
            self.charge(((cfg.p0_capacity + cfg.p1_capacity) / 16) as u64);
        }
        self.refresh_mmu(idx);

        // Push the PCB's PSL and PC for the completing REI.
        let real_mode = compress_mode(self.vms[idx].vm.vmpsl.cur_mode());
        let mut sp = self.machine.reg(14);
        for v in [psl_img, pc_img] {
            sp = sp.wrapping_sub(4);
            if let Err(out) = self.vm_write(idx, VirtAddr::new(sp), v, 4, real_mode) {
                return self.guest_access_failed(idx, out, "LDPCTX stack push failed");
            }
        }
        self.machine.set_reg(14, sp);
        self.machine.set_pc(info.next_pc);
        true
    }

    fn emulate_svpctx(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.context_switch);
        self.vms[idx].vm.stats.guest_context_switches += 1;
        let pcbb = self.vms[idx].vm.guest_pcbb;
        let real_mode = compress_mode(self.vms[idx].vm.vmpsl.cur_mode());
        let sp = self.machine.reg(14);
        let pc_img = match self.vm_read(idx, VirtAddr::new(sp), 4, real_mode) {
            Ok(v) => v,
            Err(out) => return self.guest_access_failed(idx, out, "SVPCTX stack pop failed"),
        };
        let psl_img = match self.vm_read(idx, VirtAddr::new(sp.wrapping_add(4)), 4, real_mode) {
            Ok(v) => v,
            Err(out) => return self.guest_access_failed(idx, out, "SVPCTX stack pop failed"),
        };
        self.machine.set_reg(14, sp.wrapping_add(8));

        let ksp = if self.vms[idx].vm.v_is {
            self.vms[idx].vm.vsp[0]
        } else {
            self.machine.reg(14)
        };
        let (esp, ssp, usp) = {
            let vm = &self.vms[idx].vm;
            (vm.vsp[1], vm.vsp[2], vm.vsp[3])
        };
        let mut ok = true;
        ok &= self.write_gp(idx, pcbb, ksp).is_some();
        ok &= self.write_gp_at(idx, pcbb, 4, esp).is_some();
        ok &= self.write_gp_at(idx, pcbb, 8, ssp).is_some();
        ok &= self.write_gp_at(idx, pcbb, 12, usp).is_some();
        for i in 0..14 {
            let v = self.machine.reg(i);
            ok &= self.write_gp_at(idx, pcbb, 16 + 4 * i as u32, v).is_some();
        }
        ok &= self.write_gp_at(idx, pcbb, 72, pc_img).is_some();
        ok &= self.write_gp_at(idx, pcbb, 76, psl_img).is_some();
        if !ok {
            return self.security_halt(
                idx,
                VmmError::GuestState {
                    what: "guest PCB unwritable",
                },
            );
        }
        self.machine.set_pc(info.next_pc);
        true
    }

    /// PROBE trapped: the shadow PTE was invalid (or a write probe was
    /// denied by the shadow). Consult the guest's own tables, fill what
    /// can be filled, and complete the instruction (paper §4.3.2).
    fn emulate_probe(&mut self, idx: usize, info: VmTrapInfo) -> bool {
        self.charge(self.config.costs.shadow_fill);
        self.vms[idx].vm.stats.shadow_faults += 1;
        let write = info.opcode == Opcode::Probew;
        let mode_op = AccessMode::from_bits(info.operands[0].value().unwrap_or(0));
        let len = (info.operands[1].value().unwrap_or(1) & 0xffff).max(1);
        let Some(base) = info.operands[2].value() else {
            return self.reflect(idx, Exception::ReservedOperand);
        };
        let probe_mode = mode_op.least_privileged(info.vm_psl.prv_mode());

        let mut accessible = true;
        for va in [
            VirtAddr::new(base),
            VirtAddr::new(base.wrapping_add(len - 1)),
        ] {
            let slot = &mut self.vms[idx];
            let gpte = match slot.shadow.guest_pte(&self.machine, &slot.vm, va) {
                Ok((gpte, _)) => gpte,
                Err(FillOutcome::Reflect(Exception::AccessViolation { length: true, .. })) => {
                    // Beyond the guest's length registers: not accessible.
                    accessible = false;
                    continue;
                }
                Err(FillOutcome::Reflect(e)) => return self.reflect(idx, e),
                Err(FillOutcome::Fault(err)) => return self.contain(idx, err),
                Err(FillOutcome::Filled) => {
                    return self.security_halt(
                        idx,
                        VmmError::Internal {
                            what: "guest_pte returned Filled",
                        },
                    )
                }
            };
            // The protection code is meaningful even when the PTE is
            // invalid (paper §3.2.1): compute from the compressed code.
            let prot = gpte.protection().ring_compressed();
            accessible &= prot.allows(compress_mode(probe_mode), write);
            if gpte.valid() {
                // Fill the shadow so later probes take the fast path.
                let _ = slot.shadow.fill(&mut self.machine, &mut slot.vm, va);
            }
            if write && self.vms[idx].vm.dirty_strategy == DirtyStrategy::ReadOnlyShadow {
                self.vms[idx].vm.stats.probew_extra_traps += 1;
            }
        }
        self.machine.apply_side_effects(&info.reg_side_effects);
        let mut psl = self.machine.psl();
        psl.set_nzvc(false, !accessible, false, false);
        self.machine.set_psl(psl);
        self.machine.set_pc(info.next_pc);
        true
    }
}
