//! Per-virtual-machine state: virtual privileged registers, virtual
//! devices, pending virtual interrupts, and statistics.

use crate::fault::VmmError;
use std::collections::VecDeque;
use vax_arch::{AccessMode, Psl, VmPsl};

/// How the VMM virtualizes a VM's disk I/O (the paper's §4.4.3 choice and
/// its ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoStrategy {
    /// The paper's design: an explicit start-I/O request through the
    /// `KCALL` register — one trap per operation.
    #[default]
    StartIo,
    /// The rejected alternative: emulate memory-mapped device registers —
    /// one trap per CSR access.
    EmulatedMmio,
}

/// How the VMM keeps guest `PTE<M>` bits correct (§4.4.2 and its
/// rejected alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirtyStrategy {
    /// The paper's design: the new modify fault.
    #[default]
    ModifyFault,
    /// The rejected alternative: shadow pages start write-protected; the
    /// first write takes an access violation that the VMM resolves
    /// against the guest PTE. Makes PROBEW trap more often.
    ReadOnlyShadow,
}

/// Run state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Eligible to run.
    Ready,
    /// Parked by WAIT until an interrupt arrives or the timeout passes
    /// (paper §5: WAIT "times out" so every VM runs periodically).
    Idle {
        /// Absolute cycle at which the WAIT times out.
        until: u64,
    },
    /// Stopped at the virtual console (HALT from VM-kernel mode, or a
    /// security halt after a reference to nonexistent memory).
    ConsoleHalt,
}

/// A pending virtual interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualIrq {
    /// Virtual interrupt priority level.
    pub ipl: u8,
    /// Guest SCB vector offset.
    pub vector: u16,
}

/// The VM's virtual interval clock, advanced only while the VM runs
/// (paper §5, "Time").
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualTimer {
    /// Virtual ICCS (RUN/IE/INT bits as on hardware).
    pub iccs: u32,
    /// Virtual NICR (negative reload).
    pub nicr: i64,
    /// Virtual ICR.
    pub icr: i64,
}

impl VirtualTimer {
    /// RUN bit.
    pub const RUN: u32 = 1 << 0;
    /// Transfer NICR to ICR.
    pub const XFR: u32 = 1 << 4;
    /// Interrupt enable.
    pub const IE: u32 = 1 << 6;
    /// Interrupt pending.
    pub const INT: u32 = 1 << 7;

    /// Emulates a guest write to ICCS.
    pub fn write_iccs(&mut self, v: u32) {
        if v & Self::XFR != 0 {
            self.icr = self.nicr;
        }
        if v & Self::INT != 0 {
            self.iccs &= !Self::INT;
        }
        self.iccs = (self.iccs & Self::INT) | (v & (Self::RUN | Self::IE));
    }

    /// Advances by `delta` VM-execution cycles; returns true if the timer
    /// fired (interrupt should be pended).
    pub fn advance(&mut self, delta: u64) -> bool {
        if self.iccs & Self::RUN == 0 || self.nicr >= 0 {
            return false;
        }
        self.icr += delta as i64;
        if self.icr >= 0 {
            self.iccs |= Self::INT;
            self.icr = self.nicr;
            return self.iccs & Self::IE != 0;
        }
        false
    }
}

/// Per-VM event statistics — the raw material for the paper's evaluation
/// numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Cycles this VM has executed (guest + attributed VMM time).
    pub cycles_run: u64,
    /// Cycles spent inside VMM emulation on this VM's behalf.
    pub vmm_cycles: u64,
    /// VM-emulation traps serviced.
    pub emulation_traps: u64,
    /// CHMx emulations.
    pub chm: u64,
    /// REI emulations.
    pub rei: u64,
    /// MTPR-to-IPL emulations.
    pub mtpr_ipl: u64,
    /// Other MTPR/MFPR emulations.
    pub mtpr_other: u64,
    /// Shadow-PTE fills.
    pub shadow_fills: u64,
    /// Shadow faults taken (a fill may cover several on PROBE).
    pub shadow_faults: u64,
    /// Modify faults serviced.
    pub modify_faults: u64,
    /// Write-protection upgrades (ReadOnlyShadow strategy only).
    pub dirty_upgrades: u64,
    /// PROBEW traps forced by the ReadOnlyShadow strategy.
    pub probew_extra_traps: u64,
    /// Exceptions reflected into the guest.
    pub reflected: u64,
    /// Virtual interrupts delivered.
    pub virqs: u64,
    /// Guest context switches (LDPCTX) observed.
    pub guest_context_switches: u64,
    /// Shadow-table cache hits on context switch.
    pub shadow_cache_hits: u64,
    /// Shadow-table cache misses on context switch.
    pub shadow_cache_misses: u64,
    /// KCALL operations.
    pub kcalls: u64,
    /// Emulated memory-mapped CSR accesses.
    pub mmio_accesses: u64,
    /// WAITs executed.
    pub waits: u64,
    /// Guest page faults (TNV reflected because the guest PTE was
    /// invalid) — the numerator of the paper's "17 page faults between
    /// context switches" measure counts *shadow* faults; this counts the
    /// guest's own.
    pub guest_page_faults: u64,
    /// Virtual machine checks reflected into the guest (bad guest
    /// page-table state contained per DESIGN.md §11).
    pub machine_checks: u64,
}

/// Virtual-console and virtual-device state plus all privileged guest
/// state the VMM maintains for one VM.
#[derive(Debug, Clone)]
pub struct Vm {
    /// Display name.
    pub name: String,
    /// First real page frame of the VM's contiguous memory block.
    pub mem_base_pfn: u32,
    /// VM memory size in pages (contiguous from guest physical 0 —
    /// paper §4: "presented to each VM as contiguous and starting at
    /// physical page 0").
    pub mem_pages: u32,

    // ---- virtual CPU context (valid while the VM is switched out) ----
    /// General registers R0–R15.
    pub regs: [u32; 16],
    /// Condition codes and trap-enable bits of the guest PSL.
    pub psl_flags: Psl,
    /// The VM's VMPSL (current/previous mode + virtual IPL).
    pub vmpsl: VmPsl,
    /// Virtual per-mode stack pointers (kernel, exec, super, user). The
    /// *active* one lives in `regs[14]`.
    pub vsp: [u32; 4],
    /// Virtual interrupt stack pointer.
    pub vsp_is: u32,
    /// True if the VM is (virtually) on its interrupt stack.
    pub v_is: bool,

    // ---- virtual privileged registers ----
    /// Guest SCB base (guest-physical).
    pub guest_scbb: u32,
    /// Guest PCB base (guest-physical).
    pub guest_pcbb: u32,
    /// Guest system page table base (guest-physical) and length.
    pub guest_sbr: u32,
    /// Guest SLR.
    pub guest_slr: u32,
    /// Guest P0BR (an S-space VA in the guest's address space).
    pub guest_p0br: u32,
    /// Guest P0LR.
    pub guest_p0lr: u32,
    /// Guest P1BR.
    pub guest_p1br: u32,
    /// Guest P1LR.
    pub guest_p1lr: u32,
    /// Guest MAPEN state.
    pub guest_mapen: bool,
    /// Guest ASTLVL.
    pub guest_astlvl: u32,
    /// Guest software-interrupt summary.
    pub guest_sisr: u16,
    /// Guest TODR.
    pub guest_todr: u32,
    /// Virtual interval timer.
    pub vtimer: VirtualTimer,

    // ---- virtual devices ----
    /// Virtual console output (guest TXDB writes).
    pub console_out: Vec<u8>,
    /// VMM-side diagnostics for this VM (halt reasons etc.).
    pub vmm_log: Vec<String>,
    /// Virtual console input queue.
    pub console_in: VecDeque<u8>,
    /// Virtual disk sectors (StartIo strategy).
    pub vdisk: Vec<[u8; 512]>,
    /// In-flight virtual disk completion: (due cycle, irq, status gpa).
    pub vdisk_pending: Option<(u64, VirtualIrq, u32)>,
    /// Guest-physical address of the uptime cell the VMM refreshes
    /// (paper §5, "Time"), registered via KCALL.
    pub uptime_cell: Option<u32>,
    /// Real-bus I/O window base for the EmulatedMmio strategy.
    pub real_io_base: Option<u32>,

    // ---- policy ----
    /// I/O virtualization strategy.
    pub io_strategy: IoStrategy,
    /// Dirty-bit strategy.
    pub dirty_strategy: DirtyStrategy,

    // ---- scheduling ----
    /// Run state.
    pub state: VmState,
    /// Why the VMM halted this VM, when [`VmState::ConsoleHalt`] was
    /// entered by fault containment rather than a guest HALT. Cleared on
    /// boot.
    pub halt_reason: Option<VmmError>,
    /// Pending virtual interrupts.
    pub pending_virqs: Vec<VirtualIrq>,
    /// Virtual uptime in timer ticks.
    pub uptime_ticks: u32,

    /// Statistics.
    pub stats: VmStats,
}

impl Vm {
    /// The active virtual stack slot for a (mode, on-interrupt-stack)
    /// pair.
    pub fn stack_slot(&self, mode: AccessMode, is: bool) -> u32 {
        if is {
            self.vsp_is
        } else {
            self.vsp[mode as usize]
        }
    }

    /// Stores into the virtual stack slot.
    pub fn set_stack_slot(&mut self, mode: AccessMode, is: bool, v: u32) {
        if is {
            self.vsp_is = v;
        } else {
            self.vsp[mode as usize] = v;
        }
    }

    /// The highest-priority pending virtual interrupt deliverable at the
    /// VM's current IPL, if any. Includes guest software interrupts.
    pub fn deliverable_virq(&self) -> Option<VirtualIrq> {
        let mut best: Option<VirtualIrq> = None;
        for irq in &self.pending_virqs {
            if best.is_none_or(|b| irq.ipl > b.ipl) {
                best = Some(*irq);
            }
        }
        if self.guest_sisr != 0 {
            let level = 15 - self.guest_sisr.leading_zeros() as u8;
            if best.is_none_or(|b| level > b.ipl) {
                best = Some(VirtualIrq {
                    ipl: level,
                    vector: (0x80 + 4 * level as u32) as u16,
                });
            }
        }
        best.filter(|b| b.ipl > self.vmpsl.ipl())
    }

    /// Pends a virtual interrupt (idempotent per (ipl, vector)).
    pub fn pend_virq(&mut self, irq: VirtualIrq) {
        if !self.pending_virqs.contains(&irq) {
            self.pending_virqs.push(irq);
        }
    }

    /// Removes a delivered virtual interrupt source.
    pub fn clear_virq(&mut self, irq: VirtualIrq) {
        if irq.ipl <= 15 && irq.vector == (0x80 + 4 * irq.ipl as u32) as u16 {
            self.guest_sisr &= !(1 << irq.ipl);
        }
        self.pending_virqs.retain(|i| *i != irq);
    }

    /// True if any event would wake this VM from WAIT.
    pub fn has_wake_event(&self) -> bool {
        self.deliverable_virq().is_some()
    }

    /// VM memory size in bytes.
    pub fn mem_bytes(&self) -> u32 {
        self.mem_pages * 512
    }

    /// Translates a guest-physical address to a real physical address.
    ///
    /// Returns `None` for addresses outside the VM's memory — on the
    /// paper's virtual VAX, touching nonexistent memory halts the VM
    /// (possible security attack, §5).
    pub fn gpa_to_pa(&self, gpa: u32) -> Option<u32> {
        if gpa < self.mem_bytes() {
            Some((self.mem_base_pfn << 9) + gpa)
        } else {
            None
        }
    }

    /// Translates a guest-physical *range* of `len` bytes to the real
    /// physical address of its first byte, requiring the whole range to
    /// lie inside the VM's memory.
    ///
    /// Multi-byte accessors must use this rather than [`Vm::gpa_to_pa`]:
    /// checking only the first byte lets a range starting at
    /// `mem_bytes - 1` spill into the adjacent VM's frames.
    pub fn gpa_to_pa_len(&self, gpa: u32, len: u32) -> Option<u32> {
        let end = gpa.checked_add(len)?;
        if end <= self.mem_bytes() {
            Some((self.mem_base_pfn << 9) + gpa)
        } else {
            None
        }
    }

    /// Translates a guest page frame number to a real PFN.
    pub fn gpfn_to_pfn(&self, gpfn: u32) -> Option<u32> {
        if gpfn < self.mem_pages {
            Some(self.mem_base_pfn + gpfn)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank_vm() -> Vm {
        Vm {
            name: "test".into(),
            mem_base_pfn: 100,
            mem_pages: 16,
            regs: [0; 16],
            psl_flags: Psl::new(),
            vmpsl: VmPsl::default(),
            vsp: [0; 4],
            vsp_is: 0,
            v_is: false,
            guest_scbb: 0,
            guest_pcbb: 0,
            guest_sbr: 0,
            guest_slr: 0,
            guest_p0br: 0,
            guest_p0lr: 0,
            guest_p1br: 0,
            guest_p1lr: 0,
            guest_mapen: false,
            guest_astlvl: 4,
            guest_sisr: 0,
            guest_todr: 0,
            vtimer: VirtualTimer::default(),
            console_out: Vec::new(),
            vmm_log: Vec::new(),
            console_in: VecDeque::new(),
            vdisk: Vec::new(),
            vdisk_pending: None,
            uptime_cell: None,
            real_io_base: None,
            io_strategy: IoStrategy::StartIo,
            dirty_strategy: DirtyStrategy::ModifyFault,
            state: VmState::Ready,
            halt_reason: None,
            pending_virqs: Vec::new(),
            uptime_ticks: 0,
            stats: VmStats::default(),
        }
    }

    #[test]
    fn gpa_translation_bounds() {
        let vm = blank_vm();
        assert_eq!(vm.gpa_to_pa(0), Some(100 * 512));
        assert_eq!(vm.gpa_to_pa(16 * 512 - 1), Some(100 * 512 + 16 * 512 - 1));
        assert_eq!(vm.gpa_to_pa(16 * 512), None, "beyond VM memory");
        assert_eq!(vm.gpfn_to_pfn(15), Some(115));
        assert_eq!(vm.gpfn_to_pfn(16), None);
    }

    #[test]
    fn gpa_range_translation_checks_every_byte() {
        let vm = blank_vm();
        let edge = 16 * 512;
        assert_eq!(vm.gpa_to_pa_len(0, 4), Some(100 * 512));
        assert_eq!(vm.gpa_to_pa_len(edge - 4, 4), Some(100 * 512 + edge - 4));
        for back in 1..4 {
            assert_eq!(
                vm.gpa_to_pa_len(edge - back, 4),
                None,
                "longword at mem_bytes - {back} must not reach the neighbor"
            );
        }
        assert_eq!(vm.gpa_to_pa_len(u32::MAX - 2, 4), None, "wrap must fail");
        assert_eq!(vm.gpa_to_pa_len(edge, 0), Some(100 * 512 + edge));
    }

    #[test]
    fn virq_priority_and_masking() {
        let mut vm = blank_vm();
        vm.pend_virq(VirtualIrq {
            ipl: 21,
            vector: 0x100,
        });
        vm.pend_virq(VirtualIrq {
            ipl: 24,
            vector: 0xC0,
        });
        vm.pend_virq(VirtualIrq {
            ipl: 24,
            vector: 0xC0,
        }); // idempotent
        assert_eq!(vm.pending_virqs.len(), 2);
        assert_eq!(
            vm.deliverable_virq(),
            Some(VirtualIrq {
                ipl: 24,
                vector: 0xC0
            })
        );
        vm.vmpsl.set_ipl(24);
        assert_eq!(vm.deliverable_virq(), None, "masked at IPL 24");
        vm.vmpsl.set_ipl(23);
        assert_eq!(
            vm.deliverable_virq(),
            Some(VirtualIrq {
                ipl: 24,
                vector: 0xC0
            })
        );
        vm.clear_virq(VirtualIrq {
            ipl: 24,
            vector: 0xC0,
        });
        assert_eq!(vm.deliverable_virq(), None, "21 < 23");
    }

    #[test]
    fn software_interrupts_via_sisr() {
        let mut vm = blank_vm();
        vm.guest_sisr = 1 << 5;
        let irq = vm.deliverable_virq().unwrap();
        assert_eq!(irq.ipl, 5);
        assert_eq!(irq.vector as u32, 0x80 + 4 * 5);
        vm.clear_virq(irq);
        assert_eq!(vm.guest_sisr, 0);
    }

    #[test]
    fn virtual_timer_fires_only_while_advancing() {
        let mut t = VirtualTimer {
            nicr: -100,
            ..VirtualTimer::default()
        };
        t.write_iccs(VirtualTimer::RUN | VirtualTimer::IE | VirtualTimer::XFR);
        assert!(!t.advance(99));
        assert!(t.advance(1), "fires at the boundary");
        assert_eq!(t.icr, -100, "reloaded");
        t.write_iccs(VirtualTimer::INT | VirtualTimer::RUN | VirtualTimer::IE);
        assert_eq!(t.iccs & VirtualTimer::INT, 0, "write-1-to-clear");
    }

    #[test]
    fn stack_slots() {
        let mut vm = blank_vm();
        vm.set_stack_slot(AccessMode::Kernel, false, 0x100);
        vm.set_stack_slot(AccessMode::User, false, 0x200);
        vm.set_stack_slot(AccessMode::Kernel, true, 0x300);
        assert_eq!(vm.stack_slot(AccessMode::Kernel, false), 0x100);
        assert_eq!(vm.stack_slot(AccessMode::User, false), 0x200);
        assert_eq!(vm.stack_slot(AccessMode::Supervisor, true), 0x300);
    }
}
