//! The virtual console (paper §5): "VAX systems may provide all or a
//! subset of the console's command interface. We chose a subset adequate
//! for booting and debugging a VM."
//!
//! Commands follow the classic VAX console syntax:
//!
//! ```text
//! >>> EXAMINE 1000        ! display guest-physical memory
//! >>> DEPOSIT 1000 DEADBEEF
//! >>> BOOT 2000           ! start the VM at a guest-physical entry
//! >>! HALT                ! stop the VM at the console
//! >>> CONTINUE            ! resume a halted VM
//! >>> EXAMINE /R 5        ! display a register (R0-R15 by number)
//! ```
//!
//! Addresses and data are hexadecimal, as on the real console.

use crate::monitor::{Monitor, VmId};
use crate::vm::VmState;

/// A parsed console command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsoleCommand {
    /// `EXAMINE addr` — read a guest-physical longword.
    Examine(u32),
    /// `EXAMINE /R n` — read general register `n`.
    ExamineReg(u8),
    /// `DEPOSIT addr value` — write a guest-physical longword.
    Deposit(u32, u32),
    /// `BOOT addr` — architectural cold start at a guest-physical entry.
    Boot(u32),
    /// `HALT` — stop the VM at the console.
    Halt,
    /// `CONTINUE` — resume.
    Continue,
}

/// Console errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsoleError {
    /// The command line did not parse.
    Syntax(String),
    /// The address is outside the VM's memory.
    BadAddress(u32),
}

impl core::fmt::Display for ConsoleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConsoleError::Syntax(s) => write!(f, "?SYNTAX: {s}"),
            ConsoleError::BadAddress(a) => write!(f, "?ADDR: {a:08X} outside memory"),
        }
    }
}

impl std::error::Error for ConsoleError {}

impl ConsoleCommand {
    /// Parses one console command line.
    ///
    /// # Errors
    ///
    /// [`ConsoleError::Syntax`] on malformed input.
    pub fn parse(line: &str) -> Result<ConsoleCommand, ConsoleError> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = || ConsoleError::Syntax(line.trim().to_string());
        let hex = |s: &str| u32::from_str_radix(s, 16).map_err(|_| bad());
        match toks.as_slice() {
            [cmd, "/R", n] if matches("EXAMINE", cmd) => {
                let r: u8 = n.parse().map_err(|_| bad())?;
                if r > 15 {
                    return Err(bad());
                }
                Ok(ConsoleCommand::ExamineReg(r))
            }
            [cmd, addr] if matches("EXAMINE", cmd) => Ok(ConsoleCommand::Examine(hex(addr)?)),
            [cmd, addr, value] if matches("DEPOSIT", cmd) => {
                Ok(ConsoleCommand::Deposit(hex(addr)?, hex(value)?))
            }
            [cmd, addr] if matches("BOOT", cmd) => Ok(ConsoleCommand::Boot(hex(addr)?)),
            [cmd] if matches("HALT", cmd) => Ok(ConsoleCommand::Halt),
            [cmd] if matches("CONTINUE", cmd) => Ok(ConsoleCommand::Continue),
            _ => Err(bad()),
        }
    }
}

/// True if `input` is an unambiguous prefix of `full` (the VAX console
/// accepts abbreviations: `E`, `EXA`, `EXAMINE` …).
fn matches(full: &str, input: &str) -> bool {
    !input.is_empty()
        && input.len() <= full.len()
        && full
            .chars()
            .zip(input.chars())
            .all(|(a, b)| a == b.to_ascii_uppercase())
}

impl Monitor {
    /// Executes one console command line against a VM and returns the
    /// console's response text.
    ///
    /// # Errors
    ///
    /// [`ConsoleError`] for malformed commands or bad addresses.
    pub fn console_command(&mut self, id: VmId, line: &str) -> Result<String, ConsoleError> {
        match ConsoleCommand::parse(line)? {
            ConsoleCommand::Examine(addr) => {
                let v = self
                    .vm_read_phys_u32(id, addr)
                    .ok_or(ConsoleError::BadAddress(addr))?;
                Ok(format!("P {addr:08X} {v:08X}"))
            }
            ConsoleCommand::ExamineReg(r) => {
                let v = self.vm(id).regs[r as usize];
                Ok(format!("R{r:<2} {v:08X}"))
            }
            ConsoleCommand::Deposit(addr, value) => {
                self.vm_write_phys(id, addr, &value.to_le_bytes())
                    .map_err(|_| ConsoleError::BadAddress(addr))?;
                Ok(format!("P {addr:08X} {value:08X}"))
            }
            ConsoleCommand::Boot(addr) => {
                if self.vm(id).gpa_to_pa(addr).is_none() {
                    return Err(ConsoleError::BadAddress(addr));
                }
                self.boot_vm(id, addr);
                Ok(format!("%BOOT-I-STARTED, PC {addr:08X}"))
            }
            ConsoleCommand::Halt => {
                self.halt_vm(id);
                let pc = self.vm(id).regs[15];
                Ok(format!("?06 HLT INST\n        PC = {pc:08X}"))
            }
            ConsoleCommand::Continue => {
                if self.vm(id).state == VmState::ConsoleHalt {
                    self.continue_vm(id);
                    Ok("%CONT-I-RESUMED".to_string())
                } else {
                    Ok("%CONT-W-NOTHALTED".to_string())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{MonitorConfig, VmConfig};

    #[test]
    fn parse_full_and_abbreviated_commands() {
        assert_eq!(
            ConsoleCommand::parse("EXAMINE 1000"),
            Ok(ConsoleCommand::Examine(0x1000))
        );
        assert_eq!(
            ConsoleCommand::parse("e 1000"),
            Ok(ConsoleCommand::Examine(0x1000))
        );
        assert_eq!(
            ConsoleCommand::parse("dep 200 deadbeef"),
            Ok(ConsoleCommand::Deposit(0x200, 0xDEAD_BEEF))
        );
        assert_eq!(
            ConsoleCommand::parse("b 2000"),
            Ok(ConsoleCommand::Boot(0x2000))
        );
        assert_eq!(ConsoleCommand::parse("halt"), Ok(ConsoleCommand::Halt));
        assert_eq!(ConsoleCommand::parse("c"), Ok(ConsoleCommand::Continue));
        assert_eq!(
            ConsoleCommand::parse("EXAMINE /R 5"),
            Ok(ConsoleCommand::ExamineReg(5))
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ConsoleCommand::parse("").is_err());
        assert!(ConsoleCommand::parse("FROB 1").is_err());
        assert!(ConsoleCommand::parse("EXAMINE xyz").is_err());
        assert!(ConsoleCommand::parse("EXAMINE /R 16").is_err());
        assert!(ConsoleCommand::parse("DEPOSIT 100").is_err());
        assert!(ConsoleCommand::parse("EXAMINED 100").is_err(), "over-long");
    }

    #[test]
    fn examine_deposit_boot_halt_continue_cycle() {
        let mut mon = Monitor::new(MonitorConfig::default());
        let vm = mon.create_vm("c", VmConfig::default());
        // DEPOSIT a HALT instruction, BOOT to it, observe the halt.
        mon.console_command(vm, "DEPOSIT 1000 00000000").unwrap(); // HALT opcode
        let r = mon.console_command(vm, "EXAMINE 1000").unwrap();
        assert!(r.ends_with("00000000"), "{r}");
        mon.console_command(vm, "BOOT 1000").unwrap();
        mon.run(100_000);
        assert_eq!(mon.vm(vm).state, VmState::ConsoleHalt);
        let r = mon.console_command(vm, "CONTINUE").unwrap();
        assert_eq!(r, "%CONT-I-RESUMED");
        assert_eq!(mon.vm(vm).state, VmState::Ready);
        let r = mon.console_command(vm, "EXAMINE /R 15").unwrap();
        assert!(r.starts_with("R15"), "{r}");
    }

    #[test]
    fn bad_addresses_are_reported() {
        let mut mon = Monitor::new(MonitorConfig::default());
        let vm = mon.create_vm("c", VmConfig::default());
        assert!(matches!(
            mon.console_command(vm, "EXAMINE FFFFFFF0"),
            Err(ConsoleError::BadAddress(_))
        ));
        assert!(matches!(
            mon.console_command(vm, "BOOT FFFFFFF0"),
            Err(ConsoleError::BadAddress(_))
        ));
        // A longword deposit at the last byte of memory: the first byte is
        // in range (so a first-byte-only check passes) but bytes 1..4 are
        // not. This used to panic inside vm_write_phys.
        let last = mon.vm(vm).mem_bytes() - 1;
        assert!(matches!(
            mon.console_command(vm, &format!("DEPOSIT {last:X} 12345678")),
            Err(ConsoleError::BadAddress(_))
        ));
        let e = ConsoleError::BadAddress(0x10);
        assert!(!e.to_string().is_empty());
    }
}
