//! The virtual machine monitor proper: VM creation, the dispatch loop,
//! world switching, and scheduling (round-robin with a WAIT handshake,
//! paper §5).

use crate::cost::VmmCosts;
use crate::fault::VmmError;
use crate::layout::FrameAllocator;
use crate::shadow::{ShadowConfig, ShadowSet};
use crate::vm::{DirtyStrategy, IoStrategy, VirtualIrq, VirtualTimer, Vm, VmState, VmStats};
use std::collections::VecDeque;
use vax_arch::{AccessMode, Exception, MachineVariant, Opcode, Psl, ScbVector, VmPsl};
use vax_cpu::{ExecTier, Machine, StepEvent, VmExit, IO_BASE_PA};
use vax_obs::{ExitCause, Histogram, Metrics, Obs, ObsSink};

/// Identifies a VM within a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmId(pub(crate) usize);

/// Maps a virtual access mode to the real mode it executes in — the
/// paper's Figure 3. Virtual kernel and executive both map to real
/// executive; real kernel is reserved to the VMM.
pub fn compress_mode(virtual_mode: AccessMode) -> AccessMode {
    match virtual_mode {
        AccessMode::Kernel | AccessMode::Executive => AccessMode::Executive,
        other => other,
    }
}

/// Per-VM creation parameters.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Memory size in pages.
    pub mem_pages: u32,
    /// Shadow-table configuration (cache slots = the §7.2 knob).
    pub shadow: ShadowConfig,
    /// I/O virtualization strategy.
    pub io_strategy: IoStrategy,
    /// Dirty-bit strategy.
    pub dirty_strategy: DirtyStrategy,
    /// Virtual disk size in sectors.
    pub vdisk_sectors: u32,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            mem_pages: 512, // 256 KiB
            shadow: ShadowConfig::default(),
            io_strategy: IoStrategy::StartIo,
            dirty_strategy: DirtyStrategy::ModifyFault,
            vdisk_sectors: 64,
        }
    }
}

/// Monitor-wide configuration.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Real machine memory in bytes.
    pub mem_bytes: u32,
    /// Scheduling quantum in cycles.
    pub quantum: u64,
    /// WAIT timeout in cycles (paper §5 footnote: WAIT "times out after
    /// some seconds, so every VM runs periodically").
    pub wait_timeout: u64,
    /// Virtual disk latency in cycles.
    pub vdisk_latency: u64,
    /// VMM software path costs.
    pub costs: VmmCosts,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            mem_bytes: 8 * 1024 * 1024,
            quantum: 50_000,
            wait_timeout: 200_000,
            vdisk_latency: 2_000,
            costs: VmmCosts::default(),
        }
    }
}

pub(crate) struct VmSlot {
    pub vm: Vm,
    pub shadow: ShadowSet,
}

/// The monitor-level scheduler and accounting state a snapshot must
/// carry: which VM's context the machine registers currently hold (the
/// round-robin scan restarts after it, so losing it would diverge the
/// schedule), plus the VMM's own accounting cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerState {
    /// Index of the VM whose context was last loaded, if any.
    pub current: Option<usize>,
    /// Cycles spent in VMM emulation paths.
    pub vmm_cycles: u64,
    /// VM-to-VM world switches performed.
    pub world_switches: u64,
}

/// Why [`Monitor::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The cycle budget was consumed.
    BudgetExhausted,
    /// Every VM is halted at its virtual console.
    AllHalted,
}

/// The VAX security-kernel VMM.
///
/// Owns one modified-VAX [`Machine`] and any number of VMs. Real kernel
/// mode is reserved to the VMM (here: host code); VMs execute in the
/// outer three modes under ring compression.
///
/// # Example
///
/// See the crate-level documentation for a complete boot example.
pub struct Monitor {
    pub(crate) machine: Machine,
    pub(crate) vms: Vec<VmSlot>,
    pub(crate) current: Option<usize>,
    pub(crate) config: MonitorConfig,
    pub(crate) falloc: FrameAllocator,
    pub(crate) next_io_base: u32,
    /// Maps real device vectors to (vm index, guest vector).
    pub(crate) real_vector_owner: Vec<(u16, usize, u16)>,
    pub(crate) vmm_cycles: u64,
    pub(crate) world_switches: u64,
    /// Exit-reason tracing sink. `Off` by default; every call through it
    /// is then a no-op, so the dispatch loop pays nothing. It only ever
    /// *reads* the machine clock — enabling it must not change cycles or
    /// counters (enforced by the equivalence tests).
    pub(crate) obs: ObsSink,
}

impl Monitor {
    /// Creates a monitor on a modified VAX with the given configuration.
    pub fn new(config: MonitorConfig) -> Monitor {
        let machine = Machine::new(MachineVariant::Modified, config.mem_bytes);
        let total_frames = config.mem_bytes / 512;
        Monitor {
            machine,
            vms: Vec::new(),
            current: None,
            config,
            // Frame 0 is left unused so a zero PFN is never handed out.
            falloc: FrameAllocator::new(1, total_frames),
            next_io_base: IO_BASE_PA,
            real_vector_owner: Vec::new(),
            vmm_cycles: 0,
            world_switches: 0,
            obs: ObsSink::off(),
        }
    }

    /// Real frames [`Monitor::create_vm`] would consume for `config`:
    /// the VM's memory block, its real SPT, and the shadow process-table
    /// cache. Admission control for snapshot restore — `create_vm`
    /// itself panics when real memory runs out (fixed allocation, no
    /// paging), so untrusted reconstruction must check first against
    /// [`Monitor::frames_remaining`].
    pub fn admission_frames(config: &VmConfig) -> u64 {
        let per_slot = u64::from(crate::layout::table_frames(config.shadow.p0_capacity))
            + u64::from(crate::layout::table_frames(config.shadow.p1_capacity));
        let vmm_region_pages = config.shadow.cache_slots as u64 * per_slot;
        let spt_entries = u64::from(config.shadow.s_capacity) + vmm_region_pages;
        let spt_frames = u64::from(crate::layout::table_frames(
            u32::try_from(spt_entries).unwrap_or(u32::MAX),
        ));
        u64::from(config.mem_pages) + spt_frames + vmm_region_pages
    }

    /// Real frames still unallocated on this monitor.
    pub fn frames_remaining(&self) -> u32 {
        self.falloc.remaining()
    }

    /// Creates a VM. Its memory is a fixed contiguous block of real
    /// memory presented as guest-physical pages `0..mem_pages` (paper §4).
    pub fn create_vm(&mut self, name: &str, config: VmConfig) -> VmId {
        let base = self.falloc.alloc(config.mem_pages);
        let shadow = ShadowSet::new(&mut self.machine, &mut self.falloc, config.shadow);
        let mut vm = Vm {
            name: name.to_string(),
            mem_base_pfn: base,
            mem_pages: config.mem_pages,
            regs: [0; 16],
            psl_flags: Psl::new(),
            vmpsl: VmPsl::new(AccessMode::Kernel, AccessMode::Kernel).with_ipl(31),
            vsp: [0; 4],
            vsp_is: 0,
            v_is: false,
            guest_scbb: 0,
            guest_pcbb: 0,
            guest_sbr: 0,
            guest_slr: 0,
            guest_p0br: 0,
            guest_p0lr: 0,
            guest_p1br: 0,
            guest_p1lr: 0,
            guest_mapen: false,
            guest_astlvl: 4,
            guest_sisr: 0,
            guest_todr: 0,
            vtimer: VirtualTimer::default(),
            console_out: Vec::new(),
            vmm_log: Vec::new(),
            console_in: VecDeque::new(),
            vdisk: vec![[0; 512]; config.vdisk_sectors as usize],
            vdisk_pending: None,
            uptime_cell: None,
            real_io_base: None,
            io_strategy: config.io_strategy,
            dirty_strategy: config.dirty_strategy,
            state: VmState::ConsoleHalt, // boots via the virtual console
            halt_reason: None,
            pending_virqs: Vec::new(),
            uptime_ticks: 0,
            stats: VmStats::default(),
        };
        if config.io_strategy == IoStrategy::EmulatedMmio {
            let base_pa = self.next_io_base;
            self.next_io_base += 4096;
            let vector = (ScbVector::Device0.offset() + 4 * self.vms.len() as u32) as u16;
            let disk =
                vax_dev::SimDisk::new(config.vdisk_sectors, self.config.vdisk_latency, 21, vector);
            self.machine.bus_mut().attach(base_pa, 4096, Box::new(disk));
            vm.real_io_base = Some(base_pa);
            self.real_vector_owner.push((
                vector,
                self.vms.len(),
                ScbVector::Device0.offset() as u16,
            ));
        }
        self.vms.push(VmSlot { vm, shadow });
        VmId(self.vms.len() - 1)
    }

    /// The underlying machine (for inspection).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying machine, mutable (loaders, tests).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// A VM's state (for inspection).
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.0].vm
    }

    /// A VM's state, mutable (console input injection, tests).
    pub fn vm_mut(&mut self, id: VmId) -> &mut Vm {
        &mut self.vms[id.0].vm
    }

    /// A VM's statistics.
    pub fn vm_stats(&self, id: VmId) -> VmStats {
        self.vms[id.0].vm.stats
    }

    /// Number of VMs created on this monitor.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Ids of every VM on this monitor, in creation order.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vms.len()).map(VmId)
    }

    /// The configuration this monitor was created with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// A VM's shadow-table state (snapshot capture, inspection).
    pub fn shadow(&self, id: VmId) -> &ShadowSet {
        &self.vms[id.0].shadow
    }

    /// A VM's shadow-table state, mutable (snapshot restore).
    pub fn shadow_mut(&mut self, id: VmId) -> &mut ShadowSet {
        &mut self.vms[id.0].shadow
    }

    /// Captures the scheduler/accounting state for a snapshot.
    pub fn scheduler_state(&self) -> SchedulerState {
        SchedulerState {
            current: self.current,
            vmm_cycles: self.vmm_cycles,
            world_switches: self.world_switches,
        }
    }

    /// Reinstates scheduler/accounting state captured by
    /// [`Monitor::scheduler_state`].
    ///
    /// # Panics
    ///
    /// Panics if `current` names a VM this monitor does not have;
    /// snapshot loaders validate first.
    pub fn set_scheduler_state(&mut self, state: SchedulerState) {
        if let Some(idx) = state.current {
            assert!(idx < self.vms.len(), "current VM index out of range");
        }
        self.current = state.current;
        self.vmm_cycles = state.vmm_cycles;
        self.world_switches = state.world_switches;
    }

    /// Cycles spent in VMM emulation paths so far.
    pub fn vmm_cycles(&self) -> u64 {
        self.vmm_cycles
    }

    /// VM-to-VM world switches performed so far.
    pub fn world_switches(&self) -> u64 {
        self.world_switches
    }

    /// Enables exit-reason tracing with a trace ring of `ring_capacity`
    /// records. Any previously collected observations are discarded.
    pub fn enable_obs(&mut self, ring_capacity: usize) {
        self.obs = ObsSink::on(ring_capacity);
    }

    /// Disables exit-reason tracing, discarding collected observations.
    pub fn disable_obs(&mut self) {
        self.obs = ObsSink::off();
    }

    /// Enables cycle-attributed guest profiling on this monitor's
    /// machine, sampling every `sample_interval` simulated cycles, plus
    /// working-set write tracking and per-superblock introspection.
    /// Non-perturbing: guest state, cycles, and counters are
    /// bit-identical with profiling on or off.
    pub fn enable_profiling(&mut self, sample_interval: u64) {
        self.machine.enable_profiling(sample_interval);
    }

    /// Disables profiling, discarding collected profiles.
    pub fn disable_profiling(&mut self) {
        self.machine.disable_profiling();
    }

    /// The profiler state, when profiling is enabled.
    pub fn prof(&self) -> Option<&vax_obs::Prof> {
        self.machine.prof()
    }

    /// Enables working-set write tracking on this monitor's machine
    /// without the profiler — the seam incremental (delta) snapshots
    /// and pre-copy migration build on. Idempotent on an
    /// already-tracking machine; re-enabling after a disable starts
    /// from a clean bitmap.
    pub fn enable_dirty_tracking(&mut self) {
        self.machine.enable_write_tracking();
    }

    /// Disables write tracking, discarding the dirty/touched bitmaps.
    /// No-op while the profiler is active (the profiler owns tracking
    /// for its working-set telemetry).
    pub fn disable_dirty_tracking(&mut self) {
        if self.machine.prof().is_none() {
            self.machine.disable_write_tracking();
        }
    }

    /// Whether write tracking is currently enabled.
    pub fn dirty_tracking_enabled(&self) -> bool {
        self.machine.write_tracking_enabled()
    }

    /// Selects the execution tier for this monitor's real machine.
    /// Deterministically invisible: guests produce bit-identical state,
    /// cycles, and counters under every tier (enforced by the three-way
    /// equivalence fuzzers).
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.machine.set_exec_tier(tier);
    }

    /// The currently selected execution tier.
    pub fn exec_tier(&self) -> ExecTier {
        self.machine.exec_tier()
    }

    /// The collected observations, if tracing is enabled.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.state()
    }

    /// Snapshots every counter the monitor can see — architectural
    /// counters, VMM accounting, decode-cache statistics — plus the
    /// per-cause exit-cost histograms when tracing is enabled, into a
    /// [`Metrics`] registry ready for JSON or Prometheus exposition.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        let c = self.machine.counters();
        for (name, v) in c.named() {
            m.counter(name, v);
        }
        m.counter("vm_exits", c.vm_exits());
        m.counter("cycles", self.machine.cycles());
        m.counter("vmm_cycles", self.vmm_cycles);
        m.counter("world_switches", self.world_switches);
        let dc = self.machine.decode_cache_stats();
        m.counter("decode_cache_hits", dc.hits);
        m.counter("decode_cache_misses", dc.misses);
        m.counter("decode_cache_bytewise_fallbacks", dc.bytewise_fallbacks);
        m.counter("decode_cache_invalidations", dc.invalidations);
        m.gauge("decode_cache_hit_rate", dc.hit_rate());
        let ts = self.machine.trans_stats();
        m.counter("trans_blocks_translated", ts.blocks_translated);
        m.counter("trans_blocks_executed", ts.blocks_executed);
        m.counter("trans_uops_executed", ts.uops_executed);
        m.counter("trans_side_exit_interrupt", ts.side_exit_interrupt);
        m.counter("trans_side_exit_bail", ts.side_exit_bail);
        m.counter("trans_side_exit_smc", ts.side_exit_smc);
        m.counter("trans_side_exit_tlb_miss", ts.side_exit_tlb_miss);
        m.counter("trans_side_exit_prot", ts.side_exit_prot);
        m.counter("trans_side_exit_modify", ts.side_exit_modify);
        m.counter("trans_side_exit_page_cross", ts.side_exit_page_cross);
        m.counter("trans_side_exit_io", ts.side_exit_io);
        m.counter("trans_chain_hits", ts.chain_hits);
        m.counter("trans_chain_links_severed", ts.chain_links_severed);
        m.counter("trans_invalidations", ts.invalidations);
        if ts.blocks_translated > 0 {
            let mut h = Histogram::new();
            for (len, n) in ts.len_hist.iter().enumerate() {
                h.record_n(len as u64, *n);
            }
            m.histogram("superblock_length", &h);
        }
        let (evictions, invalidations) = self.vms.iter().fold((0, 0), |(e, i), s| {
            (e + s.shadow.evictions(), i + s.shadow.invalidations())
        });
        m.counter("shadow_slot_evictions", evictions);
        m.counter("shadow_invalidations", invalidations);
        let (machine_checks, security_halts) = self.vms.iter().fold((0, 0), |(mc, sh), s| {
            (
                mc + s.vm.stats.machine_checks,
                sh + u64::from(s.vm.halt_reason.is_some()),
            )
        });
        m.counter("reflected_machine_checks", machine_checks);
        m.counter("security_halts", security_halts);
        let (modify_faults, dirty_upgrades) = self.vms.iter().fold((0, 0), |(mf, du), s| {
            (
                mf + s.vm.stats.modify_faults,
                du + s.vm.stats.dirty_upgrades,
            )
        });
        m.counter("modify_faults", modify_faults);
        m.counter("dirty_upgrades", dirty_upgrades);
        m.gauge("tlb_hit_rate", c.tlb_hit_rate_opt());
        let mem = self.machine.mem();
        if mem.write_tracking_enabled() {
            // Levels, not counters: a `take_dirty_pages` drain (delta
            // snapshot, pre-copy round) drops them back toward zero, so
            // summing successive scrapes — what counter merge does —
            // double-counts and moves backwards. Only the event count
            // is monotonic.
            m.gauge("dirty_pages", Some(f64::from(mem.dirty_page_count())));
            m.gauge("touched_pages", Some(f64::from(mem.touched_page_count())));
            m.counter("dirty_page_events", mem.dirty_page_events());
        }
        if let Some(obs) = self.obs.state() {
            m.counter("trace_records", obs.trace().total());
            m.counter("trace_records_dropped", obs.trace().dropped());
            for cause in ExitCause::ALL {
                let h = obs.histogram(cause);
                if h.count() > 0 {
                    m.histogram(&format!("exit_cost_{}", cause.name()), h);
                }
            }
        }
        if let Some(p) = self.machine.prof() {
            self.profile_metrics(&mut m, p);
        }
        m
    }

    /// The profiler's families: per-tier attribution counters, page-level
    /// cycle and dirty-rate histograms, working-set counts, and the
    /// per-superblock introspection. All counters/histograms, so
    /// [`Metrics::merge`] produces correct fleet-wide profiles.
    fn profile_metrics(&self, m: &mut Metrics, p: &vax_obs::Prof) {
        m.counter("profile_samples", p.samples());
        m.counter("profile_overflow_cycles", p.overflow_cycles());
        m.counter("profile_events_dropped", p.events_dropped());
        for tier in vax_obs::ProfTier::ALL {
            m.counter(
                &format!("profile_instructions_{}", tier.name()),
                p.retired(tier),
            );
            m.counter(
                &format!("profile_cycles_{}", tier.name()),
                p.attributed(tier),
            );
        }
        if p.dirty_rate().count() > 0 {
            m.histogram("profile_dirty_rate", p.dirty_rate());
        }
        let pages = p.page_buckets();
        if !pages.is_empty() {
            let mut h = Histogram::new();
            for (_, cycles) in &pages {
                h.record(*cycles);
            }
            m.histogram("profile_page_cycles", &h);
        }
        let blocks = self.machine.superblock_profiles();
        if !blocks.is_empty() {
            m.counter("hot_superblocks", blocks.len() as u64);
            let mut cyc = Histogram::new();
            let mut execs = Histogram::new();
            for b in &blocks {
                cyc.record(b.cycles_retired);
                execs.record(b.executions);
            }
            m.histogram("superblock_cycles_retired", &cyc);
            m.histogram("superblock_executions", &execs);
        }
    }

    /// Coarse exit classification from the exit packet alone. Handlers
    /// refine it once they know more (MTPR target register, whether a
    /// translation fault is a shadow fill, MMIO, or the guest's own
    /// fault) via [`ObsSink::refine`]. Returns the cause and, for
    /// emulation traps, the trapping instruction's PC.
    fn classify_exit(exit: &VmExit) -> (ExitCause, Option<u32>) {
        match exit {
            VmExit::Emulation(info) => {
                let cause = match info.opcode {
                    Opcode::Chmk | Opcode::Chme | Opcode::Chms | Opcode::Chmu => ExitCause::EmulChm,
                    Opcode::Rei => ExitCause::EmulRei,
                    // Refined to EmulMtprIpl once the register number is
                    // decoded in emulate_mtpr.
                    Opcode::Mtpr => ExitCause::EmulMtprOther,
                    Opcode::Mfpr => ExitCause::EmulMfpr,
                    Opcode::Ldpctx => ExitCause::EmulLdpctx,
                    Opcode::Svpctx => ExitCause::EmulSvpctx,
                    Opcode::Prober | Opcode::Probew => ExitCause::EmulProbe,
                    Opcode::Wait => ExitCause::EmulWait,
                    Opcode::Halt => ExitCause::EmulHalt,
                    _ => ExitCause::EmulOther,
                };
                (cause, Some(info.pc))
            }
            VmExit::Exception(e) => {
                let cause = match e {
                    // Refined to MmioEmulation / GuestPageFault in
                    // handle_exception once the shadow has been consulted.
                    Exception::TranslationNotValid { .. } => ExitCause::ShadowFill,
                    Exception::ModifyFault { .. } => ExitCause::ModifyFault,
                    _ => ExitCause::ExceptionExit,
                };
                (cause, None)
            }
            VmExit::Interrupt { .. } => (ExitCause::InterruptExit, None),
        }
    }

    /// Charges VMM path cycles against the machine clock and the current
    /// VM's account.
    pub(crate) fn charge(&mut self, cycles: u64) {
        self.machine.add_cycles(cycles);
        self.vmm_cycles += cycles;
        if let Some(i) = self.current {
            self.vms[i].vm.stats.vmm_cycles += cycles;
        }
    }

    // ---- guest-physical access (loaders, console, KCALL) ----

    /// Writes bytes into a VM's guest-physical memory.
    ///
    /// # Errors
    ///
    /// [`VmmError::GuestRange`] if the range exceeds the VM's memory.
    /// (Before the DESIGN.md §11 fault-containment change this API
    /// panicked instead; callers that load trusted images can
    /// `.expect(...)` the result to keep the old behavior.)
    pub fn vm_write_phys(&mut self, id: VmId, gpa: u32, data: &[u8]) -> Result<(), VmmError> {
        let len =
            u32::try_from(data.len()).map_err(|_| VmmError::GuestRange { gpa, len: u32::MAX })?;
        let pa = self.vms[id.0]
            .vm
            .gpa_to_pa_len(gpa, len)
            .ok_or(VmmError::GuestRange { gpa, len })?;
        self.machine
            .mem_mut()
            .write_slice(pa, data)
            .map_err(|_| VmmError::GuestRange { gpa, len })
    }

    /// Reads a longword from guest-physical memory. The whole longword
    /// must lie inside the VM's memory.
    pub fn vm_read_phys_u32(&self, id: VmId, gpa: u32) -> Option<u32> {
        let pa = self.vms[id.0].vm.gpa_to_pa_len(gpa, 4)?;
        self.machine.mem().read_u32(pa).ok()
    }

    /// Loads a sector image into a VM's virtual disk.
    ///
    /// # Errors
    ///
    /// [`VmmError::DiskSector`] for a sector beyond the disk,
    /// [`VmmError::DiskBuffer`] for a buffer longer than a 512-byte
    /// sector, and [`VmmError::Mmio`] if the EmulatedMmio device is
    /// missing or rejects the CSR sequence. (This API previously panicked
    /// on out-of-range sectors and oversized buffers.)
    pub fn vm_load_disk(&mut self, id: VmId, sector: u32, data: &[u8]) -> Result<(), VmmError> {
        if data.len() > 512 {
            return Err(VmmError::DiskBuffer { len: data.len() });
        }
        let vm = &mut self.vms[id.0].vm;
        let capacity = vm.vdisk.len() as u32;
        if sector >= capacity {
            return Err(VmmError::DiskSector { sector, capacity });
        }
        match vm.io_strategy {
            IoStrategy::StartIo => {
                let s = &mut vm.vdisk[sector as usize];
                s[..data.len()].copy_from_slice(data);
            }
            IoStrategy::EmulatedMmio => {
                let base = vm.real_io_base.ok_or(VmmError::Mmio {
                    what: "no real device attached",
                })?;
                // Reach the device through its CSRs: simplest is to poke
                // the backing store via a write sequence.
                let bad_csr = VmmError::Mmio {
                    what: "device rejected CSR write",
                };
                let mut sectorbuf = [0u8; 512];
                sectorbuf[..data.len()].copy_from_slice(data);
                self.machine
                    .bus_mut()
                    .write(base + 4, sector)
                    .map_err(|_| bad_csr)?;
                for chunk in sectorbuf.chunks(4) {
                    let mut word = [0u8; 4];
                    word.copy_from_slice(chunk);
                    self.machine
                        .bus_mut()
                        .write(base + 8, u32::from_le_bytes(word))
                        .map_err(|_| bad_csr)?;
                }
                self.machine
                    .bus_mut()
                    .write(base, crate::io::disk_write_cmd())
                    .map_err(|_| bad_csr)?;
                // Complete it immediately (host-side load).
                let now = self.machine.cycles() + self.config.vdisk_latency + 1;
                let _ = self.machine.bus_mut().tick(now);
            }
        }
        Ok(())
    }

    /// Boots a VM: sets its virtual CPU to the architectural boot state
    /// (kernel mode, IPL 31, translation off) with the PC at `entry`
    /// (a guest-physical address) and marks it runnable — the virtual
    /// console's BOOT command.
    pub fn boot_vm(&mut self, id: VmId, entry: u32) {
        let vm = &mut self.vms[id.0].vm;
        vm.regs = [0; 16];
        vm.regs[15] = entry;
        vm.vmpsl = VmPsl::new(AccessMode::Kernel, AccessMode::Kernel).with_ipl(31);
        vm.v_is = false;
        vm.psl_flags = Psl::new();
        vm.guest_mapen = false;
        vm.state = VmState::Ready;
        vm.halt_reason = None;
    }

    /// The virtual console HALT command.
    pub fn halt_vm(&mut self, id: VmId) {
        self.vms[id.0].vm.state = VmState::ConsoleHalt;
    }

    /// The virtual console CONTINUE command.
    pub fn continue_vm(&mut self, id: VmId) {
        if self.vms[id.0].vm.state == VmState::ConsoleHalt {
            self.vms[id.0].vm.state = VmState::Ready;
        }
    }

    /// Drains a VM's virtual console output.
    pub fn vm_console_output(&mut self, id: VmId) -> Vec<u8> {
        std::mem::take(&mut self.vms[id.0].vm.console_out)
    }

    // ---- scheduling ----

    fn runnable(&mut self) -> Option<usize> {
        let now = self.machine.cycles();
        let n = self.vms.len();
        if n == 0 {
            return None;
        }
        let start = self.current.map_or(0, |c| (c + 1) % n);
        for off in 0..n {
            let i = (start + off) % n;
            let vm = &mut self.vms[i].vm;
            match vm.state {
                VmState::Ready => return Some(i),
                VmState::Idle { until } => {
                    if vm.has_wake_event() || now >= until {
                        vm.state = VmState::Ready;
                        return Some(i);
                    }
                }
                VmState::ConsoleHalt => {}
            }
        }
        None
    }

    /// Earliest future event that could make an idle VM runnable.
    fn next_wake(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for slot in &self.vms {
            if let VmState::Idle { until } = slot.vm.state {
                best = Some(best.map_or(until, |b: u64| b.min(until)));
            }
            if let Some((at, _, _)) = slot.vm.vdisk_pending {
                best = Some(best.map_or(at, |b: u64| b.min(at)));
            }
        }
        best
    }

    fn world_save(&mut self, idx: usize) {
        let vm = &mut self.vms[idx].vm;
        for i in 0..16 {
            vm.regs[i] = self.machine.reg(i);
        }
        vm.psl_flags = self.machine.psl();
    }

    fn world_load(&mut self, idx: usize) {
        let (sbr, slr, p0br, p0lr, p1br, p1lr) = {
            let slot = &self.vms[idx];
            slot.shadow.real_mmu_bases(&slot.vm)
        };
        let vm = &self.vms[idx].vm;
        let mut psl = Psl::new();
        psl.set_cur_mode(compress_mode(vm.vmpsl.cur_mode()));
        psl.set_prv_mode(compress_mode(vm.vmpsl.prv_mode()));
        for flag in [Psl::C, Psl::V, Psl::Z, Psl::N, Psl::T, Psl::IV] {
            psl.set_flag(flag, vm.psl_flags.flag(flag));
        }
        let regs = vm.regs;
        self.machine.set_psl(psl);
        for (i, r) in regs.iter().enumerate() {
            self.machine.set_reg(i, *r);
        }
        let mmu = self.machine.mmu_mut();
        mmu.set_sbr(sbr);
        mmu.set_slr(slr);
        mmu.set_p0br(p0br);
        mmu.set_p0lr(p0lr);
        mmu.set_p1br(p1br);
        mmu.set_p1lr(p1lr);
        mmu.set_mapen(true);
        mmu.tlb_mut().invalidate_all();
        // World switches rewrite the whole MMU outside write_ipr, so the
        // machine's own decode-cache hooks never see them.
        self.machine.invalidate_decode_cache();
    }

    /// Refreshes the real MMU base registers after an emulation changed
    /// the guest's memory-management state.
    pub(crate) fn refresh_mmu(&mut self, idx: usize) {
        let (sbr, slr, p0br, p0lr, p1br, p1lr) = {
            let slot = &self.vms[idx];
            slot.shadow.real_mmu_bases(&slot.vm)
        };
        let mmu = self.machine.mmu_mut();
        mmu.set_sbr(sbr);
        mmu.set_slr(slr);
        mmu.set_p0br(p0br);
        mmu.set_p0lr(p0lr);
        mmu.set_p1br(p1br);
        mmu.set_p1lr(p1lr);
    }

    fn resume(&mut self, idx: usize) {
        let vmpsl = self.vms[idx].vm.vmpsl;
        self.machine.enter_vm(vmpsl);
    }

    /// Refreshes the uptime cell the guest registered (paper §5, "Time").
    fn publish_uptime(&mut self, idx: usize) {
        let vm = &self.vms[idx].vm;
        if let Some(cell) = vm.uptime_cell {
            let ticks = (self.machine.cycles() / 10_000) as u32;
            if let Some(pa) = vm.gpa_to_pa_len(cell, 4) {
                let _ = self.machine.mem_mut().write_u32(pa, ticks);
            }
        }
    }

    /// Completes a due virtual disk operation, if any.
    fn complete_vdisk(&mut self, idx: usize) {
        let now = self.machine.cycles();
        let due = match self.vms[idx].vm.vdisk_pending {
            Some((at, irq, status_gpa)) if now >= at => Some((irq, status_gpa)),
            _ => None,
        };
        if let Some((irq, status_gpa)) = due {
            self.vms[idx].vm.vdisk_pending = None;
            if let Some(pa) = self.vms[idx].vm.gpa_to_pa_len(status_gpa, 4) {
                let _ = self.machine.mem_mut().write_u32(pa, 1);
            }
            self.vms[idx].vm.pend_virq(irq);
        }
    }

    /// Runs VMs until `budget` machine cycles have elapsed or every VM
    /// has halted.
    pub fn run(&mut self, budget: u64) -> RunExit {
        let deadline = self.machine.cycles() + budget;
        loop {
            if self.machine.cycles() >= deadline {
                return RunExit::BudgetExhausted;
            }
            for i in 0..self.vms.len() {
                self.complete_vdisk(i);
            }
            let Some(idx) = self.runnable() else {
                // Nothing runnable: advance time to the next wake event.
                match self.next_wake() {
                    Some(at) if at < deadline => {
                        let now = self.machine.cycles();
                        self.machine.add_cycles(at.saturating_sub(now).max(1));
                        continue;
                    }
                    _ => {
                        return if self.vms.iter().all(|s| s.vm.state == VmState::ConsoleHalt) {
                            RunExit::AllHalted
                        } else {
                            RunExit::BudgetExhausted
                        };
                    }
                }
            };

            // World switch if needed.
            if self.current != Some(idx) {
                if let Some(prev) = self.current {
                    self.world_save(prev);
                }
                let switch_start = self.machine.cycles();
                self.world_load(idx);
                self.charge(self.config.costs.world_switch);
                self.world_switches += 1;
                self.current = Some(idx);
                if self.obs.is_on() {
                    let (pc, ring) = {
                        let vm = &self.vms[idx].vm;
                        (vm.regs[15], vm.vmpsl.cur_mode().bits() as u8)
                    };
                    self.obs
                        .exit_begin(ExitCause::WorldSwitch, pc, ring, switch_start);
                    self.obs.exit_end(self.machine.cycles());
                }
            }
            self.publish_uptime(idx);

            let slice_start = self.machine.cycles();
            let slice_end = (slice_start + self.config.quantum).min(deadline);
            self.resume(idx);
            let mut reschedule = false;
            let mut timer_mark = slice_start;
            while !reschedule && self.machine.cycles() < slice_end {
                // Complete due virtual disk I/O so polling guests make
                // progress within their slice.
                self.complete_vdisk(idx);
                // Advance the VM's interval clock by the cycles it just
                // consumed — it runs only while the VM runs (paper §5).
                let now = self.machine.cycles();
                if self.vms[idx].vm.vtimer.advance(now - timer_mark) {
                    self.vms[idx].vm.pend_virq(VirtualIrq {
                        ipl: 24,
                        vector: ScbVector::IntervalTimer.offset() as u16,
                    });
                    self.vms[idx].vm.uptime_ticks = self.vms[idx].vm.uptime_ticks.wrapping_add(1);
                }
                timer_mark = now;
                // Virtual interrupt delivery point.
                if let Some(irq) = self.vms[idx].vm.deliverable_virq() {
                    self.deliver_virq(idx, irq);
                }
                match self.machine.step() {
                    StepEvent::Ok => {}
                    StepEvent::Halted(_) => {
                        // Double faults at machine level cannot happen in
                        // VM mode; contain defensively with the reason
                        // recorded.
                        self.security_halt(
                            idx,
                            VmmError::Internal {
                                what: "real machine halt in VM mode",
                            },
                        );
                        reschedule = true;
                    }
                    StepEvent::VmExit(exit) => {
                        if self.obs.is_on() {
                            let (cause, trap_pc) = Self::classify_exit(&exit);
                            let pc = trap_pc.unwrap_or_else(|| self.machine.pc());
                            let ring = self.vms[idx].vm.vmpsl.cur_mode().bits() as u8;
                            // The stamp predates the microcode's trap-entry
                            // charge, so the cost histogram covers the full
                            // exit-to-resume path, hardware half included.
                            self.obs
                                .exit_begin(cause, pc, ring, self.machine.last_exit_cycles());
                        }
                        reschedule = !self.handle_exit(idx, exit);
                        self.obs.exit_end(self.machine.cycles());
                        if !reschedule {
                            self.resume(idx);
                        }
                    }
                }
            }
            // Stop the VM clock: save context, advance its virtual timer
            // by the cycles it consumed.
            let ran = self.machine.cycles() - slice_start;
            {
                let vm = &mut self.vms[idx].vm;
                vm.stats.cycles_run += ran;
            }
            // Leave VM mode while the VMM deliberates.
            if self.machine.in_vm() {
                let mut psl = self.machine.psl();
                psl.set_vm(false);
                self.machine.set_psl(psl);
            }
            self.world_save(idx);
        }
    }
}
