#![warn(missing_docs)]
// Fault containment (DESIGN.md §11): no guest-reachable path through this
// crate may panic the host. CI runs clippy with `-D warnings`, so outside
// of tests any unwrap/expect needs an `#[allow]` with a justification.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! The VAX security-kernel virtual machine monitor — the primary
//! contribution of *Virtualizing the VAX Architecture* (ISCA 1991).
//!
//! The [`Monitor`] runs any number of virtual VAX machines on one
//! modified-VAX [`vax_cpu::Machine`]:
//!
//! * **Execution ring compression** (§4.2): real kernel mode is reserved
//!   to the VMM; virtual kernel and executive both execute in real
//!   executive mode. CHMx and REI trap for emulation; MOVPSL is merged in
//!   microcode; the VM always perceives four modes.
//! * **Memory ring compression** (§4.3): shadow page tables with the
//!   null-PTE on-demand fill, protection-code compression
//!   ([`vax_arch::Protection::ring_compressed`]), the modify fault, and
//!   the §7.2 multi-process shadow-table cache.
//! * **Virtual I/O** (§4.4.3): a start-I/O `KCALL` register (plus the
//!   memory-mapped-emulation ablation), `MEMSIZE`, `IORESET`, a virtual
//!   interval timer that runs only while the VM runs, the WAIT idle
//!   handshake, and a virtual console subset (BOOT/HALT/CONTINUE/
//!   EXAMINE/DEPOSIT).
//!
//! # Example
//!
//! Boot a tiny guest that writes to the console TXDB register and halts:
//!
//! ```
//! use vax_vmm::{Monitor, MonitorConfig, VmConfig};
//!
//! let program = vax_asm::assemble_text("
//!         mtpr #72, #35      ; TXDB <- 'H'
//!         mtpr #105, #35     ; TXDB <- 'i'
//!         halt
//! ", 0x1000)?;
//!
//! let mut monitor = Monitor::new(MonitorConfig::default());
//! let vm = monitor.create_vm("guest", VmConfig::default());
//! monitor.vm_write_phys(vm, 0x1000, &program.bytes)?;
//! monitor.boot_vm(vm, 0x1000);
//! monitor.run(1_000_000);
//! let out = monitor.vm_console_output(vm);
//! assert!(out.starts_with(b"Hi"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod console;
pub mod cost;
pub mod emulate;
pub mod fault;
pub mod fleet;
pub mod io;
pub mod layout;
pub mod monitor;
pub mod shadow;
pub mod vm;

pub use console::{ConsoleCommand, ConsoleError};
pub use cost::VmmCosts;
pub use fault::{intern_diagnostic, mck, Containment, VmmError, KNOWN_DIAGNOSTICS};
pub use fleet::{Fleet, FleetReport, LiveMigration, MonitorOutcome, VmOutcome};
pub use io::{
    GUEST_IO_GPFN_BASE, GUEST_IO_PAGES, KCALL_CONSOLE_MAX_LEN, KCALL_CONSOLE_WRITE,
    KCALL_DISK_READ, KCALL_DISK_WRITE, KCALL_SET_UPTIME_CELL,
};
pub use layout::{FrameAllocator, VMM_BOUNDARY_VA, VMM_BOUNDARY_VPN};
pub use monitor::{compress_mode, Monitor, MonitorConfig, RunExit, SchedulerState, VmConfig, VmId};
pub use shadow::{ShadowCacheState, ShadowConfig, ShadowSet};
pub use vax_obs::{
    chrome_trace, chrome_trace_with_events, ExitCause, Histogram, Metrics, Obs, ObsSink, PcBucket,
    Prof, ProfEvent, ProfEventKind, ProfTier, TraceRecord, TraceRing, DEFAULT_SAMPLE_INTERVAL,
};
pub use vm::{DirtyStrategy, IoStrategy, Vm, VmState, VmStats};
